//! Fault-injection tests: perturb one architectural state element and
//! verify the damage lands exactly where the mapping says it must. A
//! simulator can pass golden-equivalence tests with dead logic if some
//! other path compensates; these tests pin each element to its role.

use chain_nn_repro::core::sim::ChainSim;
use chain_nn_repro::core::{ChainConfig, KernelMapping, LayerShape};
use chain_nn_repro::fixed::Fix16;
use chain_nn_repro::tensor::Tensor;

fn tensors(shape: &LayerShape) -> (Tensor<Fix16>, Tensor<Fix16>) {
    let vi = shape.c * shape.h * shape.w;
    let ifmap = Tensor::from_vec(
        [1, shape.c, shape.h, shape.w],
        (0..vi)
            .map(|i| Fix16::from_raw((i % 19) as i16 + 1))
            .collect(),
    )
    .expect("dims");
    let vw = shape.m * shape.c * shape.kh * shape.kw;
    let weights = Tensor::from_vec(
        [shape.m, shape.c, shape.kh, shape.kw],
        (0..vw)
            .map(|i| Fix16::from_raw((i % 7) as i16 + 1))
            .collect(),
    )
    .expect("dims");
    (ifmap, weights)
}

/// Corrupting one weight of ofmap channel m / input channel c changes
/// *only* that ofmap channel, and every one of its outputs whose window
/// covers the tap.
#[test]
fn single_weight_fault_is_contained_to_its_ofmap_channel() {
    let shape = LayerShape::square(2, 8, 4, 3, 1, 1);
    let (ifmap, weights) = tensors(&shape);
    let sim = ChainSim::new(ChainConfig::builder().num_pes(36).build().expect("cfg"));
    let clean = sim.run_layer(&shape, &ifmap, &weights).expect("runs");

    // Flip the centre tap of (m=2, c=1).
    let mut faulty_w = weights.clone();
    let old = faulty_w.get(2, 1, 1, 1);
    faulty_w.set(2, 1, 1, 1, Fix16::from_raw(old.raw().wrapping_add(100)));
    let faulty = sim.run_layer(&shape, &ifmap, &faulty_w).expect("runs");

    for (n, m, h, w, v) in faulty.ofmaps.iter_indexed() {
        let expect_differs = m == 2; // centre tap touches every output
        let differs = v != clean.ofmaps.get(n, m, h, w);
        assert_eq!(
            differs, expect_differs,
            "fault leaked: m={m} h={h} w={w} (differs={differs})"
        );
    }
}

/// A corner-tap fault with zero padding misses the outputs whose window
/// clips that tap — damage tracks the window geometry exactly.
#[test]
fn corner_tap_fault_tracks_window_geometry() {
    let shape = LayerShape::square(1, 6, 1, 3, 1, 0);
    let (ifmap, weights) = tensors(&shape);
    let sim = ChainSim::new(ChainConfig::builder().num_pes(9).build().expect("cfg"));
    let clean = sim.run_layer(&shape, &ifmap, &weights).expect("runs");

    // Corrupt tap (0,0) — used by output (y,x) reading pixel (y, x).
    let mut fw = weights.clone();
    fw.set(0, 0, 0, 0, Fix16::from_raw(99));
    let faulty = sim.run_layer(&shape, &ifmap, &fw).expect("runs");

    // Without padding every window covers its (0,0) tap with a real
    // pixel, so ALL outputs change (pixels are non-zero by
    // construction).
    for (n, m, h, w, v) in faulty.ofmaps.iter_indexed() {
        assert_ne!(
            v,
            clean.ofmaps.get(n, m, h, w),
            "output ({h},{w}) unchanged"
        );
    }
}

/// Corrupting input channel c's pixels leaves other channels' *weights*
/// contributions intact: with the faulty channel's weights zeroed, the
/// result equals the clean run with that channel zeroed — accumulation
/// isolation across the c-loop.
#[test]
fn channel_accumulation_is_isolated() {
    let shape = LayerShape::square(3, 7, 2, 3, 1, 1);
    let (ifmap, weights) = tensors(&shape);
    let sim = ChainSim::new(ChainConfig::builder().num_pes(18).build().expect("cfg"));

    // Zero channel 1's weights.
    let mut wz = weights.clone();
    for m in 0..2 {
        for i in 0..3 {
            for j in 0..3 {
                wz.set(m, 1, i, j, Fix16::ZERO);
            }
        }
    }
    let masked = sim.run_layer(&shape, &ifmap, &wz).expect("runs");

    // Equivalent: zero channel 1's pixels instead.
    let mut iz = ifmap.clone();
    for h in 0..7 {
        for w in 0..7 {
            iz.set(0, 1, h, w, Fix16::ZERO);
        }
    }
    let masked2 = sim.run_layer(&shape, &iz, &weights).expect("runs");
    assert_eq!(masked.ofmaps, masked2.ofmaps);
}

/// The mapping determines which primitive computes which ofmap channel:
/// permuting whole kernels permutes whole ofmap channels, nothing else.
#[test]
fn kernel_permutation_permutes_ofmaps() {
    let shape = LayerShape::square(2, 6, 3, 3, 1, 0);
    let (ifmap, weights) = tensors(&shape);
    let sim = ChainSim::new(ChainConfig::builder().num_pes(27).build().expect("cfg"));
    let base = sim.run_layer(&shape, &ifmap, &weights).expect("runs");

    // Swap kernels of m=0 and m=2.
    let mut swapped = weights.clone();
    for c in 0..2 {
        for i in 0..3 {
            for j in 0..3 {
                let a = weights.get(0, c, i, j);
                let b = weights.get(2, c, i, j);
                swapped.set(0, c, i, j, b);
                swapped.set(2, c, i, j, a);
            }
        }
    }
    let perm = sim.run_layer(&shape, &ifmap, &swapped).expect("runs");
    for (n, m, h, w, v) in perm.ofmaps.iter_indexed() {
        let src = match m {
            0 => 2,
            2 => 0,
            other => other,
        };
        assert_eq!(v, base.ofmaps.get(n, src, h, w));
    }
}

/// Idle tail PEs (mapping leftovers) can hold garbage weights without
/// affecting results: adding junk ofmap channels beyond M changes
/// nothing for the real ones.
#[test]
fn partial_tile_ignores_inactive_primitives() {
    // 5 ofmap channels on a chain with room for 4 primitives.
    let shape = LayerShape::square(2, 6, 5, 3, 1, 0);
    let (ifmap, weights) = tensors(&shape);
    let mapping = KernelMapping::new(36, 3, 3).expect("maps");
    assert_eq!(mapping.m_tiles(5), 2);
    assert_eq!(mapping.primitives_in_tile(5, 1), 1);
    let run = ChainSim::new(ChainConfig::builder().num_pes(36).build().expect("cfg"))
        .run_layer(&shape, &ifmap, &weights)
        .expect("runs");

    // Reference on a bigger chain (8 primitives, single tile).
    let big = ChainSim::new(ChainConfig::builder().num_pes(72).build().expect("cfg"))
        .run_layer(&shape, &ifmap, &weights)
        .expect("runs");
    assert_eq!(run.ofmaps, big.ofmaps);
}
