//! Fault-injection tests: perturb one architectural state element and
//! verify the damage lands exactly where the mapping says it must. A
//! simulator can pass golden-equivalence tests with dead logic if some
//! other path compensates; these tests pin each element to its role.

use chain_nn_repro::core::sim::ChainSim;
use chain_nn_repro::core::{ChainConfig, KernelMapping, LayerShape};
use chain_nn_repro::fixed::Fix16;
use chain_nn_repro::tensor::Tensor;

fn tensors(shape: &LayerShape) -> (Tensor<Fix16>, Tensor<Fix16>) {
    let vi = shape.c * shape.h * shape.w;
    let ifmap = Tensor::from_vec(
        [1, shape.c, shape.h, shape.w],
        (0..vi)
            .map(|i| Fix16::from_raw((i % 19) as i16 + 1))
            .collect(),
    )
    .expect("dims");
    let vw = shape.m * shape.c * shape.kh * shape.kw;
    let weights = Tensor::from_vec(
        [shape.m, shape.c, shape.kh, shape.kw],
        (0..vw)
            .map(|i| Fix16::from_raw((i % 7) as i16 + 1))
            .collect(),
    )
    .expect("dims");
    (ifmap, weights)
}

/// Corrupting one weight of ofmap channel m / input channel c changes
/// *only* that ofmap channel, and every one of its outputs whose window
/// covers the tap.
#[test]
fn single_weight_fault_is_contained_to_its_ofmap_channel() {
    let shape = LayerShape::square(2, 8, 4, 3, 1, 1);
    let (ifmap, weights) = tensors(&shape);
    let sim = ChainSim::new(ChainConfig::builder().num_pes(36).build().expect("cfg"));
    let clean = sim.run_layer(&shape, &ifmap, &weights).expect("runs");

    // Flip the centre tap of (m=2, c=1).
    let mut faulty_w = weights.clone();
    let old = faulty_w.get(2, 1, 1, 1);
    faulty_w.set(2, 1, 1, 1, Fix16::from_raw(old.raw().wrapping_add(100)));
    let faulty = sim.run_layer(&shape, &ifmap, &faulty_w).expect("runs");

    for (n, m, h, w, v) in faulty.ofmaps.iter_indexed() {
        let expect_differs = m == 2; // centre tap touches every output
        let differs = v != clean.ofmaps.get(n, m, h, w);
        assert_eq!(
            differs, expect_differs,
            "fault leaked: m={m} h={h} w={w} (differs={differs})"
        );
    }
}

/// A corner-tap fault with zero padding misses the outputs whose window
/// clips that tap — damage tracks the window geometry exactly.
#[test]
fn corner_tap_fault_tracks_window_geometry() {
    let shape = LayerShape::square(1, 6, 1, 3, 1, 0);
    let (ifmap, weights) = tensors(&shape);
    let sim = ChainSim::new(ChainConfig::builder().num_pes(9).build().expect("cfg"));
    let clean = sim.run_layer(&shape, &ifmap, &weights).expect("runs");

    // Corrupt tap (0,0) — used by output (y,x) reading pixel (y, x).
    let mut fw = weights.clone();
    fw.set(0, 0, 0, 0, Fix16::from_raw(99));
    let faulty = sim.run_layer(&shape, &ifmap, &fw).expect("runs");

    // Without padding every window covers its (0,0) tap with a real
    // pixel, so ALL outputs change (pixels are non-zero by
    // construction).
    for (n, m, h, w, v) in faulty.ofmaps.iter_indexed() {
        assert_ne!(
            v,
            clean.ofmaps.get(n, m, h, w),
            "output ({h},{w}) unchanged"
        );
    }
}

/// Corrupting input channel c's pixels leaves other channels' *weights*
/// contributions intact: with the faulty channel's weights zeroed, the
/// result equals the clean run with that channel zeroed — accumulation
/// isolation across the c-loop.
#[test]
fn channel_accumulation_is_isolated() {
    let shape = LayerShape::square(3, 7, 2, 3, 1, 1);
    let (ifmap, weights) = tensors(&shape);
    let sim = ChainSim::new(ChainConfig::builder().num_pes(18).build().expect("cfg"));

    // Zero channel 1's weights.
    let mut wz = weights.clone();
    for m in 0..2 {
        for i in 0..3 {
            for j in 0..3 {
                wz.set(m, 1, i, j, Fix16::ZERO);
            }
        }
    }
    let masked = sim.run_layer(&shape, &ifmap, &wz).expect("runs");

    // Equivalent: zero channel 1's pixels instead.
    let mut iz = ifmap.clone();
    for h in 0..7 {
        for w in 0..7 {
            iz.set(0, 1, h, w, Fix16::ZERO);
        }
    }
    let masked2 = sim.run_layer(&shape, &iz, &weights).expect("runs");
    assert_eq!(masked.ofmaps, masked2.ofmaps);
}

/// The mapping determines which primitive computes which ofmap channel:
/// permuting whole kernels permutes whole ofmap channels, nothing else.
#[test]
fn kernel_permutation_permutes_ofmaps() {
    let shape = LayerShape::square(2, 6, 3, 3, 1, 0);
    let (ifmap, weights) = tensors(&shape);
    let sim = ChainSim::new(ChainConfig::builder().num_pes(27).build().expect("cfg"));
    let base = sim.run_layer(&shape, &ifmap, &weights).expect("runs");

    // Swap kernels of m=0 and m=2.
    let mut swapped = weights.clone();
    for c in 0..2 {
        for i in 0..3 {
            for j in 0..3 {
                let a = weights.get(0, c, i, j);
                let b = weights.get(2, c, i, j);
                swapped.set(0, c, i, j, b);
                swapped.set(2, c, i, j, a);
            }
        }
    }
    let perm = sim.run_layer(&shape, &ifmap, &swapped).expect("runs");
    for (n, m, h, w, v) in perm.ofmaps.iter_indexed() {
        let src = match m {
            0 => 2,
            2 => 0,
            other => other,
        };
        assert_eq!(v, base.ofmaps.get(n, src, h, w));
    }
}

/// Idle tail PEs (mapping leftovers) can hold garbage weights without
/// affecting results: adding junk ofmap channels beyond M changes
/// nothing for the real ones.
#[test]
fn partial_tile_ignores_inactive_primitives() {
    // 5 ofmap channels on a chain with room for 4 primitives.
    let shape = LayerShape::square(2, 6, 5, 3, 1, 0);
    let (ifmap, weights) = tensors(&shape);
    let mapping = KernelMapping::new(36, 3, 3).expect("maps");
    assert_eq!(mapping.m_tiles(5), 2);
    assert_eq!(mapping.primitives_in_tile(5, 1), 1);
    let run = ChainSim::new(ChainConfig::builder().num_pes(36).build().expect("cfg"))
        .run_layer(&shape, &ifmap, &weights)
        .expect("runs");

    // Reference on a bigger chain (8 primitives, single tile).
    let big = ChainSim::new(ChainConfig::builder().num_pes(72).build().expect("cfg"))
        .run_layer(&shape, &ifmap, &weights)
        .expect("runs");
    assert_eq!(run.ofmaps, big.ofmaps);
}

// ===================================================================
// Cluster faults: the coordinator under shard loss, persistent busy
// refusal, and torn per-shard cache tails. The contract mirrors the
// simulator half of this suite — a fault must land exactly where the
// design says it lands (a degraded partial reply, a bounded retry, a
// truncated tail) and nowhere else (no hang, no wrong merged frontier).
// ===================================================================

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use chain_nn_repro::dse::{SweepPart, SweepSpec};
use chain_nn_repro::serve::cluster::{ClusterConfig, Coordinator};
use chain_nn_repro::serve::protocol::{Response, SweepSummary};
use chain_nn_repro::serve::{Client, Server, ServerConfig, ServerReport};

/// The conformance grid from `tests/cluster.rs`: 16 lenet points that
/// hash onto both shards of a 2-shard fleet.
fn cluster_grid() -> SweepSpec {
    SweepSpec {
        pes: vec![25, 50, 100, 200],
        freqs_mhz: vec![350.0, 700.0],
        word_bits: vec![8, 16],
        nets: vec!["lenet".into()],
        ..SweepSpec::paper_point()
    }
}

/// One shard daemon on an ephemeral port.
fn spawn_shard(
    config: ServerConfig,
) -> (std::net::SocketAddr, std::thread::JoinHandle<ServerReport>) {
    let server = Server::bind(config).expect("bind shard");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run().expect("shard runs"));
    (addr, handle)
}

/// A coordinator routing across `shards` (already-bound addresses).
fn spawn_coordinator(shards: Vec<String>) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let coordinator = Coordinator::bind(ClusterConfig {
        shards,
        ..ClusterConfig::default()
    })
    .expect("bind coordinator");
    let addr = coordinator.local_addr().expect("addr");
    let handle = std::thread::spawn(move || {
        coordinator.run().expect("coordinator runs");
    });
    (addr, handle)
}

fn sweep_via(client: &mut Client, spec: &SweepSpec) -> SweepSummary {
    match client.sweep(spec.clone()).expect("sweep round trip") {
        Response::Sweep(summary) => summary,
        other => panic!("expected sweep summary, got {other:?}"),
    }
}

/// Killing one shard mid-fleet must yield a *partial* reply with the
/// `degraded` marker — covering exactly the surviving partition, with
/// the frontier a single daemon would report for that partition — and
/// evals owned by the dead shard must re-route to a survivor.
#[test]
fn killed_shard_degrades_sweep_to_surviving_partition() {
    let spec = cluster_grid();
    let (addr0, shard0) = spawn_shard(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });
    let (addr1, shard1) = spawn_shard(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });
    let (coord_addr, coordinator) = spawn_coordinator(vec![addr0.to_string(), addr1.to_string()]);

    // Kill shard 1 before the coordinator ever reaches it.
    Client::connect(addr1)
        .expect("connect doomed shard")
        .shutdown()
        .expect("shutdown doomed shard");
    shard1.join().expect("doomed shard exits");

    // Reference: what a lone daemon reports for the surviving partition.
    let (ref_addr, ref_daemon) = spawn_shard(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });
    let mut reference = Client::connect(ref_addr).expect("connect reference");
    let part_spec = SweepSpec {
        part: Some(SweepPart { index: 0, of: 2 }),
        ..spec.clone()
    };
    let expected = sweep_via(&mut reference, &part_spec);
    assert!(
        expected.points > 0 && expected.points < spec.len(),
        "partition 0 should be a proper subset of the grid"
    );

    let mut client = Client::connect(coord_addr).expect("connect coordinator");
    let partial = sweep_via(&mut client, &spec);
    assert!(partial.degraded, "shard loss must be marked, not hidden");
    assert_eq!(partial.points, expected.points);
    assert_eq!(partial.feasible, expected.feasible);
    assert_eq!(partial.cache_misses, expected.cache_misses);
    assert_eq!(
        partial.frontier_3d, expected.frontier_3d,
        "partial frontier must equal the surviving partition's frontier"
    );
    assert_eq!(partial.frontier_sqnr, expected.frontier_sqnr);
    assert!(
        partial.candidates.is_empty(),
        "candidates are shard-internal"
    );

    // An eval owned by the dead shard re-routes to the survivor.
    let dead_owned = {
        let survivors = SweepPart { index: 1, of: 2 };
        spec.points()
            .into_iter()
            .find(|p| survivors.owns(p))
            .expect("grid spans both shards")
    };
    match client.eval(dead_owned.clone()).expect("eval re-routes") {
        Response::Eval { point, .. } => assert_eq!(point, dead_owned),
        other => panic!("expected eval reply, got {other:?}"),
    }

    // The stats ledger shows exactly one shard degraded.
    let stats = match client.stats().expect("stats") {
        Response::Stats(stats) => stats,
        other => panic!("expected stats, got {other:?}"),
    };
    let degraded: Vec<bool> = stats.shards.iter().map(|s| s.degraded).collect();
    assert_eq!(degraded, vec![false, true]);
    assert!(stats.shards[1].errors > 0);

    reference.shutdown().expect("shutdown reference");
    ref_daemon.join().expect("reference exits");
    client.shutdown().expect("shutdown cluster");
    coordinator.join().expect("coordinator exits");
    shard0.join().expect("survivor exits");
}

/// A shard refusing with `busy` is retried a bounded number of times
/// (1 initial + BUSY_RETRIES backoff attempts) and then degraded — the
/// sweep completes on the healthy shard instead of hanging.
#[test]
fn busy_shard_is_retried_then_degraded() {
    let spec = cluster_grid();
    let (addr0, shard0) = spawn_shard(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });

    // A stub shard that answers every request line with `busy` and
    // counts the lines it saw.
    let stub = std::net::TcpListener::bind("127.0.0.1:0").expect("bind stub");
    let stub_addr = stub.local_addr().expect("stub addr");
    let lines_seen = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&lines_seen);
    std::thread::spawn(move || {
        while let Ok((stream, _)) = stub.accept() {
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut writer = BufWriter::new(stream);
                let mut line = String::new();
                loop {
                    line.clear();
                    match reader.read_line(&mut line) {
                        Ok(0) | Err(_) => return,
                        Ok(_) => {}
                    }
                    counter.fetch_add(1, Ordering::SeqCst);
                    let mut wire = Response::Busy {
                        active: 1,
                        capacity: 1,
                    }
                    .encode();
                    wire.push('\n');
                    if writer.write_all(wire.as_bytes()).is_err() || writer.flush().is_err() {
                        return;
                    }
                }
            });
        }
    });

    let (coord_addr, coordinator) =
        spawn_coordinator(vec![addr0.to_string(), stub_addr.to_string()]);
    let mut client = Client::connect(coord_addr).expect("connect coordinator");

    let partial = sweep_via(&mut client, &spec);
    assert!(partial.degraded, "persistent busy must degrade the reply");
    let reference_part = SweepPart { index: 0, of: 2 };
    let expected_points = spec
        .points()
        .into_iter()
        .filter(|p| reference_part.owns(p))
        .count();
    assert_eq!(partial.points, expected_points);
    // Bounded retry: the stub saw the initial attempt plus exactly the
    // configured backoff retries for its one sub-sweep — no livelock,
    // no premature give-up. (Checked before shutdown, which forwards
    // one more line to every shard.)
    assert_eq!(
        lines_seen.load(Ordering::SeqCst),
        4,
        "expected 1 initial + 3 busy retries"
    );

    let stats = match client.stats().expect("stats") {
        Response::Stats(stats) => stats,
        other => panic!("expected stats, got {other:?}"),
    };
    assert!(
        stats.shards[1].degraded,
        "busy shard must be marked degraded"
    );

    client.shutdown().expect("shutdown cluster");
    coordinator.join().expect("coordinator exits");
    shard0.join().expect("healthy shard exits");
}

/// A torn tail on one shard's cache file — the expected debris of a
/// crash mid-append — recovers exactly as in single-node operation:
/// whole records survive, the tear is truncated away, and a restarted
/// fleet re-serves the sweep without re-evaluating anything.
#[test]
fn torn_shard_cache_tail_recovers_like_single_node() {
    let base = {
        let mut p = std::env::temp_dir();
        p.push(format!("chain_nn_cluster_torn_{}", std::process::id()));
        p
    };
    let shard_cache = |i: usize| {
        let mut file = base.clone().into_os_string();
        file.push(format!(".shard{i}"));
        std::path::PathBuf::from(file)
    };
    for i in 0..2 {
        let _ = std::fs::remove_file(shard_cache(i));
    }
    let start_fleet = |n: usize| {
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for i in 0..n {
            let (addr, handle) = spawn_shard(ServerConfig {
                threads: 1,
                cache_file: Some(shard_cache(i)),
                ..ServerConfig::default()
            });
            addrs.push(addr.to_string());
            handles.push(handle);
        }
        let (addr, coord) = spawn_coordinator(addrs);
        (addr, coord, handles)
    };
    let spec = cluster_grid();

    // First lifetime: evaluate and persist everything.
    let (addr, coordinator, shards) = start_fleet(2);
    let mut client = Client::connect(addr).expect("connect");
    let first = sweep_via(&mut client, &spec);
    assert_eq!(first.cache_misses, spec.len() as u64);
    client.shutdown().expect("shutdown");
    coordinator.join().expect("coordinator");
    for handle in shards {
        handle.join().expect("shard");
    }

    // Crash debris: a torn, never-terminated record at shard 0's tail.
    {
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(shard_cache(0))
            .expect("open shard 0 cache");
        file.write_all(b"{\"torn\":\"mid-app")
            .expect("append torn tail");
    }

    // Second lifetime: the tear costs nothing that was whole.
    let (addr, coordinator, shards) = start_fleet(2);
    let mut client = Client::connect(addr).expect("reconnect");
    let again = sweep_via(&mut client, &spec);
    assert_eq!(again.cache_misses, 0, "whole records must survive the tear");
    assert_eq!(again.cache_hits, spec.len() as u64);
    assert_eq!(again.frontier_3d, first.frontier_3d);
    assert_eq!(again.frontier_sqnr, first.frontier_sqnr);
    client.shutdown().expect("shutdown");
    coordinator.join().expect("coordinator");
    for (i, handle) in shards.into_iter().enumerate() {
        handle.join().expect("shard");
        std::fs::remove_file(shard_cache(i)).ok();
    }
}
