//! The reproduction's central correctness claim: the cycle-accurate chain
//! simulator is bit-exact against the golden fixed-point convolution for
//! every supported configuration — the analogue of the paper's on-the-fly
//! ModelSim vs float-to-fix-simulator check (§V.A).

use proptest::prelude::*;

use chain_nn_repro::core::sim::{ChainSim, ChannelMode};
use chain_nn_repro::core::{polyphase, ChainConfig, LayerShape};
use chain_nn_repro::fixed::{Fix16, OverflowMode};
use chain_nn_repro::tensor::conv::{conv2d_fix, ConvGeometry};
use chain_nn_repro::tensor::Tensor;

fn tensors(shape: &LayerShape, seed: i16) -> (Tensor<Fix16>, Tensor<Fix16>) {
    let vi = shape.c * shape.h * shape.w;
    let ifmap = Tensor::from_vec(
        [1, shape.c, shape.h, shape.w],
        (0..vi)
            .map(|i| Fix16::from_raw(((i as i16).wrapping_mul(seed)) % 97))
            .collect(),
    )
    .expect("consistent dims");
    let vw = shape.m * shape.c * shape.kh * shape.kw;
    let weights = Tensor::from_vec(
        [shape.m, shape.c, shape.kh, shape.kw],
        (0..vw)
            .map(|i| Fix16::from_raw(((i as i16).wrapping_mul(seed.wrapping_add(13))) % 53))
            .collect(),
    )
    .expect("consistent dims");
    (ifmap, weights)
}

fn golden(shape: &LayerShape, ifmap: &Tensor<Fix16>, w: &Tensor<Fix16>) -> Tensor<i32> {
    conv2d_fix(
        ifmap,
        w,
        ConvGeometry::rect(shape.kh, shape.kw, shape.stride, shape.pad).expect("geometry"),
        OverflowMode::Wrapping,
    )
    .expect("golden conv")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random stride-1 layers, random chain lengths: bit-exact.
    #[test]
    fn random_stride1_layers_match(
        c in 1usize..4,
        m in 1usize..6,
        kh in 1usize..4,
        kw in 1usize..4,
        extra_h in 0usize..5,
        pad in 0usize..2,
        prims in 1usize..4,
        seed in 1i16..1000,
    ) {
        let h = kh.max(kw) + 2 + extra_h;
        let shape = LayerShape { c, h, w: h + 1, m, kh, kw, stride: 1, pad };
        let (ifmap, weights) = tensors(&shape, seed);
        let cfg = ChainConfig::builder()
            .num_pes(prims * kh * kw)
            .build()
            .expect("valid cfg");
        let run = ChainSim::new(cfg).run_layer(&shape, &ifmap, &weights).expect("runs");
        prop_assert_eq!(run.ofmaps, golden(&shape, &ifmap, &weights));
    }

    /// Random strided layers through the polyphase decomposition.
    #[test]
    fn random_strided_layers_match(
        c in 1usize..3,
        m in 1usize..4,
        k in 2usize..6,
        stride in 2usize..5,
        pad in 0usize..2,
        seed in 1i16..1000,
    ) {
        let h = k + 3 * stride + 2;
        let shape = LayerShape::square(c, h, m, k, stride, pad);
        let (ifmap, weights) = tensors(&shape, seed);
        let cfg = ChainConfig::builder().num_pes(2 * k * k).build().expect("valid cfg");
        let sim = ChainSim::new(cfg);
        let rep = polyphase::run(&sim, &shape, &ifmap, &weights).expect("runs");
        prop_assert_eq!(rep.ofmaps, golden(&shape, &ifmap, &weights));
    }

    /// Single-channel mode agrees with dual on outputs (only timing
    /// differs).
    #[test]
    fn single_channel_agrees(
        c in 1usize..3,
        m in 1usize..4,
        k in 1usize..4,
        extra in 0usize..4,
        seed in 1i16..1000,
    ) {
        let h = k + 2 + extra;
        let shape = LayerShape::square(c, h, m, k, 1, 0);
        let (ifmap, weights) = tensors(&shape, seed);
        let cfg = ChainConfig::builder().num_pes(2 * k * k).build().expect("valid cfg");
        let sim = ChainSim::new(cfg);
        let dual = sim.run_layer_with(&shape, &ifmap, &weights, ChannelMode::Dual).expect("dual");
        let single = sim.run_layer_with(&shape, &ifmap, &weights, ChannelMode::Single).expect("single");
        prop_assert_eq!(&dual.ofmaps, &single.ofmaps);
        prop_assert_eq!(dual.ofmaps, golden(&shape, &ifmap, &weights));
    }
}

/// Spatially downscaled AlexNet layers (exact channel structure, K,
/// stride, pad, groups) through the full chain, bit-exact. Uses the
/// paper's 576-PE chain for the 3x3 layers.
#[test]
fn downscaled_alexnet_layers_bit_exact() {
    // (C_group, H, K, stride, pad, M_group, PEs)
    let cases = [
        ("conv2/4", 8, 9, 5, 1, 2, 6, 75),
        ("conv3/4", 16, 7, 3, 1, 1, 12, 576),
        ("conv4/4", 24, 7, 3, 1, 1, 12, 576),
        ("conv5/4", 24, 7, 3, 1, 1, 8, 576),
    ];
    for (name, c, h, k, s, p, m, pes) in cases {
        let shape = LayerShape::square(c, h, m, k, s, p);
        let (ifmap, weights) = tensors(&shape, 7);
        let cfg = ChainConfig::builder().num_pes(pes).build().expect("cfg");
        let run = ChainSim::new(cfg)
            .run_layer(&shape, &ifmap, &weights)
            .expect("runs");
        assert_eq!(run.ofmaps, golden(&shape, &ifmap, &weights), "{name}");
    }
}

/// Downscaled AlexNet conv1 (K=11, stride 4) through polyphase on a
/// 576-PE chain.
#[test]
fn downscaled_alexnet_conv1_polyphase_bit_exact() {
    let shape = LayerShape::square(3, 35, 4, 11, 4, 0);
    let (ifmap, weights) = tensors(&shape, 11);
    let sim = ChainSim::new(ChainConfig::paper_576());
    let rep = polyphase::run(&sim, &shape, &ifmap, &weights).expect("runs");
    assert_eq!(rep.ofmaps, golden(&shape, &ifmap, &weights));
    // 16 phases, each mapped onto the chain.
    assert_eq!(rep.phases.len(), 16);
}

/// Batched input: every image of the batch is independent and exact.
#[test]
fn batch_of_three_images() {
    let shape = LayerShape::square(2, 6, 3, 3, 1, 1);
    let vi = 3 * 2 * 36;
    let ifmap = Tensor::from_vec(
        [3, 2, 6, 6],
        (0..vi)
            .map(|i| Fix16::from_raw((i % 41) as i16 - 20))
            .collect(),
    )
    .expect("dims");
    let weights = Tensor::from_vec(
        [3, 2, 3, 3],
        (0..54)
            .map(|i| Fix16::from_raw((i % 9) as i16 - 4))
            .collect(),
    )
    .expect("dims");
    let run = ChainSim::new(ChainConfig::builder().num_pes(27).build().expect("cfg"))
        .run_layer(&shape, &ifmap, &weights)
        .expect("runs");
    assert_eq!(run.ofmaps, golden(&shape, &ifmap, &weights));
}

/// Extreme operand values: saturated words through the wrapping datapath
/// still match the golden model (both wrap identically).
#[test]
fn extreme_values_wrap_identically() {
    let shape = LayerShape::square(1, 5, 1, 3, 1, 0);
    let ifmap = Tensor::filled([1, 1, 5, 5], Fix16::MIN);
    let weights = Tensor::filled([1, 1, 3, 3], Fix16::MIN);
    let run = ChainSim::new(ChainConfig::builder().num_pes(9).build().expect("cfg"))
        .run_layer(&shape, &ifmap, &weights)
        .expect("runs");
    assert_eq!(run.ofmaps, golden(&shape, &ifmap, &weights));
    // 9 · (−32768)² = 9·2^30 wraps to 2^30 in 32-bit two's complement.
    let expected = (0..9).fold(0i32, |acc, _| acc.wrapping_add(1 << 30));
    assert_eq!(run.ofmaps.get(0, 0, 0, 0), expected);
}
