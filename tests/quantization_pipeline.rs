//! End-to-end float → fixed → chain-hardware pipeline across crates: the
//! reproduction of the paper's verification flow (MatConvNet reference →
//! float-to-fix simulator → ModelSim RTL, §V.A) with every arrow checked.

use chain_nn_repro::core::sim::ChainSim;
use chain_nn_repro::core::{ChainConfig, LayerShape};
use chain_nn_repro::fixed::error::compare;
use chain_nn_repro::fixed::{OverflowMode, QFormat};
use chain_nn_repro::nets::synth::SynthSource;
use chain_nn_repro::nets::ConvLayerSpec;
use chain_nn_repro::tensor::conv::{conv2d_f32, conv2d_fix};

/// One layer, three implementations: float reference, fixed golden
/// model, cycle-accurate chain. Fixed == chain bit-exact; float vs fixed
/// within quantization noise.
#[test]
fn three_way_equivalence() {
    let spec = ConvLayerSpec::square("t", 3, 10, 3, 1, 1, 4).expect("spec");
    let mut src = SynthSource::new(7);
    let act = src.activations(&spec, 1, 2.0);
    let w = src.weights(&spec);

    // Float reference.
    let fref = conv2d_f32(&act, &w, None, spec.geometry()).expect("float conv");

    // Quantize with fitted per-tensor formats.
    let afmt = QFormat::fit(act.as_slice());
    let wfmt = QFormat::fit(w.as_slice());
    let qa = act.map(|x| afmt.quantize(x));
    let qw = w.map(|x| wfmt.quantize(x));

    // Fixed golden model.
    let fixed = conv2d_fix(&qa, &qw, spec.geometry(), OverflowMode::Wrapping).expect("fix conv");

    // Chain hardware.
    let shape = LayerShape::from_spec_group(&spec, 0);
    let run = ChainSim::new(ChainConfig::builder().num_pes(36).build().expect("cfg"))
        .run_layer(&shape, &qa, &qw)
        .expect("runs");
    assert_eq!(run.ofmaps, fixed, "hardware must be bit-exact vs golden");

    // Dequantize and compare against float: SQNR must be high (Q0.15-ish
    // formats on unit-range data).
    let scale = 2f64.powi(-((afmt.frac_bits() + wfmt.frac_bits()) as i32)) as f32;
    let deq = run.ofmaps.map(|v| v as f32 * scale);
    let stats = compare(fref.as_slice(), deq.as_slice());
    assert!(
        stats.sqnr_db() > 60.0,
        "quantization SQNR too low: {} dB",
        stats.sqnr_db()
    );
}

/// The same three-way check through a 2-layer network with requantization
/// between layers (the error accumulates but stays bounded).
#[test]
fn two_layer_pipeline_requantized() {
    let l1 = ConvLayerSpec::square("l1", 2, 12, 3, 1, 1, 4).expect("spec");
    let l2 = ConvLayerSpec::square("l2", 4, 12, 3, 1, 1, 2).expect("spec");
    let mut src = SynthSource::new(99);
    let act0 = src.activations(&l1, 1, 1.0);
    let w1 = src.weights(&l1);
    let w2 = src.weights(&l2);

    // Float path.
    let f1 = conv2d_f32(&act0, &w1, None, l1.geometry()).expect("conv");
    let f2 = conv2d_f32(&f1, &w2, None, l2.geometry()).expect("conv");

    // Fixed/hardware path with per-layer requantization.
    let sim = ChainSim::new(ChainConfig::builder().num_pes(18).build().expect("cfg"));
    let afmt = QFormat::new(12).expect("fmt");
    let wfmt = QFormat::new(12).expect("fmt");

    let qa = act0.map(|x| afmt.quantize(x));
    let qw1 = w1.map(|x| wfmt.quantize(x));
    let shape1 = LayerShape::from_spec_group(&l1, 0);
    let r1 = sim.run_layer(&shape1, &qa, &qw1).expect("runs");
    let scale1 = 2f32.powi(-24);
    let deq1 = r1.ofmaps.map(|v| v as f32 * scale1);

    let qa2 = deq1.map(|x| afmt.quantize(x));
    let qw2 = w2.map(|x| wfmt.quantize(x));
    let shape2 = LayerShape::from_spec_group(&l2, 0);
    let r2 = sim.run_layer(&shape2, &qa2, &qw2).expect("runs");
    let deq2 = r2.ofmaps.map(|v| v as f32 * scale1);

    let stats = compare(f2.as_slice(), deq2.as_slice());
    assert!(
        stats.sqnr_db() > 45.0,
        "two-layer SQNR too low: {} dB",
        stats.sqnr_db()
    );
}

/// Coarser formats must degrade SQNR monotonically through the hardware
/// path — the quantization study's core property, measured on silicon
/// semantics rather than the float simulator.
#[test]
fn hardware_sqnr_improves_with_precision() {
    let spec = ConvLayerSpec::square("m", 2, 8, 3, 1, 0, 2).expect("spec");
    let mut src = SynthSource::new(3);
    let act = src.activations(&spec, 1, 1.0);
    let w = src.weights(&spec);
    let fref = conv2d_f32(&act, &w, None, spec.geometry()).expect("conv");
    let sim = ChainSim::new(ChainConfig::builder().num_pes(9).build().expect("cfg"));
    let shape = LayerShape::from_spec_group(&spec, 0);

    let mut last = -1f64;
    for frac in [4u32, 8, 12] {
        let fmt = QFormat::new(frac).expect("fmt");
        let qa = act.map(|x| fmt.quantize(x));
        let qw = w.map(|x| fmt.quantize(x));
        let run = sim.run_layer(&shape, &qa, &qw).expect("runs");
        let scale = 2f32.powi(-(2 * frac as i32));
        let deq = run.ofmaps.map(|v| v as f32 * scale);
        let sqnr = compare(fref.as_slice(), deq.as_slice()).sqnr_db();
        assert!(sqnr > last, "SQNR not monotone: {sqnr} after {last}");
        last = sqnr;
    }
    assert!(last > 40.0, "12-bit SQNR {last}");
}
