//! End-to-end tests of the observability layer against a live daemon
//! over loopback TCP: the `metrics` snapshot must reconcile with the
//! client's own tally of the requests it made, and the structured
//! trace log must report queue-wait separated from execute time for
//! requests that raced a big sweep. These are the acceptance criteria
//! of the observability PR.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use chain_nn_repro::dse::{DesignPoint, SweepSpec};
use chain_nn_repro::obs::trace::{SpanRecord, TraceContext};
use chain_nn_repro::serve::protocol::Response;
use chain_nn_repro::serve::{Client, Server, ServerConfig, ServerReport};

fn start(config: ServerConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<ServerReport>) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run().expect("daemon runs"));
    (addr, handle)
}

fn lenet_grid(pes: Vec<usize>) -> SweepSpec {
    SweepSpec {
        pes,
        freqs_mhz: vec![350.0, 700.0],
        nets: vec!["lenet".into()],
        ..SweepSpec::paper_point()
    }
}

fn metrics_snapshot(client: &mut Client) -> chain_nn_repro::obs::Snapshot {
    match client.metrics().expect("metrics round trip") {
        Response::Metrics { snapshot } => snapshot,
        other => panic!("expected a metrics reply, got {other:?}"),
    }
}

/// The daemon's `metrics` reply must agree with what this client did:
/// per-type request counters and latency histogram counts match the
/// tally of requests actually sent, and the latency quantiles are
/// populated (nonzero, ordered).
#[test]
fn metrics_reconcile_with_the_clients_own_request_tally() {
    let (addr, daemon) = start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    const EVALS: u64 = 5;
    let point = DesignPoint::paper_alexnet();
    for _ in 0..EVALS {
        match client.eval(point.clone()).expect("eval round trip") {
            Response::Eval { .. } => {}
            other => panic!("expected an eval reply, got {other:?}"),
        }
    }
    let grid = lenet_grid(vec![25, 50, 100]);
    for _ in 0..2 {
        match client.sweep(grid.clone()).expect("sweep round trip") {
            Response::Sweep(_) => {}
            other => panic!("expected a sweep reply, got {other:?}"),
        }
    }
    let stats = match client.stats().expect("stats round trip") {
        Response::Stats(stats) => stats,
        other => panic!("expected a stats reply, got {other:?}"),
    };
    // Satellite: stats now reports uptime and in-flight jobs from the
    // registry (the stats request itself is in flight as it is served).
    assert!(stats.uptime_s > 0.0, "uptime_s = {}", stats.uptime_s);
    assert!(stats.inflight_requests >= 1, "{}", stats.inflight_requests);
    assert_eq!(stats.requests, EVALS + 2 + 1);

    let snapshot = metrics_snapshot(&mut client);
    let eval_labels: &[(&str, &str)] = &[("type", "eval")];
    assert_eq!(
        snapshot.counter("serve_requests_total", eval_labels),
        Some(EVALS)
    );
    assert_eq!(
        snapshot.counter("serve_requests_total", &[("type", "sweep")]),
        Some(2)
    );
    assert_eq!(
        snapshot.counter("serve_requests_total", &[("type", "stats")]),
        Some(1)
    );
    let latency = snapshot
        .histogram("serve_request_ns", eval_labels)
        .expect("eval latency histogram");
    assert_eq!(latency.count, EVALS);
    assert!(latency.p50 > 0.0, "p50 = {}", latency.p50);
    assert!(latency.p99 >= latency.p50, "{latency:?}");
    let sweep_latency = snapshot
        .histogram("serve_request_ns", &[("type", "sweep")])
        .expect("sweep latency histogram");
    assert_eq!(sweep_latency.count, 2);
    // Scheduler-side reconciliation: every *scheduled* point was
    // counted — the first (cold) eval plus two sweeps of the same
    // 6-point grid. The four warm repeat evals were answered inline
    // from the cache and never entered the scheduler; sweeps always
    // travel it, warm or not.
    assert_eq!(
        snapshot.counter("sched_points_total", &[]),
        Some(1 + 2 * grid.len() as u64)
    );
    // Per-job cache traffic folded into the registry: the second sweep
    // and the repeated evals were answered from the cache.
    let hits = snapshot
        .counter("serve_cache_hits_total", &[])
        .expect("hits");
    assert!(hits >= EVALS - 1 + grid.len() as u64, "hits = {hits}");

    let _ = client.shutdown();
    daemon.join().expect("daemon thread");
}

/// Pulls the integer value of `"key":N` out of a hand-rolled trace
/// line (every traced field is a bare integer).
fn trace_field(line: &str, key: &str) -> u64 {
    let tag = format!("\"{key}\":");
    let at = line.find(&tag).unwrap_or_else(|| panic!("{key} in {line}"));
    line[at + tag.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("integer field")
}

/// Evals racing a big sweep on a single worker thread: the trace log
/// reports, for every request, queue-wait and execute as separate
/// fields — and the evals demonstrably waited (their summed queue-wait
/// is nonzero) while the sweep demonstrably executed.
#[test]
fn trace_log_separates_queue_wait_from_execute_for_evals_racing_a_sweep() {
    let dir = std::env::temp_dir().join(format!("chain-nn-obs-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path: PathBuf = dir.join("trace.jsonl");
    let (addr, daemon) = start(ServerConfig {
        threads: 1,
        trace_log: Some(trace_path.clone()),
        ..ServerConfig::default()
    });

    let sweep_done = AtomicBool::new(false);
    let evals_sent = std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut sweeper = Client::connect(addr).expect("connect sweeper");
            // One big cold sweep: enough points to keep the single
            // worker busy while the evals arrive.
            let grid = SweepSpec {
                pes: (16..=1024).collect(),
                freqs_mhz: vec![350.0, 700.0],
                nets: vec!["lenet".into()],
                ..SweepSpec::paper_point()
            };
            match sweeper.sweep(grid).expect("sweep round trip") {
                Response::Sweep(_) => {}
                other => panic!("expected a sweep reply, got {other:?}"),
            }
            sweep_done.store(true, Ordering::SeqCst);
        });
        let mut client = Client::connect(addr).expect("connect");
        let mut sent = 0u64;
        // Distinct cold points so each eval is a real job in the
        // rotation, not a cache hit; keep going until the sweep is
        // over so some evals certainly overlapped it.
        while !sweep_done.load(Ordering::SeqCst) || sent < 5 {
            let point = DesignPoint {
                pes: 20 + sent as usize,
                ..DesignPoint::paper_alexnet()
            };
            match client.eval(point).expect("eval round trip") {
                Response::Eval { .. } => sent += 1,
                other => panic!("expected an eval reply, got {other:?}"),
            }
        }
        sent
    });

    // Cross-check against the daemon's histograms before shutdown: the
    // per-type queue-wait and execute families counted every job, and
    // the evals' collective queue wait is real (nonzero nanoseconds).
    let mut client = Client::connect(addr).expect("connect");
    let snapshot = metrics_snapshot(&mut client);
    let eval_labels: &[(&str, &str)] = &[("type", "eval")];
    let queue_wait = snapshot
        .histogram("serve_queue_wait_ns", eval_labels)
        .expect("eval queue-wait histogram");
    let execute = snapshot
        .histogram("serve_execute_ns", eval_labels)
        .expect("eval execute histogram");
    assert_eq!(queue_wait.count, evals_sent);
    assert_eq!(execute.count, evals_sent);
    assert!(queue_wait.sum > 0, "evals never waited: {queue_wait:?}");
    assert!(execute.sum > 0, "evals never executed: {execute:?}");
    let _ = client.shutdown();
    daemon.join().expect("daemon thread");

    // The trace log carries the same separation per request.
    let trace = std::fs::read_to_string(&trace_path).expect("trace file");
    let eval_lines: Vec<&str> = trace
        .lines()
        .filter(|l| l.contains("\"type\":\"eval\""))
        .collect();
    let sweep_lines: Vec<&str> = trace
        .lines()
        .filter(|l| l.contains("\"type\":\"sweep\""))
        .collect();
    assert_eq!(eval_lines.len() as u64, evals_sent, "{trace}");
    assert_eq!(sweep_lines.len(), 1, "{trace}");
    for line in trace.lines() {
        let queue_wait_us = trace_field(line, "queue_wait_us");
        let execute_us = trace_field(line, "execute_us");
        let total_us = trace_field(line, "total_us");
        assert!(
            queue_wait_us + execute_us <= total_us + 1,
            "phases exceed the request total: {line}"
        );
    }
    // The big sweep spent real time executing, and each trace line
    // identifies its request and job count.
    assert!(
        trace_field(sweep_lines[0], "execute_us") > 0,
        "{}",
        sweep_lines[0]
    );
    assert_eq!(trace_field(sweep_lines[0], "jobs"), 1);
    assert_eq!(trace_field(eval_lines[0], "points"), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A client watching the daemon while a ~2000-point sweep runs
/// receives interval samples whose windowed rates and per-type latency
/// quantiles describe the live traffic: the eval pump shows up with a
/// nonzero windowed p99, the request rate is nonzero, and every
/// sample's cumulative request count reconciles with what the clients
/// actually sent.
#[test]
fn watch_stream_reports_live_windowed_rates_during_a_sweep() {
    let (addr, daemon) = start(ServerConfig {
        threads: 1,
        sample_interval: std::time::Duration::from_millis(25),
        ..ServerConfig::default()
    });

    let sweep_done = AtomicBool::new(false);
    let first_eval_done = AtomicBool::new(false);
    let (samples, done, evals_sent) = std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut sweeper = Client::connect(addr).expect("connect sweeper");
            // ~2000 cold points: (16..=1024) PEs × two clock rates on
            // lenet keeps the single worker busy throughout the watch.
            let grid = SweepSpec {
                pes: (16..=1024).collect(),
                freqs_mhz: vec![350.0, 700.0],
                nets: vec!["lenet".into()],
                ..SweepSpec::paper_point()
            };
            match sweeper.sweep(grid).expect("sweep round trip") {
                Response::Sweep(_) => {}
                other => panic!("expected a sweep reply, got {other:?}"),
            }
            sweep_done.store(true, Ordering::SeqCst);
        });
        // Eval pump: distinct cold points so every sampler window has
        // fresh eval completions to derive rates and quantiles from.
        let pump = scope.spawn(|| {
            let mut client = Client::connect(addr).expect("connect pump");
            let mut sent = 0u64;
            while !sweep_done.load(Ordering::SeqCst) || sent < 5 {
                let point = DesignPoint {
                    pes: 20 + (sent as usize % 400),
                    ..DesignPoint::paper_alexnet()
                };
                match client.eval(point).expect("eval round trip") {
                    Response::Eval { .. } => sent += 1,
                    other => panic!("expected an eval reply, got {other:?}"),
                }
                first_eval_done.store(true, Ordering::SeqCst);
            }
            sent
        });
        // Only subscribe once an eval has demonstrably completed, so
        // the watch windows (which reach back up to a second) are
        // guaranteed to catch eval traffic.
        while !first_eval_done.load(Ordering::SeqCst) {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let mut watcher = Client::connect(addr).expect("connect watcher");
        let mut samples = Vec::new();
        let done = watcher
            .watch(4, |sample| samples.push(sample.clone()))
            .expect("watch stream");
        let evals_sent = pump.join().expect("pump thread");
        (samples, done, evals_sent)
    });

    // The stream delivered the asked-for sample count then terminated.
    assert_eq!(samples.len(), 4, "{samples:?}");
    match done {
        Response::WatchDone { samples: n } => assert_eq!(n, 4),
        other => panic!("expected a watch-done line, got {other:?}"),
    }
    // Samples are consecutive sampler ticks; the cumulative request
    // count never goes backwards and every windowed per-type count is
    // bounded by it (a window can only see completed requests).
    for pair in samples.windows(2) {
        assert!(pair[1].seq > pair[0].seq, "{pair:?}");
        assert!(pair[1].requests_total >= pair[0].requests_total, "{pair:?}");
    }
    for sample in &samples {
        assert!((sample.interval_s - 0.025).abs() < 1e-9, "{sample:?}");
        let windowed: u64 = sample.types.iter().map(|t| t.requests).sum();
        assert!(
            windowed <= sample.requests_total,
            "window saw more requests than ever completed: {sample:?}"
        );
    }
    // Reconciliation with the clients' own tally: by the last sample
    // the daemon had received at most every request the three clients
    // sent (evals + one sweep + the watch itself) and at least the
    // watch request that produced the samples.
    let last = samples.last().expect("samples");
    assert!(last.requests_total >= 1, "{last:?}");
    assert!(
        last.requests_total <= evals_sent + 2,
        "daemon counted {} requests, clients sent at most {}",
        last.requests_total,
        evals_sent + 2
    );
    // The live traffic is visible: some sample caught the eval pump
    // with a nonzero windowed rate and a populated eval latency row.
    let busy = samples
        .iter()
        .find(|s| {
            s.req_per_sec > 0.0
                && s.types
                    .iter()
                    .any(|t| t.kind == "eval" && t.requests > 0 && t.p99_us > 0.0)
        })
        .unwrap_or_else(|| panic!("no sample caught the eval traffic: {samples:?}"));
    let eval_row = busy
        .types
        .iter()
        .find(|t| t.kind == "eval")
        .expect("eval row");
    assert!(eval_row.p99_us >= eval_row.p50_us, "{eval_row:?}");
    assert!(busy.points_per_sec > 0.0, "{busy:?}");

    let mut client = Client::connect(addr).expect("connect");
    let _ = client.shutdown();
    daemon.join().expect("daemon thread");
}

/// Queries one trace's spans off a daemon.
fn query_trace(client: &mut Client, id: u64) -> (u64, Vec<SpanRecord>) {
    match client.trace_query(id).expect("trace_query round trip") {
        Response::Trace { dropped, spans, .. } => (dropped, spans),
        other => panic!("expected a trace reply, got {other:?}"),
    }
}

/// The causal-tracing acceptance test: an eval and a 500-point sweep
/// sent under one client-chosen trace id produce a span tree whose
/// durations nest (children inside their root, queue-wait + execute
/// within the total), whose batch spans cover at least two distinct
/// worker threads, and whose Chrome export round-trips through the
/// JSON parser.
#[test]
fn propagated_trace_yields_a_nested_span_tree_across_workers() {
    let (addr, daemon) = start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    // The span ring is process-global and bounded; concurrent tests in
    // this binary record spans too, so under extreme scheduling our
    // spans could be evicted between recording and the query. Retry
    // with a fresh id (and fresh cold points) instead of flaking.
    let mut spans = Vec::new();
    let mut trace_id = 0;
    for attempt in 0..5u64 {
        trace_id = 777_001 + attempt;
        client.set_trace(Some(TraceContext {
            id: trace_id,
            parent: 0,
        }));
        let point = DesignPoint {
            pes: 300 + attempt as usize,
            ..DesignPoint::paper_alexnet()
        };
        match client.eval(point).expect("eval round trip") {
            Response::Eval { .. } => {}
            other => panic!("expected an eval reply, got {other:?}"),
        }
        // 250 PE counts x 2 clock rates = 500 points, shifted per
        // attempt so every sweep is cold (cold batches keep both
        // workers claiming).
        let base = 2000 + 300 * attempt as usize;
        let grid = SweepSpec {
            pes: (base..base + 250).collect(),
            freqs_mhz: vec![350.0, 700.0],
            nets: vec!["lenet".into()],
            ..SweepSpec::paper_point()
        };
        match client.sweep(grid).expect("sweep round trip") {
            Response::Sweep(s) => assert_eq!(s.points, 500),
            other => panic!("expected a sweep reply, got {other:?}"),
        }
        let (_, got) = query_trace(&mut client, trace_id);
        let workers: std::collections::HashSet<u32> = got
            .iter()
            .filter(|s| s.name == "batch")
            .filter_map(|s| s.worker)
            .collect();
        let complete = got.iter().any(|s| s.name == "eval")
            && got.iter().any(|s| s.name == "sweep")
            && workers.len() >= 2;
        if complete {
            spans = got;
            break;
        }
    }

    // Both requests' root spans are present, tagged with this trace.
    let eval_root = spans
        .iter()
        .find(|s| s.name == "eval")
        .expect("eval root span");
    let sweep_root = spans
        .iter()
        .find(|s| s.name == "sweep")
        .expect("sweep root span");
    assert!(spans.iter().all(|s| s.trace_id == trace_id), "{spans:?}");
    assert_eq!(eval_root.parent_id, 0, "client sent no parent");
    assert_eq!(sweep_root.points, 500, "{sweep_root:?}");

    // Durations nest: every child lies inside its root (1 µs slack for
    // integer-microsecond truncation), and the sweep's queue-wait plus
    // execute phases fit within its total.
    for root in [eval_root, sweep_root] {
        let children: Vec<&SpanRecord> = spans
            .iter()
            .filter(|s| s.parent_id == root.span_id)
            .collect();
        assert!(!children.is_empty(), "root {} has no children", root.name);
        for child in &children {
            assert!(child.start_us >= root.start_us, "{child:?} vs {root:?}");
            assert!(
                child.start_us + child.dur_us <= root.start_us + root.dur_us + 1,
                "child escapes its root: {child:?} vs {root:?}"
            );
        }
        for phase in ["parse", "queue_wait", "execute", "flush"] {
            assert!(
                children.iter().any(|c| c.name == phase),
                "root {} is missing phase {phase}: {children:?}",
                root.name
            );
        }
        let dur_of = |name: &str| -> u64 {
            children
                .iter()
                .filter(|c| c.name == name)
                .map(|c| c.dur_us)
                .sum()
        };
        assert!(
            dur_of("queue_wait") + dur_of("execute") <= root.dur_us,
            "phases exceed the root total: {children:?} vs {root:?}"
        );
    }

    // The sweep's batches landed on at least two distinct scheduler
    // worker threads, each batch nested in the sweep and point-tagged.
    let batches: Vec<&SpanRecord> = spans.iter().filter(|s| s.name == "batch").collect();
    let workers: std::collections::HashSet<u32> = batches.iter().filter_map(|s| s.worker).collect();
    assert!(
        workers.len() >= 2,
        "batch spans cover {} worker(s): {batches:?}",
        workers.len()
    );
    assert!(batches.iter().all(|b| b.points > 0), "{batches:?}");
    let batch_points: u64 = batches
        .iter()
        .filter(|b| b.parent_id == sweep_root.span_id)
        .map(|b| u64::from(b.points))
        .sum();
    assert_eq!(batch_points, 500, "every sweep point in some batch");

    // The Chrome export round-trips through the JSON parser and keeps
    // one complete event per span, with worker-thread rows as tids.
    let chrome = chain_nn_repro::obs::trace::chrome_trace_json(&spans);
    let parsed = chain_nn_repro::serve::json::Json::parse(&chrome).expect("valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert_eq!(events.len(), spans.len());
    for event in events {
        assert_eq!(event.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert!(event.get("name").and_then(|v| v.as_str()).is_some());
        assert!(event.get("ts").and_then(|v| v.as_u64()).is_some());
        assert!(event.get("dur").and_then(|v| v.as_u64()).is_some());
        assert!(event.get("tid").and_then(|v| v.as_u64()).is_some());
    }
    let tids: std::collections::HashSet<u64> = events
        .iter()
        .filter_map(|e| e.get("tid").and_then(|v| v.as_u64()))
        .collect();
    assert!(tids.len() >= 3, "session row + 2 worker rows: {tids:?}");

    let _ = client.shutdown();
    daemon.join().expect("daemon thread");
}

/// Satellite: scrape gauges must be fresh on the `metrics` request path
/// even when the sampler will not tick for an hour.
#[test]
fn metrics_request_refreshes_gauges_without_a_sampler_tick() {
    let (addr, daemon) = start(ServerConfig {
        threads: 2,
        // The sampler sleeps for an hour before its first tick: any
        // fresh gauge value must come from the request path.
        sample_interval: std::time::Duration::from_secs(3600),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    match client
        .eval(DesignPoint::paper_alexnet())
        .expect("eval round trip")
    {
        Response::Eval { .. } => {}
        other => panic!("expected an eval reply, got {other:?}"),
    }
    let snapshot = metrics_snapshot(&mut client);
    assert_eq!(
        snapshot.gauge("cache_points", &[]),
        Some(1.0),
        "the eval's cached point must be visible to an immediate scrape"
    );
    let uptime = snapshot.gauge("serve_uptime_seconds", &[]).expect("uptime");
    assert!(uptime > 0.0 && uptime < 3600.0, "uptime = {uptime}");
    assert_eq!(snapshot.gauge("serve_queue_depth", &[]), Some(0.0));
    assert!(
        snapshot
            .gauge("serve_open_connections", &[])
            .expect("gauge")
            >= 1.0,
        "this client's connection is open"
    );
    let _ = client.shutdown();
    daemon.join().expect("daemon thread");
}

/// Satellite: a watcher disconnecting mid-stream must not leak its
/// session (the connection count settles back) and must not disturb
/// the sampler — a second watcher still receives fresh samples.
#[test]
fn watch_client_disconnect_mid_stream_does_not_leak_or_stop_the_sampler() {
    let (addr, daemon) = start(ServerConfig {
        threads: 1,
        sample_interval: std::time::Duration::from_millis(20),
        ..ServerConfig::default()
    });

    // Watcher 1 subscribes to an unbounded stream, reads one sample,
    // then drops the socket mid-stream.
    {
        let mut watcher = Client::connect(addr).expect("connect watcher 1");
        let first = watcher
            .request_raw(r#"{"type":"watch","samples":0}"#)
            .expect("first sample line");
        assert!(
            first.contains("\"type\":\"watch\"") && first.contains("\"seq\""),
            "{first}"
        );
    } // <- disconnect here, stream still open

    // Watcher 2 still gets a full bounded stream: the sampler kept
    // ticking and the daemon kept serving.
    let mut watcher2 = Client::connect(addr).expect("connect watcher 2");
    let mut seqs = Vec::new();
    let done = watcher2
        .watch(3, |sample| seqs.push(sample.seq))
        .expect("watch stream after a disconnect");
    assert!(matches!(done, Response::WatchDone { samples: 3 }));
    assert_eq!(seqs.len(), 3);
    assert!(seqs.windows(2).all(|w| w[1] > w[0]), "{seqs:?}");

    // The dropped watcher's session went away: the daemon's connection
    // count settles to just this client (poll briefly — the session
    // thread notices the dead sink on its next write attempt).
    let mut client = Client::connect(addr).expect("connect prober");
    let mut open = usize::MAX;
    for _ in 0..200 {
        let stats = match client.stats().expect("stats round trip") {
            Response::Stats(stats) => stats,
            other => panic!("expected a stats reply, got {other:?}"),
        };
        open = stats.open_connections;
        // watcher2's socket may still be in teardown; ours must count.
        if open <= 2 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(
        open <= 2,
        "dropped watcher still counted among {open} open connections"
    );
    let _ = client.shutdown();
    daemon.join().expect("daemon thread");
}

/// The flight recorder: a `dump` request writes recent spans plus a
/// metrics snapshot to `<trace-log>.flight.json`, and a panic anywhere
/// in the process rewrites it via the installed hook.
#[test]
fn dump_request_and_panic_hook_write_the_flight_file() {
    let dir = std::env::temp_dir().join(format!("chain-nn-flight-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path: PathBuf = dir.join("trace.jsonl");
    let (addr, daemon) = start(ServerConfig {
        threads: 2,
        trace_log: Some(trace_path.clone()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    match client
        .eval(DesignPoint::paper_alexnet())
        .expect("eval round trip")
    {
        Response::Eval { .. } => {}
        other => panic!("expected an eval reply, got {other:?}"),
    }

    let flight_path = match client.dump().expect("dump round trip") {
        Response::Dump {
            path,
            spans,
            dropped: _,
        } => {
            assert!(path.ends_with(".flight.json"), "{path}");
            assert!(spans > 0, "the eval's spans are in the ring");
            PathBuf::from(path)
        }
        other => panic!("expected a dump reply, got {other:?}"),
    };
    let validate = |label: &str| {
        let text = std::fs::read_to_string(&flight_path)
            .unwrap_or_else(|e| panic!("{label}: read flight file: {e}"));
        let parsed = chain_nn_repro::serve::json::Json::parse(&text)
            .unwrap_or_else(|e| panic!("{label}: flight file must be valid JSON: {e:?}"));
        let spans = parsed
            .get("spans")
            .and_then(|s| s.as_array())
            .unwrap_or_else(|| panic!("{label}: spans array"));
        assert!(!spans.is_empty(), "{label}: no spans in flight file");
        for span in spans {
            assert!(span.get("trace").and_then(|v| v.as_u64()).is_some());
            assert!(span.get("name").and_then(|v| v.as_str()).is_some());
        }
        let metrics = parsed
            .get("metrics")
            .and_then(|m| m.as_array())
            .unwrap_or_else(|| panic!("{label}: metrics array"));
        assert!(!metrics.is_empty(), "{label}: no metrics in flight file");
        assert!(parsed.get("dropped").and_then(|v| v.as_u64()).is_some());
    };
    validate("dump request");

    // The panic hook: binding with --trace-log armed it for this
    // process, so any panic — here a caught one on the test thread —
    // rewrites the flight file on the way down.
    std::fs::remove_file(&flight_path).expect("clear the dump");
    let unwound = std::panic::catch_unwind(|| panic!("flight recorder drill"));
    assert!(unwound.is_err(), "the drill must actually panic");
    validate("panic hook");

    let _ = client.shutdown();
    daemon.join().expect("daemon thread");
    let _ = std::fs::remove_dir_all(&dir);
}
