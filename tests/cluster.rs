//! Cluster conformance suite: a coordinator fronting N shard daemons
//! must be *indistinguishable* from one daemon — merged sweep, tune and
//! frontier replies byte-identical to the single-daemon reference at
//! every shard count — plus the client-side pipelining contract and the
//! frontier-merge algebra the coordinator's correctness rests on.

use proptest::prelude::*;

use chain_nn_repro::dse::pareto::{self, Objectives};
use chain_nn_repro::dse::{DesignPoint, SweepSpec};
use chain_nn_repro::serve::cluster::{ClusterConfig, Coordinator};
use chain_nn_repro::serve::protocol::{Request, Response, SweepSummary};
use chain_nn_repro::serve::{Client, Server, ServerConfig, ServerReport};

/// A grid mixing word widths so both frontiers (area and accuracy) are
/// non-trivial, with enough points to land on every shard of a small
/// fleet: 4 pes × 2 freqs × 2 widths = 16 points.
fn mixed_grid() -> SweepSpec {
    SweepSpec {
        pes: vec![25, 50, 100, 200],
        freqs_mhz: vec![350.0, 700.0],
        word_bits: vec![8, 16],
        nets: vec!["lenet".into()],
        ..SweepSpec::paper_point()
    }
}

/// Binds one shard daemon on an ephemeral port.
fn start_shard(
    config: ServerConfig,
) -> (std::net::SocketAddr, std::thread::JoinHandle<ServerReport>) {
    let server = Server::bind(config).expect("bind shard");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run().expect("shard runs"));
    (addr, handle)
}

/// Binds `n` plain shards plus a coordinator routing across them.
#[allow(clippy::type_complexity)]
fn start_cluster(
    n: usize,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<()>,
    Vec<std::thread::JoinHandle<ServerReport>>,
) {
    let mut addrs = Vec::new();
    let mut shards = Vec::new();
    for _ in 0..n {
        let (addr, handle) = start_shard(ServerConfig {
            threads: 1,
            ..ServerConfig::default()
        });
        addrs.push(addr.to_string());
        shards.push(handle);
    }
    let coordinator = Coordinator::bind(ClusterConfig {
        shards: addrs,
        ..ClusterConfig::default()
    })
    .expect("bind coordinator");
    let addr = coordinator.local_addr().expect("addr");
    let handle = std::thread::spawn(move || {
        coordinator.run().expect("coordinator runs");
    });
    (addr, handle, shards)
}

fn sweep_summary(client: &mut Client, spec: &SweepSpec) -> SweepSummary {
    match client.sweep(spec.clone()).expect("sweep round trip") {
        Response::Sweep(summary) => summary,
        other => panic!("expected sweep summary, got {other:?}"),
    }
}

/// The wire line of a whole-cache frontier reply — full `(point,
/// result)` rows with shortest-round-trip float formatting, so string
/// equality is bit-for-bit equality of every f64 in every entry.
fn frontier_wire(client: &mut Client, sqnr: bool) -> String {
    let response = if sqnr {
        client.frontier_accuracy().expect("frontier round trip")
    } else {
        client.frontier(3).expect("frontier round trip")
    };
    assert!(
        matches!(
            &response,
            Response::Frontier {
                degraded: false,
                ..
            }
        ),
        "unexpected frontier reply: {response:?}"
    );
    response.encode()
}

/// Sweep + tune + frontier through a 2- and a 4-shard cluster, checked
/// field-by-field (and, for frontiers, wire-byte-for-wire-byte) against
/// a single daemon serving the identical requests.
#[test]
fn cluster_results_are_byte_identical_to_a_single_daemon() {
    use chain_nn_repro::tuner::{Budget, TuneRequest};

    let spec = mixed_grid();
    let tune_request = TuneRequest {
        budget: Budget {
            max_system_mw: Some(500.0),
            ..Budget::default()
        },
        ..TuneRequest::default()
    };

    // Single-daemon reference.
    let (ref_addr, ref_daemon) = start_shard(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let mut reference = Client::connect(ref_addr).expect("connect reference");
    let ref_sweep = sweep_summary(&mut reference, &spec);
    assert_eq!(ref_sweep.cache_misses, spec.len() as u64);
    let ref_tune = match reference.tune(tune_request.clone()).expect("tune") {
        Response::Tune(summary) => summary,
        other => panic!("expected tune summary, got {other:?}"),
    };
    let ref_frontier = frontier_wire(&mut reference, false);
    let ref_frontier_sqnr = frontier_wire(&mut reference, true);

    for shards in [2usize, 4] {
        let (addr, coordinator, shard_handles) = start_cluster(shards);
        let mut client = Client::connect(addr).expect("connect coordinator");

        // The merged sweep: same grid accounting, same frontiers by
        // global grid index, not degraded — and fresh (disjoint
        // partitions means summed misses equal the single daemon's).
        let sweep = sweep_summary(&mut client, &spec);
        assert_eq!(sweep.points, ref_sweep.points, "{shards} shards");
        assert_eq!(sweep.feasible, ref_sweep.feasible);
        assert_eq!(sweep.cache_hits, ref_sweep.cache_hits);
        assert_eq!(sweep.cache_misses, ref_sweep.cache_misses);
        assert_eq!(sweep.frontier_3d, ref_sweep.frontier_3d, "{shards} shards");
        assert_eq!(sweep.frontier_sqnr, ref_sweep.frontier_sqnr);
        assert!(!sweep.degraded);
        // Candidates are a sub-sweep-reply detail; the merged reply is
        // indistinguishable from a single daemon's.
        assert!(sweep.candidates.is_empty());

        // The scatter-gather tune picks the identical winner with the
        // identical evaluation accounting.
        let tune = match client.tune(tune_request.clone()).expect("tune") {
            Response::Tune(summary) => summary,
            other => panic!("expected tune summary, got {other:?}"),
        };
        assert_eq!(tune.best, ref_tune.best, "{shards} shards");
        assert_eq!(tune.evaluations, ref_tune.evaluations);
        assert_eq!(tune.rounds, ref_tune.rounds);
        assert_eq!(tune.cache_misses, ref_tune.cache_misses);
        assert_eq!(tune.exhaustive_points, ref_tune.exhaustive_points);
        assert!(!tune.degraded);

        // Whole-cache frontiers: the merged wire line equals the
        // single daemon's byte for byte (same entries, same canonical
        // order, same shortest-round-trip float digits).
        assert_eq!(
            frontier_wire(&mut client, false),
            ref_frontier,
            "{shards}-shard 3D frontier diverged from the single daemon"
        );
        assert_eq!(
            frontier_wire(&mut client, true),
            ref_frontier_sqnr,
            "{shards}-shard accuracy frontier diverged"
        );

        // Shard stats surface in the merged stats reply.
        match client.stats().expect("stats") {
            Response::Stats(stats) => {
                assert_eq!(stats.shards.len(), shards);
                assert!(stats.shards.iter().all(|s| !s.degraded));
                assert!(stats.shards.iter().all(|s| s.requests > 0));
            }
            other => panic!("expected stats, got {other:?}"),
        }

        client.shutdown().expect("shutdown");
        coordinator.join().expect("coordinator");
        for shard in shard_handles {
            shard.join().expect("shard");
        }
    }

    reference.shutdown().expect("shutdown");
    ref_daemon.join().expect("reference daemon");
}

/// Pipelining: N requests written before any reply is read come back in
/// request order, each reply matching its own request's payload.
#[test]
fn pipelined_replies_match_request_order() {
    let (addr, coordinator, shards) = start_cluster(2);
    let mut client = Client::connect(addr).expect("connect");

    let points: Vec<DesignPoint> = [25usize, 50, 100, 200, 400]
        .iter()
        .map(|&pes| DesignPoint {
            net: "lenet".into(),
            pes,
            ..DesignPoint::paper_alexnet()
        })
        .collect();
    let ids: Vec<u64> = points
        .iter()
        .map(|p| {
            client
                .pipeline(&Request::Eval(p.clone()))
                .expect("pipeline")
        })
        .collect();
    for (id, sent) in ids.into_iter().zip(&points) {
        match client.recv_reply(id).expect("reply") {
            Response::Eval { point, outcome } => {
                assert_eq!(&point, sent, "reply out of order");
                assert!(outcome.result().is_some());
            }
            other => panic!("expected eval, got {other:?}"),
        }
    }

    client.shutdown().expect("shutdown");
    coordinator.join().expect("coordinator");
    for shard in shards {
        shard.join().expect("shard");
    }
}

/// The reply-id fix: a pipelining client that skips ahead past a
/// streaming request must not misattribute the stream's late lines
/// (entries or the `done` line) to the next request — replies are
/// matched by `"req"` id, not by arrival position.
#[test]
fn late_stream_lines_are_not_misattributed_under_pipelining() {
    let (addr, daemon) = start_shard(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    // Populate the cache so the streamed frontier has several entries.
    sweep_summary(&mut client, &mixed_grid());

    // Pipeline a streaming frontier (many lines) and then two ordinary
    // requests behind it, without reading anything in between.
    let stream_id = client
        .pipeline(&Request::Frontier {
            dims: 3,
            sqnr: false,
            stream: true,
        })
        .expect("pipeline stream");
    let stats_id = client.pipeline(&Request::Stats).expect("pipeline stats");
    let paper = DesignPoint {
        net: "lenet".into(),
        ..DesignPoint::paper_alexnet()
    };
    let eval_id = client
        .pipeline(&Request::Eval(paper.clone()))
        .expect("pipeline eval");

    // Reading the *stats* reply first must discard every line of the
    // abandoned stream (entries and done alike). Under the pre-fix
    // strict-alternation client this returned a FrontierStreamEntry.
    match client.recv_reply(stats_id).expect("stats reply") {
        Response::Stats(_) => {}
        other => panic!("stream line misattributed to stats: {other:?}"),
    }
    match client.recv_reply(eval_id).expect("eval reply") {
        Response::Eval { point, .. } => assert_eq!(point, paper),
        other => panic!("misattributed eval reply: {other:?}"),
    }

    // The abandoned stream's id now has nothing left on the wire; the
    // session is still healthy for new requests.
    let _ = stream_id;
    match client.stats().expect("stats") {
        Response::Stats(stats) => assert!(stats.requests >= 4),
        other => panic!("expected stats, got {other:?}"),
    }

    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon");
}

/// Warm restarts stay incremental per shard: a cluster restarted on the
/// same per-shard cache files re-serves the whole sweep with zero
/// fresh evaluations.
#[test]
fn cluster_restart_on_per_shard_caches_reserves_with_zero_misses() {
    let base = {
        let mut p = std::env::temp_dir();
        p.push(format!("chain_nn_cluster_restart_{}", std::process::id()));
        p
    };
    let shard_cache = |i: usize| {
        let mut file = base.clone().into_os_string();
        file.push(format!(".shard{i}"));
        std::path::PathBuf::from(file)
    };
    for i in 0..2 {
        let _ = std::fs::remove_file(shard_cache(i));
    }
    let start_fleet = |n: usize| {
        let mut addrs = Vec::new();
        let mut handles = Vec::new();
        for i in 0..n {
            let (addr, handle) = start_shard(ServerConfig {
                threads: 1,
                cache_file: Some(shard_cache(i)),
                ..ServerConfig::default()
            });
            addrs.push(addr.to_string());
            handles.push(handle);
        }
        let coordinator = Coordinator::bind(ClusterConfig {
            shards: addrs,
            ..ClusterConfig::default()
        })
        .expect("bind coordinator");
        let addr = coordinator.local_addr().expect("addr");
        let coord = std::thread::spawn(move || coordinator.run().expect("runs"));
        (addr, coord, handles)
    };
    let spec = mixed_grid();

    // First fleet lifetime: all misses, persisted shard by shard.
    let (addr, coordinator, shards) = start_fleet(2);
    let mut client = Client::connect(addr).expect("connect");
    let first = sweep_summary(&mut client, &spec);
    assert_eq!(first.cache_misses, spec.len() as u64);
    client.shutdown().expect("shutdown");
    coordinator.join().expect("coordinator");
    let persisted: usize = shards
        .into_iter()
        .map(|h| h.join().expect("shard").persisted)
        .sum();
    assert_eq!(persisted, spec.len(), "per-shard persistence incomplete");

    // Second lifetime on the same cache files: the sweep is free.
    let (addr, coordinator, shards) = start_fleet(2);
    let mut client = Client::connect(addr).expect("reconnect");
    let again = sweep_summary(&mut client, &spec);
    assert_eq!(again.cache_misses, 0, "restart must re-serve from disk");
    assert_eq!(again.cache_hits, spec.len() as u64);
    assert_eq!(again.frontier_3d, first.frontier_3d);
    assert_eq!(again.frontier_sqnr, first.frontier_sqnr);
    client.shutdown().expect("shutdown");
    coordinator.join().expect("coordinator");
    for (i, shard) in shards.into_iter().enumerate() {
        let report = shard.join().expect("shard");
        assert_eq!(report.persisted, 0, "shard {i} re-evaluated");
        std::fs::remove_file(shard_cache(i)).ok();
    }
}

/// Pipelined throughput: issuing one cached eval per round trip pays a
/// write+flush+read syscall cycle plus two scheduler context switches
/// per request; pipelining a window of them amortizes the syscalls away
/// and lets client and server run concurrently. With a core each, that
/// is worth well over the required 5x. On a single-core host the two
/// sides time-share, so the ceiling is (work + switch)/work — pipelining
/// can only reclaim the per-request switch overhead, not overlap the
/// JSON encode/decode work — and the honest bound is "measurably
/// faster", not 5x. Run explicitly (CI's cluster-smoke job does) —
/// debug-build model code would dominate the round trip and measure
/// compilation mode, not protocol.
#[test]
#[ignore = "timing-sensitive: run with --release (CI cluster-smoke job)"]
fn pipelined_evals_are_5x_single_request_throughput() {
    let (addr, daemon) = start_shard(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    let point = DesignPoint {
        net: "lenet".into(),
        ..DesignPoint::paper_alexnet()
    };
    // Warm the cache so every timed request is a pure cache hit.
    match client.eval(point.clone()).expect("warm") {
        Response::Eval { outcome, .. } => assert!(outcome.result().is_some()),
        other => panic!("expected eval, got {other:?}"),
    }

    const N: usize = 400;
    let sequential = std::time::Instant::now();
    for _ in 0..N {
        client.eval(point.clone()).expect("eval");
    }
    let sequential = sequential.elapsed();

    let pipelined = std::time::Instant::now();
    let ids: Vec<u64> = (0..N)
        .map(|_| {
            client
                .pipeline(&Request::Eval(point.clone()))
                .expect("pipeline")
        })
        .collect();
    for id in ids {
        client.recv_reply(id).expect("reply");
    }
    let pipelined = pipelined.elapsed();

    let speedup = sequential.as_secs_f64() / pipelined.as_secs_f64();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let required = if cores >= 2 { 5.0 } else { 1.15 };
    assert!(
        speedup >= required,
        "pipelining speedup {speedup:.1}x < {required}x on {cores} core(s) \
         ({sequential:?} vs {pipelined:?})"
    );

    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon");
}

// ------------------------------------------------- frontier-merge algebra

/// Deterministic pseudo-random objective vector (splitmix64 stream).
fn sample_objectives(rng: &mut TestRng) -> Objectives {
    // Small integer-valued axes on purpose: collisions and exact ties
    // are the interesting dominance cases, and tiny domains make them
    // common.
    Objectives {
        fps: (rng.next_u64() % 8) as f64,
        system_mw: (rng.next_u64() % 8) as f64,
        gates_k: (rng.next_u64() % 4) as f64,
        sqnr_db: (rng.next_u64() % 4) as f64,
    }
}

/// Reduces one partition to its own frontier candidates, the way a
/// shard does before replying: the union of its 3D and accuracy
/// frontier points (a candidate superset of either frontier alone).
fn shard_candidates(part: &[(usize, Objectives)]) -> Vec<(usize, Objectives)> {
    let mut keep: Vec<usize> = pareto::frontier_3d(part);
    keep.extend(pareto::frontier_accuracy(part));
    keep.sort_unstable();
    keep.dedup();
    part.iter()
        .filter(|(i, _)| keep.binary_search(i).is_ok())
        .copied()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The coordinator's merge theorem, on random point sets: merging
    /// the per-partition frontier candidates and re-filtering equals
    /// the frontier of the whole (unpartitioned) set — for both
    /// dominance relations, under any partitioning.
    #[test]
    fn merge_of_partition_frontiers_equals_frontier_of_union(
        n in 1usize..60,
        shards in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = TestRng::deterministic(&format!("merge-{n}-{shards}-{seed}"));
        let union: Vec<(usize, Objectives)> =
            (0..n).map(|i| (i, sample_objectives(&mut rng))).collect();
        // Hash-partition, like the coordinator (index stands in for the
        // content hash; any assignment must work).
        let mut parts: Vec<Vec<(usize, Objectives)>> = vec![Vec::new(); shards];
        for &(i, o) in &union {
            parts[(i * 2654435761) % shards].push((i, o));
        }
        let candidates: Vec<Vec<(usize, Objectives)>> =
            parts.iter().map(|p| shard_candidates(p)).collect();

        prop_assert_eq!(
            pareto::merge_frontier_3d(&candidates),
            pareto::frontier_3d(&union)
        );
        prop_assert_eq!(
            pareto::merge_frontier_accuracy(&candidates),
            pareto::frontier_accuracy(&union)
        );
    }

    /// Commutativity and associativity of the merge: shard reply order
    /// must not matter, and merging incrementally (fold) must equal
    /// merging all at once.
    #[test]
    fn merge_is_commutative_and_associative(
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut rng = TestRng::deterministic(&format!("assoc-{n}-{seed}"));
        let union: Vec<(usize, Objectives)> =
            (0..n).map(|i| (i, sample_objectives(&mut rng))).collect();
        let mut parts: Vec<Vec<(usize, Objectives)>> = vec![Vec::new(); 3];
        for &(i, o) in &union {
            parts[i % 3].push((i, o));
        }
        let candidates: Vec<Vec<(usize, Objectives)>> =
            parts.iter().map(|p| shard_candidates(p)).collect();

        // Commutativity: any permutation of the parts merges the same.
        let mut reversed = candidates.clone();
        reversed.reverse();
        prop_assert_eq!(
            pareto::merge_frontier_3d(&candidates),
            pareto::merge_frontier_3d(&reversed)
        );
        prop_assert_eq!(
            pareto::merge_frontier_accuracy(&candidates),
            pareto::merge_frontier_accuracy(&reversed)
        );

        // Associativity: (p0 ⊕ p1) ⊕ p2 == p0 ⊕ p1 ⊕ p2, where ⊕
        // merges candidate lists (the intermediate stays a candidate
        // superset, which is all the theorem needs).
        let pair = pareto::merge_candidates(&candidates[..2]);
        let folded = [pair, candidates[2].clone()];
        prop_assert_eq!(
            pareto::merge_frontier_3d(&folded),
            pareto::merge_frontier_3d(&candidates)
        );
        prop_assert_eq!(
            pareto::merge_frontier_accuracy(&folded),
            pareto::merge_frontier_accuracy(&candidates)
        );
    }
}
