//! End-to-end tests of the explorer serving daemon over real loopback
//! TCP: concurrent clients sharing one cache, persistence across
//! daemon restarts, and protocol robustness. These are the acceptance
//! criteria of the serving-subsystem PR.

use std::path::PathBuf;

use chain_nn_repro::dse::SweepSpec;
use chain_nn_repro::serve::protocol::Response;
use chain_nn_repro::serve::{Client, Server, ServerConfig, ServerReport};

fn lenet_grid(pes: Vec<usize>) -> SweepSpec {
    SweepSpec {
        pes,
        freqs_mhz: vec![350.0, 700.0],
        nets: vec!["lenet".into()],
        ..SweepSpec::paper_point()
    }
}

/// Binds an ephemeral-port daemon and returns `(addr, join-handle)`.
fn start(config: ServerConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<ServerReport>) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run().expect("daemon runs"));
    (addr, handle)
}

fn sweep_summary(
    client: &mut Client,
    spec: &SweepSpec,
) -> chain_nn_repro::serve::protocol::SweepSummary {
    match client.sweep(spec.clone()).expect("sweep round trip") {
        Response::Sweep(summary) => summary,
        other => panic!("expected sweep summary, got {other:?}"),
    }
}

/// Two clients sweeping overlapping grids against one daemon: every
/// distinct point is evaluated once for the pair, so combined misses
/// are strictly below the sum of standalone runs (which would be 12).
#[test]
fn concurrent_clients_sweeping_overlapping_grids_share_one_cache() {
    let (addr, daemon) = start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let grid_a = lenet_grid(vec![25, 50, 100]); // 6 points
    let grid_b = lenet_grid(vec![50, 100, 200]); // 6 points, 4 shared
    let standalone_sum = (grid_a.len() + grid_b.len()) as u64;
    let distinct = 8u64;

    let (sum_a, sum_b) = std::thread::scope(|scope| {
        let ha = scope.spawn(|| {
            let mut c = Client::connect(addr).expect("connect a");
            sweep_summary(&mut c, &grid_a)
        });
        let hb = scope.spawn(|| {
            let mut c = Client::connect(addr).expect("connect b");
            sweep_summary(&mut c, &grid_b)
        });
        (ha.join().expect("client a"), hb.join().expect("client b"))
    });

    let combined_misses = sum_a.cache_misses + sum_b.cache_misses;
    assert!(
        combined_misses < standalone_sum,
        "clients did not share the cache: {combined_misses} misses"
    );
    // The overlap may race (both miss a shared point before either
    // inserts), so distinct points is a lower bound, not an equality.
    assert!(combined_misses >= distinct);
    assert_eq!(
        sum_a.cache_hits + sum_a.cache_misses + sum_b.cache_hits + sum_b.cache_misses,
        standalone_sum
    );

    // The daemon's frontier now spans BOTH clients' grids.
    let mut c = Client::connect(addr).expect("connect");
    match c.frontier(3).expect("frontier") {
        Response::Frontier { entries, .. } => {
            assert!(!entries.is_empty());
            for e in &entries {
                assert_eq!(e.point.net, "lenet");
            }
        }
        other => panic!("expected frontier, got {other:?}"),
    }
    c.shutdown().expect("shutdown");
    let report = daemon.join().expect("daemon");
    assert_eq!(report.cached_points as u64, distinct);
}

/// The headline persistence property: a daemon restarted on the same
/// `--cache-file` re-serves a prior sweep with *zero* evaluations.
#[test]
fn daemon_restart_reserves_prior_sweep_from_disk() {
    let cache_path = {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "chain_nn_serve_restart_{}.cache",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    };
    let config = |path: &PathBuf| ServerConfig {
        threads: 2,
        cache_file: Some(path.clone()),
        ..ServerConfig::default()
    };
    let spec = lenet_grid(vec![25, 50, 100, 200]);

    // First daemon lifetime: everything is a miss, then persisted.
    let (addr, daemon) = start(config(&cache_path));
    let mut client = Client::connect(addr).expect("connect");
    let first = sweep_summary(&mut client, &spec);
    assert_eq!(first.cache_misses, spec.len() as u64);
    client.shutdown().expect("shutdown");
    let report = daemon.join().expect("daemon");
    assert_eq!(report.persisted, spec.len());

    // Second lifetime: the same sweep costs nothing.
    let (addr, daemon) = start(config(&cache_path));
    let mut client = Client::connect(addr).expect("reconnect");
    let again = sweep_summary(&mut client, &spec);
    assert_eq!(again.cache_misses, 0, "restart must re-serve from disk");
    assert_eq!(again.cache_hits, spec.len() as u64);
    assert_eq!(again.frontier_3d, first.frontier_3d);
    // Stats agree: everything came off disk, nothing new persisted.
    match client.stats().expect("stats") {
        Response::Stats(stats) => {
            assert_eq!(stats.loaded_from_disk, spec.len());
            assert!(stats.persistent);
            assert_eq!(stats.misses, 0);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    client.shutdown().expect("shutdown");
    let report = daemon.join().expect("daemon");
    assert_eq!(report.loaded_from_disk, spec.len());
    assert_eq!(report.persisted, 0);
    std::fs::remove_file(&cache_path).ok();
}

/// The accuracy axis survives the snapshot: a daemon restarted on the
/// same cache file re-serves a point's measured SQNR bit-exactly from
/// the extended (v2) persist format, without re-evaluating anything.
#[test]
fn daemon_restart_reserves_sqnr_from_the_persist_format() {
    let cache_path = {
        let mut p = std::env::temp_dir();
        p.push(format!("chain_nn_serve_sqnr_{}.cache", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    };
    let config = |path: &PathBuf| ServerConfig {
        threads: 2,
        cache_file: Some(path.clone()),
        ..ServerConfig::default()
    };
    let point = chain_nn_repro::dse::DesignPoint {
        net: "lenet".into(),
        pes: 50,
        ..chain_nn_repro::dse::DesignPoint::paper_alexnet()
    };

    // First lifetime: evaluate once, note the served SQNR.
    let (addr, daemon) = start(config(&cache_path));
    let mut client = Client::connect(addr).expect("connect");
    let first_sqnr = match client.eval(point.clone()).expect("eval") {
        Response::Eval { outcome, .. } => {
            let r = *outcome.result().expect("feasible");
            assert!(r.sqnr_db.is_finite() && r.sqnr_db > 0.0, "{}", r.sqnr_db);
            r.sqnr_db
        }
        other => panic!("expected eval, got {other:?}"),
    };
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon");

    // Second lifetime: the identical eval is a pure cache hit — the
    // SQNR comes off disk, bit for bit.
    let (addr, daemon) = start(config(&cache_path));
    let mut client = Client::connect(addr).expect("reconnect");
    match client.eval(point).expect("eval") {
        Response::Eval { outcome, .. } => {
            let r = *outcome.result().expect("feasible");
            assert_eq!(r.sqnr_db.to_bits(), first_sqnr.to_bits());
        }
        other => panic!("expected eval, got {other:?}"),
    }
    match client.stats().expect("stats") {
        Response::Stats(stats) => {
            assert_eq!(stats.misses, 0, "restart must re-serve from disk");
            assert_eq!(stats.loaded_from_disk, 1);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    // The accuracy frontier over the cache also carries the value.
    match client.frontier_accuracy().expect("frontier") {
        Response::Frontier { entries, .. } => {
            assert_eq!(entries.len(), 1);
            assert_eq!(entries[0].result.sqnr_db.to_bits(), first_sqnr.to_bits());
        }
        other => panic!("expected frontier, got {other:?}"),
    }
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon");
    std::fs::remove_file(&cache_path).ok();
}

/// One session survives malformed requests, serves multiple requests
/// in order, and eval answers match the library evaluator bit-exactly.
#[test]
fn session_is_robust_and_consistent_with_the_library() {
    let (addr, daemon) = start(ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    // Garbage first: the session answers an error and stays open.
    let reply = client.request_raw("this is not json").expect("round trip");
    assert!(reply.contains("\"ok\":false"), "{reply}");
    let reply = client
        .request_raw(r#"{"type":"warp_drive"}"#)
        .expect("round trip");
    assert!(reply.contains("\"ok\":false"), "{reply}");

    // Then a real eval on the same connection.
    let paper = chain_nn_repro::dse::DesignPoint::paper_alexnet();
    match client.eval(paper.clone()).expect("eval") {
        Response::Eval { point, outcome } => {
            assert_eq!(point, paper);
            let served = *outcome.result().expect("paper point feasible");
            let local = chain_nn_repro::dse::evaluate(&paper).expect("local eval");
            let local = *local.result().expect("feasible");
            assert_eq!(served.fps.to_bits(), local.fps.to_bits());
            assert_eq!(served.chip_mw.to_bits(), local.chip_mw.to_bits());
            assert_eq!(served.gates_k.to_bits(), local.gates_k.to_bits());
        }
        other => panic!("expected eval, got {other:?}"),
    }

    // An infeasible point is data, not an error.
    let tiny = chain_nn_repro::dse::DesignPoint {
        pes: 64,
        ..paper.clone()
    };
    match client.eval(tiny).expect("eval") {
        Response::Eval { outcome, .. } => assert!(outcome.result().is_none()),
        other => panic!("expected eval, got {other:?}"),
    }

    // A spec-level invalid sweep is an error response, not a dead daemon.
    let mut bad = lenet_grid(vec![25]);
    bad.nets = vec!["squeezenet".into()];
    match client.sweep(bad).expect("round trip") {
        Response::Error { message } => assert!(message.contains("squeezenet"), "{message}"),
        other => panic!("expected error, got {other:?}"),
    }

    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon");
}

/// A tune served by the daemon chooses the same point as the local
/// tuner (backend-independence of the search), interleaves with the
/// scheduler, and a repeat tune after a restart on the same cache file
/// is answered without a single fresh evaluation.
#[test]
fn daemon_tune_matches_local_and_is_cached_across_restarts() {
    use chain_nn_repro::tuner::{tune, Budget, CacheEvaluator, TuneRequest};

    let cache_path = {
        let mut p = std::env::temp_dir();
        p.push(format!("chain_nn_serve_tune_{}.cache", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    };
    let config = |path: &PathBuf| ServerConfig {
        threads: 2,
        cache_file: Some(path.clone()),
        ..ServerConfig::default()
    };
    let request = TuneRequest {
        budget: Budget {
            max_system_mw: Some(500.0),
            ..Budget::default()
        },
        ..TuneRequest::default()
    };

    // Local reference.
    let local_cache = chain_nn_repro::dse::PointCache::new();
    let local = tune(&request, &mut CacheEvaluator::new(&local_cache, 2)).expect("local tune");
    let local_best = local.best.expect("admitted point exists");

    // First daemon lifetime: fresh evaluations, then persisted.
    let (addr, daemon) = start(config(&cache_path));
    let mut client = Client::connect(addr).expect("connect");
    let first = match client.tune(request.clone()).expect("tune round trip") {
        Response::Tune(summary) => summary,
        other => panic!("expected tune summary, got {other:?}"),
    };
    let first_best = first.best.clone().expect("daemon found a point");
    assert_eq!(
        first_best.point, local_best.point,
        "daemon diverged from local"
    );
    assert!(first_best.admitted);
    assert_eq!(first.evaluations, local.evaluations);
    assert_eq!(first.cache_misses, local.cache_misses);
    client.shutdown().expect("shutdown");
    let report = daemon.join().expect("daemon");
    assert_eq!(report.persisted as u64, first.cache_misses);

    // Second lifetime: the identical tune replays entirely from disk.
    let (addr, daemon) = start(config(&cache_path));
    let mut client = Client::connect(addr).expect("reconnect");
    let again = match client.tune(request).expect("tune round trip") {
        Response::Tune(summary) => summary,
        other => panic!("expected tune summary, got {other:?}"),
    };
    assert_eq!(again.best, first.best);
    assert_eq!(again.cache_misses, 0, "restarted tune must be free");
    assert_eq!(again.cache_hits, first.cache_misses);
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon");
    std::fs::remove_file(&cache_path).ok();
}

/// A frontier tune served by the daemon streams one step line per
/// budget step (each arriving before the terminal line), chooses the
/// same steps as the local frontier tuner, and a re-sweep after a
/// restart on the same cache file costs zero fresh evaluations.
#[test]
fn daemon_tune_frontier_streams_steps_and_survives_restart() {
    use chain_nn_repro::serve::protocol::FrontierStepSummary;
    use chain_nn_repro::tuner::{
        tune_frontier, BudgetSweep, CacheEvaluator, FrontierTuneRequest, TuneRequest,
    };

    let cache_path = {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "chain_nn_serve_frontier_{}.cache",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    };
    let config = |path: &PathBuf| ServerConfig {
        threads: 2,
        cache_file: Some(path.clone()),
        ..ServerConfig::default()
    };
    let request = FrontierTuneRequest {
        base: TuneRequest::default(),
        sweep: BudgetSweep::parse("max-mw=450..=650:50").expect("valid sweep"),
    };

    // Local reference.
    let local_cache = chain_nn_repro::dse::PointCache::new();
    let local = tune_frontier(
        &request,
        &mut CacheEvaluator::new(&local_cache, 2),
        |_, _| Ok(()),
    )
    .expect("local frontier tune");

    // First daemon lifetime: the steps stream back one line at a time.
    let (addr, daemon) = start(config(&cache_path));
    let mut client = Client::connect(addr).expect("connect");
    let mut steps: Vec<FrontierStepSummary> = Vec::new();
    let done = match client
        .tune_frontier(request.clone(), |step| steps.push(step.clone()))
        .expect("frontier tune round trip")
    {
        Response::TuneFrontierDone(done) => done,
        other => panic!("expected the done line, got {other:?}"),
    };
    assert_eq!(steps.len(), request.sweep.values.len());
    assert_eq!(done.steps, steps.len());
    for (i, (step, local_step)) in steps.iter().zip(&local.steps).enumerate() {
        assert_eq!(step.step, i, "steps must arrive in sweep order");
        assert_eq!(step.steps, steps.len());
        assert_eq!(step.result.budget_value, local_step.budget_value);
        // Backend-independence: the daemon's scheduler evaluator picks
        // exactly what the local cache evaluator picks.
        assert_eq!(
            step.result.best, local_step.best,
            "step {i} diverged from local"
        );
        assert_eq!(step.result.evaluations, local_step.evaluations);
    }
    assert_eq!(done.frontier, local.frontier);
    assert_eq!(done.evaluations, local.evaluations);
    assert_eq!(done.standalone_evaluations, local.standalone_evaluations);
    assert!(done.evaluations < done.standalone_evaluations);
    client.shutdown().expect("shutdown");
    let report = daemon.join().expect("daemon");
    assert_eq!(report.persisted as u64, done.cache_misses);

    // Second lifetime: the identical sweep replays entirely from disk.
    let (addr, daemon) = start(config(&cache_path));
    let mut client = Client::connect(addr).expect("reconnect");
    let mut again_steps: Vec<FrontierStepSummary> = Vec::new();
    let again = match client
        .tune_frontier(request, |step| again_steps.push(step.clone()))
        .expect("frontier tune round trip")
    {
        Response::TuneFrontierDone(done) => done,
        other => panic!("expected the done line, got {other:?}"),
    };
    assert_eq!(again.cache_misses, 0, "restarted sweep must be free");
    assert_eq!(again.cache_hits, done.cache_misses);
    assert_eq!(again.frontier, done.frontier);
    for (step, first_step) in again_steps.iter().zip(&steps) {
        assert_eq!(step.result.best, first_step.result.best);
    }
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon");
    std::fs::remove_file(&cache_path).ok();
}

/// The streaming whole-cache frontier delivers the same entries as the
/// aggregate reply, one line at a time, terminated by a done line.
#[test]
fn streaming_frontier_matches_the_aggregate_reply() {
    let (addr, daemon) = start(ServerConfig {
        threads: 2,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    sweep_summary(&mut client, &lenet_grid(vec![25, 50, 100, 200]));

    let aggregate = match client.frontier(3).expect("frontier") {
        Response::Frontier { entries, .. } => entries,
        other => panic!("expected frontier, got {other:?}"),
    };
    let mut streamed = Vec::new();
    let done = client
        .frontier_stream(3, false, |entry| streamed.push(entry.clone()))
        .expect("streamed frontier");
    match done {
        Response::FrontierStreamDone { dims, entries, .. } => {
            assert_eq!(dims, 3);
            assert_eq!(entries, aggregate.len());
        }
        other => panic!("expected the done line, got {other:?}"),
    }
    assert_eq!(streamed, aggregate);

    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon");
}

/// Beyond `--max-connections` the daemon answers one `busy` line at the
/// accept loop and closes, instead of accumulating session threads; a
/// freed slot is reusable.
#[test]
fn connection_bound_refuses_with_busy_then_recovers() {
    use std::io::{BufRead, BufReader};

    let (addr, daemon) = start(ServerConfig {
        threads: 1,
        max_connections: 2,
        ..ServerConfig::default()
    });

    // Two live sessions (a served request proves each is registered).
    let mut a = Client::connect(addr).expect("connect a");
    assert!(matches!(a.stats().expect("stats"), Response::Stats(_)));
    let mut b = Client::connect(addr).expect("connect b");
    match b.stats().expect("stats") {
        Response::Stats(stats) => {
            assert_eq!(stats.open_connections, 2);
            assert_eq!(stats.max_connections, 2);
        }
        other => panic!("expected stats, got {other:?}"),
    }

    // The third connection is refused with a busy line, then EOF.
    let refused = std::net::TcpStream::connect(addr).expect("tcp connect");
    let mut lines = BufReader::new(refused);
    let mut line = String::new();
    lines.read_line(&mut line).expect("busy line");
    assert!(line.contains("\"ok\":false"), "{line}");
    assert!(line.contains("\"error\":\"busy\""), "{line}");
    line.clear();
    assert_eq!(lines.read_line(&mut line).expect("eof"), 0, "{line}");

    // Dropping a session frees its slot (the daemon notices the EOF
    // asynchronously, so poll briefly).
    drop(a);
    let mut c = None;
    for _ in 0..200 {
        let mut candidate = Client::connect(addr).expect("tcp connect");
        if let Ok(Response::Stats(_)) = candidate.stats() {
            c = Some(candidate);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let mut c = c.expect("slot freed after disconnect");
    assert!(matches!(c.stats().expect("stats"), Response::Stats(_)));

    c.shutdown().expect("shutdown");
    drop(b);
    daemon.join().expect("daemon");
}

/// `--cache-cap` bounds the in-memory cache even without a cache file:
/// the daemon discards the dirty journal after each request (there is
/// nothing to persist), so flushed-out entries become evictable and
/// the cache cannot grow without limit.
#[test]
fn cache_cap_bounds_memory_without_a_cache_file() {
    let (addr, daemon) = start(ServerConfig {
        threads: 2,
        cache_capacity: Some(16), // one point per shard
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");
    // Two disjoint sweeps of 40 points each. The first sweep's entries
    // are journal-clean by the time the second runs, so the second's
    // inserts must evict: far fewer than 80 points can remain.
    let first = lenet_grid((1..=20).map(|i| i * 25).collect());
    let second = lenet_grid((21..=40).map(|i| i * 25).collect());
    sweep_summary(&mut client, &first);
    sweep_summary(&mut client, &second);
    match client.stats().expect("stats") {
        Response::Stats(stats) => {
            assert!(
                stats.cached_points < first.len() + second.len(),
                "capacity bound never evicted: {} points",
                stats.cached_points
            );
        }
        other => panic!("expected stats, got {other:?}"),
    }
    // The daemon still answers correctly after evictions.
    sweep_summary(&mut client, &first);
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon");
}

/// A hostile newline-free stream is refused with one error reply and a
/// closed connection instead of being buffered into daemon memory.
#[test]
fn oversized_request_is_refused_not_buffered() {
    use std::io::{Read, Write};
    let (addr, daemon) = start(ServerConfig::default());

    let mut raw = std::net::TcpStream::connect(addr).expect("connect");
    // Exactly the daemon's line cap, no newline anywhere: the daemon
    // consumes it all, refuses, and closes cleanly. (Anything *longer*
    // is also refused, but the unread remainder then makes the close a
    // reset rather than a polite FIN.)
    let blob = vec![b'a'; 1 << 20];
    raw.write_all(&blob).expect("write blob");
    let mut reply = String::new();
    raw.read_to_string(&mut reply).expect("read until close");
    assert!(reply.contains("\"ok\":false"), "{reply}");
    assert!(reply.contains("exceeds"), "{reply}");

    // The daemon itself is unharmed.
    let mut client = Client::connect(addr).expect("connect");
    assert!(matches!(client.stats().expect("stats"), Response::Stats(_)));
    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon");
}
