//! The strict analytic performance model must reproduce the simulator's
//! cycle accounting *exactly* — this is what makes the full-size AlexNet
//! numbers (which are too big to simulate cycle by cycle) trustworthy.

use chain_nn_repro::core::perf::{CycleModel, PerfModel};
use chain_nn_repro::core::sim::ChainSim;
use chain_nn_repro::core::{ChainConfig, LayerShape};
use chain_nn_repro::fixed::Fix16;
use chain_nn_repro::nets::ConvLayerSpec;
use chain_nn_repro::tensor::Tensor;

fn run_and_compare(spec: &ConvLayerSpec, pes: usize, depth: usize) {
    let cfg = ChainConfig::builder()
        .num_pes(pes)
        .kmemory_depth(depth)
        .build()
        .expect("valid cfg");
    let model = PerfModel::new(cfg);
    let predicted = model.layer(spec, CycleModel::Strict).expect("maps");

    // Simulate every group and sum.
    let mut stream = 0u64;
    let mut drain = 0u64;
    let mut load = 0u64;
    for g in 0..spec.groups() {
        let shape = LayerShape::from_spec_group(spec, g);
        let ifmap = Tensor::<Fix16>::filled([1, shape.c, shape.h, shape.w], Fix16::from_raw(1));
        let weights =
            Tensor::<Fix16>::filled([shape.m, shape.c, shape.kh, shape.kw], Fix16::from_raw(1));
        let run = ChainSim::new(cfg)
            .run_layer(&shape, &ifmap, &weights)
            .expect("runs");
        stream += run.stats.stream_cycles;
        drain += run.stats.drain_cycles;
        load += run.stats.load_cycles;
    }
    assert_eq!(
        predicted.stream_cycles,
        stream as f64,
        "{}: stream cycles",
        spec.name()
    );
    assert_eq!(
        predicted.drain_cycles,
        drain as f64,
        "{}: drain cycles",
        spec.name()
    );
    assert_eq!(predicted.load_cycles, load, "{}: load cycles", spec.name());
}

#[test]
fn strict_model_matches_simulator_exactly() {
    let cases = [
        // (name, C, H, K, s, pad, M, groups, PEs, depth)
        ConvLayerSpec::named("a", 2, 9, 9, 3, 1, 1, 3, 1).expect("spec"),
        ConvLayerSpec::named("b", 3, 12, 12, 3, 1, 0, 7, 1).expect("spec"),
        ConvLayerSpec::named("c", 4, 11, 11, 5, 1, 2, 2, 2).expect("spec"),
        ConvLayerSpec::named("d", 1, 8, 8, 2, 1, 0, 5, 1).expect("spec"),
        ConvLayerSpec::named("e", 2, 7, 7, 1, 1, 0, 2, 1).expect("spec"),
    ];
    for spec in &cases {
        run_and_compare(spec, 2 * spec.k() * spec.k() + 1, 256);
    }
}

#[test]
fn strict_model_matches_simulator_with_kernel_tiling() {
    // 6 channels with a 2-deep kMemory -> 3 kernel tiles and 3 drains.
    let spec = ConvLayerSpec::named("tiled", 6, 8, 8, 3, 1, 1, 4, 1).expect("spec");
    run_and_compare(&spec, 18, 2);
}

#[test]
fn strict_model_matches_simulator_on_576_pes() {
    // The paper's chain size, small maps: 64 primitives, partial tiles.
    let spec = ConvLayerSpec::named("p576", 2, 7, 7, 3, 1, 1, 70, 1).expect("spec");
    run_and_compare(&spec, 576, 256);
}

#[test]
fn paper_calibrated_never_below_macs_bound() {
    // No model may beat the arithmetic lower bound MACs / active PEs.
    let model = PerfModel::new(ChainConfig::paper_576());
    for spec in chain_nn_repro::nets::zoo::alexnet().layers() {
        let p = model
            .layer(spec, CycleModel::PaperCalibrated)
            .expect("maps");
        let mapping = ChainConfig::paper_576().map_kernel(spec.k()).expect("maps");
        let bound = spec.macs() as f64 / mapping.active_pes() as f64;
        assert!(
            p.compute_cycles() >= bound * 0.999,
            "{}: {} < bound {}",
            spec.name(),
            p.compute_cycles(),
            bound
        );
    }
}

#[test]
fn polyphase_strict_cost_beats_paper_on_strided_layer() {
    // The extension claim, verified at model level: for AlexNet conv1 the
    // polyphase execution needs ~1/3 the cycles of the paper's own
    // strided accounting.
    let model = PerfModel::new(ChainConfig::paper_576());
    let alex = chain_nn_repro::nets::zoo::alexnet();
    let conv1 = alex.layer("conv1").expect("conv1 exists");
    let paper = model
        .layer(conv1, CycleModel::PaperCalibrated)
        .expect("maps");
    let strict = model.layer(conv1, CycleModel::Strict).expect("maps");
    let speedup = paper.compute_cycles() / strict.compute_cycles();
    assert!(
        speedup > 2.5 && speedup < 5.0,
        "polyphase speedup {speedup} moved"
    );
}
