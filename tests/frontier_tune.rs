//! Acceptance tests of frontier tuning (the budget-axis sweep): every
//! step at least matches its standalone tune (and hence the exact
//! constrained optimum wherever the standalone tune finds it), the
//! sweep reuses evaluations (< 60 % of the standalone sum), results
//! are deterministic at any thread count, and loosening a power
//! ceiling never worsens the best fps.

use chain_nn_repro::dse::{executor, DesignPoint, MixResult, PointCache};
use chain_nn_repro::tuner::{
    tune, tune_frontier, Budget, BudgetSweep, CacheEvaluator, FrontierTuneReport,
    FrontierTuneRequest, Objective, TuneRequest,
};

/// The 13-step acceptance sweep from the issue: 300..=900 mW in 50 mW
/// steps over the default grid.
fn acceptance_request() -> FrontierTuneRequest {
    FrontierTuneRequest {
        base: TuneRequest::default(),
        sweep: BudgetSweep::parse("max-mw=300..=900:50").expect("valid sweep"),
    }
}

fn run_frontier(request: &FrontierTuneRequest, threads: usize) -> FrontierTuneReport {
    let cache = PointCache::new();
    tune_frontier(
        request,
        &mut CacheEvaluator::new(&cache, threads),
        |_, _| Ok(()),
    )
    .expect("frontier tune runs")
}

/// The constrained-exhaustive optimum at one budget (same total order
/// as the tuner: objective, content-hash tie-break).
fn exhaustive_best(budget: &Budget) -> (DesignPoint, MixResult) {
    let spec = TuneRequest::default().space;
    let points = spec.points();
    let cache = PointCache::new();
    let outcomes = executor::run(&points, 4, &cache).expect("exhaustive sweep");
    let objective = Objective::default();
    points
        .iter()
        .zip(&outcomes)
        .filter_map(|(p, o)| {
            let r = MixResult::from(o.result()?);
            budget.admits(&r).then(|| (p.clone(), r))
        })
        .max_by(|(pa, a), (pb, b)| {
            objective
                .compare(a, b)
                .then_with(|| pb.content_hash().cmp(&pa.content_hash()))
        })
        .expect("budget admits something")
}

/// The headline acceptance criterion: at every step where the
/// standalone tune finds the exact constrained optimum, the frontier
/// sweep returns exactly that point — and its total evaluations stay
/// under 60 % of the sum of the standalone tunes.
#[test]
fn frontier_steps_match_standalone_tunes_under_the_evaluation_budget() {
    let request = acceptance_request();
    let report = run_frontier(&request, 2);
    assert_eq!(report.steps.len(), 13);

    let mut standalone_sum = 0u64;
    for step in &report.steps {
        let budget = Budget {
            max_system_mw: Some(step.budget_value),
            ..Budget::default()
        };
        // Standalone reference at this budget.
        let cache = PointCache::new();
        let standalone = tune(
            &TuneRequest {
                budget,
                ..TuneRequest::default()
            },
            &mut CacheEvaluator::new(&cache, 2),
        )
        .expect("standalone tune");
        let standalone_best = standalone.best.expect("grid has feasible points");
        standalone_sum += standalone.evaluations;
        assert_eq!(
            step.evaluations, standalone.evaluations,
            "step at {} mW visited a different trajectory than standalone",
            step.budget_value
        );

        let step_best = step.best.as_ref().expect("step found a point");
        assert!(
            step_best.admitted,
            "{} mW step not admitted",
            step.budget_value
        );
        assert!(step_best.result.system_mw() <= step.budget_value + 1e-9);
        // Warm start can only improve on standalone, never regress.
        assert!(
            step_best.result.fps >= standalone_best.result.fps - 1e-12,
            "{} mW: frontier {} fps < standalone {} fps",
            step.budget_value,
            step_best.result.fps,
            standalone_best.result.fps
        );
        // Wherever standalone is exact, the frontier step must be the
        // exact constrained optimum too.
        let (exhaustive_point, exhaustive_result) = exhaustive_best(&budget);
        if standalone_best.point == exhaustive_point {
            assert_eq!(
                step_best.point, exhaustive_point,
                "{} mW: frontier diverged from the exact optimum",
                step.budget_value
            );
            assert_eq!(
                step_best.result.fps.to_bits(),
                exhaustive_result.fps.to_bits()
            );
        }
    }

    // The sweep-wide accounting: distinct configurations across all
    // steps, well under the standalone total.
    assert_eq!(report.standalone_evaluations, standalone_sum);
    assert!(
        (report.evaluations as f64) < 0.6 * standalone_sum as f64,
        "{} evaluations is not < 60% of {standalone_sum}",
        report.evaluations
    );
    assert!(report.reuse_fraction() > 0.4);
    // Cache-level accounting agrees (single-net mix: one lookup per
    // distinct configuration).
    assert_eq!(report.cache_misses, report.evaluations);
}

/// Same sweep + seed ⇒ byte-identical steps and frontier at any
/// thread count.
#[test]
fn frontier_tune_is_deterministic_across_thread_counts() {
    let request = acceptance_request();
    let reference = run_frontier(&request, 1);
    for threads in [2, 4, 16] {
        let report = run_frontier(&request, threads);
        assert_eq!(report.frontier, reference.frontier, "at {threads} threads");
        assert_eq!(report.evaluations, reference.evaluations);
        for (step, ref_step) in report.steps.iter().zip(&reference.steps) {
            let (a, b) = (
                step.best.as_ref().expect("found"),
                ref_step.best.as_ref().expect("found"),
            );
            assert_eq!(a.point, b.point, "diverged at {threads} threads");
            assert_eq!(a.result.fps.to_bits(), b.result.fps.to_bits());
            assert_eq!(a.result.chip_mw.to_bits(), b.result.chip_mw.to_bits());
        }
    }
    // And re-running the same request is stable run to run.
    let again = run_frontier(&request, 1);
    assert_eq!(again, reference);
}

/// Monotonicity sanity: loosening the power ceiling never worsens the
/// best fps (the carried-incumbent warm start makes this structural,
/// not just likely).
#[test]
fn loosening_the_power_ceiling_never_worsens_fps() {
    let report = run_frontier(&acceptance_request(), 4);
    let mut best_so_far = 0.0f64;
    for step in &report.steps {
        let best = step.best.as_ref().expect("found");
        assert!(best.admitted);
        assert!(
            best.result.fps >= best_so_far,
            "{} mW worsened fps: {} after {}",
            step.budget_value,
            best.result.fps,
            best_so_far
        );
        best_so_far = best.result.fps;
    }
    // The frontier itself is strictly improving in fps along the sweep
    // (dedup + Pareto filter remove every flat or dominated step).
    let frontier_fps: Vec<f64> = report
        .frontier
        .iter()
        .map(|&i| report.steps[i].best.as_ref().unwrap().result.fps)
        .collect();
    assert!(
        frontier_fps.windows(2).all(|w| w[0] < w[1]),
        "frontier fps not strictly increasing: {frontier_fps:?}"
    );
}

/// A repeated frontier sweep against the same cache is fully
/// incremental: zero fresh model evaluations, identical frontier.
#[test]
fn repeated_frontier_sweep_is_fully_cached() {
    let request = FrontierTuneRequest {
        base: TuneRequest::default(),
        sweep: BudgetSweep::parse("max-mw=450..=650:100").expect("valid sweep"),
    };
    let cache = PointCache::new();
    let first = tune_frontier(&request, &mut CacheEvaluator::new(&cache, 2), |_, _| Ok(()))
        .expect("first sweep");
    assert!(first.cache_misses > 0);
    assert_eq!(first.cache_hits, 0);
    let again = tune_frontier(&request, &mut CacheEvaluator::new(&cache, 2), |_, _| Ok(()))
        .expect("second sweep");
    assert_eq!(again.cache_misses, 0, "second sweep must be incremental");
    assert_eq!(again.cache_hits, first.cache_misses);
    assert_eq!(again.frontier, first.frontier);
    // Step for step identical search — only the hit/miss split moved
    // (everything the first sweep paid for, the second gets for free).
    assert_eq!(again.steps.len(), first.steps.len());
    for (a, b) in again.steps.iter().zip(&first.steps) {
        assert_eq!(a.best, b.best);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.fresh_evaluations, b.fresh_evaluations);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.cache_hits, b.cache_misses);
        assert_eq!(a.cache_misses, 0);
    }
}

/// The tuned frontier exposes the 500-vs-650 mW clock-branch
/// crossover the fixed-budget tuner documented: the 350 MHz branch
/// rules up to 600 mW, the 700 MHz branch from 650 mW on.
#[test]
fn frontier_contains_the_clock_branch_crossover() {
    let report = run_frontier(&acceptance_request(), 2);
    let at = |mw: f64| {
        report
            .steps
            .iter()
            .find(|s| s.budget_value == mw)
            .and_then(|s| s.best.as_ref())
            .expect("step found a point")
    };
    assert_eq!(at(500.0).point.freq_mhz, 350.0);
    assert_eq!(at(500.0).point.pes, 800);
    assert_eq!(at(650.0).point.freq_mhz, 700.0);
    assert_eq!(at(650.0).point.pes, 400);
}
