//! End-to-end tests of the design-space exploration engine through the
//! umbrella crate: determinism across thread counts (byte-identical
//! exports), incremental cache behavior on overlapping sweeps, and a
//! hand-checked Pareto frontier on a tiny grid.

use chain_nn_repro::dse::{export, DesignPoint, Explorer, PointOutcome, SweepSpec};

fn lenet_grid(pes: Vec<usize>) -> SweepSpec {
    SweepSpec {
        pes,
        freqs_mhz: vec![350.0, 700.0],
        nets: vec!["lenet".into()],
        ..SweepSpec::paper_point()
    }
}

/// Same spec, different thread counts: the CSV and JSON exports must be
/// byte-identical (the executor sorts by point index, and floats are
/// formatted at fixed precision).
#[test]
fn exports_are_byte_identical_across_thread_counts() {
    let spec = lenet_grid(vec![25, 50, 100, 200]);
    let mut csvs = Vec::new();
    let mut jsons = Vec::new();
    for threads in [1usize, 2, 7, 32] {
        let result = Explorer::new().run(&spec, threads).expect("sweep runs");
        csvs.push(export::results_csv(&result));
        jsons.push(export::results_json(&result));
    }
    for other in &csvs[1..] {
        assert_eq!(&csvs[0], other, "CSV differs across thread counts");
    }
    // JSON is identical up to the run-stats trailer, which reports the
    // thread count itself.
    let body = |j: &str| j[..j.find("\"stats\"").expect("stats section")].to_owned();
    for other in &jsons[1..] {
        assert_eq!(
            body(&jsons[0]),
            body(other),
            "JSON differs across thread counts"
        );
    }
}

/// A second, overlapping sweep against the same explorer only pays for
/// the new points.
#[test]
fn overlapping_sweeps_hit_the_cache() {
    let mut explorer = Explorer::new();
    let first = explorer.run(&lenet_grid(vec![25, 50]), 2).expect("runs");
    assert_eq!(first.stats.cache_misses, 4);
    assert_eq!(first.stats.cache_hits, 0);

    let second = explorer
        .run(&lenet_grid(vec![25, 50, 100]), 2)
        .expect("runs");
    assert_eq!(second.stats.cache_hits, 4, "old points must be memoized");
    assert_eq!(second.stats.cache_misses, 2, "only the new PE count runs");

    // And the memoized outcomes match what the fresh run saw (point
    // indices shift when an axis grows, so match by point, not index).
    for (point, outcome) in first.points.iter().zip(&first.outcomes) {
        let j = second
            .points
            .iter()
            .position(|p| p == point)
            .expect("first grid is a subset of the second");
        assert_eq!(outcome, &second.outcomes[j]);
    }
}

/// A tiny 3x3 grid (PEs x frequency on LeNet) whose frontier is
/// cross-checked by hand: per-axis monotonicity is asserted directly,
/// and the engine's frontier must equal one recomputed here with an
/// independent O(n^2) dominance check over the same objectives.
#[test]
fn tiny_grid_frontier_is_hand_checkable() {
    let spec = SweepSpec {
        pes: vec![25, 50, 100],
        freqs_mhz: vec![300.0, 500.0, 800.0],
        nets: vec!["lenet".into()],
        ..SweepSpec::paper_point()
    };
    let result = Explorer::new().run(&spec, 2).expect("runs");
    assert_eq!(result.stats.points, 9);
    assert_eq!(result.stats.feasible, 9);

    // Hand-checkable monotonicity. Points are laid out with PEs varying
    // fastest: index = freq_index * 3 + pe_index.
    let at = |fi: usize, pi: usize| result.outcomes[fi * 3 + pi].result().expect("feasible");
    for pi in 0..3 {
        // Within a PE count: higher clock -> more fps, more system
        // power, identical area.
        assert!(at(1, pi).fps > at(0, pi).fps);
        assert!(at(2, pi).fps > at(1, pi).fps);
        assert!(at(1, pi).system_mw() > at(0, pi).system_mw());
        assert!(at(2, pi).system_mw() > at(1, pi).system_mw());
        assert_eq!(at(0, pi).gates_k, at(2, pi).gates_k);
    }
    for fi in 0..3 {
        // Within a clock: more PEs -> more fps (LeNet's 5x5 kernels tile
        // 25/50/100 PEs exactly) and strictly more area.
        assert!(at(fi, 1).fps > at(fi, 0).fps);
        assert!(at(fi, 2).fps > at(fi, 1).fps);
        assert!(at(fi, 1).gates_k > at(fi, 0).gates_k);
    }

    // Independent frontier recomputation (reference O(n^2) dominance).
    let objectives: Vec<(f64, f64, f64)> = result
        .outcomes
        .iter()
        .map(|o| {
            let r = o.result().expect("feasible");
            (r.fps, r.system_mw(), r.gates_k)
        })
        .collect();
    let dominates = |a: &(f64, f64, f64), b: &(f64, f64, f64)| {
        a.0 >= b.0 && a.1 <= b.1 && a.2 <= b.2 && (a.0 > b.0 || a.1 < b.1 || a.2 < b.2)
    };
    let expected: Vec<usize> = (0..9)
        .filter(|&i| !(0..9).any(|j| j != i && dominates(&objectives[j], &objectives[i])))
        .collect();
    assert_eq!(result.frontier_3d, expected);
    assert!(!expected.is_empty());
    // The fastest point (100 PEs at 800 MHz, index 8) is always
    // non-dominated: nothing has more fps.
    assert!(result.frontier_3d.contains(&8));
    // So is the cheapest (25 PEs at 300 MHz, index 0): nothing has less
    // area and less power at once.
    assert!(result.frontier_3d.contains(&0));
}

/// The acceptance-criteria sweep shape: a >=200-point default grid that
/// keeps the paper's configuration on its Pareto frontier.
#[test]
fn default_grid_acceptance() {
    let spec = SweepSpec::default_grid();
    assert!(spec.len() >= 200);
    let result = Explorer::new().run(&spec, 4).expect("runs");
    assert!(result.contains_paper_point_on_frontier());
    // Infeasible points exist (PE counts below AlexNet's 11x11 conv1)
    // and are recorded, not fatal.
    let infeasible = result
        .outcomes
        .iter()
        .filter(|o| matches!(o, PointOutcome::Infeasible(_)))
        .count();
    assert!(infeasible > 0);
    assert_eq!(infeasible + result.stats.feasible, result.stats.points);
}

/// The frontier CSV is a projection of the results CSV: every frontier
/// row appears verbatim in the full export.
#[test]
fn frontier_rows_are_a_subset_of_results_rows() {
    let spec = lenet_grid(vec![25, 75, 150]);
    let result = Explorer::new().run(&spec, 2).expect("runs");
    let full_csv = export::results_csv(&result);
    let full: Vec<&str> = full_csv.lines().skip(1).collect();
    for row in export::frontier_csv(&result).lines().skip(1) {
        assert!(full.contains(&row), "frontier row not in results: {row}");
    }
    // And the paper point helper answers false for a LeNet-only sweep.
    assert!(!result.contains_paper_point_on_frontier());
    assert!(!result.points.contains(&DesignPoint::paper_alexnet()));
}
