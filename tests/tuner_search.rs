//! Acceptance tests of the budget-constrained auto-tuner: quality
//! bounds against the constrained-exhaustive optimum, the evaluation
//! budget (tune ≪ exhaustive), determinism across seeds and thread
//! counts, and workload-mix aggregation edge cases.

use chain_nn_repro::dse::{executor, DesignPoint, MixResult, PointCache, WorkloadMix};
use chain_nn_repro::tuner::{
    tune, Budget, CacheEvaluator, Objective, StrategyKind, TuneRequest, Tuned,
};

/// The constrained-exhaustive optimum: sweep the whole grid, keep the
/// admitted points, take the best under the default objective (fps,
/// then power, then gates; exact ties — which the grid has, since many
/// PE counts map the same kernel multiple — broken by content hash the
/// way the tuner breaks them).
fn exhaustive_best(budget: &Budget) -> (DesignPoint, MixResult) {
    let spec = TuneRequest::default().space;
    let points = spec.points();
    let cache = PointCache::new();
    let outcomes = executor::run(&points, 4, &cache).expect("exhaustive sweep");
    let objective = Objective::default();
    points
        .iter()
        .zip(&outcomes)
        .filter_map(|(p, o)| {
            let r = MixResult::from(o.result()?);
            budget.admits(&r).then(|| (p.clone(), r))
        })
        .max_by(|(pa, a), (pb, b)| {
            objective
                .compare(a, b)
                // Smaller content hash wins a full tie.
                .then_with(|| pb.content_hash().cmp(&pa.content_hash()))
        })
        .expect("budget admits something")
}

fn run_tune(budget: Budget, strategy: StrategyKind, seed: u64, threads: usize) -> (Tuned, u64) {
    let request = TuneRequest {
        budget,
        strategy,
        seed,
        ..TuneRequest::default()
    };
    let cache = PointCache::new();
    let report = tune(&request, &mut CacheEvaluator::new(&cache, threads)).expect("tune runs");
    (
        report.best.expect("feasible points exist"),
        report.evaluations,
    )
}

/// The headline acceptance criterion: under a 500 mW system budget the
/// tuner lands within 2 % of the constrained-exhaustive optimum while
/// visiting < 15 % of the grid.
#[test]
fn tune_500mw_matches_exhaustive_within_2_percent_under_15_percent_evals() {
    let budget = Budget {
        max_system_mw: Some(500.0),
        ..Budget::default()
    };
    let (best_point, best_result) = exhaustive_best(&budget);
    let (tuned, evaluations) = run_tune(budget, StrategyKind::Halving, 0, 2);

    assert!(tuned.admitted);
    assert!(tuned.result.system_mw() <= 500.0);
    assert!(
        tuned.result.fps >= 0.98 * best_result.fps,
        "tuned {} fps vs exhaustive {} fps at {}",
        tuned.result.fps,
        best_result.fps,
        best_point
    );
    let grid = TuneRequest::default().space.len();
    assert_eq!(grid, 244, "default grid changed; re-derive the budget");
    assert!(
        (evaluations as f64) < 0.15 * grid as f64,
        "{evaluations} evaluations is not < 15% of {grid}"
    );
    // On this grid the tuner in fact finds the exact optimum.
    assert_eq!(tuned.point, best_point);
}

/// When the budget admits the paper's hand-picked 576-PE point as the
/// optimum (budget = that point's own system power), the tuner returns
/// exactly it.
#[test]
fn paper_point_is_returned_when_the_budget_admits_it() {
    let paper = DesignPoint::paper_alexnet();
    let paper_result = chain_nn_repro::dse::evaluate(&paper).expect("paper point evaluates");
    let paper_result = paper_result.result().expect("feasible");
    let budget = Budget {
        max_system_mw: Some(paper_result.system_mw()),
        ..Budget::default()
    };
    // Exhaustively: nothing under this budget beats the paper point.
    let (best_point, _) = exhaustive_best(&budget);
    assert_eq!(best_point, paper, "grid optimum is the paper point");
    // And the tuner finds it without sweeping.
    let (tuned, evaluations) = run_tune(budget, StrategyKind::Halving, 0, 2);
    assert_eq!(tuned.point, paper);
    assert!(tuned.admitted);
    assert!((evaluations as f64) < 0.15 * 244.0);
}

/// Same budget + seed ⇒ byte-identical chosen point at any thread
/// count, for both strategies.
#[test]
fn tuner_is_deterministic_across_thread_counts() {
    let budget = Budget {
        max_system_mw: Some(650.0),
        ..Budget::default()
    };
    for strategy in [StrategyKind::Halving, StrategyKind::HillClimb] {
        let (reference, _) = run_tune(budget, strategy, 42, 1);
        for threads in [2, 4, 16] {
            let (tuned, _) = run_tune(budget, strategy, 42, threads);
            assert_eq!(
                tuned.point, reference.point,
                "{strategy} diverged at {threads} threads"
            );
            assert_eq!(
                tuned.result.fps.to_bits(),
                reference.result.fps.to_bits(),
                "{strategy} result drifted at {threads} threads"
            );
        }
        // Re-running the same seed is also stable run to run.
        let (again, _) = run_tune(budget, strategy, 42, 1);
        assert_eq!(again, reference);
    }
}

/// Hill-climb honours its seed deterministically even when different
/// seeds explore in different orders.
#[test]
fn hill_climb_seeds_are_individually_deterministic() {
    let budget = Budget {
        max_system_mw: Some(500.0),
        ..Budget::default()
    };
    for seed in [0, 1, 7, 123456789] {
        let (a, evals_a) = run_tune(budget, StrategyKind::HillClimb, seed, 1);
        let (b, evals_b) = run_tune(budget, StrategyKind::HillClimb, seed, 4);
        assert_eq!(a, b, "seed {seed} not deterministic");
        assert_eq!(evals_a, evals_b, "seed {seed} visited different sets");
    }
}

/// A zero-weight network neither constrains nor changes a tune: the
/// mix drops it at construction.
#[test]
fn zero_weight_nets_do_not_affect_the_tune() {
    let budget = Budget {
        max_system_mw: Some(700.0),
        ..Budget::default()
    };
    let with_zero = TuneRequest {
        mix: WorkloadMix::parse("alexnet:1,vgg16:0").expect("valid mix"),
        budget,
        ..TuneRequest::default()
    };
    let without = TuneRequest {
        mix: WorkloadMix::parse("alexnet").expect("valid mix"),
        budget,
        ..TuneRequest::default()
    };
    let cache = PointCache::new();
    let a = tune(&with_zero, &mut CacheEvaluator::new(&cache, 2)).expect("tune");
    let b = tune(&without, &mut CacheEvaluator::new(&cache, 2)).expect("tune");
    assert_eq!(a.best, b.best);
    assert_eq!(a.evaluations, b.evaluations);
}

/// A single-net mix tunes to the same point as the plain per-net
/// objectives — the aggregation is the identity there — while a real
/// mix must respect the worst-case power of BOTH networks.
#[test]
fn mix_tune_respects_the_hungriest_network() {
    let budget = Budget {
        max_system_mw: Some(900.0),
        ..Budget::default()
    };
    let request = TuneRequest {
        mix: WorkloadMix::parse("alexnet:0.7,vgg16:0.3").expect("valid mix"),
        budget,
        ..TuneRequest::default()
    };
    let cache = PointCache::new();
    let report = tune(&request, &mut CacheEvaluator::new(&cache, 2)).expect("tune");
    let best = report.best.expect("admitted points exist");
    assert!(best.admitted);
    // The constraint binds on the worst network, so the chosen
    // configuration's VGG-16 evaluation must itself fit the budget.
    let vgg_point = DesignPoint {
        net: "vgg16".into(),
        ..best.point.clone()
    };
    let vgg = chain_nn_repro::dse::evaluate(&vgg_point).expect("evaluates");
    let vgg = vgg.result().expect("feasible");
    assert!(vgg.system_mw() <= 900.0 + 1e-9);
    // And the mix fps is the weighted harmonic mean: between the two
    // per-net rates, nearer the slower one than an arithmetic mean.
    let alex_point = DesignPoint {
        net: "alexnet".into(),
        ..best.point.clone()
    };
    let alex = chain_nn_repro::dse::evaluate(&alex_point).expect("evaluates");
    let alex = alex.result().expect("feasible");
    let (hi, lo) = (alex.fps.max(vgg.fps), alex.fps.min(vgg.fps));
    assert!(lo <= best.result.fps && best.result.fps <= hi);
    let harmonic = 1.0 / (0.7 / alex.fps + 0.3 / vgg.fps);
    assert!((best.result.fps - harmonic).abs() / harmonic < 1e-12);
}

/// The accuracy axis closes the "narrow words win for free" hole: on a
/// probed power budget over a mixed-width grid, the plain tune picks
/// the 8-bit point (same fps, less power), while the same tune with a
/// `--min-sqnr-db` floor must cross to the wider word — and the floor
/// is *measured*, so the admitted point really clears it.
#[test]
fn min_sqnr_budget_flips_the_tune_to_wider_words() {
    let space = {
        let mut space = TuneRequest::default().space;
        space.word_bits = vec![8, 16];
        space
    };
    // A probed budget both widths can satisfy on this grid: the flip
    // must come from the accuracy floor, not from power feasibility.
    let budget = Budget {
        max_system_mw: Some(900.0),
        ..Budget::default()
    };
    let cache = PointCache::new();

    let free = TuneRequest {
        space: space.clone(),
        budget,
        ..TuneRequest::default()
    };
    let free_report =
        tune(&free, &mut CacheEvaluator::new(&cache, 2)).expect("unconstrained-accuracy tune");
    let free_best = free_report.best.expect("admitted points exist");
    assert!(free_best.admitted);
    assert_eq!(
        free_best.point.word_bits, 8,
        "without an accuracy floor the narrow word must win on power"
    );

    let floor = 50.0; // between the measured 8-bit and 16-bit SQNR
    assert!(free_best.result.sqnr_db < floor, "floor must bind");
    let strict = TuneRequest {
        space,
        budget: Budget {
            min_sqnr_db: Some(floor),
            ..budget
        },
        ..TuneRequest::default()
    };
    // Pre-warm every (net, width) pair any test in this binary can
    // measure: the recomputation counter is process-global, and a
    // concurrently running test mid-measurement would otherwise bump
    // it between our before/after reads. sqnr_for measures under the
    // memo lock, so once these return, those pairs are settled.
    for (net, w) in [("alexnet", 8), ("alexnet", 16), ("vgg16", 16)] {
        chain_nn_repro::dse::accuracy::sqnr_for(net, w).expect("zoo pair measures");
    }
    let accuracy_before = chain_nn_repro::dse::accuracy::recomputations();
    let strict_report =
        tune(&strict, &mut CacheEvaluator::new(&cache, 2)).expect("accuracy-floored tune");
    let strict_best = strict_report.best.expect("admitted points exist");
    assert!(strict_best.admitted);
    assert!(
        strict_best.point.word_bits > free_best.point.word_bits,
        "the accuracy floor must force a wider word: {} vs {}",
        strict_best.point.word_bits,
        free_best.point.word_bits
    );
    assert!(strict_best.result.sqnr_db >= floor);
    // Accuracy evaluations are memoized per (net, width): the second
    // tune re-ranks the same two pairs without a single re-measurement.
    assert_eq!(
        chain_nn_repro::dse::accuracy::recomputations(),
        accuracy_before,
        "re-tuning over already-measured (net, width) pairs must not re-measure"
    );
}

/// The default objective can be swapped: minimizing power under an fps
/// floor picks a different corner of the space than maximizing fps
/// under a power ceiling.
#[test]
fn objective_direction_changes_the_chosen_point() {
    let fast = TuneRequest {
        budget: Budget {
            max_system_mw: Some(650.0),
            ..Budget::default()
        },
        ..TuneRequest::default()
    };
    let frugal = TuneRequest {
        budget: Budget {
            min_fps: Some(50.0),
            ..Budget::default()
        },
        objective: Objective::parse("power,fps").expect("valid objective"),
        ..TuneRequest::default()
    };
    let cache = PointCache::new();
    let fast = tune(&fast, &mut CacheEvaluator::new(&cache, 2)).expect("tune");
    let frugal = tune(&frugal, &mut CacheEvaluator::new(&cache, 2)).expect("tune");
    let fast = fast.best.expect("found");
    let frugal = frugal.best.expect("found");
    assert!(frugal.result.system_mw() < fast.result.system_mw());
    assert!(fast.result.fps > frugal.result.fps);
    assert!(frugal.result.fps >= 50.0);
}
