//! Full-geometry cycle-accurate runs — expensive, so `#[ignore]`d by
//! default. Run with:
//!
//! ```text
//! cargo test --release --test full_scale -- --ignored
//! ```

use chain_nn_repro::core::perf::{CycleModel, PerfModel};
use chain_nn_repro::core::sim::ChainSim;
use chain_nn_repro::core::{ChainConfig, LayerShape};
use chain_nn_repro::fixed::{Fix16, OverflowMode};
use chain_nn_repro::nets::zoo;
use chain_nn_repro::tensor::conv::{conv2d_fix, ConvGeometry};
use chain_nn_repro::tensor::Tensor;

/// AlexNet conv5 (one group) at full 13×13 geometry on the full 576-PE
/// chain: bit-exact and cycle-exact vs the strict model. This simulates
/// ~156k patterns-cycles × 576 PEs — seconds in release, minutes in
/// debug, hence ignored.
#[test]
#[ignore = "full-geometry simulation; run with --release -- --ignored"]
fn alexnet_conv5_group_full_geometry() {
    let spec = zoo::alexnet();
    let conv5 = spec.layer("conv5").expect("conv5");
    let shape = LayerShape::from_spec_group(conv5, 0);
    let vi = shape.c * shape.h * shape.w;
    let ifmap = Tensor::from_vec(
        [1, shape.c, shape.h, shape.w],
        (0..vi)
            .map(|i| Fix16::from_raw((i % 251) as i16 - 125))
            .collect(),
    )
    .expect("dims");
    let vw = shape.m * shape.c * shape.kh * shape.kw;
    let weights = Tensor::from_vec(
        [shape.m, shape.c, shape.kh, shape.kw],
        (0..vw)
            .map(|i| Fix16::from_raw((i % 127) as i16 - 63))
            .collect(),
    )
    .expect("dims");

    let cfg = ChainConfig::paper_576();
    let run = ChainSim::new(cfg)
        .run_layer(&shape, &ifmap, &weights)
        .expect("runs");

    // Bit-exact.
    let golden = conv2d_fix(
        &ifmap,
        &weights,
        ConvGeometry::new(3, 1, 1).expect("geom"),
        OverflowMode::Wrapping,
    )
    .expect("golden");
    assert_eq!(run.ofmaps, golden);

    // Cycle-exact vs the strict model for this single group: build a
    // one-group spec.
    let one_group = chain_nn_repro::nets::ConvLayerSpec::named(
        "conv5g",
        shape.c,
        shape.h,
        shape.w,
        shape.kh,
        shape.stride,
        shape.pad,
        shape.m,
        1,
    )
    .expect("spec");
    let predicted = PerfModel::new(cfg)
        .layer(&one_group, CycleModel::Strict)
        .expect("maps");
    assert_eq!(predicted.stream_cycles, run.stats.stream_cycles as f64);
    assert_eq!(predicted.drain_cycles, run.stats.drain_cycles as f64);
    assert_eq!(predicted.load_cycles, run.stats.load_cycles);
}

/// Full-geometry AlexNet conv1 (stride 4) through polyphase on the
/// 576-PE chain — the heaviest verification in the repository.
#[test]
#[ignore = "full-geometry strided simulation; run with --release -- --ignored"]
fn alexnet_conv1_full_geometry_polyphase() {
    let alex = zoo::alexnet();
    let conv1 = alex.layer("conv1").expect("conv1");
    let shape = LayerShape::from_spec_group(conv1, 0);
    let vi = shape.c * shape.h * shape.w;
    let ifmap = Tensor::from_vec(
        [1, shape.c, shape.h, shape.w],
        (0..vi)
            .map(|i| Fix16::from_raw((i % 97) as i16 - 48))
            .collect(),
    )
    .expect("dims");
    // Full M=96 is slow; 8 ofmap channels exercise the full phase
    // machinery at identical schedules.
    let m = 8usize;
    let vw = m * shape.c * shape.kh * shape.kw;
    let weights = Tensor::from_vec(
        [m, shape.c, shape.kh, shape.kw],
        (0..vw)
            .map(|i| Fix16::from_raw((i % 61) as i16 - 30))
            .collect(),
    )
    .expect("dims");
    let mut shape = shape;
    shape.m = m;

    let sim = ChainSim::new(ChainConfig::paper_576());
    let rep = chain_nn_repro::core::polyphase::run(&sim, &shape, &ifmap, &weights).expect("runs");
    let golden = conv2d_fix(
        &ifmap,
        &weights,
        ConvGeometry::new(11, 4, 0).expect("geom"),
        OverflowMode::Wrapping,
    )
    .expect("golden");
    assert_eq!(rep.ofmaps, golden);
}
