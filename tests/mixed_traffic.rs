//! Mixed-traffic acceptance tests for the work-assisting engine: the
//! latency contract (one-point evals racing a ~2000-point sweep see
//! their p99 queue-wait drop under adaptive claims versus the
//! fixed-batch baseline), the exactly-once contract (no point is lost
//! or claimed twice under racing clients or 16-way job contention),
//! the work-assisting contract (batch spans prove at least two
//! workers claimed from the same job), determinism at any thread
//! count, and the points-not-jobs `queue_depth` semantics over the
//! wire. These are the acceptance criteria of the engine PR.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use chain_nn_repro::dse::{executor, DesignPoint, PointCache, SweepSpec};
use chain_nn_repro::obs::trace::TraceContext;
use chain_nn_repro::obs::Registry;
use chain_nn_repro::serve::protocol::Response;
use chain_nn_repro::serve::scheduler::{ClaimPolicy, Scheduler, BATCH_SIZE};
use chain_nn_repro::serve::{Client, Server, ServerConfig, ServerReport};
use chain_nn_repro::tuner::{tune, Budget, CacheEvaluator, TuneRequest};

/// Binds an ephemeral-port daemon and returns `(addr, join-handle)`.
fn start(config: ServerConfig) -> (std::net::SocketAddr, std::thread::JoinHandle<ServerReport>) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.run().expect("daemon runs"));
    (addr, handle)
}

/// A cold lenet grid: `pes` PE counts × two clock rates.
fn lenet_grid(pes: Vec<usize>) -> SweepSpec {
    SweepSpec {
        pes,
        freqs_mhz: vec![350.0, 700.0],
        nets: vec!["lenet".into()],
        ..SweepSpec::paper_point()
    }
}

fn expect_eval(client: &mut Client, point: DesignPoint) {
    match client.eval(point).expect("eval round trip") {
        Response::Eval { .. } => {}
        other => panic!("expected an eval reply, got {other:?}"),
    }
}

fn sweep_points(client: &mut Client, spec: &SweepSpec) -> (usize, u64, u64) {
    match client.sweep(spec.clone()).expect("sweep round trip") {
        Response::Sweep(s) => (s.points, s.cache_hits, s.cache_misses),
        other => panic!("expected a sweep reply, got {other:?}"),
    }
}

fn stats(client: &mut Client) -> chain_nn_repro::serve::protocol::ServerStats {
    match client.stats().expect("stats round trip") {
        Response::Stats(stats) => stats,
        other => panic!("expected a stats reply, got {other:?}"),
    }
}

fn metrics_snapshot(client: &mut Client) -> chain_nn_repro::obs::Snapshot {
    match client.metrics().expect("metrics round trip") {
        Response::Metrics { snapshot } => snapshot,
        other => panic!("expected a metrics reply, got {other:?}"),
    }
}

/// Runs one measurement round for the tail-latency criterion: boots a
/// 2-worker daemon under the given claim policy, launches a
/// ~2000-point cold sweep, and pumps one-point evals at it for the
/// sweep's whole duration. Returns the daemon's own
/// `serve_queue_wait_ns{type=eval}` p99 (nanoseconds) and the pump's
/// eval count.
///
/// Each pump point is fresh (cache-cold), so the eval must travel the
/// scheduler — cache hits are answered inline and never queue at all.
/// An alexnet point evaluates in microseconds; what the adaptive
/// policy must shrink is its queue wait — the time from submission
/// until a worker reaches a claim boundary and picks the eval up. The
/// daemon's queue-wait histogram measures exactly that window, immune
/// to the client-side scheduling noise a loaded test machine adds to
/// round-trip times.
fn eval_queue_wait_p99_under_sweep(claim: ClaimPolicy) -> (f64, usize) {
    let (addr, daemon) = start(ServerConfig {
        threads: 2,
        claim,
        ..ServerConfig::default()
    });
    let mut pump = Client::connect(addr).expect("connect pump");
    // Disjoint from the sweep grid (different net), fresh every
    // iteration so none is a cache hit.
    let pump_point = |i: usize| DesignPoint {
        pes: 40 + i,
        ..DesignPoint::paper_alexnet()
    };

    let sweep_done = AtomicBool::new(false);
    let pumped = std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut sweeper = Client::connect(addr).expect("connect sweeper");
            // vgg16, the costliest zoo net: the sweep must outlive the
            // pump's ramp-up even in optimized builds.
            let grid = SweepSpec {
                pes: (16..=1024).collect(),
                freqs_mhz: vec![350.0, 700.0],
                nets: vec!["vgg16".into()],
                ..SweepSpec::paper_point()
            };
            let (points, _, _) = sweep_points(&mut sweeper, &grid);
            assert_eq!(points, 2018);
            sweep_done.store(true, Ordering::SeqCst);
        });
        // Only start pumping once the sweep is demonstrably admitted
        // and still deep (stats is served inline, not queued).
        while !sweep_done.load(Ordering::SeqCst) && stats(&mut pump).queue_depth < 1000 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut pumped = 0usize;
        while !sweep_done.load(Ordering::SeqCst) {
            expect_eval(&mut pump, pump_point(pumped));
            pumped += 1;
        }
        pumped
    });
    let snapshot = metrics_snapshot(&mut pump);
    let _ = pump.shutdown();
    daemon.join().expect("daemon thread");

    let wait = snapshot
        .histogram("serve_queue_wait_ns", &[("type", "eval")])
        .expect("eval queue-wait histogram");
    (wait.p99, pumped)
}

/// The headline latency criterion: with interactive evals racing a
/// ~2000-point sweep, adaptive claims cut the evals' p99 wait to less
/// than half of the fixed-batch baseline's. Under `Fixed(32)` an eval
/// waits for a worker to drain a whole 32-point claim; under the
/// adaptive policy the sweep's claims shrink to
/// [`CONTENDED_CLAIM`](chain_nn_repro::serve::scheduler::CONTENDED_CLAIM)-sized
/// ranges while the pump runs. Timing-sensitive, so three attempts
/// before declaring failure.
#[test]
fn adaptive_claims_cut_eval_p99_versus_fixed_batches_during_a_sweep() {
    let mut last = String::new();
    for _ in 0..3 {
        let (fixed_p99, fixed_n) = eval_queue_wait_p99_under_sweep(ClaimPolicy::Fixed(BATCH_SIZE));
        let (adaptive_p99, adaptive_n) =
            eval_queue_wait_p99_under_sweep(ClaimPolicy::Adaptive { max: BATCH_SIZE });
        last = format!(
            "fixed queue-wait p99 {:.0} us over {fixed_n} evals, \
             adaptive {:.0} us over {adaptive_n} evals",
            fixed_p99 / 1e3,
            adaptive_p99 / 1e3,
        );
        // Enough samples for a meaningful p99 on both sides, and at
        // least a 2x improvement (the policy predicts ~8x: waits of
        // ~CONTENDED_CLAIM points instead of ~BATCH_SIZE points).
        if fixed_n >= 50 && adaptive_n >= 50 && adaptive_p99 * 2.0 <= fixed_p99 {
            return;
        }
    }
    panic!("adaptive claims did not improve eval tail latency: {last}");
}

/// The exactly-once criterion over real TCP: four eval clients with
/// disjoint cold point sets race a 300-point cold sweep. Every reply
/// arrives, and afterwards the daemon's counters reconcile exactly —
/// each of the 500 submitted points was claimed and evaluated once
/// (400 distinct misses, 100 second-pass hits, nothing lost and
/// nothing double-evaluated).
#[test]
fn racing_clients_see_every_point_evaluated_exactly_once() {
    let (addr, daemon) = start(ServerConfig {
        threads: 4,
        ..ServerConfig::default()
    });
    let sweep = lenet_grid((2000..2150).collect()); // 300 cold points

    let (sweep_hits, sweep_misses) = std::thread::scope(|scope| {
        let sweeper = scope.spawn(|| {
            let mut client = Client::connect(addr).expect("connect sweeper");
            let (points, hits, misses) = sweep_points(&mut client, &sweep);
            assert_eq!(points, 300);
            assert_eq!(hits + misses, 300, "a sweep point went missing");
            (hits, misses)
        });
        for c in 0..4usize {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect evaler");
                let points: Vec<DesignPoint> = (0..25)
                    .map(|i| DesignPoint {
                        pes: 5000 + c * 100 + i,
                        ..DesignPoint::paper_alexnet()
                    })
                    .collect();
                // Two passes: the first is all cold (disjoint sets, so
                // the miss count is exact, not racy), the second all
                // warm — answered inline from the cache.
                for _ in 0..2 {
                    for point in &points {
                        expect_eval(&mut client, point.clone());
                    }
                }
            });
        }
        sweeper.join().expect("sweeper thread")
    });
    // The sweep's own points are disjoint from every eval set and
    // evaluated exactly once each.
    assert_eq!(sweep_misses, 300);
    assert_eq!(sweep_hits, 0);

    let mut client = Client::connect(addr).expect("connect");
    let snapshot = metrics_snapshot(&mut client);
    // 300 sweep points + 4 clients x 25 cold points, once each.
    assert_eq!(
        snapshot.counter("serve_cache_misses_total", &[]),
        Some(400),
        "a point was lost or evaluated twice"
    );
    // The 100 second-pass evals all hit.
    assert_eq!(snapshot.counter("serve_cache_hits_total", &[]), Some(100));
    // Every *cold* point passed through the engine exactly once; the
    // 100 warm evals were answered inline from the cache and never
    // re-entered the engine.
    assert_eq!(snapshot.counter("sched_points_total", &[]), Some(400));
    // The cache holds each distinct point once.
    assert_eq!(stats(&mut client).cached_points, 400);

    let _ = client.shutdown();
    daemon.join().expect("daemon thread");
}

/// Queries one trace's spans off the daemon.
fn query_trace(client: &mut Client, id: u64) -> Vec<chain_nn_repro::obs::trace::SpanRecord> {
    match client.trace_query(id).expect("trace_query round trip") {
        Response::Trace { spans, .. } => spans,
        other => panic!("expected a trace reply, got {other:?}"),
    }
}

/// The work-assisting criterion: one cold 800-point sweep on a
/// 4-worker daemon produces batch spans — children of the sweep's
/// root span — on at least two distinct workers, and those batches
/// cover every sweep point exactly once. The span ring is
/// process-global and bounded, so retry with fresh cold points and a
/// fresh trace id rather than flaking on eviction.
#[test]
fn batch_spans_show_multiple_workers_assisting_one_sweep_job() {
    let (addr, daemon) = start(ServerConfig {
        threads: 4,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr).expect("connect");

    let mut outcome = None;
    for attempt in 0..5u64 {
        let trace_id = 913_001 + attempt;
        client.set_trace(Some(TraceContext {
            id: trace_id,
            parent: 0,
        }));
        let base = 12_000 + 400 * attempt as usize;
        let (points, _, _) = sweep_points(&mut client, &lenet_grid((base..base + 400).collect()));
        assert_eq!(points, 800);
        let spans = query_trace(&mut client, trace_id);
        let Some(root) = spans.iter().find(|s| s.name == "sweep") else {
            continue; // evicted from the ring; retry
        };
        let batches: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "batch" && s.parent_id == root.span_id)
            .collect();
        let workers: HashSet<u32> = batches.iter().filter_map(|s| s.worker).collect();
        let batch_points: u64 = batches.iter().map(|b| u64::from(b.points)).sum();
        outcome = Some((workers.len(), batch_points));
        if workers.len() >= 2 && batch_points == 800 {
            break;
        }
        outcome = None;
    }
    let (workers, batch_points) =
        outcome.expect("no attempt kept its spans in the ring with two workers assisting");
    assert!(workers >= 2, "only {workers} worker(s) assisted the sweep");
    assert_eq!(batch_points, 800, "claims lost or duplicated points");

    let _ = client.shutdown();
    daemon.join().expect("daemon thread");
}

/// The determinism criterion: the same work yields byte-identical
/// results at 1, 2, 4 and 16 threads for all three engine call sites —
/// the one-shot sweep executor, a served scheduler job under adaptive
/// claims, and a full tuner run (whole-report equality, including its
/// hit/miss tallies). Claims race, results must not.
#[test]
fn sweep_serve_and_tune_results_are_identical_at_1_2_4_and_16_threads() {
    let points = lenet_grid((300..380).collect()).points(); // 160 points
    let reference = {
        let cache = PointCache::new();
        executor::run(&points, 1, &cache).expect("reference sweep")
    };

    for threads in [2usize, 4, 16] {
        let cache = PointCache::new();
        let outcomes = executor::run(&points, threads, &cache).expect("sweep runs");
        assert_eq!(
            outcomes, reference,
            "executor diverged at {threads} threads"
        );
    }

    for workers in [1u32, 2, 4, 16] {
        let cache = Arc::new(PointCache::new());
        let registry = Registry::new();
        let scheduler = Scheduler::with_policy(
            Arc::clone(&cache),
            4,
            ClaimPolicy::Adaptive { max: BATCH_SIZE },
            &registry,
        );
        let outcomes = std::thread::scope(|scope| {
            let scheduler = &scheduler;
            for w in 0..workers {
                scope.spawn(move || scheduler.worker_loop_indexed(w));
            }
            let result = scheduler
                .submit(points.clone())
                .expect("admitted")
                .wait()
                .expect("job completes");
            scheduler.begin_shutdown();
            result.outcomes
        });
        assert_eq!(
            outcomes, reference,
            "scheduler diverged at {workers} workers"
        );
    }

    let request = TuneRequest {
        budget: Budget {
            max_system_mw: Some(500.0),
            ..Budget::default()
        },
        ..TuneRequest::default()
    };
    let reference_report = {
        let cache = PointCache::new();
        tune(&request, &mut CacheEvaluator::new(&cache, 1)).expect("reference tune")
    };
    for threads in [2usize, 4, 16] {
        let cache = PointCache::new();
        let report = tune(&request, &mut CacheEvaluator::new(&cache, threads)).expect("tune runs");
        assert_eq!(
            report, reference_report,
            "tuner diverged at {threads} threads"
        );
    }
}

/// The contention stress criterion: 16 concurrent jobs with
/// one-point claims on 8 workers — the maximally racy configuration,
/// every claim contends for the rotation. Every job's outcomes match
/// a single-threaded reference for its own points, and the engine's
/// progress counters reconcile exactly with `sched_points_total`.
#[test]
fn tiny_claims_under_16_job_contention_reconcile_with_counters() {
    const JOBS: usize = 16;
    const POINTS: usize = 13;
    let cache = Arc::new(PointCache::new());
    let registry = Registry::new();
    let scheduler =
        Scheduler::with_policy(Arc::clone(&cache), JOBS, ClaimPolicy::Fixed(1), &registry);
    let jobs: Vec<Vec<DesignPoint>> = (0..JOBS)
        .map(|j| {
            (0..POINTS)
                .map(|i| DesignPoint {
                    pes: 100 + j * POINTS + i,
                    ..DesignPoint::paper_alexnet()
                })
                .collect()
        })
        .collect();
    let total = (JOBS * POINTS) as u64; // 208

    let results = std::thread::scope(|scope| {
        let scheduler = &scheduler;
        let handles: Vec<_> = jobs
            .iter()
            .map(|points| scheduler.submit(points.clone()).expect("admitted"))
            .collect();
        for w in 0..8u32 {
            scope.spawn(move || scheduler.worker_loop_indexed(w));
        }
        let results: Vec<_> = handles
            .into_iter()
            .map(|h| h.wait().expect("job completes"))
            .collect();
        scheduler.begin_shutdown();
        results
    });

    let mut delivered = 0u64;
    for (j, result) in results.iter().enumerate() {
        // Exactly this job's points, in submission order, with the
        // same outcomes a lone thread computes — nothing lost to a
        // racing claim, nothing claimed twice, nothing cross-wired
        // between jobs.
        let reference = executor::run(&jobs[j], 1, &PointCache::new()).expect("reference");
        assert_eq!(result.outcomes, reference, "job {j} diverged");
        delivered += result.outcomes.len() as u64;
    }
    assert_eq!(delivered, total);
    assert_eq!(scheduler.completed_points(), total);
    assert_eq!(scheduler.queue_depth(), 0);
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("sched_points_total", &[]), Some(total));
    // One-point claims really happened: one batch per point.
    assert_eq!(snapshot.counter("sched_batches_total", &[]), Some(total));
    // All 208 points were distinct and cold: one miss each, ever.
    assert_eq!(cache.stats().misses, total);
}

/// The `stats` depth-semantics regression: `queue_depth` over the wire
/// counts remaining *points*, not whole jobs. A single admitted sweep
/// must report a depth far above 1 while cold, report partial depth as
/// it drains (a nearly-done job must not claim its full backlog), and
/// report zero once idle again.
#[test]
fn stats_queue_depth_counts_remaining_points_not_jobs() {
    let (addr, daemon) = start(ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    });

    let sweep_done = AtomicBool::new(false);
    let (depths, mut prober) = std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut sweeper = Client::connect(addr).expect("connect sweeper");
            // vgg16: slow enough to probe mid-drain even when built
            // with optimizations.
            let grid = SweepSpec {
                pes: (16..=1024).collect(),
                freqs_mhz: vec![350.0, 700.0],
                nets: vec!["vgg16".into()],
                ..SweepSpec::paper_point()
            };
            let (points, _, _) = sweep_points(&mut sweeper, &grid);
            assert_eq!(points, 2018);
            sweep_done.store(true, Ordering::SeqCst);
        });
        let mut prober = Client::connect(addr).expect("connect prober");
        let mut depths = Vec::new();
        while !sweep_done.load(Ordering::SeqCst) {
            depths.push(stats(&mut prober).queue_depth);
            std::thread::sleep(Duration::from_millis(1));
        }
        (depths, prober)
    });

    let peak = depths.iter().copied().max().unwrap_or(0);
    assert!(
        peak > 1,
        "one admitted job reported depth {peak}: still counting jobs, not points"
    );
    assert!(
        depths.iter().any(|&d| d > 0 && d < 1009),
        "depth never fell below half while draining: a nearly-done job \
         reports its full backlog (peak {peak}, {} samples)",
        depths.len()
    );
    // Idle again: no admitted job, no remaining points.
    assert_eq!(stats(&mut prober).queue_depth, 0);

    let _ = prober.shutdown();
    daemon.join().expect("daemon thread");
}
