//! Cross-checks between the simulator's measured access counters and the
//! analytic traffic model's closed forms, plus traffic-conservation
//! invariants.

use chain_nn_repro::core::sim::ChainSim;
use chain_nn_repro::core::{ChainConfig, KernelMapping, LayerShape};
use chain_nn_repro::fixed::Fix16;
use chain_nn_repro::mem::traffic::TrafficModel;
use chain_nn_repro::mem::MemoryConfig;
use chain_nn_repro::nets::ConvLayerSpec;
use chain_nn_repro::tensor::Tensor;

fn simulate(shape: &LayerShape, pes: usize) -> chain_nn_repro::core::sim::RunStats {
    let ifmap = Tensor::<Fix16>::filled([1, shape.c, shape.h, shape.w], Fix16::from_raw(2));
    let weights =
        Tensor::<Fix16>::filled([shape.m, shape.c, shape.kh, shape.kw], Fix16::from_raw(1));
    ChainSim::new(ChainConfig::builder().num_pes(pes).build().expect("cfg"))
        .run_layer(&shape.clone(), &ifmap, &weights)
        .expect("runs")
        .stats
}

/// oMemory: exactly 2 accesses per output per channel pass, in both the
/// simulator and the analytic model.
#[test]
fn omem_accesses_closed_form() {
    for (c, h, m, k, pad, pes) in [
        (2usize, 7usize, 3usize, 3usize, 1usize, 27usize),
        (3, 9, 2, 2, 0, 8),
        (1, 11, 5, 5, 2, 50),
    ] {
        let shape = LayerShape::square(c, h, m, k, 1, pad);
        let stats = simulate(&shape, pes);
        let expect = 2 * (m * shape.out_h() * shape.out_w() * c) as u64;
        assert_eq!(stats.omem_accesses, expect, "{shape}");
    }
}

/// iMemory: the simulator feeds every pattern pixel exactly once —
/// (2K−1)·W per pattern — while the analytic model charges lanes×cycles.
/// The two agree within the per-pattern tail (< 10 %).
#[test]
fn imem_reads_near_lane_bandwidth() {
    let shape = LayerShape::square(2, 13, 4, 3, 1, 1);
    let stats = simulate(&shape, 36);
    let per_pattern_pixels = (2 * 3 - 1) * shape.padded_w();
    let patterns = shape.out_h().div_ceil(3) * shape.c;
    assert_eq!(stats.imem_reads, (per_pattern_pixels * patterns) as u64);
    // The analytic lane-bandwidth charge (2 px/cycle) over-counts the
    // true pixel count by the per-pattern tail: exactly
    // (2K−1)·W / (2·(K·W + K − 1)) ≈ (2K−1)/2K.
    let analytic = 2.0 * stats.stream_cycles as f64;
    let ratio = stats.imem_reads as f64 / analytic;
    let expect = (2 * 3 - 1) as f64 / (2 * 3) as f64;
    assert!(
        (ratio - expect).abs() < 0.05,
        "ratio {ratio} vs expected {expect}"
    );
}

/// kMemory: one latch per active PE per pattern — the architectural
/// source of the paper's 1/KE activity factor.
#[test]
fn kmem_reads_one_latch_per_pattern() {
    let shape = LayerShape::square(3, 9, 4, 3, 1, 0);
    let stats = simulate(&shape, 36);
    let patterns = shape.out_h().div_ceil(3) * shape.c;
    assert_eq!(stats.kmem_reads, (36 * patterns) as u64);
}

/// Ifmap reuse factor: each ifmap pixel is consumed K² times per
/// (m-tile, channel) pass but fetched only ~(2K−1)/K times — the §V.C
/// claim, measured.
#[test]
fn ifmap_reuse_matches_paper_claim() {
    let k = 3usize;
    let shape = LayerShape::square(1, 15, 4, k, 1, 1);
    let stats = simulate(&shape, 4 * k * k);
    let pixels = (shape.padded_h() * shape.padded_w()) as f64;
    let fetch_factor = stats.imem_reads as f64 / pixels;
    let paper_factor = (2 * k - 1) as f64 / k as f64; // 1.67 for K=3
    assert!(
        (fetch_factor - paper_factor).abs() / paper_factor < 0.15,
        "fetch factor {fetch_factor} vs paper {paper_factor}"
    );
    // And each fetched pixel feeds K² MACs on average across the chain.
    let macs_per_fetch = stats.mac_ops as f64 / stats.imem_reads as f64;
    assert!(
        macs_per_fetch > (k * k) as f64 * 0.8,
        "reuse {macs_per_fetch}"
    );
}

/// The analytic model's per-level bytes scale linearly with batch except
/// the weight component.
#[test]
fn analytic_batch_scaling() {
    let model = TrafficModel::new(ChainConfig::paper_576(), MemoryConfig::paper());
    let spec = ConvLayerSpec::named("t", 16, 13, 13, 3, 1, 1, 32, 1).expect("spec");
    let t1 = model.layer_traffic(&spec, 1).expect("maps");
    let t8 = model.layer_traffic(&spec, 8).expect("maps");
    assert_eq!(t8.omem_bytes, 8 * t1.omem_bytes);
    // iMemory bytes come from fractional stream cycles; allow the
    // rounding of 8 summed roundings.
    let diff = (t8.imem_bytes as i64 - 8 * t1.imem_bytes as i64).unsigned_abs();
    assert!(diff <= 8, "imem batch scaling off by {diff} bytes");
    assert_eq!(t8.dram_ifmap_bytes, 8 * t1.dram_ifmap_bytes);
    assert_eq!(t8.dram_weight_bytes, t1.dram_weight_bytes);
}

/// Conservation: every MAC's pixel operand is accounted — fetched from
/// iMemory once and then reused through the chain registers; total MACs
/// equal the layer's arithmetic exactly.
#[test]
fn mac_conservation() {
    let shape = LayerShape::square(2, 8, 3, 3, 1, 1);
    let stats = simulate(&shape, 27);
    let expect_macs = (3 * 8 * 8 * 2 * 9) as u64;
    assert_eq!(stats.mac_ops, expect_macs);
    assert_eq!(stats.valid_outputs * 9, stats.mac_ops);
}

/// Utilization from the simulator approaches Table II's mapping bound as
/// maps grow (warm-up and loads amortize away).
#[test]
fn utilization_approaches_mapping_bound() {
    let k = 3usize;
    let pes = 64; // 7 primitives of 9 -> 63 active, bound 98.4%
    let mapping = KernelMapping::new(pes, k, k).expect("maps");
    let small = simulate(&LayerShape::square(2, 9, 7, k, 1, 1), pes);
    let large = simulate(&LayerShape::square(2, 33, 7, k, 1, 1), pes);
    let u_small = small.utilization(pes);
    let u_large = large.utilization(pes);
    assert!(u_large > u_small, "utilization must improve with map size");
    assert!(u_large < mapping.utilization());
    assert!(
        u_large > 0.62 * mapping.utilization(),
        "large-map utilization {u_large} too far from bound {}",
        mapping.utilization()
    );
}
