//! End-to-end assertions of every reproduced paper artifact, driven
//! through the same runners the `repro_*` binaries use. EXPERIMENTS.md is
//! the prose version of these assertions.

use chain_nn_bench as repro;

/// Table II: all five rows, including the documented K=9 discrepancy.
#[test]
fn table2_reproduced() {
    let s = repro::repro_table2();
    for needle in [
        "3x3               9           64        576     100.0%",
        "5x5              25           23        575      99.8%",
        "7x7              49           11        539      93.6%",
        "9x9              81            7        567      98.4%",
        "11x11           121            4        484      84.0%",
    ] {
        assert!(s.contains(needle), "Table II row missing: {needle}\n{s}");
    }
}

/// Fig. 9: conv1/3/4/5 at the paper's displayed precision; conv2 at our
/// documented 90.4 ms; loads within rounding.
#[test]
fn fig9_reproduced() {
    let s = repro::repro_fig9();
    for needle in ["159.31", "57.20", "42.90", "28.60", "90.4"] {
        assert!(s.contains(needle), "Fig. 9 value missing: {needle}\n{s}");
    }
    // fps summary within the expected window.
    assert!(s.contains("fps"));
}

/// Table IV: oMemory exact on all five layers.
#[test]
fn table4_reproduced() {
    let s = repro::repro_table4();
    for needle in ["13.94", "143.33", "265.81", "199.36", "132.91"] {
        assert!(
            s.contains(needle),
            "Table IV oMemory missing: {needle}\n{s}"
        );
    }
    assert!(s.contains("755.3"));
}

/// Fig. 10: total power within 6 % and the share structure.
#[test]
fn fig10_reproduced() {
    let s = repro::repro_fig10();
    assert!(s.contains("1D chain arch."));
    assert!(s.contains("567.5"));
    assert!(s.contains("GOPS/W"));
    assert!(s.contains("DaDianNao"));
}

/// Table V: three rows and the ≥2.5x ratio claim.
#[test]
fn table5_reproduced() {
    let s = repro::repro_table5();
    assert!(s.contains("DaDianNao"));
    assert!(s.contains("Eyeriss"));
    assert!(s.contains("Chain-NN"));
    assert!(s.contains("806.4"));
    // The paper's claim: "2.5x to 4.1x".
    let ratio_line = s
        .lines()
        .find(|l| l.contains("efficiency ratios"))
        .expect("ratio line present");
    assert!(ratio_line.contains("x vs DaDianNao"));
}

/// Area: the Fig. 8 caption numbers.
#[test]
fn area_reproduced() {
    let s = repro::repro_area();
    assert!(s.contains("6.51"));
    assert!(s.contains("3751") || s.contains("3752"));
    assert!(s.contains("11.02"));
}

/// Fig. 5 ablation: single-channel costs ~K× more cycles and both modes
/// agree functionally (asserted inside the runner).
#[test]
fn fig5_reproduced() {
    let s = repro::repro_fig5();
    // For K=5 the measured ratio must exceed 3x.
    let k5 = s.lines().find(|l| l.starts_with("5 ")).expect("K=5 row");
    let ratio: f64 = k5
        .split_whitespace()
        .nth(3)
        .and_then(|t| t.trim_end_matches('x').parse().ok())
        .expect("ratio parses");
    assert!(ratio > 3.0, "K=5 single/dual ratio {ratio}");
}

/// The whole report builds — the EXPERIMENTS.md source of truth.
#[test]
fn full_report_builds() {
    let s = repro::repro_all();
    assert!(s.len() > 4000, "report suspiciously short");
}
