//! Umbrella crate for the Chain-NN (DATE 2017) reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can write `use chain_nn_repro::core::...`. See the
//! repository `README.md` for the architecture overview, `DESIGN.md` for
//! the system inventory, and `EXPERIMENTS.md` for paper-vs-measured
//! results.
//!
//! # Quickstart
//!
//! ```
//! use chain_nn_repro::core::{ChainConfig, LayerShape};
//!
//! // The paper's 576-PE instance at 700 MHz.
//! let cfg = ChainConfig::paper_576();
//! assert_eq!(cfg.peak_gops(), 806.4);
//!
//! // A 3x3 convolution maps 64 primitives, 576/576 PEs active.
//! let shape = LayerShape::square(3, 8, 16, 3, 1, 1);
//! let m = cfg.map_kernel(shape.kh).unwrap();
//! assert_eq!(m.active_pes(), 576);
//! ```

#![forbid(unsafe_code)]

pub mod runner;

/// Baseline accelerator models (single-channel chain, memory-centric
/// adder tree, 2D spatial array).
pub use chain_nn_baselines as baselines;
/// The 1D chain architecture: PEs, primitives, schedules, simulator and
/// performance model.
pub use chain_nn_core as core;
/// Parallel design-space exploration over the whole model stack.
pub use chain_nn_dse as dse;
/// Technology / power / area models.
pub use chain_nn_energy as energy;
/// Fixed-point arithmetic and quantization.
pub use chain_nn_fixed as fixed;
/// Memory hierarchy and dataflow traffic models.
pub use chain_nn_mem as mem;
/// Network zoo (AlexNet, VGG-16, LeNet, CIFAR-10).
pub use chain_nn_nets as nets;
/// Observability: lock-free counters/gauges/histograms, metric
/// registry, Prometheus-style text rendering.
pub use chain_nn_obs as obs;
/// Explorer serving daemon: shared-cache TCP protocol plus the
/// persistent on-disk DSE cache it serves from.
pub use chain_nn_serve as serve;
/// Tensors and golden-model convolution.
pub use chain_nn_tensor as tensor;
/// Budget-constrained auto-tuner searching the design space instead of
/// sweeping it.
pub use chain_nn_tuner as tuner;
