//! High-level network runner: one call from a [`Network`] to the full
//! paper-style report (performance, traffic, power), plus a functional
//! quantized-inference pipeline and a chain-verification helper.
//!
//! This is the API a downstream user starts from; the `repro_*`
//! binaries and examples are thin layers over the same building blocks.

use chain_nn_core::perf::{CycleModel, LayerPerf, PerfModel};
use chain_nn_core::sim::ChainSim;
use chain_nn_core::{polyphase, ChainConfig, CoreError, LayerShape};
use chain_nn_energy::power::{PowerModel, PowerReport};
use chain_nn_fixed::{OverflowMode, QFormat};
use chain_nn_mem::traffic::{LayerTraffic, TrafficModel};
use chain_nn_mem::MemoryConfig;
use chain_nn_nets::{ConvLayerSpec, Network};
use chain_nn_tensor::conv::conv2d_fix;
use chain_nn_tensor::Tensor;

/// Everything the models can say about one layer.
#[derive(Debug, Clone)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Cycle prediction (paper-calibrated accounting).
    pub perf: LayerPerf,
    /// Strict (simulator-exact) cycle prediction.
    pub strict: LayerPerf,
    /// Per-level traffic for the requested batch.
    pub traffic: LayerTraffic,
}

/// Whole-network report.
#[derive(Debug, Clone)]
pub struct NetworkReport {
    /// Per-layer breakdowns.
    pub layers: Vec<LayerReport>,
    /// Batch size used throughout.
    pub batch: usize,
    /// Frames per second (paper-calibrated model, loads amortized per
    /// batch).
    pub fps: f64,
    /// Average power while running this workload.
    pub power: PowerReport,
}

/// One-stop runner for a chain + memory configuration.
///
/// # Example
///
/// ```
/// use chain_nn_repro::runner::NetworkRunner;
/// use chain_nn_repro::nets::zoo;
///
/// let runner = NetworkRunner::paper();
/// let report = runner.report(&zoo::alexnet(), 4).unwrap();
/// assert_eq!(report.layers.len(), 5);
/// assert!(report.fps > 200.0);
/// ```
#[derive(Debug, Clone)]
pub struct NetworkRunner {
    cfg: ChainConfig,
    mem: MemoryConfig,
}

impl NetworkRunner {
    /// Runner over the paper's 576-PE / 32+25 KB configuration.
    pub fn paper() -> Self {
        NetworkRunner {
            cfg: ChainConfig::paper_576(),
            mem: MemoryConfig::paper(),
        }
    }

    /// Runner over a custom configuration.
    pub fn new(cfg: ChainConfig, mem: MemoryConfig) -> Self {
        NetworkRunner { cfg, mem }
    }

    /// The chain configuration.
    pub fn config(&self) -> &ChainConfig {
        &self.cfg
    }

    /// Full model-level report for `net` at `batch` images.
    ///
    /// # Errors
    ///
    /// Propagates mapping errors (kernel too large for the chain).
    pub fn report(&self, net: &Network, batch: usize) -> Result<NetworkReport, CoreError> {
        let perf_model = PerfModel::new(self.cfg);
        let traffic_model = TrafficModel::new(self.cfg, self.mem);
        let mut layers = Vec::with_capacity(net.layers().len());
        for spec in net.layers() {
            layers.push(LayerReport {
                name: spec.name().to_owned(),
                perf: perf_model.layer(spec, CycleModel::PaperCalibrated)?,
                strict: perf_model.layer(spec, CycleModel::Strict)?,
                traffic: traffic_model.layer_traffic(spec, batch)?,
            });
        }
        let fps = perf_model
            .network(net, batch, CycleModel::PaperCalibrated)?
            .fps;
        let power = PowerModel::new(self.cfg, self.mem).network_power(net, batch)?;
        Ok(NetworkReport {
            layers,
            batch,
            fps,
            power,
        })
    }

    /// Functional quantized inference: runs every conv layer of `net` on
    /// `input` with the given weights source, applying `between` after
    /// each layer (ReLU, pooling, …) to produce the next layer's input.
    ///
    /// The arithmetic is the golden fixed-point model — bit-exact with
    /// the chain simulator (see `tests/chain_vs_reference.rs`) but fast
    /// enough for full networks.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DataMismatch`] if an activation tensor does
    /// not match the next layer's expected input shape.
    pub fn run_functional(
        &self,
        net: &Network,
        input: &Tensor<f32>,
        mut weights_for: impl FnMut(&ConvLayerSpec) -> Tensor<f32>,
        act_fmt: QFormat,
        w_fmt: QFormat,
        mut between: impl FnMut(usize, Tensor<f32>) -> Tensor<f32>,
    ) -> Result<Tensor<f32>, CoreError> {
        let mut act = input.clone();
        let scale = 2f32.powi(-((act_fmt.frac_bits() + w_fmt.frac_bits()) as i32));
        for (i, spec) in net.layers().iter().enumerate() {
            let dims = act.shape().dims();
            if dims[1] != spec.c() || dims[2] != spec.h() || dims[3] != spec.w() {
                return Err(CoreError::DataMismatch(format!(
                    "layer {} expects {}x{}x{}, got {}x{}x{}",
                    spec.name(),
                    spec.c(),
                    spec.h(),
                    spec.w(),
                    dims[1],
                    dims[2],
                    dims[3]
                )));
            }
            let w = weights_for(spec);
            let qa = act.map(|x| act_fmt.quantize(x));
            let qw = w.map(|x| w_fmt.quantize(x));
            let raw = conv2d_fix(&qa, &qw, spec.geometry(), OverflowMode::Wrapping)
                .map_err(|e| CoreError::DataMismatch(e.to_string()))?;
            act = between(i, raw.map(|v| v as f32 * scale));
        }
        Ok(act)
    }

    /// Verifies one layer group on the cycle-accurate simulator against
    /// the golden model (strided layers go through polyphase) and
    /// returns the measured cycles. Intended for downscaled shapes —
    /// cycle simulation of full ImageNet layers is minutes, not
    /// milliseconds.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors; panics never — a mismatch is
    /// reported as `Err(CoreError::DataMismatch)`.
    pub fn verify_on_chain(
        &self,
        shape: &LayerShape,
        ifmap: &Tensor<chain_nn_fixed::Fix16>,
        weights: &Tensor<chain_nn_fixed::Fix16>,
    ) -> Result<u64, CoreError> {
        let sim = ChainSim::new(self.cfg);
        let (ofmaps, cycles) = if shape.stride == 1 {
            let r = sim.run_layer(shape, ifmap, weights)?;
            (r.ofmaps, r.stats.total_cycles())
        } else {
            let r = polyphase::run(&sim, shape, ifmap, weights)?;
            let c = r.stats.stream_cycles + r.stats.drain_cycles + r.stats.load_cycles;
            (r.ofmaps, c)
        };
        let golden = conv2d_fix(
            ifmap,
            weights,
            chain_nn_tensor::conv::ConvGeometry::rect(shape.kh, shape.kw, shape.stride, shape.pad)
                .map_err(|e| CoreError::Shape(e.to_string()))?,
            OverflowMode::Wrapping,
        )
        .map_err(|e| CoreError::DataMismatch(e.to_string()))?;
        if ofmaps != golden {
            return Err(CoreError::DataMismatch(
                "chain output differs from golden model".into(),
            ));
        }
        Ok(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_nn_fixed::Fix16;
    use chain_nn_nets::synth::SynthSource;
    use chain_nn_nets::zoo;
    use chain_nn_tensor::ops;

    #[test]
    fn report_covers_every_layer() {
        let r = NetworkRunner::paper()
            .report(&zoo::alexnet(), 4)
            .expect("maps");
        assert_eq!(r.layers.len(), 5);
        for l in &r.layers {
            assert!(l.perf.stream_cycles > 0.0, "{}", l.name);
            assert!(l.strict.compute_cycles() > 0.0);
            assert!(l.traffic.omem_bytes > 0);
        }
        assert!(r.power.breakdown.total_mw() > 100.0);
    }

    #[test]
    fn functional_pipeline_chains_lenet() {
        let net = zoo::lenet();
        let mut src = SynthSource::new(5);
        let input = src.activations(&net.layers()[0], 1, 1.0);
        let mut wsrc = SynthSource::new(6);
        let fmt = QFormat::new(12).expect("fmt");
        let out = NetworkRunner::paper()
            .run_functional(
                &net,
                &input,
                |spec| wsrc.weights(spec),
                fmt,
                fmt,
                |i, t| {
                    let t = ops::relu(&t);
                    // LeNet pools 2x2/2 after conv1 and conv2.
                    if i < 2 {
                        ops::max_pool(&t, 2, 2)
                    } else {
                        t
                    }
                },
            )
            .expect("pipeline runs");
        assert_eq!(out.shape().dims(), [1, 120, 1, 1]);
    }

    #[test]
    fn functional_pipeline_rejects_shape_breaks() {
        let net = zoo::lenet();
        let mut src = SynthSource::new(5);
        let input = src.activations(&net.layers()[0], 1, 1.0);
        let mut wsrc = SynthSource::new(6);
        let fmt = QFormat::new(12).expect("fmt");
        // No pooling -> conv2's expected 14x14 input never appears.
        let err = NetworkRunner::paper()
            .run_functional(&net, &input, |s| wsrc.weights(s), fmt, fmt, |_, t| t)
            .expect_err("shape break detected");
        assert!(matches!(err, CoreError::DataMismatch(_)));
    }

    #[test]
    fn verify_on_chain_stride1_and_strided() {
        let runner = NetworkRunner::new(
            ChainConfig::builder().num_pes(36).build().expect("cfg"),
            MemoryConfig::paper(),
        );
        let s1 = LayerShape::square(2, 7, 3, 3, 1, 1);
        let ifmap = Tensor::filled([1, 2, 7, 7], Fix16::from_raw(2));
        let w = Tensor::filled([3, 2, 3, 3], Fix16::from_raw(1));
        assert!(runner.verify_on_chain(&s1, &ifmap, &w).expect("verifies") > 0);

        let s2 = LayerShape::square(1, 9, 2, 3, 2, 0);
        let ifmap = Tensor::filled([1, 1, 9, 9], Fix16::from_raw(3));
        let w = Tensor::filled([2, 1, 3, 3], Fix16::from_raw(2));
        assert!(runner.verify_on_chain(&s2, &ifmap, &w).expect("verifies") > 0);
    }
}
