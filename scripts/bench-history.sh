#!/usr/bin/env bash
# Runs the bench-history suite: appends machine-readable measurements
# to BENCH_dse.json / BENCH_serve.json at the repo root and gates them
# against the checked-in baselines in crates/bench/baselines/.
# Exits nonzero when the regression gate trips.
#
#   scripts/bench-history.sh                  # default tolerance (3.0)
#   CHAIN_NN_BENCH_TOLERANCE=0.5 scripts/bench-history.sh
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo bench -p chain-nn-bench --bench bench_history "$@"
