#!/usr/bin/env bash
# Checks that every relative markdown link in the user-facing docs
# resolves to a file or directory in the repository, so the guides
# cannot rot silently as files move. External (http/https/mailto)
# links and pure #anchors are skipped. Run from the repository root.
set -euo pipefail

fail=0
for f in README.md DESIGN.md EXPERIMENTS.md ROADMAP.md PAPER.md docs/*.md; do
  [ -f "$f" ] || continue
  dir=$(dirname "$f")
  # Extract the (target) of every [text](target) link.
  while IFS= read -r target; do
    target=${target%%#*}            # drop the anchor part
    [ -z "$target" ] && continue    # pure #anchor
    case "$target" in
      http://* | https://* | mailto:*) continue ;;
    esac
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "broken link in $f: $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//' || true)
done

if [ "$fail" -eq 0 ]; then
  echo "all markdown links resolve"
fi
exit "$fail"
