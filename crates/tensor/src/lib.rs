//! NCHW tensors and golden-model CNN operators.
//!
//! This crate is the reproduction's stand-in for the MatConvNet reference
//! the paper checks its hardware against (§V.A): a minimal, obviously
//! correct implementation of the operators Chain-NN accelerates. The
//! cycle-accurate chain simulator's outputs are compared against
//! [`conv::conv2d_fix`] "on-the-fly", exactly as the paper compares
//! ModelSim output against its float-to-fix simulator.
//!
//! * [`Tensor`] — a dense row-major N×C×H×W tensor.
//! * [`conv`] — reference 2D convolution (float and bit-exact fixed-point),
//!   with stride, padding and grouped convolution.
//! * [`ops`] — ReLU, max/average pooling, local response normalization.
//!
//! # Example
//!
//! ```
//! use chain_nn_tensor::{Tensor, conv::{conv2d_f32, ConvGeometry}};
//!
//! let input = Tensor::<f32>::filled([1, 1, 4, 4], 1.0);
//! let kernel = Tensor::<f32>::filled([1, 1, 3, 3], 1.0);
//! let geom = ConvGeometry::new(3, 1, 0).unwrap();
//! let out = conv2d_f32(&input, &kernel, None, geom).unwrap();
//! assert_eq!(out.shape().dims(), [1, 1, 2, 2]);
//! assert_eq!(out.as_slice(), &[9.0; 4]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conv;
pub mod im2col;
pub mod ops;

mod shape;
mod tensor;

pub use shape::{Shape4, ShapeError};
pub use tensor::Tensor;
