//! Reference (golden-model) 2D convolution.
//!
//! Implements Equation (1) of the paper directly:
//!
//! ```text
//! ofmaps[n][m][x][y] = bias[m]
//!   + Σ_c Σ_i Σ_j ifmaps[n][c][x·s+i−p][y·s+j−p] · kernel[m][c][i][j]
//! ```
//!
//! Two variants are provided: [`conv2d_f32`] (float reference) and
//! [`conv2d_fix`] (bit-exact fixed point, matching the chain's 16-bit
//! multipliers and 32-bit psum adders). Grouped convolution — needed for
//! AlexNet layers 2/4/5 — is inferred from the channel counts.

use std::error::Error;
use std::fmt;

use chain_nn_fixed::{Acc32, Fix16, OverflowMode};

use crate::Tensor;

/// Geometry of a convolution: kernel size, stride and zero padding.
///
/// Kernels may be rectangular (`kh != kw`) to support the polyphase
/// stride decomposition; the paper's own layers are square.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    /// Kernel height (rows).
    pub kh: usize,
    /// Kernel width (columns).
    pub kw: usize,
    /// Stride (same in both dimensions, as in all the paper's networks).
    pub stride: usize,
    /// Zero padding applied symmetrically on all four sides.
    pub pad: usize,
}

impl ConvGeometry {
    /// Square-kernel geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConvError::BadGeometry`] if `k == 0` or `stride == 0`.
    pub fn new(k: usize, stride: usize, pad: usize) -> Result<Self, ConvError> {
        Self::rect(k, k, stride, pad)
    }

    /// Rectangular-kernel geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConvError::BadGeometry`] if any of `kh`, `kw`, `stride`
    /// is zero.
    pub fn rect(kh: usize, kw: usize, stride: usize, pad: usize) -> Result<Self, ConvError> {
        if kh == 0 || kw == 0 || stride == 0 {
            return Err(ConvError::BadGeometry { kh, kw, stride });
        }
        Ok(ConvGeometry {
            kh,
            kw,
            stride,
            pad,
        })
    }

    /// Output extent for an input extent `in_dim` under kernel extent `k`:
    /// `⌊(in + 2·pad − k)/stride⌋ + 1`, or `None` if the kernel does not
    /// fit.
    pub fn out_dim(&self, in_dim: usize, k: usize) -> Option<usize> {
        let padded = in_dim + 2 * self.pad;
        if k > padded {
            return None;
        }
        Some((padded - k) / self.stride + 1)
    }

    /// Output height for input height `h`.
    pub fn out_h(&self, h: usize) -> Option<usize> {
        self.out_dim(h, self.kh)
    }

    /// Output width for input width `w`.
    pub fn out_w(&self, w: usize) -> Option<usize> {
        self.out_dim(w, self.kw)
    }
}

/// Errors from the reference convolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvError {
    /// Zero kernel extent or stride.
    BadGeometry {
        /// Kernel height supplied.
        kh: usize,
        /// Kernel width supplied.
        kw: usize,
        /// Stride supplied.
        stride: usize,
    },
    /// Weight tensor H×W does not match the geometry's kernel extents.
    KernelShape {
        /// Expected (kh, kw).
        expected: (usize, usize),
        /// Weight tensor (h, w).
        got: (usize, usize),
    },
    /// Input channels are not divisible by weight channels (invalid
    /// grouping).
    ChannelGrouping {
        /// Input channel count C.
        input_c: usize,
        /// Weight per-group channel count.
        weight_c: usize,
        /// Output channel count M.
        output_m: usize,
    },
    /// Kernel larger than the padded input.
    KernelTooLarge {
        /// Padded input (h, w).
        padded: (usize, usize),
        /// Kernel (kh, kw).
        kernel: (usize, usize),
    },
    /// Bias length differs from output channel count.
    BiasLength {
        /// Output channels M.
        expected: usize,
        /// Bias entries supplied.
        got: usize,
    },
}

impl fmt::Display for ConvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvError::BadGeometry { kh, kw, stride } => {
                write!(f, "invalid geometry kh={kh} kw={kw} stride={stride}")
            }
            ConvError::KernelShape { expected, got } => write!(
                f,
                "weight tensor is {}x{} but geometry says {}x{}",
                got.0, got.1, expected.0, expected.1
            ),
            ConvError::ChannelGrouping {
                input_c,
                weight_c,
                output_m,
            } => write!(
                f,
                "cannot group {input_c} input channels into weights of {weight_c} channels \
                 and {output_m} output maps"
            ),
            ConvError::KernelTooLarge { padded, kernel } => write!(
                f,
                "kernel {}x{} exceeds padded input {}x{}",
                kernel.0, kernel.1, padded.0, padded.1
            ),
            ConvError::BiasLength { expected, got } => {
                write!(f, "bias has {got} entries, expected {expected}")
            }
        }
    }
}

impl Error for ConvError {}

/// Shared validation; returns `(groups, out_h, out_w)`.
fn validate<T: Copy, U: Copy>(
    input: &Tensor<T>,
    weights: &Tensor<U>,
    geom: ConvGeometry,
) -> Result<(usize, usize, usize), ConvError> {
    let wdims = weights.shape().dims();
    if (wdims[2], wdims[3]) != (geom.kh, geom.kw) {
        return Err(ConvError::KernelShape {
            expected: (geom.kh, geom.kw),
            got: (wdims[2], wdims[3]),
        });
    }
    let c_in = input.shape().c();
    let c_g = wdims[1];
    let m = wdims[0];
    if !c_in.is_multiple_of(c_g) {
        return Err(ConvError::ChannelGrouping {
            input_c: c_in,
            weight_c: c_g,
            output_m: m,
        });
    }
    let groups = c_in / c_g;
    if !m.is_multiple_of(groups) {
        return Err(ConvError::ChannelGrouping {
            input_c: c_in,
            weight_c: c_g,
            output_m: m,
        });
    }
    let (h, w) = (input.shape().h(), input.shape().w());
    match (geom.out_h(h), geom.out_w(w)) {
        (Some(oh), Some(ow)) => Ok((groups, oh, ow)),
        _ => Err(ConvError::KernelTooLarge {
            padded: (h + 2 * geom.pad, w + 2 * geom.pad),
            kernel: (geom.kh, geom.kw),
        }),
    }
}

/// Float reference convolution.
///
/// `input` is N×C×H×W; `weights` is M×(C/G)×KH×KW where the group count G
/// is inferred as `C / weights.c()`; `bias`, when given, must have M
/// entries.
///
/// # Errors
///
/// Returns a [`ConvError`] describing any shape inconsistency.
pub fn conv2d_f32(
    input: &Tensor<f32>,
    weights: &Tensor<f32>,
    bias: Option<&[f32]>,
    geom: ConvGeometry,
) -> Result<Tensor<f32>, ConvError> {
    let (groups, oh, ow) = validate(input, weights, geom)?;
    let m = weights.shape().n();
    if let Some(b) = bias {
        if b.len() != m {
            return Err(ConvError::BiasLength {
                expected: m,
                got: b.len(),
            });
        }
    }
    let n = input.shape().n();
    let c_g = weights.shape().c();
    let m_g = m / groups;
    let mut out = Tensor::<f32>::zeros([n, m, oh, ow]);
    for ni in 0..n {
        for mi in 0..m {
            let g = mi / m_g;
            let b = bias.map_or(0.0, |b| b[mi]);
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc = f64::from(b);
                    for cg in 0..c_g {
                        let ci = g * c_g + cg;
                        for i in 0..geom.kh {
                            for j in 0..geom.kw {
                                let ih = (y * geom.stride + i) as isize - geom.pad as isize;
                                let iw = (x * geom.stride + j) as isize - geom.pad as isize;
                                let px = input.get_padded(ni, ci, ih, iw, 0.0);
                                acc += f64::from(px) * f64::from(weights.get(mi, cg, i, j));
                            }
                        }
                    }
                    out.set(ni, mi, y, x, acc as f32);
                }
            }
        }
    }
    Ok(out)
}

/// Bit-exact fixed-point convolution — the golden model the chain
/// simulator is checked against.
///
/// Multiplication is 16×16→32 and accumulation follows `mode`, matching
/// the PE datapath. The result tensor carries raw 32-bit accumulators; use
/// [`Acc32::narrow`](chain_nn_fixed::Acc32::narrow) to write back 16-bit
/// ofmaps.
///
/// # Errors
///
/// Returns a [`ConvError`] describing any shape inconsistency.
pub fn conv2d_fix(
    input: &Tensor<Fix16>,
    weights: &Tensor<Fix16>,
    geom: ConvGeometry,
    mode: OverflowMode,
) -> Result<Tensor<i32>, ConvError> {
    let (groups, oh, ow) = validate(input, weights, geom)?;
    let m = weights.shape().n();
    let n = input.shape().n();
    let c_g = weights.shape().c();
    let m_g = m / groups;
    let mut out = Tensor::<i32>::zeros([n, m, oh, ow]);
    for ni in 0..n {
        for mi in 0..m {
            let g = mi / m_g;
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc = Acc32::ZERO;
                    for cg in 0..c_g {
                        let ci = g * c_g + cg;
                        for i in 0..geom.kh {
                            for j in 0..geom.kw {
                                let ih = (y * geom.stride + i) as isize - geom.pad as isize;
                                let iw = (x * geom.stride + j) as isize - geom.pad as isize;
                                let px = input.get_padded(ni, ci, ih, iw, Fix16::ZERO);
                                acc = acc.mac_with(px, weights.get(mi, cg, i, j), mode);
                            }
                        }
                    }
                    out.set(ni, mi, y, x, acc.raw());
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor(dims: [usize; 4]) -> Tensor<f32> {
        let vol: usize = dims.iter().product();
        Tensor::from_vec(dims, (0..vol).map(|i| i as f32).collect()).unwrap()
    }

    #[test]
    fn out_dims() {
        // AlexNet conv1: 227, K=11, s=4, p=0 -> 55
        let g = ConvGeometry::new(11, 4, 0).unwrap();
        assert_eq!(g.out_h(227), Some(55));
        // conv2: 27, K=5, s=1, p=2 -> 27
        let g = ConvGeometry::new(5, 1, 2).unwrap();
        assert_eq!(g.out_h(27), Some(27));
        // kernel too large
        let g = ConvGeometry::new(7, 1, 0).unwrap();
        assert_eq!(g.out_h(5), None);
    }

    #[test]
    fn identity_kernel_passes_through() {
        // A delta kernel (1 at centre) with pad=1 reproduces the input.
        let input = seq_tensor([1, 1, 4, 4]);
        let mut k = Tensor::<f32>::zeros([1, 1, 3, 3]);
        k.set(0, 0, 1, 1, 1.0);
        let geom = ConvGeometry::new(3, 1, 1).unwrap();
        let out = conv2d_f32(&input, &k, None, geom).unwrap();
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn box_kernel_counts_neighbours() {
        let input = Tensor::<f32>::filled([1, 1, 3, 3], 1.0);
        let k = Tensor::<f32>::filled([1, 1, 3, 3], 1.0);
        let geom = ConvGeometry::new(3, 1, 1).unwrap();
        let out = conv2d_f32(&input, &k, None, geom).unwrap();
        // Centre sees 9 ones, corners see 4, edges see 6.
        assert_eq!(out.get(0, 0, 1, 1), 9.0);
        assert_eq!(out.get(0, 0, 0, 0), 4.0);
        assert_eq!(out.get(0, 0, 0, 1), 6.0);
    }

    #[test]
    fn stride_subsamples() {
        let input = seq_tensor([1, 1, 5, 5]);
        let k = Tensor::<f32>::filled([1, 1, 1, 1], 1.0);
        let geom = ConvGeometry::new(1, 2, 0).unwrap();
        let out = conv2d_f32(&input, &k, None, geom).unwrap();
        assert_eq!(out.shape().dims(), [1, 1, 3, 3]);
        assert_eq!(out.get(0, 0, 1, 1), input.get(0, 0, 2, 2));
    }

    #[test]
    fn bias_offsets_every_output() {
        let input = Tensor::<f32>::filled([1, 1, 2, 2], 0.0);
        let k = Tensor::<f32>::filled([2, 1, 1, 1], 1.0);
        let geom = ConvGeometry::new(1, 1, 0).unwrap();
        let out = conv2d_f32(&input, &k, Some(&[1.5, -2.5]), geom).unwrap();
        assert_eq!(out.get(0, 0, 0, 0), 1.5);
        assert_eq!(out.get(0, 1, 1, 1), -2.5);
    }

    #[test]
    fn grouped_conv_isolates_groups() {
        // 2 input channels, 2 groups: each output channel sees only its
        // own input channel.
        let mut input = Tensor::<f32>::zeros([1, 2, 1, 1]);
        input.set(0, 0, 0, 0, 3.0);
        input.set(0, 1, 0, 0, 5.0);
        let k = Tensor::<f32>::filled([2, 1, 1, 1], 1.0);
        let geom = ConvGeometry::new(1, 1, 0).unwrap();
        let out = conv2d_f32(&input, &k, None, geom).unwrap();
        assert_eq!(out.get(0, 0, 0, 0), 3.0);
        assert_eq!(out.get(0, 1, 0, 0), 5.0);
    }

    #[test]
    fn rejects_bad_shapes() {
        let input = Tensor::<f32>::zeros([1, 3, 4, 4]);
        let k = Tensor::<f32>::zeros([2, 2, 3, 3]); // 3 % 2 != 0
        let geom = ConvGeometry::new(3, 1, 0).unwrap();
        assert!(matches!(
            conv2d_f32(&input, &k, None, geom),
            Err(ConvError::ChannelGrouping { .. })
        ));

        let k = Tensor::<f32>::zeros([2, 3, 5, 5]); // geometry says 3x3
        assert!(matches!(
            conv2d_f32(&input, &k, None, geom),
            Err(ConvError::KernelShape { .. })
        ));

        let k = Tensor::<f32>::zeros([2, 3, 3, 3]);
        assert!(matches!(
            conv2d_f32(&input, &k, Some(&[0.0]), geom),
            Err(ConvError::BiasLength { .. })
        ));
    }

    #[test]
    fn fixed_matches_float_for_small_integers() {
        use chain_nn_fixed::QFormat;
        // Integer-valued data in a Q12.3-ish format is exact, so float and
        // fixed must agree bit for bit after scaling.
        let fmt = QFormat::new(3).unwrap();
        let vals: Vec<f32> = (0..16).map(|i| (i as f32) - 8.0).collect();
        let input = Tensor::from_vec([1, 1, 4, 4], vals.clone()).unwrap();
        let fxi = input.map(|x| fmt.quantize(x));
        let w: Vec<f32> = (0..9).map(|i| ((i % 3) as f32) - 1.0).collect();
        let weights = Tensor::from_vec([1, 1, 3, 3], w).unwrap();
        let fxw = weights.map(|x| fmt.quantize(x));
        let geom = ConvGeometry::new(3, 1, 1).unwrap();
        let fref = conv2d_f32(&input, &weights, None, geom).unwrap();
        let fixed = conv2d_fix(&fxi, &fxw, geom, OverflowMode::Wrapping).unwrap();
        for ((.., a), (.., b)) in fref.iter_indexed().zip(fixed.iter_indexed()) {
            let scaled = b as f32 * 2f32.powi(-6); // 2·3 fractional bits
            assert_eq!(a, scaled);
        }
    }

    #[test]
    fn rect_kernel() {
        let input = Tensor::<f32>::filled([1, 1, 4, 6], 1.0);
        let k = Tensor::<f32>::filled([1, 1, 2, 3], 1.0);
        let geom = ConvGeometry::rect(2, 3, 1, 0).unwrap();
        let out = conv2d_f32(&input, &k, None, geom).unwrap();
        assert_eq!(out.shape().dims(), [1, 1, 3, 4]);
        assert_eq!(out.get(0, 0, 0, 0), 6.0);
    }
}
