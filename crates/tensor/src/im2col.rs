//! im2col + GEMM convolution: an independent second reference.
//!
//! The chain simulator is verified against [`crate::conv::conv2d_fix`]
//! (direct nested loops); this module computes the same convolution by a
//! structurally different route — unrolling windows into a matrix and
//! multiplying — so the two references cross-validate each other. A bug
//! would have to be replicated in two disjoint index derivations *and*
//! the simulator to go unnoticed.

use chain_nn_fixed::{Acc32, Fix16, OverflowMode};

use crate::conv::{ConvError, ConvGeometry};
use crate::Tensor;

/// Unrolls the convolution windows of one image (batch index `n`) into
/// a `(C·KH·KW) × (OH·OW)` matrix in row-major order: row `r` holds the
/// pixel at kernel offset `(c, i, j) = unflatten(r)` for every output
/// position.
pub fn im2col(
    input: &Tensor<Fix16>,
    n: usize,
    geom: ConvGeometry,
) -> Result<Vec<Vec<Fix16>>, ConvError> {
    let [_, c, h, w] = input.shape().dims();
    let (oh, ow) = match (geom.out_h(h), geom.out_w(w)) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(ConvError::KernelTooLarge {
                padded: (h + 2 * geom.pad, w + 2 * geom.pad),
                kernel: (geom.kh, geom.kw),
            })
        }
    };
    let mut rows = Vec::with_capacity(c * geom.kh * geom.kw);
    for ci in 0..c {
        for i in 0..geom.kh {
            for j in 0..geom.kw {
                let mut row = Vec::with_capacity(oh * ow);
                for y in 0..oh {
                    for x in 0..ow {
                        let ih = (y * geom.stride + i) as isize - geom.pad as isize;
                        let iw = (x * geom.stride + j) as isize - geom.pad as isize;
                        row.push(input.get_padded(n, ci, ih, iw, Fix16::ZERO));
                    }
                }
                rows.push(row);
            }
        }
    }
    Ok(rows)
}

/// Convolution via im2col + fixed-point GEMM. Grouped convolution is
/// inferred exactly like [`crate::conv::conv2d_fix`]; accumulation follows
/// `mode`.
///
/// # Errors
///
/// Returns the same [`ConvError`]s as the direct reference.
pub fn conv2d_im2col(
    input: &Tensor<Fix16>,
    weights: &Tensor<Fix16>,
    geom: ConvGeometry,
    mode: OverflowMode,
) -> Result<Tensor<i32>, ConvError> {
    let [n, c_in, h, w] = input.shape().dims();
    let [m, c_g, wk_h, wk_w] = weights.shape().dims();
    if (wk_h, wk_w) != (geom.kh, geom.kw) {
        return Err(ConvError::KernelShape {
            expected: (geom.kh, geom.kw),
            got: (wk_h, wk_w),
        });
    }
    if c_g == 0 || c_in % c_g != 0 || m % (c_in / c_g) != 0 {
        return Err(ConvError::ChannelGrouping {
            input_c: c_in,
            weight_c: c_g,
            output_m: m,
        });
    }
    let groups = c_in / c_g;
    let m_g = m / groups;
    let (oh, ow) = match (geom.out_h(h), geom.out_w(w)) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(ConvError::KernelTooLarge {
                padded: (h + 2 * geom.pad, w + 2 * geom.pad),
                kernel: (geom.kh, geom.kw),
            })
        }
    };

    let mut out = Tensor::<i32>::zeros([n, m, oh, ow]);
    let taps_per_group = c_g * geom.kh * geom.kw;
    for ni in 0..n {
        let cols = im2col(input, ni, geom)?;
        for mi in 0..m {
            let g = mi / m_g;
            // The group's rows of the im2col matrix.
            let row_base = g * taps_per_group;
            for (pos, _) in cols[0].iter().enumerate() {
                let mut acc = Acc32::ZERO;
                for t in 0..taps_per_group {
                    let wv = weights.get(
                        mi,
                        t / (geom.kh * geom.kw),
                        (t / geom.kw) % geom.kh,
                        t % geom.kw,
                    );
                    acc = acc.mac_with(cols[row_base + t][pos], wv, mode);
                }
                out.set(ni, mi, pos / ow, pos % ow, acc.raw());
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv2d_fix;

    fn tensor_from(dims: [usize; 4], f: impl Fn(usize) -> i16) -> Tensor<Fix16> {
        let vol: usize = dims.iter().product();
        Tensor::from_vec(dims, (0..vol).map(|i| Fix16::from_raw(f(i))).collect()).unwrap()
    }

    #[test]
    fn im2col_matrix_shape_and_content() {
        let input = tensor_from([1, 2, 4, 4], |i| i as i16);
        let geom = ConvGeometry::new(3, 1, 0).unwrap();
        let mat = im2col(&input, 0, geom).unwrap();
        assert_eq!(mat.len(), 2 * 9);
        assert_eq!(mat[0].len(), 4);
        // Row 0 = tap (c=0,i=0,j=0): pixels (0,0),(0,1),(1,0),(1,1).
        assert_eq!(
            mat[0].iter().map(|x| x.raw()).collect::<Vec<_>>(),
            vec![0, 1, 4, 5]
        );
        // Last row = tap (c=1,i=2,j=2): pixels (2,2)...(3,3) of channel 1.
        assert_eq!(
            mat[17].iter().map(|x| x.raw()).collect::<Vec<_>>(),
            vec![26, 27, 30, 31]
        );
    }

    #[test]
    fn cross_validates_direct_reference() {
        for (c, h, m, k, s, p, groups) in [
            (2usize, 6usize, 3usize, 3usize, 1usize, 0usize, 1usize),
            (2, 7, 4, 3, 1, 1, 1),
            (4, 8, 6, 3, 2, 1, 2),
            (3, 9, 2, 2, 3, 0, 1),
            (6, 5, 6, 1, 1, 0, 3),
        ] {
            let input = tensor_from([2, c, h, h], |i| ((i * 7) % 31) as i16 - 15);
            let weights = tensor_from([m, c / groups, k, k], |i| ((i * 5) % 17) as i16 - 8);
            let geom = ConvGeometry::new(k, s, p).unwrap();
            let direct = conv2d_fix(&input, &weights, geom, OverflowMode::Wrapping).unwrap();
            let gemm = conv2d_im2col(&input, &weights, geom, OverflowMode::Wrapping).unwrap();
            assert_eq!(
                direct, gemm,
                "c={c} h={h} m={m} k={k} s={s} p={p} g={groups}"
            );
        }
    }

    #[test]
    fn saturating_mode_cross_validates_too() {
        let input = tensor_from([1, 1, 4, 4], |_| i16::MAX);
        let weights = tensor_from([1, 1, 3, 3], |_| i16::MAX);
        let geom = ConvGeometry::new(3, 1, 0).unwrap();
        let a = conv2d_fix(&input, &weights, geom, OverflowMode::Saturating).unwrap();
        let b = conv2d_im2col(&input, &weights, geom, OverflowMode::Saturating).unwrap();
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&v| v == i32::MAX));
    }

    #[test]
    fn error_parity_with_direct() {
        let input = tensor_from([1, 3, 4, 4], |_| 0);
        let bad_w = tensor_from([2, 2, 3, 3], |_| 0);
        let geom = ConvGeometry::new(3, 1, 0).unwrap();
        assert!(matches!(
            conv2d_im2col(&input, &bad_w, geom, OverflowMode::Wrapping),
            Err(ConvError::ChannelGrouping { .. })
        ));
        let w = tensor_from([1, 3, 3, 3], |_| 0);
        let tiny = tensor_from([1, 3, 2, 2], |_| 0);
        assert!(matches!(
            conv2d_im2col(&tiny, &w, geom, OverflowMode::Wrapping),
            Err(ConvError::KernelTooLarge { .. })
        ));
    }
}
