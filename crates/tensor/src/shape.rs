//! Four-dimensional tensor shapes.

use std::error::Error;
use std::fmt;

/// Error produced by shape construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// A dimension was zero.
    ZeroDim {
        /// Which axis (0 = N, 1 = C, 2 = H, 3 = W).
        axis: usize,
    },
    /// The total element count overflows `usize`.
    Overflow,
    /// A data buffer length does not match the shape volume.
    LengthMismatch {
        /// Elements implied by the shape.
        expected: usize,
        /// Elements actually supplied.
        got: usize,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::ZeroDim { axis } => {
                let name = ["N", "C", "H", "W"][*axis];
                write!(f, "dimension {name} must be non-zero")
            }
            ShapeError::Overflow => write!(f, "shape volume overflows usize"),
            ShapeError::LengthMismatch { expected, got } => {
                write!(f, "buffer holds {got} elements but shape needs {expected}")
            }
        }
    }
}

impl Error for ShapeError {}

/// The shape of a dense N×C×H×W tensor (batch, channels, height, width).
///
/// # Example
///
/// ```
/// use chain_nn_tensor::Shape4;
/// let s = Shape4::new([2, 3, 5, 7]).unwrap();
/// assert_eq!(s.volume(), 210);
/// assert_eq!(s.index(1, 2, 4, 6), 209);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape4 {
    dims: [usize; 4],
}

impl Shape4 {
    /// Builds a shape from `[n, c, h, w]`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::ZeroDim`] for any zero dimension and
    /// [`ShapeError::Overflow`] if `n·c·h·w` does not fit in `usize`.
    pub fn new(dims: [usize; 4]) -> Result<Self, ShapeError> {
        if let Some(axis) = dims.iter().position(|&d| d == 0) {
            return Err(ShapeError::ZeroDim { axis });
        }
        dims.iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or(ShapeError::Overflow)?;
        Ok(Shape4 { dims })
    }

    /// The dimensions as `[n, c, h, w]`.
    pub fn dims(&self) -> [usize; 4] {
        self.dims
    }

    /// Batch size N.
    pub fn n(&self) -> usize {
        self.dims[0]
    }

    /// Channel count C.
    pub fn c(&self) -> usize {
        self.dims[1]
    }

    /// Height H.
    pub fn h(&self) -> usize {
        self.dims[2]
    }

    /// Width W.
    pub fn w(&self) -> usize {
        self.dims[3]
    }

    /// Total number of elements.
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major linear index of `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range (debug-friendly bounds
    /// reporting; use the typed getters on [`Tensor`](crate::Tensor) in
    /// hot paths).
    pub fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        assert!(
            n < self.dims[0] && c < self.dims[1] && h < self.dims[2] && w < self.dims[3],
            "index ({n},{c},{h},{w}) out of bounds for shape {self}"
        );
        ((n * self.dims[1] + c) * self.dims[2] + h) * self.dims[3] + w
    }

    /// Validates that a buffer of `len` elements fills this shape exactly.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::LengthMismatch`] when it does not.
    pub fn check_len(&self, len: usize) -> Result<(), ShapeError> {
        if len == self.volume() {
            Ok(())
        } else {
            Err(ShapeError::LengthMismatch {
                expected: self.volume(),
                got: len,
            })
        }
    }
}

impl fmt::Display for Shape4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{}x{}",
            self.dims[0], self.dims[1], self.dims[2], self.dims[3]
        )
    }
}

impl TryFrom<[usize; 4]> for Shape4 {
    type Error = ShapeError;
    fn try_from(dims: [usize; 4]) -> Result<Self, ShapeError> {
        Shape4::new(dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_dims() {
        for axis in 0..4 {
            let mut dims = [2, 3, 4, 5];
            dims[axis] = 0;
            assert_eq!(Shape4::new(dims), Err(ShapeError::ZeroDim { axis }));
        }
    }

    #[test]
    fn rejects_overflow() {
        assert_eq!(
            Shape4::new([usize::MAX, 2, 1, 1]),
            Err(ShapeError::Overflow)
        );
    }

    #[test]
    fn index_is_row_major() {
        let s = Shape4::new([2, 3, 4, 5]).unwrap();
        assert_eq!(s.index(0, 0, 0, 0), 0);
        assert_eq!(s.index(0, 0, 0, 1), 1);
        assert_eq!(s.index(0, 0, 1, 0), 5);
        assert_eq!(s.index(0, 1, 0, 0), 20);
        assert_eq!(s.index(1, 0, 0, 0), 60);
        assert_eq!(s.index(1, 2, 3, 4), 119);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_bounds_checked() {
        let s = Shape4::new([1, 1, 2, 2]).unwrap();
        let _ = s.index(0, 0, 2, 0);
    }

    #[test]
    fn check_len_reports_both_sizes() {
        let s = Shape4::new([1, 1, 2, 2]).unwrap();
        let err = s.check_len(3).unwrap_err();
        assert_eq!(
            err,
            ShapeError::LengthMismatch {
                expected: 4,
                got: 3
            }
        );
        assert!(err.to_string().contains('3') && err.to_string().contains('4'));
    }

    #[test]
    fn display() {
        assert_eq!(Shape4::new([1, 2, 3, 4]).unwrap().to_string(), "1x2x3x4");
    }
}
