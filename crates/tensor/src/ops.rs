//! Auxiliary CNN operators: ReLU, pooling, local response normalization.
//!
//! Chain-NN accelerates only the convolutions; these operators exist so
//! the examples can run the *complete* AlexNet/LeNet feature extractors
//! end-to-end and validate layer chaining (pool shrinks the map the next
//! conv consumes).

use crate::Tensor;

/// Elementwise `max(x, 0)`.
pub fn relu(t: &Tensor<f32>) -> Tensor<f32> {
    t.map(|x| x.max(0.0))
}

/// Elementwise ReLU on raw accumulators.
pub fn relu_i32(t: &Tensor<i32>) -> Tensor<i32> {
    t.map(|x| x.max(0))
}

/// `k×k` max pooling with stride `s` (no padding), the AlexNet/LeNet
/// pooling flavour.
///
/// # Panics
///
/// Panics if `k == 0`, `s == 0` or the window does not fit the input.
pub fn max_pool(t: &Tensor<f32>, k: usize, s: usize) -> Tensor<f32> {
    pool(t, k, s, f32::NEG_INFINITY, |a, b| a.max(b), |m, _| m)
}

/// `k×k` average pooling with stride `s` (no padding).
///
/// # Panics
///
/// Panics if `k == 0`, `s == 0` or the window does not fit the input.
pub fn avg_pool(t: &Tensor<f32>, k: usize, s: usize) -> Tensor<f32> {
    pool(t, k, s, 0.0, |a, b| a + b, |sum, n| sum / n as f32)
}

fn pool(
    t: &Tensor<f32>,
    k: usize,
    s: usize,
    init: f32,
    fold: impl Fn(f32, f32) -> f32,
    finish: impl Fn(f32, usize) -> f32,
) -> Tensor<f32> {
    assert!(k > 0 && s > 0, "pooling window and stride must be non-zero");
    let [n, c, h, w] = t.shape().dims();
    assert!(
        k <= h && k <= w,
        "pooling window {k} larger than input {h}x{w}"
    );
    let oh = (h - k) / s + 1;
    let ow = (w - k) / s + 1;
    let mut out = Tensor::<f32>::zeros([n, c, oh, ow]);
    for ni in 0..n {
        for ci in 0..c {
            for y in 0..oh {
                for x in 0..ow {
                    let mut acc = init;
                    for i in 0..k {
                        for j in 0..k {
                            acc = fold(acc, t.get(ni, ci, y * s + i, x * s + j));
                        }
                    }
                    out.set(ni, ci, y, x, finish(acc, k * k));
                }
            }
        }
    }
    out
}

/// AlexNet-style local response normalization across channels:
/// `x / (bias + alpha/size · Σ x²)^beta` over a window of `size`
/// neighbouring channels.
pub fn lrn(t: &Tensor<f32>, size: usize, alpha: f32, beta: f32, bias: f32) -> Tensor<f32> {
    let [n, c, h, w] = t.shape().dims();
    let half = size / 2;
    let mut out = Tensor::<f32>::zeros([n, c, h, w]);
    for ni in 0..n {
        for ci in 0..c {
            let lo = ci.saturating_sub(half);
            let hi = (ci + half).min(c - 1);
            for y in 0..h {
                for x in 0..w {
                    let sq: f32 = (lo..=hi).map(|cc| t.get(ni, cc, y, x).powi(2)).sum();
                    let denom = (bias + alpha / size as f32 * sq).powf(beta);
                    out.set(ni, ci, y, x, t.get(ni, ci, y, x) / denom);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_vec([1, 1, 1, 4], vec![-1.0, 0.0, 2.0, -3.5]).unwrap();
        assert_eq!(relu(&t).as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let ti = Tensor::from_vec([1, 1, 1, 3], vec![-5i32, 0, 5]).unwrap();
        assert_eq!(relu_i32(&ti).as_slice(), &[0, 0, 5]);
    }

    #[test]
    fn max_pool_3x3_s2() {
        // AlexNet pooling: 55 -> 27
        let t = Tensor::<f32>::filled([1, 1, 55, 55], 1.0);
        let p = max_pool(&t, 3, 2);
        assert_eq!(p.shape().dims(), [1, 1, 27, 27]);
    }

    #[test]
    fn max_pool_picks_max() {
        let t = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 9.0, 3.0, 4.0]).unwrap();
        assert_eq!(max_pool(&t, 2, 1).as_slice(), &[9.0]);
    }

    #[test]
    fn avg_pool_averages() {
        let t = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 6.0]).unwrap();
        assert_eq!(avg_pool(&t, 2, 1).as_slice(), &[3.0]);
    }

    #[test]
    #[should_panic(expected = "larger than input")]
    fn pool_window_must_fit() {
        let t = Tensor::<f32>::filled([1, 1, 2, 2], 1.0);
        let _ = max_pool(&t, 3, 1);
    }

    #[test]
    fn lrn_normalizes_but_keeps_sign() {
        let t = Tensor::from_vec([1, 2, 1, 1], vec![2.0, -2.0]).unwrap();
        let n = lrn(&t, 5, 1e-4, 0.75, 2.0);
        assert!(n.get(0, 0, 0, 0) > 0.0);
        assert!(n.get(0, 1, 0, 0) < 0.0);
        assert!(n.get(0, 0, 0, 0).abs() < 2.0);
    }
}
