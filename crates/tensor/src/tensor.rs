//! Dense row-major NCHW tensor storage.

use std::fmt;

use crate::{Shape4, ShapeError};

/// A dense, row-major N×C×H×W tensor.
///
/// The element type is generic: the reproduction uses `Tensor<f32>` for
/// float references, `Tensor<Fix16>` for quantized operands, and
/// `Tensor<i32>` for raw accumulator outputs.
///
/// # Example
///
/// ```
/// use chain_nn_tensor::Tensor;
/// let mut t = Tensor::<i32>::zeros([1, 2, 2, 2]);
/// t.set(0, 1, 0, 1, 42);
/// assert_eq!(t.get(0, 1, 0, 1), 42);
/// assert_eq!(t.as_slice().iter().sum::<i32>(), 42);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor<T> {
    shape: Shape4,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor<T> {
    /// Creates a tensor filled with `T::default()`.
    ///
    /// # Panics
    ///
    /// Panics if the shape is invalid (zero dimension or overflow); shapes
    /// originating from user input should be validated with
    /// [`Shape4::new`] first.
    pub fn zeros(dims: [usize; 4]) -> Self {
        Self::filled(dims, T::default())
    }
}

impl<T: Copy> Tensor<T> {
    /// Creates a tensor with every element set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if the shape is invalid.
    pub fn filled(dims: [usize; 4], value: T) -> Self {
        let shape = Shape4::new(dims).expect("invalid tensor shape");
        Tensor {
            shape,
            data: vec![value; shape.volume()],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if the shape is invalid or the buffer
    /// length does not equal the shape volume.
    pub fn from_vec(dims: [usize; 4], data: Vec<T>) -> Result<Self, ShapeError> {
        let shape = Shape4::new(dims)?;
        shape.check_len(data.len())?;
        Ok(Tensor { shape, data })
    }

    /// The tensor's shape.
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Element at `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> T {
        self.data[self.shape.index(n, c, h, w)]
    }

    /// Element at `(n, c, h, w)` if in bounds, else `None`.
    pub fn try_get(&self, n: usize, c: usize, h: usize, w: usize) -> Option<T> {
        let [dn, dc, dh, dw] = self.shape.dims();
        if n < dn && c < dc && h < dh && w < dw {
            Some(self.data[((n * dc + c) * dh + h) * dw + w])
        } else {
            None
        }
    }

    /// Reads `(h, w)` treating coordinates outside the H×W plane as a
    /// zero-padding halo. `h`/`w` are signed to allow negative halo
    /// coordinates.
    pub fn get_padded(&self, n: usize, c: usize, h: isize, w: isize, zero: T) -> T {
        if h < 0 || w < 0 {
            return zero;
        }
        self.try_get(n, c, h as usize, w as usize).unwrap_or(zero)
    }

    /// Writes `value` at `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, value: T) {
        let idx = self.shape.index(n, c, h, w);
        self.data[idx] = value;
    }

    /// The backing buffer in row-major NCHW order.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Applies `f` elementwise, producing a tensor of the same shape.
    pub fn map<U: Copy>(&self, f: impl FnMut(T) -> U) -> Tensor<U> {
        Tensor {
            shape: self.shape,
            data: self.data.iter().copied().map(f).collect(),
        }
    }

    /// Iterates over `(n, c, h, w, value)` in row-major order.
    pub fn iter_indexed(&self) -> impl Iterator<Item = (usize, usize, usize, usize, T)> + '_ {
        let [_, c, h, w] = self.shape.dims();
        self.data.iter().enumerate().map(move |(i, &v)| {
            let wi = i % w;
            let hi = (i / w) % h;
            let ci = (i / (w * h)) % c;
            let ni = i / (w * h * c);
            (ni, ci, hi, wi, v)
        })
    }
}

impl<T: Copy + fmt::Display> fmt::Display for Tensor<T> {
    /// Prints the shape and the first plane — enough for debugging small
    /// test tensors without flooding the terminal.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Tensor {} [n=0,c=0]:", self.shape)?;
        for h in 0..self.shape.h() {
            for w in 0..self.shape.w() {
                write!(f, "{:>8} ", self.get(0, 0, h, w))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_then_set_get() {
        let mut t = Tensor::<f32>::zeros([2, 1, 3, 3]);
        t.set(1, 0, 2, 2, 7.5);
        assert_eq!(t.get(1, 0, 2, 2), 7.5);
        assert_eq!(t.get(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn from_vec_validates() {
        assert!(Tensor::from_vec([1, 1, 2, 2], vec![1, 2, 3, 4]).is_ok());
        assert!(Tensor::from_vec([1, 1, 2, 2], vec![1, 2, 3]).is_err());
        assert!(Tensor::<i32>::from_vec([0, 1, 2, 2], vec![]).is_err());
    }

    #[test]
    fn padded_reads() {
        let t = Tensor::from_vec([1, 1, 2, 2], vec![1, 2, 3, 4]).unwrap();
        assert_eq!(t.get_padded(0, 0, -1, 0, 0), 0);
        assert_eq!(t.get_padded(0, 0, 0, -1, 0), 0);
        assert_eq!(t.get_padded(0, 0, 2, 0, 0), 0);
        assert_eq!(t.get_padded(0, 0, 1, 1, 0), 4);
    }

    #[test]
    fn iter_indexed_roundtrips() {
        let t = Tensor::from_vec([2, 2, 1, 2], (0..8).collect()).unwrap();
        for (n, c, h, w, v) in t.iter_indexed() {
            assert_eq!(t.get(n, c, h, w), v);
        }
        assert_eq!(t.iter_indexed().count(), 8);
    }

    #[test]
    fn map_preserves_shape() {
        let t = Tensor::from_vec([1, 1, 2, 2], vec![1i32, -2, 3, -4]).unwrap();
        let u = t.map(|x| x.unsigned_abs());
        assert_eq!(u.shape(), t.shape());
        assert_eq!(u.as_slice(), &[1u32, 2, 3, 4]);
    }

    #[test]
    fn display_smoke() {
        let t = Tensor::from_vec([1, 1, 2, 2], vec![1, 2, 3, 4]).unwrap();
        let s = t.to_string();
        assert!(s.contains("1x1x2x2"));
        assert!(s.contains('4'));
    }
}
