//! Causal tracing: hierarchical spans in a lock-free bounded ring.
//!
//! A **span** is one timed phase of one request — `parse`,
//! `queue_wait`, a scheduler `batch` on a particular worker thread, a
//! tuner round — tied to its request by a **trace id** and to its
//! enclosing span by a **parent span id**. Clients may propagate their
//! own trace context over the wire (`"trace":{"id":...,"parent":...}`
//! on any protocol request); the daemon assigns one otherwise, so every
//! request always has a complete span tree.
//!
//! Spans land in a [`SpanBuf`]: a fixed-capacity ring of seqlocked
//! slots. Writers never block (one atomic claim plus plain atomic
//! stores), readers never block writers (a torn slot is simply skipped
//! on that pass), and when the ring wraps the oldest spans are
//! overwritten — [`SpanBuf::dropped`] counts how many. The process-wide
//! ring is [`spans()`]; like the metric [`Registry`](crate::Registry)
//! it can be disabled wholesale, degrading every record to one relaxed
//! load (the `dse_throughput` trace-overhead bench compares exactly
//! that).
//!
//! [`chrome_trace_json`] renders any span slice as Chrome trace-event
//! JSON (`chrome://tracing` / Perfetto): one complete (`"ph":"X"`)
//! event per span, with the worker index as the `tid` so a parallel
//! sweep renders as a per-thread timeline.
//!
//! # Example
//!
//! ```
//! use chain_nn_obs::trace::{spans, next_trace_id, next_span_id, Span};
//! use std::time::{Duration, Instant};
//!
//! let trace = next_trace_id();
//! let root = next_span_id();
//! spans().record(&Span {
//!     trace_id: trace,
//!     span_id: root,
//!     parent_id: 0,
//!     name: "request",
//!     start: Instant::now(),
//!     dur: Duration::from_micros(250),
//!     worker: None,
//!     points: 0,
//! });
//! let mine = spans().for_trace(trace);
//! assert_eq!(mine.len(), 1);
//! assert_eq!(mine[0].name, "request");
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Longest span name the ring stores (longer names are truncated).
pub const MAX_NAME: usize = 16;

/// Default capacity (in spans) of the process-wide ring.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Trace ids the daemon assigns start here, so they cannot collide
/// with the small explicit ids clients typically choose.
pub const ASSIGNED_TRACE_BASE: u64 = 1 << 32;

/// A client-propagated (or daemon-assigned) trace context: which trace
/// a request belongs to and which remote span caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every span of this request is tagged with. Never 0.
    pub id: u64,
    /// The caller's span that caused this request (0 = none: the
    /// request's root span is a tree root).
    pub parent: u64,
}

/// One span, as handed to [`SpanBuf::record`].
#[derive(Debug, Clone, Copy)]
pub struct Span<'a> {
    /// Owning trace.
    pub trace_id: u64,
    /// This span's id (unique within the process; see [`next_span_id`]).
    pub span_id: u64,
    /// Enclosing span, 0 for a root.
    pub parent_id: u64,
    /// Phase name; truncated to [`MAX_NAME`] bytes, non-printable
    /// bytes replaced with `_`.
    pub name: &'a str,
    /// When the phase began.
    pub start: Instant,
    /// How long it ran.
    pub dur: Duration,
    /// Worker thread index, for phases that ran on a pool worker.
    pub worker: Option<u32>,
    /// Design points this phase covered (0 when not applicable).
    pub points: u32,
}

/// One span, as read back out of a [`SpanBuf`] (or off the wire).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Owning trace.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Enclosing span, 0 for a root.
    pub parent_id: u64,
    /// Phase name.
    pub name: String,
    /// Microseconds since the ring's epoch (process start, in
    /// practice) at which the phase began.
    pub start_us: u64,
    /// Phase duration, microseconds.
    pub dur_us: u64,
    /// Worker thread index, for phases that ran on a pool worker.
    pub worker: Option<u32>,
    /// Design points this phase covered.
    pub points: u32,
}

/// One seqlocked ring slot. The sequence word makes torn reads
/// detectable: it is odd while a writer is mid-flight and changes on
/// every publish, so a reader that sees the same even value before and
/// after its field loads saw one consistent span.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    trace_id: AtomicU64,
    span_id: AtomicU64,
    parent_id: AtomicU64,
    name_lo: AtomicU64,
    name_hi: AtomicU64,
    start_us: AtomicU64,
    dur_us: AtomicU64,
    /// High 32 bits: worker index + 1 (0 = no worker); low 32: points.
    meta: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            span_id: AtomicU64::new(0),
            parent_id: AtomicU64::new(0),
            name_lo: AtomicU64::new(0),
            name_hi: AtomicU64::new(0),
            start_us: AtomicU64::new(0),
            dur_us: AtomicU64::new(0),
            meta: AtomicU64::new(0),
        }
    }
}

fn pack_name(name: &str) -> (u64, u64) {
    let mut bytes = [0u8; MAX_NAME];
    for (i, &b) in name.as_bytes().iter().take(MAX_NAME).enumerate() {
        bytes[i] = if (0x20..0x7f).contains(&b) { b } else { b'_' };
    }
    (
        u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")),
        u64::from_le_bytes(bytes[8..].try_into().expect("8 bytes")),
    )
}

fn unpack_name(lo: u64, hi: u64) -> String {
    let mut bytes = [0u8; MAX_NAME];
    bytes[..8].copy_from_slice(&lo.to_le_bytes());
    bytes[8..].copy_from_slice(&hi.to_le_bytes());
    let len = bytes.iter().position(|&b| b == 0).unwrap_or(MAX_NAME);
    String::from_utf8_lossy(&bytes[..len]).into_owned()
}

/// Lock-free bounded span ring: fixed-size seqlocked slots, drop-oldest
/// on wrap, a dropped-span counter, and a kill switch mirroring
/// [`Registry::set_enabled`](crate::Registry::set_enabled) (separate
/// flag, so metrics and spans toggle independently).
#[derive(Debug)]
pub struct SpanBuf {
    slots: Box<[Slot]>,
    /// Total spans ever recorded; `head % capacity` is the next slot.
    head: AtomicU64,
    enabled: AtomicBool,
    epoch: Instant,
}

impl SpanBuf {
    /// A ring holding the most recent `capacity` spans (min 1),
    /// enabled, with its epoch at construction time.
    #[must_use]
    pub fn new(capacity: usize) -> SpanBuf {
        SpanBuf {
            slots: (0..capacity.max(1)).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
        }
    }

    /// Slot count.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Switches span recording on or off. Off, [`SpanBuf::record`] is
    /// one relaxed load.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the ring is recording.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Spans recorded since construction (monotone; the ring only
    /// retains the most recent [`SpanBuf::capacity`]).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Spans overwritten by newer ones (drop-oldest accounting).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Records one span. One relaxed RMW to claim a slot, one seqlock
    /// publish; never blocks, never allocates. When two writers race
    /// onto the same slot (only possible after the ring laps itself
    /// mid-write) the slot holds one of the two and readers still never
    /// observe a torn mix.
    pub fn record(&self, span: &Span<'_>) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let idx = (self.head.fetch_add(1, Ordering::Relaxed) % self.slots.len() as u64) as usize;
        let slot = &self.slots[idx];
        let (name_lo, name_hi) = pack_name(span.name);
        let start_us = span
            .start
            .checked_duration_since(self.epoch)
            .unwrap_or_default()
            .as_micros() as u64;
        let worker = span.worker.map_or(0, |w| u64::from(w) + 1);
        slot.seq.fetch_add(1, Ordering::AcqRel); // odd: write in flight
        slot.trace_id.store(span.trace_id, Ordering::Relaxed);
        slot.span_id.store(span.span_id, Ordering::Relaxed);
        slot.parent_id.store(span.parent_id, Ordering::Relaxed);
        slot.name_lo.store(name_lo, Ordering::Relaxed);
        slot.name_hi.store(name_hi, Ordering::Relaxed);
        slot.start_us.store(start_us, Ordering::Relaxed);
        slot.dur_us
            .store(span.dur.as_micros() as u64, Ordering::Relaxed);
        slot.meta
            .store(worker << 32 | u64::from(span.points), Ordering::Relaxed);
        slot.seq.fetch_add(1, Ordering::AcqRel); // even: published
    }

    /// The ring's current contents, oldest first. Slots a writer is
    /// racing on are skipped (they will be consistent on the next
    /// pass); empty slots of a young ring are skipped too.
    #[must_use]
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let len = head.min(cap);
        let mut out = Vec::with_capacity(len as usize);
        for i in (head - len)..head {
            let slot = &self.slots[(i % cap) as usize];
            let before = slot.seq.load(Ordering::Acquire);
            if before % 2 == 1 {
                continue; // writer mid-flight
            }
            let record = SpanRecord {
                trace_id: slot.trace_id.load(Ordering::Relaxed),
                span_id: slot.span_id.load(Ordering::Relaxed),
                parent_id: slot.parent_id.load(Ordering::Relaxed),
                name: unpack_name(
                    slot.name_lo.load(Ordering::Relaxed),
                    slot.name_hi.load(Ordering::Relaxed),
                ),
                start_us: slot.start_us.load(Ordering::Relaxed),
                dur_us: slot.dur_us.load(Ordering::Relaxed),
                worker: match slot.meta.load(Ordering::Relaxed) >> 32 {
                    0 => None,
                    w => Some((w - 1) as u32),
                },
                points: (slot.meta.load(Ordering::Relaxed) & 0xffff_ffff) as u32,
            };
            if slot.seq.load(Ordering::Acquire) != before || record.span_id == 0 {
                continue; // torn (overwritten mid-read) or never written
            }
            out.push(record);
        }
        out
    }

    /// The spans of one trace, ordered by start time then span id —
    /// the shape a `trace_query` reply ships.
    #[must_use]
    pub fn for_trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = self
            .snapshot()
            .into_iter()
            .filter(|s| s.trace_id == trace_id)
            .collect();
        spans.sort_by_key(|s| (s.start_us, s.span_id));
        spans
    }
}

static SPANS: OnceLock<SpanBuf> = OnceLock::new();
static NEXT_TRACE: AtomicU64 = AtomicU64::new(ASSIGNED_TRACE_BASE);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

/// The process-wide span ring ([`DEFAULT_CAPACITY`] slots): the
/// scheduler, the DSE executor, the tuner and the serving daemon all
/// record here, so one `trace_query` sees every layer.
pub fn spans() -> &'static SpanBuf {
    SPANS.get_or_init(|| SpanBuf::new(DEFAULT_CAPACITY))
}

/// A fresh daemon-assigned trace id (distinct from every other id this
/// process ever assigned, and ≥ [`ASSIGNED_TRACE_BASE`] so it cannot
/// collide with small client-chosen ids).
#[must_use]
pub fn next_trace_id() -> u64 {
    NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
}

/// A fresh process-unique span id (never 0).
#[must_use]
pub fn next_span_id() -> u64 {
    NEXT_SPAN.fetch_add(1, Ordering::Relaxed)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders spans as Chrome trace-event JSON (load in `chrome://tracing`
/// or <https://ui.perfetto.dev>). Each span becomes one complete
/// (`"ph":"X"`) event; the `tid` is the worker index + 1 (0 for
/// session-thread phases), so batches executed by different workers
/// land on different timeline rows.
#[must_use]
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\
             \"args\":{{\"trace_id\":{},\"span_id\":{},\"parent\":{},\"points\":{}}}}}",
            escape_json(&s.name),
            s.start_us,
            s.dur_us,
            s.worker.map_or(0, |w| u64::from(w) + 1),
            s.trace_id,
            s.span_id,
            s.parent_id,
            s.points,
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn span(trace: u64, id: u64, name: &str) -> Span<'_> {
        Span {
            trace_id: trace,
            span_id: id,
            parent_id: 0,
            name,
            start: Instant::now(),
            dur: Duration::from_micros(5),
            worker: None,
            points: 0,
        }
    }

    #[test]
    fn names_pack_and_unpack() {
        for name in ["", "parse", "queue_wait", "metrics_history!"] {
            let (lo, hi) = pack_name(name);
            assert_eq!(unpack_name(lo, hi), name);
        }
        // Truncation and sanitisation.
        let (lo, hi) = pack_name("a_very_long_span_name_indeed");
        assert_eq!(unpack_name(lo, hi), "a_very_long_span");
        let (lo, hi) = pack_name("bad\nname");
        assert_eq!(unpack_name(lo, hi), "bad_name");
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let buf = SpanBuf::new(4);
        for i in 1..=6u64 {
            buf.record(&span(7, i, "s"));
        }
        assert_eq!(buf.recorded(), 6);
        assert_eq!(buf.dropped(), 2);
        let kept: Vec<u64> = buf.snapshot().iter().map(|s| s.span_id).collect();
        assert_eq!(kept, vec![3, 4, 5, 6]);
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let buf = SpanBuf::new(4);
        buf.set_enabled(false);
        buf.record(&span(1, 1, "s"));
        assert_eq!(buf.recorded(), 0);
        assert!(buf.snapshot().is_empty());
        buf.set_enabled(true);
        buf.record(&span(1, 2, "s"));
        assert_eq!(buf.snapshot().len(), 1);
    }

    #[test]
    fn spans_round_trip_fields() {
        let buf = SpanBuf::new(8);
        let start = Instant::now();
        buf.record(&Span {
            trace_id: 42,
            span_id: 9,
            parent_id: 3,
            name: "batch",
            start,
            dur: Duration::from_micros(1234),
            worker: Some(5),
            points: 32,
        });
        let got = &buf.for_trace(42)[0];
        assert_eq!(got.span_id, 9);
        assert_eq!(got.parent_id, 3);
        assert_eq!(got.name, "batch");
        assert_eq!(got.dur_us, 1234);
        assert_eq!(got.worker, Some(5));
        assert_eq!(got.points, 32);
    }

    #[test]
    fn for_trace_filters_and_orders() {
        let buf = SpanBuf::new(16);
        let t0 = Instant::now();
        for (id, off) in [(3u64, 20u64), (1, 0), (2, 10)] {
            buf.record(&Span {
                trace_id: 1,
                span_id: id,
                parent_id: 0,
                name: "s",
                start: t0 + Duration::from_micros(off),
                dur: Duration::from_micros(1),
                worker: None,
                points: 0,
            });
        }
        buf.record(&span(2, 50, "other"));
        let ids: Vec<u64> = buf.for_trace(1).iter().map(|s| s.span_id).collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn concurrent_writers_never_tear() {
        let buf = SpanBuf::new(8); // small, so writers lap constantly
        let done = AtomicU32::new(0);
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let buf = &buf;
                let done = &done;
                scope.spawn(move || {
                    for i in 0..2000u64 {
                        // Every field derives from the span id, so a
                        // torn read is detectable below.
                        let id = w * 1_000_000 + i + 1;
                        buf.record(&Span {
                            trace_id: id * 3,
                            span_id: id,
                            parent_id: id * 7,
                            name: "race",
                            start: Instant::now(),
                            dur: Duration::from_micros(id % 97),
                            worker: Some((id % 13) as u32),
                            points: (id % 31) as u32,
                        });
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
            while done.load(Ordering::SeqCst) < 4 {
                for s in buf.snapshot() {
                    assert_eq!(s.trace_id, s.span_id * 3, "torn slot: {s:?}");
                    assert_eq!(s.parent_id, s.span_id * 7, "torn slot: {s:?}");
                    assert_eq!(s.dur_us, s.span_id % 97, "torn slot: {s:?}");
                }
            }
        });
        assert_eq!(buf.recorded(), 8000);
        assert_eq!(buf.dropped(), 8000 - 8);
    }

    #[test]
    fn id_allocators_are_unique_and_offset() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert!(b > a);
        assert!(a >= ASSIGNED_TRACE_BASE);
        assert_ne!(next_span_id(), next_span_id());
    }

    #[test]
    fn chrome_export_shape() {
        let spans = vec![
            SpanRecord {
                trace_id: 4242,
                span_id: 1,
                parent_id: 0,
                name: "sweep".into(),
                start_us: 100,
                dur_us: 900,
                worker: None,
                points: 500,
            },
            SpanRecord {
                trace_id: 4242,
                span_id: 2,
                parent_id: 1,
                name: "batch".into(),
                start_us: 150,
                dur_us: 40,
                worker: Some(1),
                points: 32,
            },
        ];
        let json = chrome_trace_json(&spans);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"tid\":0")); // session thread
        assert!(json.contains("\"tid\":2")); // worker 1
        assert!(json.contains("\"points\":500"));
        // Name escaping stays valid JSON.
        let hostile = vec![SpanRecord {
            name: "a\"b\\c".into(),
            ..spans[0].clone()
        }];
        assert!(chrome_trace_json(&hostile).contains("a\\\"b\\\\c"));
    }
}
