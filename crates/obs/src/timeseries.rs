//! Temporal metrics: fixed-interval sampling of a [`Registry`] into
//! fixed-capacity ring buffers, and windowed rates/quantiles derived
//! from the deltas.
//!
//! A [`Registry`] only ever accumulates: counters and histogram
//! buckets grow monotonically, so *everything temporal is a
//! difference of two snapshots*. [`TimeSeries::sample`] takes a
//! [`RawSnapshot`] (full bucket arrays, not digests) at each tick and
//! stores the per-interval delta as a [`Sample`]: counter increments,
//! current gauge values, and bucket-wise histogram differences
//! ([`HistogramSnapshot::delta_since`]). Because histogram deltas are
//! themselves valid snapshots, a *window* over the last N intervals is
//! just their [`HistogramSnapshot::merge`] — the same algebra the
//! `metrics` reply uses across registries — and windowed p50/p99 fall
//! out of the ordinary quantile extraction.
//!
//! The ring holds a bounded number of samples (default sizing: one
//! minute of history), so a long-lived daemon's memory is constant.
//! The sampler itself owns no thread; the serving daemon drives one
//! from its worker scope and tests drive
//! [`TimeSeries::sample_after`] deterministically.

use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

use crate::{HistogramSnapshot, MetricKey, Registry};

/// Full-resolution copy of a registry: counters and gauges by value,
/// histograms with complete bucket arrays. Produced by
/// [`Registry::raw_snapshot`]; two chronological raw snapshots
/// subtract into one [`Sample`].
#[derive(Clone, Debug, Default)]
pub struct RawSnapshot {
    /// Counter values by `(name, labels)`.
    pub counters: BTreeMap<MetricKey, u64>,
    /// Gauge values by `(name, labels)`.
    pub gauges: BTreeMap<MetricKey, f64>,
    /// Full histogram buckets by `(name, labels)`.
    pub histograms: BTreeMap<MetricKey, HistogramSnapshot>,
}

/// One interval of activity: what happened between two consecutive
/// sampler ticks.
#[derive(Clone, Debug)]
pub struct Sample {
    /// 1-based sample number since the sampler started (the baseline
    /// snapshot is not a sample).
    pub seq: u64,
    /// Wall time this interval actually covered (the nominal interval
    /// plus scheduling jitter).
    pub elapsed: Duration,
    /// Counter increments over the interval.
    pub counter_deltas: BTreeMap<MetricKey, u64>,
    /// Gauge values at the end of the interval (gauges are sampled,
    /// not differenced).
    pub gauges: BTreeMap<MetricKey, f64>,
    /// Histogram records that arrived during the interval, bucket-wise.
    pub histogram_deltas: BTreeMap<MetricKey, HistogramSnapshot>,
}

impl Sample {
    fn delta(seq: u64, elapsed: Duration, prev: &RawSnapshot, next: &RawSnapshot) -> Sample {
        Sample {
            seq,
            elapsed,
            counter_deltas: next
                .counters
                .iter()
                .map(|(k, &v)| {
                    (
                        k.clone(),
                        v.saturating_sub(prev.counters.get(k).copied().unwrap_or(0)),
                    )
                })
                .collect(),
            gauges: next.gauges.clone(),
            histogram_deltas: next
                .histograms
                .iter()
                .map(|(k, h)| {
                    let earlier = prev.histograms.get(k).cloned().unwrap_or_default();
                    (k.clone(), h.delta_since(&earlier))
                })
                .collect(),
        }
    }
}

/// Interval sampler over one registry: a fixed-capacity ring of
/// [`Sample`]s plus the previous raw snapshot to difference against.
#[derive(Debug)]
pub struct TimeSeries {
    interval: Duration,
    capacity: usize,
    prev: Option<(Instant, RawSnapshot)>,
    ring: VecDeque<Sample>,
    taken: u64,
}

impl TimeSeries {
    /// A sampler with the given nominal tick `interval` and ring
    /// `capacity` (samples retained; at least 1).
    #[must_use]
    pub fn new(interval: Duration, capacity: usize) -> TimeSeries {
        TimeSeries {
            interval,
            capacity: capacity.max(1),
            prev: None,
            ring: VecDeque::new(),
            taken: 0,
        }
    }

    /// The nominal tick interval (actual per-sample coverage is in
    /// [`Sample::elapsed`]).
    #[must_use]
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Ring capacity in samples.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Samples currently retained (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no sample has been retained yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total samples recorded since construction (monotone; unaffected
    /// by ring eviction). The first [`TimeSeries::sample`] call only
    /// establishes the baseline, so this stays 0 until the second.
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.taken
    }

    /// The newest sample, if any.
    #[must_use]
    pub fn latest(&self) -> Option<&Sample> {
        self.ring.back()
    }

    /// Takes one tick: raw-snapshots `registry`, differences it against
    /// the previous raw snapshot, and pushes the delta into the ring
    /// (evicting the oldest sample at capacity). The first call records
    /// the baseline and emits nothing. Returns [`TimeSeries::seq`].
    pub fn sample(&mut self, registry: &Registry) -> u64 {
        let elapsed = self
            .prev
            .as_ref()
            .map_or(Duration::ZERO, |(at, _)| at.elapsed());
        self.tick(registry, elapsed)
    }

    /// [`TimeSeries::sample`] with the interval coverage supplied by
    /// the caller instead of measured from the wall clock — the
    /// deterministic entry point for tests and replay.
    pub fn sample_after(&mut self, registry: &Registry, elapsed: Duration) -> u64 {
        self.tick(registry, elapsed)
    }

    fn tick(&mut self, registry: &Registry, elapsed: Duration) -> u64 {
        let raw = registry.raw_snapshot();
        if let Some((_, prev)) = self.prev.take() {
            self.taken += 1;
            let sample = Sample::delta(self.taken, elapsed, &prev, &raw);
            if self.ring.len() == self.capacity {
                self.ring.pop_front();
            }
            self.ring.push_back(sample);
        }
        self.prev = Some((Instant::now(), raw));
        self.taken
    }

    /// Merges the newest samples until at least `duration` of coverage
    /// is accumulated (or the ring is exhausted). A zero `duration`
    /// yields the newest sample alone.
    #[must_use]
    pub fn window(&self, duration: Duration) -> Window {
        let mut n = 0;
        let mut covered = Duration::ZERO;
        for sample in self.ring.iter().rev() {
            n += 1;
            covered += sample.elapsed;
            if covered >= duration {
                break;
            }
        }
        self.window_samples(n.max(1))
    }

    /// Merges the newest `n` samples (clamped to what the ring holds)
    /// into one [`Window`]: counter deltas add, histogram deltas merge
    /// bucket-wise, gauges come from the newest sample.
    #[must_use]
    pub fn window_samples(&self, n: usize) -> Window {
        let mut window = Window {
            duration: Duration::ZERO,
            samples: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        };
        for sample in self.ring.iter().rev().take(n.max(1)) {
            if window.samples == 0 {
                window.gauges = sample.gauges.clone();
            }
            window.samples += 1;
            window.duration += sample.elapsed;
            for (k, &v) in &sample.counter_deltas {
                *window.counters.entry(k.clone()).or_insert(0) += v;
            }
            for (k, h) in &sample.histogram_deltas {
                let entry = window.histograms.entry(k.clone()).or_default();
                *entry = entry.merge(h);
            }
        }
        window
    }
}

/// The last N intervals merged: totals over the window plus the
/// latest gauge values. Rates divide by the window's actual coverage.
#[derive(Clone, Debug)]
pub struct Window {
    /// Wall time the window covers (sum of its samples' `elapsed`).
    pub duration: Duration,
    /// Samples merged into this window.
    pub samples: usize,
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, f64>,
    histograms: BTreeMap<MetricKey, HistogramSnapshot>,
}

impl Window {
    /// Counter increment over the window for one exact label set.
    #[must_use]
    pub fn counter_delta(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters
            .get(&crate::key_of(name, labels))
            .copied()
            .unwrap_or(0)
    }

    /// Counter increment summed across every label set of a family —
    /// e.g. `serve_requests_total` over all request types.
    #[must_use]
    pub fn counter_family_delta(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|((n, _), _)| n == name)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Per-second rate of one counter over the window (0.0 for an
    /// empty window).
    #[must_use]
    pub fn rate(&self, name: &str, labels: &[(&str, &str)]) -> f64 {
        self.per_second(self.counter_delta(name, labels))
    }

    /// Per-second rate of a whole counter family over the window.
    #[must_use]
    pub fn family_rate(&self, name: &str) -> f64 {
        self.per_second(self.counter_family_delta(name))
    }

    fn per_second(&self, delta: u64) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs > 0.0 {
            delta as f64 / secs
        } else {
            0.0
        }
    }

    /// The window's merged histogram delta for one exact label set —
    /// quantiles over it are *windowed* quantiles, not since-boot ones.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.histograms.get(&crate::key_of(name, labels))
    }

    /// Every label set of a histogram family merged into one windowed
    /// snapshot (e.g. request latency across all request types).
    #[must_use]
    pub fn histogram_family(&self, name: &str) -> HistogramSnapshot {
        self.histograms
            .iter()
            .filter(|((n, _), _)| n == name)
            .fold(HistogramSnapshot::default(), |acc, (_, h)| acc.merge(h))
    }

    /// Label sets of one histogram family present in the window, in
    /// `(name, labels)` order.
    #[must_use]
    pub fn histogram_labels(&self, name: &str) -> Vec<&MetricKey> {
        self.histograms.keys().filter(|(n, _)| n == name).collect()
    }

    /// Gauge value at the window's newest sample.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&crate::key_of(name, labels)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Duration = Duration::from_millis(250);

    #[test]
    fn samples_carry_interval_deltas_not_totals() {
        let r = Registry::new();
        let c = r.counter_with("req_total", &[("type", "eval")]);
        let h = r.histogram("lat_ns");
        let g = r.gauge("inflight");
        let mut ts = TimeSeries::new(TICK, 8);

        c.add(5);
        h.record(1_000);
        g.set(2.0);
        assert_eq!(ts.sample_after(&r, TICK), 0, "first tick is the baseline");
        assert!(ts.is_empty());

        c.add(3);
        h.record(1_000_000);
        h.record(1_000_000);
        g.set(7.0);
        assert_eq!(ts.sample_after(&r, TICK), 1);
        let s = ts.latest().expect("one sample");
        assert_eq!(s.seq, 1);
        assert_eq!(s.elapsed, TICK);
        let key = (
            "req_total".to_owned(),
            vec![("type".to_owned(), "eval".to_owned())],
        );
        assert_eq!(s.counter_deltas[&key], 3, "delta, not the total 8");
        let hd = &s.histogram_deltas[&("lat_ns".to_owned(), vec![])];
        assert_eq!(hd.count(), 2, "only the interval's records");
        assert_eq!(hd.sum(), 2_000_000);
        assert_eq!(s.gauges[&("inflight".to_owned(), vec![])], 7.0);

        // A quiet interval is all zeros.
        assert_eq!(ts.sample_after(&r, TICK), 2);
        assert_eq!(ts.latest().unwrap().counter_deltas[&key], 0);
    }

    #[test]
    fn ring_is_bounded_and_seq_is_monotone() {
        let r = Registry::new();
        let c = r.counter("ticks_total");
        let mut ts = TimeSeries::new(TICK, 3);
        ts.sample_after(&r, TICK); // baseline
        for _ in 0..10 {
            c.inc();
            ts.sample_after(&r, TICK);
        }
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.capacity(), 3);
        assert_eq!(ts.seq(), 10);
        assert_eq!(ts.latest().unwrap().seq, 10);
        // The ring evicted the oldest samples but kept the newest 3.
        let seqs: Vec<u64> = ts.ring.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![8, 9, 10]);
    }

    #[test]
    fn windows_merge_deltas_and_derive_rates_and_quantiles() {
        let r = Registry::new();
        let c = r.counter_with("serve_requests_total", &[("type", "eval")]);
        let h = r.histogram_with("serve_request_ns", &[("type", "eval")]);
        let mut ts = TimeSeries::new(TICK, 16);
        ts.sample_after(&r, TICK); // baseline

        // Interval 1: 10 fast requests; interval 2: 10 slow ones.
        for _ in 0..10 {
            c.inc();
            h.record(1_000);
        }
        ts.sample_after(&r, TICK);
        for _ in 0..10 {
            c.inc();
            h.record(1_000_000);
        }
        ts.sample_after(&r, TICK);

        // One-sample window: only the slow interval.
        let w1 = ts.window_samples(1);
        assert_eq!(w1.samples, 1);
        assert_eq!(
            w1.counter_delta("serve_requests_total", &[("type", "eval")]),
            10
        );
        assert_eq!(w1.rate("serve_requests_total", &[("type", "eval")]), 40.0);
        let h1 = w1
            .histogram("serve_request_ns", &[("type", "eval")])
            .expect("windowed histogram");
        assert_eq!(h1.quantile(0.50), 1_000_000.0);

        // Two-sample window: the merged distribution straddles both.
        let w2 = ts.window(Duration::from_millis(500));
        assert_eq!(w2.samples, 2);
        assert_eq!(w2.duration, 2 * TICK);
        assert_eq!(w2.counter_family_delta("serve_requests_total"), 20);
        assert_eq!(w2.family_rate("serve_requests_total"), 40.0);
        let h2 = w2
            .histogram("serve_request_ns", &[("type", "eval")])
            .expect("windowed histogram");
        assert_eq!(h2.count(), 20);
        assert_eq!(h2.quantile(0.50), 1_000.0);
        assert_eq!(h2.quantile(0.99), 1_000_000.0);
        // The family view merges label sets (only one here).
        assert_eq!(w2.histogram_family("serve_request_ns").count(), 20);
        assert_eq!(w2.histogram_labels("serve_request_ns").len(), 1);

        // A window larger than history clamps to what the ring holds.
        assert_eq!(ts.window(Duration::from_secs(60)).samples, 2);
    }

    #[test]
    fn families_registered_mid_flight_difference_against_zero() {
        let r = Registry::new();
        let mut ts = TimeSeries::new(TICK, 4);
        ts.sample_after(&r, TICK); // baseline: registry is empty
        let c = r.counter_with("late_total", &[("type", "sweep")]);
        c.add(4);
        r.histogram("late_ns").record(512);
        ts.sample_after(&r, TICK);
        let w = ts.window_samples(1);
        assert_eq!(w.counter_delta("late_total", &[("type", "sweep")]), 4);
        assert_eq!(w.histogram_family("late_ns").count(), 1);
    }
}
