//! Std-only observability primitives for the Chain-NN stack.
//!
//! Three metric kinds, all lock-free on the record path (the same
//! relaxed-`AtomicU64` idiom as the DSE executor cursors and the
//! point-cache counters):
//!
//! * [`Counter`] — monotone event count (`requests_total`).
//! * [`Gauge`] — last-written `f64` (`points_per_sec`, in-flight jobs).
//! * [`Histogram`] — log-bucketed latency distribution: 64 power-of-two
//!   buckets, each tracking a count *and* a sum, so quantile extraction
//!   returns the exact bucket mean (exact to the nanosecond whenever a
//!   bucket holds one distinct value) and snapshots merge losslessly.
//!
//! A [`Registry`] names metric families (optionally labelled, e.g.
//! `serve_request_ns{type="eval"}`), hands out shared [`Arc`] handles,
//! and produces a wire-friendly [`Snapshot`] on demand. The whole
//! registry can be switched off with [`Registry::set_enabled`] — every
//! record degrades to one relaxed load, which is what the
//! `dse_throughput` overhead bench compares against.
//!
//! [`global()`] is the process-wide registry used by the `dse` and
//! `tuner` crates; the serving daemon owns a private registry per
//! server instance and merges both into its `metrics` reply.
//! [`render_text`] renders any snapshot in the Prometheus exposition
//! style for `chain-nn query metrics --text`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod timeseries;
pub mod trace;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Number of power-of-two histogram buckets. Bucket 0 holds the value
/// zero; bucket `b >= 1` holds values in `[2^(b-1), 2^b - 1]`; the last
/// bucket also absorbs everything above `2^62`. In nanoseconds that
/// spans 1 ns to ~146 years, which is every latency this stack can see.
pub const BUCKETS: usize = 64;

/// Bucket index for a recorded value (`0` for `0`, else
/// `64 - leading_zeros`, clamped to the top bucket).
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive lower bound of a bucket (0 for bucket 0, else `2^(b-1)`).
#[must_use]
pub fn bucket_lower_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << (bucket - 1)
    }
}

/// Monotonically increasing event counter.
#[derive(Debug)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    value: AtomicU64,
}

impl Counter {
    /// A standalone, always-enabled counter (tests / ad-hoc use).
    #[must_use]
    pub fn new() -> Counter {
        Counter::with_flag(Arc::new(AtomicBool::new(true)))
    }

    fn with_flag(enabled: Arc<AtomicBool>) -> Counter {
        Counter {
            enabled,
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. One relaxed load + one relaxed RMW; a no-op (the load
    /// alone) when the owning registry is disabled.
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Counter {
        Counter::new()
    }
}

/// Last-written floating-point value (stored as `f64` bits in an
/// `AtomicU64`).
#[derive(Debug)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    bits: AtomicU64,
}

impl Gauge {
    /// A standalone, always-enabled gauge starting at `0.0`.
    #[must_use]
    pub fn new() -> Gauge {
        Gauge::with_flag(Arc::new(AtomicBool::new(true)))
    }

    fn with_flag(enabled: Arc<AtomicBool>) -> Gauge {
        Gauge {
            enabled,
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Overwrites the value.
    pub fn set(&self, value: f64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` (compare-and-swap loop; used for in-flight counts).
    pub fn add(&self, delta: f64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1.0);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge::new()
    }
}

/// Log-bucketed histogram: [`BUCKETS`] power-of-two buckets, each with
/// an atomic count and an atomic sum. Recording is two relaxed RMWs;
/// there are no locks anywhere.
#[derive(Debug)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    counts: [AtomicU64; BUCKETS],
    sums: [AtomicU64; BUCKETS],
}

impl Histogram {
    /// A standalone, always-enabled histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::with_flag(Arc::new(AtomicBool::new(true)))
    }

    fn with_flag(enabled: Arc<AtomicBool>) -> Histogram {
        Histogram {
            enabled,
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sums: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let b = bucket_of(value);
        self.counts[b].fetch_add(1, Ordering::Relaxed);
        self.sums[b].fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Consistent-enough point-in-time copy (bucket counts and sums are
    /// read bucket by bucket; concurrent recording can skew a bucket by
    /// at most the records in flight, never lose one).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|b| self.counts[b].load(Ordering::Relaxed)),
            sums: std::array::from_fn(|b| self.sums[b].load(Ordering::Relaxed)),
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Plain-value copy of a [`Histogram`]; mergeable (bucket-wise
/// addition, so merging is associative and commutative) and the thing
/// quantiles are extracted from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket record counts.
    pub counts: [u64; BUCKETS],
    /// Per-bucket value sums.
    pub sums: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: [0; BUCKETS],
            sums: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all recorded values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sums.iter().sum()
    }

    /// Bucket-wise sum of two snapshots.
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|b| self.counts[b] + other.counts[b]),
            sums: std::array::from_fn(|b| self.sums[b] + other.sums[b]),
        }
    }

    /// Bucket-wise saturating difference `self − earlier`: the records
    /// that arrived *between* two snapshots of the same histogram.
    /// Because per-bucket counts and sums only grow, the difference of
    /// two chronological snapshots is itself a valid snapshot of the
    /// interval — the inverse of [`HistogramSnapshot::merge`], which is
    /// what the [`timeseries`] sampler builds its windows from.
    #[must_use]
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|b| self.counts[b].saturating_sub(earlier.counts[b])),
            sums: std::array::from_fn(|b| self.sums[b].saturating_sub(earlier.sums[b])),
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the mean of the bucket
    /// containing the record of rank `ceil(q * count)`. Exact whenever
    /// that bucket holds a single distinct value (always true for the
    /// known-distribution tests); otherwise within the bucket's
    /// power-of-two bounds. Returns `0.0` on an empty snapshot.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for b in 0..BUCKETS {
            if self.counts[b] == 0 {
                continue;
            }
            seen += self.counts[b];
            if seen >= rank {
                return self.sums[b] as f64 / self.counts[b] as f64;
            }
        }
        0.0
    }

    /// Mean of all recorded values (`0.0` when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let total = self.count();
        if total == 0 {
            0.0
        } else {
            self.sum() as f64 / total as f64
        }
    }

    /// Mean of the highest non-empty bucket — an upper-tail estimate
    /// within one power of two of the true maximum.
    #[must_use]
    pub fn max(&self) -> f64 {
        for b in (0..BUCKETS).rev() {
            if self.counts[b] > 0 {
                return self.sums[b] as f64 / self.counts[b] as f64;
            }
        }
        0.0
    }

    /// The p50/p95/p99 digest shipped over the wire.
    #[must_use]
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            max: self.max(),
        }
    }
}

/// Wire-friendly digest of a histogram: total count/sum plus extracted
/// quantiles. This is what the `metrics` protocol reply carries.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Upper-tail estimate (mean of the highest non-empty bucket).
    pub max: f64,
}

/// One `name{labels}` metric instance inside a [`Snapshot`].
#[derive(Clone, PartialEq, Debug)]
pub struct MetricEntry {
    /// Family name, e.g. `serve_request_ns`.
    pub name: String,
    /// Label pairs, e.g. `[("type", "eval")]`; empty for unlabelled.
    pub labels: Vec<(String, String)>,
    /// The value, by metric kind.
    pub value: MetricValue,
}

/// A snapshot value of one metric kind.
#[derive(Clone, PartialEq, Debug)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram digest.
    Histogram(HistogramSummary),
}

/// Point-in-time copy of a whole registry, sorted by
/// `(name, labels)` so renderings and wire encodings are deterministic.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Snapshot {
    /// All metric instances.
    pub entries: Vec<MetricEntry>,
    /// Age of the snapshotted registry in seconds (`0.0` for hand-built
    /// snapshots). [`render_text`] exposes it as `obs_uptime_seconds`;
    /// merging keeps the older registry's value.
    pub uptime_s: f64,
}

impl Snapshot {
    /// Looks up a counter by name and exact label set.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.find(name, labels).and_then(|e| match e.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        })
    }

    /// Looks up a gauge by name and exact label set.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.find(name, labels).and_then(|e| match e.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        })
    }

    /// Looks up a histogram digest by name and exact label set.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<HistogramSummary> {
        self.find(name, labels).and_then(|e| match e.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        })
    }

    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricEntry> {
        self.entries.iter().find(|e| {
            e.name == name
                && e.labels.len() == labels.len()
                && e.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        })
    }

    /// Concatenates two snapshots (e.g. a server-private registry plus
    /// the process-global one) and restores the sort order. The merged
    /// uptime is the larger of the two — the older registry.
    #[must_use]
    pub fn merge(mut self, other: Snapshot) -> Snapshot {
        self.entries.extend(other.entries);
        self.entries
            .sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        self.uptime_s = self.uptime_s.max(other.uptime_s);
        self
    }
}

/// Identity of one metric instance: family name plus its label pairs.
/// Sorted maps keyed on this order instances by `(name, labels)` — the
/// same order [`Snapshot`] uses.
pub type MetricKey = (String, Vec<(String, String)>);

type Key = MetricKey;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<Key, Arc<Counter>>,
    gauges: BTreeMap<Key, Arc<Gauge>>,
    histograms: BTreeMap<Key, Arc<Histogram>>,
}

/// Named metric families with get-or-create registration. Registration
/// takes a mutex; recording through the returned handles never does —
/// callers are expected to register once and hold the `Arc`s.
pub struct Registry {
    enabled: Arc<AtomicBool>,
    start: Instant,
    inner: Mutex<Inner>,
}

impl Registry {
    /// An enabled, empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry {
            enabled: Arc::new(AtomicBool::new(true)),
            start: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// An empty registry that starts disabled — the "no-op registry"
    /// baseline for overhead measurements.
    #[must_use]
    pub fn disabled() -> Registry {
        let r = Registry::new();
        r.set_enabled(false);
        r
    }

    /// Turns every handle of this registry on or off. Disabled handles
    /// cost one relaxed load per record.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether records currently land.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Time since the registry was created (the daemon reports this as
    /// its uptime).
    #[must_use]
    pub fn uptime(&self) -> Duration {
        self.start.elapsed()
    }

    /// Get-or-create an unlabelled counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Get-or-create a labelled counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = key_of(name, labels);
        let mut inner = self.inner.lock().expect("registry poisoned");
        Arc::clone(
            inner
                .counters
                .entry(key)
                .or_insert_with(|| Arc::new(Counter::with_flag(Arc::clone(&self.enabled)))),
        )
    }

    /// Get-or-create an unlabelled gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Get-or-create a labelled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = key_of(name, labels);
        let mut inner = self.inner.lock().expect("registry poisoned");
        Arc::clone(
            inner
                .gauges
                .entry(key)
                .or_insert_with(|| Arc::new(Gauge::with_flag(Arc::clone(&self.enabled)))),
        )
    }

    /// Get-or-create an unlabelled histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Get-or-create a labelled histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = key_of(name, labels);
        let mut inner = self.inner.lock().expect("registry poisoned");
        Arc::clone(
            inner
                .histograms
                .entry(key)
                .or_insert_with(|| Arc::new(Histogram::with_flag(Arc::clone(&self.enabled)))),
        )
    }

    /// Snapshots every registered metric, sorted by `(name, labels)`.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        let mut entries =
            Vec::with_capacity(inner.counters.len() + inner.gauges.len() + inner.histograms.len());
        for ((name, labels), c) in &inner.counters {
            entries.push(MetricEntry {
                name: name.clone(),
                labels: labels.clone(),
                value: MetricValue::Counter(c.get()),
            });
        }
        for ((name, labels), g) in &inner.gauges {
            entries.push(MetricEntry {
                name: name.clone(),
                labels: labels.clone(),
                value: MetricValue::Gauge(g.get()),
            });
        }
        for ((name, labels), h) in &inner.histograms {
            entries.push(MetricEntry {
                name: name.clone(),
                labels: labels.clone(),
                value: MetricValue::Histogram(h.snapshot().summary()),
            });
        }
        entries.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        Snapshot {
            entries,
            uptime_s: self.uptime().as_secs_f64(),
        }
    }

    /// Full-resolution copy of every registered metric — counters and
    /// gauges by value, histograms with their complete bucket arrays
    /// (where [`Registry::snapshot`] ships only the
    /// [`HistogramSummary`] digest). This is what interval differencing
    /// needs: the [`timeseries`] sampler subtracts two chronological
    /// raw snapshots bucket-wise to recover the records of the
    /// interval.
    #[must_use]
    pub fn raw_snapshot(&self) -> timeseries::RawSnapshot {
        let inner = self.inner.lock().expect("registry poisoned");
        timeseries::RawSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

pub(crate) fn key_of(name: &str, labels: &[(&str, &str)]) -> Key {
    (
        name.to_owned(),
        labels
            .iter()
            .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
            .collect(),
    )
}

/// The process-wide registry. The `dse` executor/persist layer and the
/// tuner record here; the serving daemon merges this into its private
/// per-server registry when answering `metrics`.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Renders a snapshot in the Prometheus text exposition style:
/// counters and gauges as single samples, histograms as summaries with
/// `quantile` labels plus `_sum`/`_count` samples.
///
/// The rendering is order-stable regardless of how the snapshot was
/// assembled: entries are sorted by `(name, labels)` before rendering
/// (so gauge families registered lazily, in any order, always print in
/// the same place), and a nonzero [`Snapshot::uptime_s`] is exposed as
/// a leading `obs_uptime_seconds` gauge.
#[must_use]
pub fn render_text(snapshot: &Snapshot) -> String {
    let mut entries: Vec<&MetricEntry> = snapshot.entries.iter().collect();
    entries.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
    let mut out = String::new();
    if snapshot.uptime_s > 0.0 {
        out.push_str("# TYPE obs_uptime_seconds gauge\n");
        out.push_str(&format!("obs_uptime_seconds {}\n", snapshot.uptime_s));
    }
    let mut last_family: Option<(&str, &str)> = None;
    for entry in entries {
        let kind = match entry.value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "summary",
        };
        if last_family != Some((&entry.name, kind)) {
            out.push_str(&format!("# TYPE {} {}\n", entry.name, kind));
            last_family = Some((&entry.name, kind));
        }
        match &entry.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    entry.name,
                    label_block(&entry.labels, None),
                    v
                ));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    entry.name,
                    label_block(&entry.labels, None),
                    v
                ));
            }
            MetricValue::Histogram(h) => {
                for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        entry.name,
                        label_block(&entry.labels, Some(q)),
                        v
                    ));
                }
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    entry.name,
                    label_block(&entry.labels, None),
                    h.sum
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    entry.name,
                    label_block(&entry.labels, None),
                    h.count
                ));
            }
        }
    }
    out
}

fn label_block(labels: &[(String, String)], quantile: Option<&str>) -> String {
    if labels.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape_label(v)))
        .collect();
    if let Some(q) = quantile {
        parts.push(format!("quantile=\"{q}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        // Every bucket b >= 1 spans [2^(b-1), 2^b - 1]: both edges land
        // in the same bucket and the next value starts the next one.
        for b in 1..BUCKETS - 1 {
            let lo = bucket_lower_bound(b);
            let hi = 2 * lo - 1;
            assert_eq!(bucket_of(lo), b, "lower edge of bucket {b}");
            assert_eq!(bucket_of(hi), b, "upper edge of bucket {b}");
            assert_eq!(bucket_of(hi + 1), b + 1, "first value past bucket {b}");
        }
        // The top bucket absorbs everything, including u64::MAX.
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_of(1u64 << 63), BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_exact_on_known_distributions() {
        // 50 values of 1000 and 50 values of 1_000_000: each lands in
        // its own bucket holding a single distinct value, so quantile
        // extraction is exact, not approximate.
        let h = Histogram::new();
        for _ in 0..50 {
            h.record(1_000);
        }
        for _ in 0..50 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum(), 50 * 1_000 + 50 * 1_000_000);
        assert_eq!(s.quantile(0.25), 1_000.0);
        assert_eq!(s.quantile(0.50), 1_000.0); // rank 50 is the last small value
        assert_eq!(s.quantile(0.51), 1_000_000.0);
        assert_eq!(s.quantile(0.95), 1_000_000.0);
        assert_eq!(s.quantile(0.99), 1_000_000.0);
        assert_eq!(s.max(), 1_000_000.0);
        assert_eq!(s.quantile(0.0), 1_000.0); // rank clamps to 1
        assert_eq!(s.quantile(1.0), 1_000_000.0);

        // Single-valued distribution: every quantile is that value.
        let h = Histogram::new();
        for _ in 0..7 {
            h.record(42);
        }
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 42.0);
        }
        assert_eq!(s.mean(), 42.0);

        // Empty histogram: quantiles are 0.
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0.0);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let parts: Vec<HistogramSnapshot> = [
            vec![1u64, 1, 2, 900, 900],
            vec![0, 7, 7, 7, 1 << 40],
            vec![1u64 << 62, 3, 65_536],
        ]
        .iter()
        .map(|values| {
            let h = Histogram::new();
            for &v in values {
                h.record(v);
            }
            h.snapshot()
        })
        .collect();
        let (a, b, c) = (&parts[0], &parts[1], &parts[2]);

        assert_eq!(a.merge(b), b.merge(a));
        assert_eq!(a.merge(b).merge(c), a.merge(&b.merge(c)));
        let merged = a.merge(b).merge(c);
        assert_eq!(merged.count(), 13);
        assert_eq!(
            merged.sum(),
            parts.iter().map(HistogramSnapshot::sum).sum::<u64>()
        );
        // Identity: merging with an empty snapshot changes nothing.
        assert_eq!(a.merge(&HistogramSnapshot::default()), *a);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 10_000;
        let h = Arc::new(Histogram::new());
        let c = Arc::new(Counter::new());
        thread::scope(|scope| {
            for t in 0..THREADS {
                let h = Arc::clone(&h);
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Deterministic value mix spanning many buckets.
                        h.record(((t * PER_THREAD + i) % 1_000) as u64);
                        c.inc();
                    }
                });
            }
        });
        let s = h.snapshot();
        // The final counts and sums are exactly deterministic no matter
        // how the threads interleaved.
        assert_eq!(s.count(), (THREADS * PER_THREAD) as u64);
        let expected_sum: u64 = (0..THREADS * PER_THREAD).map(|i| (i % 1_000) as u64).sum();
        assert_eq!(s.sum(), expected_sum);
        assert_eq!(c.get(), (THREADS * PER_THREAD) as u64);
    }

    #[test]
    fn disabled_registry_drops_records() {
        let r = Registry::new();
        let c = r.counter("events_total");
        let h = r.histogram_with("lat_ns", &[("type", "eval")]);
        let g = r.gauge("inflight");
        c.inc();
        h.record(5);
        g.set(2.0);
        r.set_enabled(false);
        c.inc();
        h.record(5);
        g.set(9.0);
        assert_eq!(c.get(), 1);
        assert_eq!(h.snapshot().count(), 1);
        assert_eq!(g.get(), 2.0);
        r.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 2);
        assert!(!Registry::disabled().is_enabled());
    }

    #[test]
    fn registry_hands_out_shared_handles_and_snapshots() {
        let r = Registry::new();
        let a = r.counter_with("req_total", &[("type", "eval")]);
        let b = r.counter_with("req_total", &[("type", "eval")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same (name, labels) must share storage");
        r.counter_with("req_total", &[("type", "sweep")]).add(5);
        r.gauge("inflight").set(3.0);
        let h = r.histogram("lat_ns");
        h.record(100);
        h.record(100);

        let snap = r.snapshot();
        assert_eq!(snap.counter("req_total", &[("type", "eval")]), Some(2));
        assert_eq!(snap.counter("req_total", &[("type", "sweep")]), Some(5));
        assert_eq!(snap.counter("req_total", &[("type", "nope")]), None);
        assert_eq!(snap.gauge("inflight", &[]), Some(3.0));
        let digest = snap.histogram("lat_ns", &[]).expect("histogram present");
        assert_eq!(digest.count, 2);
        assert_eq!(digest.sum, 200);
        assert_eq!(digest.p50, 100.0);
        // Sorted deterministically by (name, labels).
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn snapshot_merge_combines_registries() {
        let a = Registry::new();
        a.counter("serve_requests_total").inc();
        let b = Registry::new();
        b.counter("dse_points_total").add(9);
        let merged = a.snapshot().merge(b.snapshot());
        assert_eq!(merged.counter("serve_requests_total", &[]), Some(1));
        assert_eq!(merged.counter("dse_points_total", &[]), Some(9));
        assert_eq!(merged.entries.len(), 2);
        assert_eq!(merged.entries[0].name, "dse_points_total");
    }

    #[test]
    fn snapshot_merge_handles_disjoint_label_sets() {
        // The same family name carrying different label sets on each
        // side — the shape of merging a daemon registry (typed serve
        // families) with the global one. Nothing may collide, vanish,
        // or land out of order.
        let a = Registry::new();
        a.counter_with("req_total", &[("type", "eval")]).add(3);
        a.counter_with("req_total", &[("type", "sweep")]).add(1);
        a.histogram_with("lat_ns", &[("type", "eval")]).record(64);
        let b = Registry::new();
        b.counter_with("req_total", &[("net", "alexnet")]).add(7);
        b.counter("req_total").add(11); // unlabelled variant
        b.histogram_with("lat_ns", &[("type", "tune")]).record(128);
        let merged = a.snapshot().merge(b.snapshot());
        assert_eq!(merged.counter("req_total", &[("type", "eval")]), Some(3));
        assert_eq!(merged.counter("req_total", &[("type", "sweep")]), Some(1));
        assert_eq!(merged.counter("req_total", &[("net", "alexnet")]), Some(7));
        assert_eq!(merged.counter("req_total", &[]), Some(11));
        // A label set present on neither side stays absent (no partial
        // matching on label subsets).
        assert_eq!(merged.counter("req_total", &[("type", "tune")]), None);
        assert_eq!(
            merged
                .histogram("lat_ns", &[("type", "eval")])
                .map(|h| h.count),
            Some(1)
        );
        assert_eq!(
            merged
                .histogram("lat_ns", &[("type", "tune")])
                .map(|h| h.count),
            Some(1)
        );
        assert_eq!(merged.entries.len(), 6);
        // Order restored: (name, labels) ascending, unlabelled first
        // within a family.
        let keys: Vec<_> = merged
            .entries
            .iter()
            .map(|e| (e.name.clone(), e.labels.clone()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn histogram_delta_since_inverts_merge() {
        let h = Histogram::new();
        for v in [1_000u64, 2_000, 4_000] {
            h.record(v);
        }
        let earlier = h.snapshot();
        for v in [1_000u64, 1 << 30] {
            h.record(v);
        }
        let later = h.snapshot();
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum(), 1_000 + (1 << 30));
        // delta_since is the inverse of merge on chronological pairs...
        assert_eq!(earlier.merge(&delta), later);
        // ...saturates rather than wrapping on misuse...
        assert_eq!(earlier.delta_since(&later).count(), 0);
        // ...and a no-traffic interval is the empty snapshot.
        assert_eq!(later.delta_since(&later), HistogramSnapshot::default());
    }

    #[test]
    fn text_rendering_includes_uptime_and_is_order_stable() {
        let r = Registry::new();
        r.gauge("z_last").set(1.0);
        r.gauge("a_first").set(2.0);
        let snap = r.snapshot();
        assert!(snap.uptime_s > 0.0);
        let text = render_text(&snap);
        assert!(text.starts_with("# TYPE obs_uptime_seconds gauge\n"));
        assert!(text.contains("obs_uptime_seconds "));
        // Gauge families render sorted by name even if the entry order
        // was scrambled by hand.
        let mut scrambled = snap.clone();
        scrambled.entries.reverse();
        assert_eq!(render_text(&scrambled), text);
        let a = text.find("a_first 2").expect("a_first rendered");
        let z = text.find("z_last 1").expect("z_last rendered");
        assert!(a < z, "gauges out of order:\n{text}");
        // A hand-built snapshot has no uptime and renders none.
        let bare = Snapshot::default();
        assert!(!render_text(&bare).contains("obs_uptime_seconds"));
    }

    #[test]
    fn text_rendering_is_prometheus_shaped() {
        let r = Registry::new();
        r.counter_with("serve_requests_total", &[("type", "eval")])
            .add(3);
        r.gauge("serve_inflight_requests").set(1.0);
        let h = r.histogram_with("serve_request_ns", &[("type", "eval")]);
        for _ in 0..10 {
            h.record(4096);
        }
        let text = render_text(&r.snapshot());
        assert!(text.contains("# TYPE serve_requests_total counter\n"));
        assert!(text.contains("serve_requests_total{type=\"eval\"} 3\n"));
        assert!(text.contains("# TYPE serve_inflight_requests gauge\n"));
        assert!(text.contains("serve_inflight_requests 1\n"));
        assert!(text.contains("# TYPE serve_request_ns summary\n"));
        assert!(text.contains("serve_request_ns{type=\"eval\",quantile=\"0.5\"} 4096\n"));
        assert!(text.contains("serve_request_ns_sum{type=\"eval\"} 40960\n"));
        assert!(text.contains("serve_request_ns_count{type=\"eval\"} 10\n"));
        // Every non-comment line is "name_or_name{labels} value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("sample has a value");
            value.parse::<f64>().expect("value parses as a number");
        }
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let c = global().counter("obs_selftest_total");
        c.inc();
        assert!(
            global()
                .snapshot()
                .counter("obs_selftest_total", &[])
                .unwrap()
                >= 1
        );
        assert!(global().uptime() >= Duration::ZERO);
    }
}
