//! CNN layer specifications and synthetic data generation.
//!
//! The paper evaluates Chain-NN on "convolutional layers of pre-trained
//! networks for MNIST, Cifar-10, AlexNet and VGG-16" (§V.A). This crate
//! provides those networks' layer geometries ([`zoo`]) and — because the
//! pre-trained MatConvNet models are unavailable — seeded synthetic
//! weights/activations with realistic dynamic ranges ([`synth`]). All of
//! the paper's performance, traffic and energy results depend only on the
//! layer geometry, never on the weight values (see DESIGN.md §5).
//!
//! # Example
//!
//! ```
//! use chain_nn_nets::zoo;
//!
//! let alex = zoo::alexnet();
//! assert_eq!(alex.layers().len(), 5);
//! // Paper §V.B: "AlexNet contains five convolutional layers, including
//! // totally 666 millions of MACs per 227x227 input image."
//! assert_eq!(alex.total_macs(), 665_784_864);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod layer;
mod network;

pub mod synth;
pub mod zoo;

pub use layer::{ConvLayerSpec, LayerSpecError};
pub use network::Network;
