//! Convolutional-layer geometry (Table I of the paper).

use std::error::Error;
use std::fmt;

use chain_nn_tensor::conv::ConvGeometry;

/// Error produced when a layer specification is internally inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayerSpecError {
    /// A structural parameter (C, M, H, W, K, stride, groups) was zero.
    ZeroParam(&'static str),
    /// The kernel does not fit the padded input.
    KernelTooLarge {
        /// Padded input extent.
        padded: usize,
        /// Kernel extent.
        k: usize,
    },
    /// C or M is not divisible by the group count.
    BadGrouping {
        /// Input channels.
        c: usize,
        /// Output channels.
        m: usize,
        /// Groups.
        groups: usize,
    },
}

impl fmt::Display for LayerSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerSpecError::ZeroParam(p) => write!(f, "layer parameter {p} must be non-zero"),
            LayerSpecError::KernelTooLarge { padded, k } => {
                write!(f, "kernel {k} exceeds padded input extent {padded}")
            }
            LayerSpecError::BadGrouping { c, m, groups } => {
                write!(f, "groups={groups} does not divide C={c} and M={m}")
            }
        }
    }
}

impl Error for LayerSpecError {}

/// Geometry of one convolutional layer, using the paper's Table I
/// notation: C input channels, M output channels, H×W input maps, K×K
/// kernels — extended with stride, padding and AlexNet-style channel
/// groups.
///
/// # Example
///
/// ```
/// use chain_nn_nets::ConvLayerSpec;
/// let conv1 = ConvLayerSpec::named("conv1", 3, 227, 227, 11, 4, 0, 96, 1).unwrap();
/// assert_eq!(conv1.out_h(), 55);
/// assert_eq!(conv1.macs(), 105_415_200);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConvLayerSpec {
    name: String,
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    m: usize,
    groups: usize,
}

impl ConvLayerSpec {
    /// Builds and validates a named layer spec.
    ///
    /// # Errors
    ///
    /// Returns a [`LayerSpecError`] for zero parameters, kernels larger
    /// than the padded input, or group counts that do not divide C and M.
    #[allow(clippy::too_many_arguments)]
    pub fn named(
        name: &str,
        c: usize,
        h: usize,
        w: usize,
        k: usize,
        stride: usize,
        pad: usize,
        m: usize,
        groups: usize,
    ) -> Result<Self, LayerSpecError> {
        for (v, n) in [
            (c, "C"),
            (h, "H"),
            (w, "W"),
            (k, "K"),
            (stride, "stride"),
            (m, "M"),
            (groups, "groups"),
        ] {
            if v == 0 {
                return Err(LayerSpecError::ZeroParam(n));
            }
        }
        if k > h + 2 * pad || k > w + 2 * pad {
            return Err(LayerSpecError::KernelTooLarge {
                padded: (h + 2 * pad).min(w + 2 * pad),
                k,
            });
        }
        if !c.is_multiple_of(groups) || !m.is_multiple_of(groups) {
            return Err(LayerSpecError::BadGrouping { c, m, groups });
        }
        Ok(ConvLayerSpec {
            name: name.to_owned(),
            c,
            h,
            w,
            k,
            stride,
            pad,
            m,
            groups,
        })
    }

    /// Convenience constructor for square inputs without groups.
    pub fn square(
        name: &str,
        c: usize,
        h: usize,
        k: usize,
        stride: usize,
        pad: usize,
        m: usize,
    ) -> Result<Self, LayerSpecError> {
        Self::named(name, c, h, h, k, stride, pad, m, 1)
    }

    /// Layer name, e.g. `"conv3"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input channels C (total, across groups).
    pub fn c(&self) -> usize {
        self.c
    }

    /// Input height H.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Input width W.
    pub fn w(&self) -> usize {
        self.w
    }

    /// Kernel extent K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Zero padding.
    pub fn pad(&self) -> usize {
        self.pad
    }

    /// Output channels M (total, across groups).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Channel groups G.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Input channels per group.
    pub fn c_per_group(&self) -> usize {
        self.c / self.groups
    }

    /// Output channels per group.
    pub fn m_per_group(&self) -> usize {
        self.m / self.groups
    }

    /// The layer's [`ConvGeometry`].
    pub fn geometry(&self) -> ConvGeometry {
        ConvGeometry::new(self.k, self.stride, self.pad).expect("validated at construction")
    }

    /// Output map height E (the paper's E).
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Output map width.
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Multiply-accumulate operations per image:
    /// `M · E_h · E_w · (C/G) · K²`.
    pub fn macs(&self) -> u64 {
        self.m as u64
            * self.out_h() as u64
            * self.out_w() as u64
            * self.c_per_group() as u64
            * (self.k * self.k) as u64
    }

    /// Arithmetic operations per image, counting each MAC as 2 ops (the
    /// paper's GOPS convention).
    pub fn ops(&self) -> u64 {
        2 * self.macs()
    }

    /// Number of kernel weights: `M · (C/G) · K²`.
    pub fn weights(&self) -> u64 {
        self.m as u64 * self.c_per_group() as u64 * (self.k * self.k) as u64
    }

    /// Input feature-map elements per image (unpadded).
    pub fn ifmap_elems(&self) -> u64 {
        self.c as u64 * self.h as u64 * self.w as u64
    }

    /// Output feature-map elements per image.
    pub fn ofmap_elems(&self) -> u64 {
        self.m as u64 * self.out_h() as u64 * self.out_w() as u64
    }

    /// Padded input width, the extent actually streamed by the chain.
    pub fn padded_w(&self) -> usize {
        self.w + 2 * self.pad
    }

    /// Padded input height.
    pub fn padded_h(&self) -> usize {
        self.h + 2 * self.pad
    }

    /// Returns a copy renamed to `name` — useful when instantiating a
    /// template layer at several points of a network.
    #[must_use]
    pub fn renamed(&self, name: &str) -> Self {
        let mut s = self.clone();
        s.name = name.to_owned();
        s
    }
}

impl fmt::Display for ConvLayerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: C={} {}x{} K={} s={} p={} M={}",
            self.name, self.c, self.h, self.w, self.k, self.stride, self.pad, self.m
        )?;
        if self.groups > 1 {
            write!(f, " g={}", self.groups)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_conv1_numbers() {
        let l = ConvLayerSpec::named("conv1", 3, 227, 227, 11, 4, 0, 96, 1).unwrap();
        assert_eq!(l.out_h(), 55);
        assert_eq!(l.out_w(), 55);
        assert_eq!(l.macs(), 105_415_200);
        assert_eq!(l.weights(), 34_848);
        assert_eq!(l.ops(), 2 * 105_415_200);
    }

    #[test]
    fn grouped_layer_macs() {
        // AlexNet conv2: groups halve the per-output channel count.
        let l = ConvLayerSpec::named("conv2", 96, 27, 27, 5, 1, 2, 256, 2).unwrap();
        assert_eq!(l.c_per_group(), 48);
        assert_eq!(l.m_per_group(), 128);
        assert_eq!(l.out_h(), 27);
        assert_eq!(l.macs(), 223_948_800);
        assert_eq!(l.weights(), 307_200);
    }

    #[test]
    fn rejects_invalid() {
        assert!(matches!(
            ConvLayerSpec::square("x", 0, 8, 3, 1, 0, 4),
            Err(LayerSpecError::ZeroParam("C"))
        ));
        assert!(matches!(
            ConvLayerSpec::square("x", 1, 4, 7, 1, 0, 4),
            Err(LayerSpecError::KernelTooLarge { .. })
        ));
        assert!(matches!(
            ConvLayerSpec::named("x", 3, 8, 8, 3, 1, 1, 4, 2),
            Err(LayerSpecError::BadGrouping { .. })
        ));
    }

    #[test]
    fn display_contains_geometry() {
        let l = ConvLayerSpec::named("conv2", 96, 27, 27, 5, 1, 2, 256, 2).unwrap();
        let s = l.to_string();
        assert!(s.contains("conv2") && s.contains("K=5") && s.contains("g=2"));
    }

    #[test]
    fn padded_extents() {
        let l = ConvLayerSpec::square("x", 1, 13, 3, 1, 1, 1).unwrap();
        assert_eq!(l.padded_h(), 15);
        assert_eq!(l.padded_w(), 15);
    }
}
