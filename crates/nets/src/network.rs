//! A network = an ordered list of convolutional layers.

use std::fmt;

use crate::ConvLayerSpec;

/// An ordered collection of convolutional layers (the part of a CNN that
/// Chain-NN accelerates; pooling/activation live in `chain_nn_tensor::ops`
/// and are applied between layers by the examples).
///
/// # Example
///
/// ```
/// use chain_nn_nets::{ConvLayerSpec, Network};
/// let net = Network::new(
///     "tiny",
///     vec![ConvLayerSpec::square("c1", 1, 8, 3, 1, 1, 4).unwrap()],
/// );
/// assert_eq!(net.total_macs(), 4 * 8 * 8 * 9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    name: String,
    layers: Vec<ConvLayerSpec>,
}

impl Network {
    /// Builds a network from named layers.
    pub fn new(name: &str, layers: Vec<ConvLayerSpec>) -> Self {
        Network {
            name: name.to_owned(),
            layers,
        }
    }

    /// The network's name, e.g. `"AlexNet"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The convolutional layers in execution order.
    pub fn layers(&self) -> &[ConvLayerSpec] {
        &self.layers
    }

    /// Looks a layer up by name.
    pub fn layer(&self, name: &str) -> Option<&ConvLayerSpec> {
        self.layers.iter().find(|l| l.name() == name)
    }

    /// Total multiply-accumulates per image across all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs()).sum()
    }

    /// Total arithmetic operations per image (2 ops per MAC).
    pub fn total_ops(&self) -> u64 {
        2 * self.total_macs()
    }

    /// Total kernel weights across all layers.
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(|l| l.weights()).sum()
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({} conv layers, {:.1}M MACs, {:.1}k weights)",
            self.name,
            self.layers.len(),
            self.total_macs() as f64 / 1e6,
            self.total_weights() as f64 / 1e3
        )?;
        for l in &self.layers {
            writeln!(f, "  {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_layer() -> Network {
        Network::new(
            "t",
            vec![
                ConvLayerSpec::square("a", 1, 8, 3, 1, 1, 4).unwrap(),
                ConvLayerSpec::square("b", 4, 8, 3, 1, 1, 8).unwrap(),
            ],
        )
    }

    #[test]
    fn totals_sum_layers() {
        let net = two_layer();
        assert_eq!(
            net.total_macs(),
            net.layers()[0].macs() + net.layers()[1].macs()
        );
        assert_eq!(net.total_ops(), 2 * net.total_macs());
        assert_eq!(net.total_weights(), 36 + 288);
    }

    #[test]
    fn lookup_by_name() {
        let net = two_layer();
        assert_eq!(net.layer("b").unwrap().m(), 8);
        assert!(net.layer("zz").is_none());
    }

    #[test]
    fn display_lists_layers() {
        let s = two_layer().to_string();
        assert!(s.contains("a:") && s.contains("b:"));
    }
}
