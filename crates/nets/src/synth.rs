//! Seeded synthetic weights and activations.
//!
//! Substitute for the paper's MatConvNet-exported pre-trained models (see
//! DESIGN.md §5): deterministic, seeded tensors whose dynamic ranges mimic
//! trained CNNs (weights roughly N(0, (fan_in)^-1/2), activations
//! non-negative post-ReLU). Architecture-level results never depend on the
//! values; the quantization study only needs realistic ranges.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use chain_nn_tensor::Tensor;

use crate::ConvLayerSpec;

/// Deterministic generator of synthetic network data.
///
/// Two generators with the same seed produce identical tensors, so the
/// golden model and the chain simulator can be driven from independently
/// reconstructed copies of the same data.
///
/// # Example
///
/// ```
/// use chain_nn_nets::{synth::SynthSource, ConvLayerSpec};
/// let layer = ConvLayerSpec::square("c", 3, 8, 3, 1, 1, 4).unwrap();
/// let a = SynthSource::new(7).weights(&layer);
/// let b = SynthSource::new(7).weights(&layer);
/// assert_eq!(a, b);
/// ```
#[derive(Debug)]
pub struct SynthSource {
    rng: StdRng,
}

impl SynthSource {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SynthSource {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Approximate standard normal via the sum of four uniforms
    /// (Irwin–Hall, variance 1/3 each) — plenty for range realism and
    /// avoids pulling a distributions crate.
    fn normalish(&mut self) -> f32 {
        let s: f32 = (0..4).map(|_| self.rng.gen_range(-1.0f32..1.0)).sum();
        s * (3.0f32 / 4.0).sqrt() / 3.0f32.sqrt() // unit-ish variance
    }

    /// Kernel weights for `layer`, shaped M×(C/G)×K×K, scaled by
    /// He-initialization magnitude `sqrt(2/fan_in)` like a trained network.
    pub fn weights(&mut self, layer: &ConvLayerSpec) -> Tensor<f32> {
        let fan_in = (layer.c_per_group() * layer.k() * layer.k()) as f32;
        let scale = (2.0 / fan_in).sqrt();
        let dims = [layer.m(), layer.c_per_group(), layer.k(), layer.k()];
        let vol: usize = dims.iter().product();
        let data = (0..vol).map(|_| self.normalish() * scale).collect();
        Tensor::from_vec(dims, data).expect("generated buffer matches shape")
    }

    /// Per-output-channel biases for `layer`, small like trained biases.
    pub fn biases(&mut self, layer: &ConvLayerSpec) -> Vec<f32> {
        (0..layer.m()).map(|_| self.normalish() * 0.01).collect()
    }

    /// A batch of `n` input images for `layer`, shaped N×C×H×W with
    /// non-negative post-ReLU-like magnitudes in `[0, max)`.
    pub fn activations(&mut self, layer: &ConvLayerSpec, n: usize, max: f32) -> Tensor<f32> {
        let dims = [n, layer.c(), layer.h(), layer.w()];
        let vol: usize = dims.iter().product();
        let data = (0..vol)
            .map(|_| {
                let x = self.normalish().abs() * max / 3.0;
                x.min(max)
            })
            .collect();
        Tensor::from_vec(dims, data).expect("generated buffer matches shape")
    }

    /// Signed activations (pre-ReLU style), for stressing the quantizer
    /// with negative values.
    pub fn signed_activations(&mut self, layer: &ConvLayerSpec, n: usize, max: f32) -> Tensor<f32> {
        let dims = [n, layer.c(), layer.h(), layer.w()];
        let vol: usize = dims.iter().product();
        let data = (0..vol)
            .map(|_| (self.normalish() * max / 3.0).clamp(-max, max))
            .collect();
        Tensor::from_vec(dims, data).expect("generated buffer matches shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> ConvLayerSpec {
        ConvLayerSpec::square("t", 4, 8, 3, 1, 1, 6).unwrap()
    }

    #[test]
    fn deterministic_per_seed() {
        let l = layer();
        assert_eq!(
            SynthSource::new(1).weights(&l),
            SynthSource::new(1).weights(&l)
        );
        assert_ne!(
            SynthSource::new(1).weights(&l),
            SynthSource::new(2).weights(&l)
        );
    }

    #[test]
    fn weight_shape_and_scale() {
        let l = layer();
        let w = SynthSource::new(3).weights(&l);
        assert_eq!(w.shape().dims(), [6, 4, 3, 3]);
        let max = w.as_slice().iter().fold(0f32, |m, &x| m.max(x.abs()));
        // He scale for fan_in 36 is ~0.24; 4-uniform tails are bounded.
        assert!(max < 1.0, "weights unexpectedly large: {max}");
        assert!(max > 0.01, "weights unexpectedly small: {max}");
    }

    #[test]
    fn activations_nonnegative_and_bounded() {
        let l = layer();
        let a = SynthSource::new(4).activations(&l, 2, 8.0);
        assert_eq!(a.shape().dims(), [2, 4, 8, 8]);
        assert!(a.as_slice().iter().all(|&x| (0.0..=8.0).contains(&x)));
    }

    #[test]
    fn signed_activations_have_both_signs() {
        let l = layer();
        let a = SynthSource::new(5).signed_activations(&l, 1, 4.0);
        assert!(a.as_slice().iter().any(|&x| x > 0.0));
        assert!(a.as_slice().iter().any(|&x| x < 0.0));
        assert!(a.as_slice().iter().all(|&x| x.abs() <= 4.0));
    }

    #[test]
    fn biases_small() {
        let l = layer();
        let b = SynthSource::new(6).biases(&l);
        assert_eq!(b.len(), 6);
        assert!(b.iter().all(|x| x.abs() < 0.1));
    }
}
