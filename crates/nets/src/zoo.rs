//! The four networks named in the paper's methodology (§V.A): AlexNet,
//! VGG-16, LeNet-5 (MNIST) and a CIFAR-10 network.
//!
//! Geometry sources: AlexNet per Krizhevsky et al. (paper ref \[1\]) with
//! the 227×227 input the paper itself uses; VGG-16 per Simonyan &
//! Zisserman (ref \[2\]); LeNet-5 per LeCun's classic description; CIFAR-10
//! per the cuda-convnet "layers-80sec" model that MatConvNet ships.

use crate::{ConvLayerSpec, Network};

/// AlexNet's five convolutional layers (227×227 input, grouped conv2/4/5).
///
/// Matches the paper's "666 millions of MACs per 227x227 input image".
pub fn alexnet() -> Network {
    Network::new(
        "AlexNet",
        vec![
            ConvLayerSpec::named("conv1", 3, 227, 227, 11, 4, 0, 96, 1).unwrap(),
            ConvLayerSpec::named("conv2", 96, 27, 27, 5, 1, 2, 256, 2).unwrap(),
            ConvLayerSpec::named("conv3", 256, 13, 13, 3, 1, 1, 384, 1).unwrap(),
            ConvLayerSpec::named("conv4", 384, 13, 13, 3, 1, 1, 384, 2).unwrap(),
            ConvLayerSpec::named("conv5", 384, 13, 13, 3, 1, 1, 256, 2).unwrap(),
        ],
    )
}

/// VGG-16's thirteen 3×3 convolutional layers (224×224 input).
pub fn vgg16() -> Network {
    let mut layers = Vec::new();
    // (input channels, spatial size, output channels) per conv layer.
    let plan: [(usize, usize, usize); 13] = [
        (3, 224, 64),
        (64, 224, 64),
        (64, 112, 128),
        (128, 112, 128),
        (128, 56, 256),
        (256, 56, 256),
        (256, 56, 256),
        (256, 28, 512),
        (512, 28, 512),
        (512, 28, 512),
        (512, 14, 512),
        (512, 14, 512),
        (512, 14, 512),
    ];
    for (i, (c, h, m)) in plan.into_iter().enumerate() {
        let name = format!("conv{}_{}", block_of(i), index_in_block(i));
        layers.push(ConvLayerSpec::square(&name, c, h, 3, 1, 1, m).unwrap());
    }
    Network::new("VGG-16", layers)
}

fn block_of(i: usize) -> usize {
    match i {
        0 | 1 => 1,
        2 | 3 => 2,
        4..=6 => 3,
        7..=9 => 4,
        _ => 5,
    }
}

fn index_in_block(i: usize) -> usize {
    match i {
        0 | 2 | 4 | 7 | 10 => 1,
        1 | 3 | 5 | 8 | 11 => 2,
        _ => 3,
    }
}

/// LeNet-5's convolutional layers (32×32 MNIST input).
pub fn lenet() -> Network {
    Network::new(
        "LeNet-5",
        vec![
            ConvLayerSpec::square("conv1", 1, 32, 5, 1, 0, 6).unwrap(),
            ConvLayerSpec::square("conv2", 6, 14, 5, 1, 0, 16).unwrap(),
            ConvLayerSpec::square("conv3", 16, 5, 5, 1, 0, 120).unwrap(),
        ],
    )
}

/// The cuda-convnet CIFAR-10 network's convolutional layers (32×32 input).
pub fn cifar10() -> Network {
    Network::new(
        "CIFAR-10",
        vec![
            ConvLayerSpec::square("conv1", 3, 32, 5, 1, 2, 32).unwrap(),
            ConvLayerSpec::square("conv2", 32, 15, 5, 1, 2, 32).unwrap(),
            ConvLayerSpec::square("conv3", 32, 7, 5, 1, 2, 64).unwrap(),
        ],
    )
}

/// ResNet-18's convolutional layers (224×224 input) — beyond the
/// paper's evaluation set, included because its stride-2 3×3/1×1 layers
/// exercise the polyphase extension, and because the paper's
/// introduction motivates deeper residual networks.
pub fn resnet18() -> Network {
    let mut layers = vec![ConvLayerSpec::square("conv1", 3, 224, 7, 2, 3, 64).unwrap()];
    // (stage, input channels, spatial size, output channels).
    let stages: [(usize, usize, usize, usize); 4] = [
        (1, 64, 56, 64),
        (2, 64, 56, 128),
        (3, 128, 28, 256),
        (4, 256, 14, 512),
    ];
    for (idx, c_in, h_in, c_out) in stages {
        let downsample = c_in != c_out;
        let (s1, h_out) = if downsample { (2, h_in / 2) } else { (1, h_in) };
        // Block 1 (possibly strided) + projection shortcut.
        layers.push(
            ConvLayerSpec::square(&format!("l{idx}.b1.conv1"), c_in, h_in, 3, s1, 1, c_out)
                .unwrap(),
        );
        layers.push(
            ConvLayerSpec::square(&format!("l{idx}.b1.conv2"), c_out, h_out, 3, 1, 1, c_out)
                .unwrap(),
        );
        if downsample {
            layers.push(
                ConvLayerSpec::square(&format!("l{idx}.b1.down"), c_in, h_in, 1, 2, 0, c_out)
                    .unwrap(),
            );
        }
        // Block 2.
        layers.push(
            ConvLayerSpec::square(&format!("l{idx}.b2.conv1"), c_out, h_out, 3, 1, 1, c_out)
                .unwrap(),
        );
        layers.push(
            ConvLayerSpec::square(&format!("l{idx}.b2.conv2"), c_out, h_out, 3, 1, 1, c_out)
                .unwrap(),
        );
    }
    Network::new("ResNet-18", layers)
}

/// MobileNetV1's convolutional layers (224×224 input) — a
/// depthwise-separable stress test. Depthwise layers are grouped
/// convolutions with `groups = C` (one channel per group), the extreme
/// the chain's ParaTile was never designed for; pointwise layers are
/// 1×1 convolutions that map as single-PE primitives.
pub fn mobilenet_v1() -> Network {
    let mut layers = vec![ConvLayerSpec::named("conv1", 3, 224, 224, 3, 2, 1, 32, 1).unwrap()];
    // (channels in, spatial in, stride of the depthwise, channels out).
    let plan: [(usize, usize, usize, usize); 13] = [
        (32, 112, 1, 64),
        (64, 112, 2, 128),
        (128, 56, 1, 128),
        (128, 56, 2, 256),
        (256, 28, 1, 256),
        (256, 28, 2, 512),
        (512, 14, 1, 512),
        (512, 14, 1, 512),
        (512, 14, 1, 512),
        (512, 14, 1, 512),
        (512, 14, 1, 512),
        (512, 14, 2, 1024),
        (1024, 7, 1, 1024),
    ];
    for (i, (c, h, s, m)) in plan.into_iter().enumerate() {
        let h_out = if s == 2 { h / 2 } else { h };
        layers.push(ConvLayerSpec::named(&format!("dw{}", i + 1), c, h, h, 3, s, 1, c, c).unwrap());
        layers.push(
            ConvLayerSpec::named(&format!("pw{}", i + 1), c, h_out, h_out, 1, 1, 0, m, 1).unwrap(),
        );
    }
    Network::new("MobileNetV1", layers)
}

/// All six networks, for sweep-style experiments.
pub fn all() -> Vec<Network> {
    vec![
        lenet(),
        cifar10(),
        alexnet(),
        vgg16(),
        resnet18(),
        mobilenet_v1(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_macs_match_paper() {
        let net = alexnet();
        let macs: Vec<u64> = net.layers().iter().map(|l| l.macs()).collect();
        assert_eq!(
            macs,
            vec![
                105_415_200,
                223_948_800,
                149_520_384,
                112_140_288,
                74_760_192
            ]
        );
        // "totally 666 millions of MACs"
        assert_eq!(net.total_macs(), 665_784_864);
    }

    #[test]
    fn alexnet_weights() {
        let net = alexnet();
        let w: Vec<u64> = net.layers().iter().map(|l| l.weights()).collect();
        assert_eq!(w, vec![34_848, 307_200, 884_736, 663_552, 442_368]);
        assert_eq!(net.total_weights(), 2_332_704);
    }

    #[test]
    fn alexnet_ofmap_sizes_chain() {
        let net = alexnet();
        let e: Vec<usize> = net.layers().iter().map(|l| l.out_h()).collect();
        assert_eq!(e, vec![55, 27, 13, 13, 13]);
    }

    #[test]
    fn vgg16_structure() {
        let net = vgg16();
        assert_eq!(net.layers().len(), 13);
        assert!(net.layers().iter().all(|l| l.k() == 3 && l.stride() == 1));
        // VGG-16 convs are ~15.3 GMACs.
        let g = net.total_macs() as f64 / 1e9;
        assert!((15.0..15.7).contains(&g), "VGG-16 GMACs {g}");
        // Every layer preserves spatial extent (pad 1, k 3, s 1).
        assert!(net.layers().iter().all(|l| l.out_h() == l.h()));
        assert_eq!(net.layer("conv5_3").unwrap().m(), 512);
    }

    #[test]
    fn lenet_dims() {
        let net = lenet();
        let outs: Vec<usize> = net.layers().iter().map(|l| l.out_h()).collect();
        assert_eq!(outs, vec![28, 10, 1]);
    }

    #[test]
    fn cifar_dims() {
        let net = cifar10();
        let outs: Vec<usize> = net.layers().iter().map(|l| l.out_h()).collect();
        assert_eq!(outs, vec![32, 15, 7]);
    }

    #[test]
    fn all_contains_six() {
        assert_eq!(all().len(), 6);
    }

    #[test]
    fn mobilenet_structure() {
        let net = mobilenet_v1();
        assert_eq!(net.layers().len(), 1 + 13 * 2);
        // ~568M MACs (the canonical MobileNetV1 conv count).
        let m = net.total_macs() as f64 / 1e6;
        assert!((540.0..590.0).contains(&m), "MobileNetV1 MMACs {m}");
        // Depthwise layers are fully grouped.
        let dw = net.layer("dw7").unwrap();
        assert_eq!(dw.groups(), dw.c());
        assert_eq!(dw.c_per_group(), 1);
        // Pointwise layers are 1x1.
        assert_eq!(net.layer("pw13").unwrap().k(), 1);
        assert_eq!(net.layer("pw13").unwrap().out_h(), 7);
    }

    #[test]
    fn resnet18_structure() {
        let net = resnet18();
        // conv1 + 4 stages x (4 convs + possibly 1 downsample): stage 1
        // has no projection, stages 2-4 do.
        assert_eq!(net.layers().len(), 1 + 4 + 5 + 5 + 5);
        // ~1.81 GMACs for the conv layers.
        let g = net.total_macs() as f64 / 1e9;
        assert!((1.75..1.90).contains(&g), "ResNet-18 GMACs {g}");
        // Strided layers present (they exercise polyphase).
        assert!(net.layers().iter().filter(|l| l.stride() == 2).count() >= 4);
        assert_eq!(net.layer("l4.b2.conv2").unwrap().out_h(), 7);
        assert_eq!(net.layer("l2.b1.down").unwrap().k(), 1);
    }
}
