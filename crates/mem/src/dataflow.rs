//! The Fig. 7 loop-nest tiling plan.
//!
//! ```text
//! for (m = 0; m < M; m += Tm)        // OuterTile: ofmap tiles
//!   for (n = 0; n < N; n++)          // batch
//!     for (row = 0; row < H; row += Th)  // InnerTile: row bands
//!       for (m' = mm; m' < mm+Tm; m'++)  // ParaTile: primitives
//!         for (c = 0; c < C; c++)
//!           ofmaps[n][m'] += conv(ifmaps[n][c], kernel[m'][c])
//! ```
//!
//! The plan decides, from the chain mapping and the memory capacities:
//! `Tm` (primitives in flight), kernel tiles (when C exceeds the kMemory
//! depth), row bands, and — the decision that dominates DRAM traffic —
//! whether the ifmaps must be re-fetched for every ofmap tile. Ifmaps can
//! stay resident only if *all* ofmap tiles' kernels fit in kMemory at
//! once (`C · m_tiles ≤ depth`); otherwise each kernel reload forces a
//! fresh pass over the ifmaps. This single criterion reproduces the
//! paper's Table IV DRAM column for AlexNet conv2–conv5 (see
//! EXPERIMENTS.md).

use chain_nn_core::{ChainConfig, CoreError, KernelMapping, LayerShape};
use chain_nn_nets::ConvLayerSpec;

use crate::MemoryConfig;

/// The tiling plan for one layer group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TilingPlan {
    /// Primitives working in parallel (ParaTile width). May be smaller
    /// than the chain provides when oMemory cannot hold one row band of
    /// psums per primitive.
    pub para_tile: usize,
    /// Ofmap tiles (`⌈M/para_tile⌉`, the OuterTile count).
    pub m_tiles: usize,
    /// Kernel tiles per ofmap tile (`⌈C/kmemory_depth⌉`).
    pub c_tiles: usize,
    /// Row bands per (tile, channel) pass (`⌈E/K⌉`).
    pub bands: usize,
    /// True if the whole layer's kernels fit in kMemory simultaneously,
    /// letting ifmaps stream from DRAM once per image.
    pub ifmap_resident: bool,
    /// How many times each ifmap pixel crosses DRAM→iMemory per image.
    pub ifmap_dram_passes: usize,
    /// True if one row band of psums per primitive fits in oMemory.
    /// Because the InnerTile row loop sits *outside* the channel loop
    /// (Fig. 7), this — not the whole E×E map — is the oMemory working
    /// set. If even one primitive's band does not fit, psums spill to
    /// DRAM.
    pub psums_fit_omem: bool,
}

/// Computes the tiling plan for one layer group.
///
/// # Errors
///
/// Propagates mapping errors ([`CoreError::KernelTooLargeForChain`]) and
/// shape validation failures.
pub fn plan_group(
    shape: &LayerShape,
    chain: &ChainConfig,
    mem: &MemoryConfig,
) -> Result<TilingPlan, CoreError> {
    shape.validate()?;
    let mapping = KernelMapping::new(chain.num_pes(), shape.kh, shape.kw)?;
    // oMemory must hold one row band of psums (kh × out_w words) per
    // primitive in flight; shrink the ParaTile if it cannot.
    let band_words = shape.kh * shape.out_w();
    let omem_words = mem.omem_bytes / mem.word_bytes;
    let psums_fit_omem = band_words <= omem_words;
    let para_cap = (omem_words / band_words.max(1)).max(1);
    let para_tile = mapping.num_primitives().min(para_cap);
    let m_tiles = shape.m.div_ceil(para_tile);
    let c_tiles = shape.c.div_ceil(chain.kmemory_depth());
    let bands = shape.out_h().div_ceil(shape.kh);
    // All kernels resident ⇔ every (m_tile, c) weight has a slot.
    let ifmap_resident = shape
        .c
        .checked_mul(m_tiles)
        .is_some_and(|slots| slots <= chain.kmemory_depth());
    let ifmap_dram_passes = if ifmap_resident { 1 } else { m_tiles };
    Ok(TilingPlan {
        para_tile,
        m_tiles,
        c_tiles,
        bands,
        ifmap_resident,
        ifmap_dram_passes,
        psums_fit_omem,
    })
}

/// Computes the per-group plans of a (possibly grouped) network layer.
///
/// # Errors
///
/// Propagates [`plan_group`] errors.
pub fn plan_layer(
    spec: &ConvLayerSpec,
    chain: &ChainConfig,
    mem: &MemoryConfig,
) -> Result<Vec<TilingPlan>, CoreError> {
    (0..spec.groups())
        .map(|g| plan_group(&LayerShape::from_spec_group(spec, g), chain, mem))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_nn_nets::zoo;

    fn paper() -> (ChainConfig, MemoryConfig) {
        (ChainConfig::paper_576(), MemoryConfig::paper())
    }

    #[test]
    fn alexnet_plans_match_hand_analysis() {
        let (chain, mem) = paper();
        let alex = zoo::alexnet();
        // conv1: 4 primitives (K=11), 24 tiles, kernels all fit (3·24=72
        // slots ≤ 256) -> ifmaps resident.
        let p1 = &plan_layer(&alex.layers()[0], &chain, &mem).unwrap()[0];
        assert_eq!(p1.para_tile, 4);
        assert_eq!(p1.m_tiles, 24);
        assert!(p1.ifmap_resident);
        assert_eq!(p1.ifmap_dram_passes, 1);
        assert!(p1.psums_fit_omem); // 4·55·55·2 B = 24.2 KB ≤ 25 KB

        // conv2 (per group): 23 primitives, 6 tiles, 48·6=288 > 256 ->
        // ifmaps reloaded per tile.
        let p2 = &plan_layer(&alex.layers()[1], &chain, &mem).unwrap()[0];
        assert_eq!(p2.para_tile, 23);
        assert_eq!(p2.m_tiles, 6);
        assert!(!p2.ifmap_resident);
        assert_eq!(p2.ifmap_dram_passes, 6);

        // conv3: 64 primitives, 6 tiles, 256·6 slots >> 256.
        let p3 = &plan_layer(&alex.layers()[2], &chain, &mem).unwrap()[0];
        assert_eq!(p3.para_tile, 64);
        assert_eq!(p3.m_tiles, 6);
        assert_eq!(p3.c_tiles, 1); // C=256 exactly fits the depth
        assert_eq!(p3.bands, 5);
        assert!(!p3.ifmap_resident);
    }

    #[test]
    fn vgg_deep_layers_need_kernel_tiles() {
        let (chain, mem) = paper();
        let vgg = zoo::vgg16();
        // conv5_3: C=512 -> 2 kernel tiles at depth 256.
        let p = &plan_layer(vgg.layer("conv5_3").unwrap(), &chain, &mem).unwrap()[0];
        assert_eq!(p.c_tiles, 2);
    }

    #[test]
    fn omemory_pressure_shrinks_para_tile() {
        let chain = ChainConfig::paper_576();
        // VGG conv1_1: band = 3·224 = 672 words; 25 KB holds 12800 words
        // -> at most 19 of the 64 available primitives in flight.
        let vgg = zoo::vgg16();
        let p = &plan_layer(&vgg.layers()[0], &chain, &MemoryConfig::paper()).unwrap()[0];
        assert_eq!(p.para_tile, 19);
        assert!(p.psums_fit_omem);
        assert_eq!(p.m_tiles, 64usize.div_ceil(19));
    }

    #[test]
    fn psum_spill_detected_for_tiny_omemory() {
        let chain = ChainConfig::paper_576();
        let mem = MemoryConfig {
            // conv3 band = 3·13 = 39 words = 78 B; give it less.
            omem_bytes: 64,
            ..MemoryConfig::paper()
        };
        let alex = zoo::alexnet();
        let p = &plan_layer(&alex.layers()[2], &chain, &mem).unwrap()[0];
        assert!(!p.psums_fit_omem);
        assert_eq!(p.para_tile, 1);
    }

    #[test]
    fn grouped_layer_has_one_plan_per_group() {
        let (chain, mem) = paper();
        let alex = zoo::alexnet();
        assert_eq!(
            plan_layer(&alex.layers()[3], &chain, &mem).unwrap().len(),
            2
        );
    }
}
