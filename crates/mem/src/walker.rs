//! Event-ordered walk of the Fig. 7 loop nest over the memory hierarchy.
//!
//! Where [`traffic`](crate::traffic) computes closed-form byte counts,
//! the walker *executes* the tiling plan step by step — ofmap tile →
//! kernel tile → channel → row band — driving the [`Sram`]/[`Dram`]
//! counter models in program order. It produces the same totals (tested
//! against each other) plus information only an ordered walk can give:
//! per-phase bandwidth demand, which the paper's "invariant input
//! bandwidth" claim is about.

use chain_nn_core::perf::{CycleModel, PerfModel};
use chain_nn_core::{ChainConfig, CoreError, LayerShape};
use chain_nn_nets::ConvLayerSpec;

use crate::dataflow::plan_group;
use crate::sram::{Dram, Sram};
use crate::MemoryConfig;

/// The hierarchy state after walking a layer.
#[derive(Debug, Clone)]
pub struct HierarchyWalk {
    /// iMemory model with accumulated counters.
    pub imem: Sram,
    /// oMemory model with accumulated counters.
    pub omem: Sram,
    /// Off-chip DRAM counters.
    pub dram: Dram,
    /// kMemory (distributed RF) read count.
    pub kmem_reads: u64,
    /// Streaming cycles of the walked layer (strict model), for
    /// bandwidth figures.
    pub stream_cycles: f64,
}

impl HierarchyWalk {
    /// Average iMemory read bandwidth while streaming, in words/cycle —
    /// the paper's "invariant input bandwidth" is ≤ 2 regardless of K.
    pub fn imem_words_per_cycle(&self) -> f64 {
        if self.stream_cycles == 0.0 {
            return 0.0;
        }
        self.imem.counters().reads as f64 / self.stream_cycles
    }
}

/// Walks one layer at batch size `batch` through the hierarchy.
///
/// # Errors
///
/// Propagates planning and mapping errors.
pub fn walk_layer(
    spec: &ConvLayerSpec,
    chain: &ChainConfig,
    mem: &MemoryConfig,
    batch: usize,
) -> Result<HierarchyWalk, CoreError> {
    let mut imem = Sram::new("iMemory", mem.imem_bytes, mem.word_bytes);
    let mut omem = Sram::new("oMemory", mem.omem_bytes, mem.word_bytes);
    let mut dram = Dram::new();
    let mut kmem_reads = 0u64;

    // Kernels cross DRAM once per batch.
    dram.read(spec.weights());

    for g in 0..spec.groups() {
        let shape = LayerShape::from_spec_group(spec, g);
        let plan = plan_group(&shape, chain, mem)?;
        let pattern_pixels = ((2 * shape.kh - 1) * shape.padded_w()) as u64;
        let band_rows = shape.kh;
        for _n in 0..batch {
            for m_tile in 0..plan.m_tiles {
                let prims = plan.para_tile.min(shape.m - m_tile * plan.para_tile);
                if !plan.ifmap_resident || m_tile == 0 {
                    // Ifmaps cross DRAM for this tile.
                    dram.read((shape.c * shape.h * shape.w) as u64);
                }
                for ct in 0..plan.c_tiles {
                    let channels = chain
                        .kmemory_depth()
                        .min(shape.c - ct * chain.kmemory_depth());
                    for _c in 0..channels {
                        for band in 0..plan.bands {
                            // Stream one pattern from iMemory.
                            imem.read(pattern_pixels);
                            // Every active PE latches its weight once.
                            kmem_reads += (prims * shape.kh * shape.kw) as u64;
                            // Accumulate the band's outputs (RMW).
                            let rows = band_rows.min(shape.out_h() - band * band_rows);
                            let outs = (prims * rows * shape.out_w()) as u64;
                            omem.read(outs);
                            omem.write(outs);
                        }
                    }
                }
                // Finished tile: write its ofmaps back to DRAM.
                dram.write((prims * shape.out_h() * shape.out_w()) as u64);
            }
        }
    }

    let stream_cycles = PerfModel::new(*chain)
        .layer(spec, CycleModel::Strict)?
        .stream_cycles
        * batch as f64;
    Ok(HierarchyWalk {
        imem,
        omem,
        dram,
        kmem_reads,
        stream_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_nn_nets::zoo;

    fn walk(spec: &ConvLayerSpec, batch: usize) -> HierarchyWalk {
        walk_layer(
            spec,
            &ChainConfig::paper_576(),
            &MemoryConfig::paper(),
            batch,
        )
        .expect("walk succeeds")
    }

    /// The walker's oMemory accesses equal the closed form exactly —
    /// including partial last bands and partial ofmap tiles.
    #[test]
    fn omem_matches_closed_form() {
        let alex = zoo::alexnet();
        for spec in &alex.layers()[1..] {
            let w = walk(spec, 2);
            let expect = 2
                * 2u64
                * spec.m() as u64
                * (spec.out_h() * spec.out_w()) as u64
                * spec.c_per_group() as u64;
            assert_eq!(w.omem.counters().total(), expect, "{}", spec.name());
        }
    }

    /// Input bandwidth is invariant in K and ≤ 2 words/cycle — paper
    /// §IV.B's core claim, measured across kernel sizes.
    #[test]
    fn imem_bandwidth_invariant_in_k() {
        for (k, c, m, h) in [
            (3usize, 8usize, 16usize, 27usize),
            (5, 8, 16, 27),
            (7, 8, 16, 29),
        ] {
            let spec = ConvLayerSpec::square("t", c, h, k, 1, k / 2, m).expect("spec");
            let w = walk(&spec, 1);
            let bw = w.imem_words_per_cycle();
            assert!(bw > 1.5 && bw <= 2.0, "K={k}: bandwidth {bw} words/cycle");
        }
    }

    /// DRAM ifmap passes follow the kernel-fit criterion (conv3 reloads
    /// 6x, conv1 once), matching the analytic model's DRAM column.
    #[test]
    fn dram_matches_traffic_model() {
        use crate::traffic::TrafficModel;
        let model = TrafficModel::new(ChainConfig::paper_576(), MemoryConfig::paper());
        let alex = zoo::alexnet();
        for spec in alex.layers() {
            if spec.stride() != 1 {
                continue; // walker streams stride-1 patterns only
            }
            let w = walk(spec, 4);
            let t = model.layer_traffic(spec, 4).expect("traffic");
            let walked = w.dram.counters().bytes(2);
            let analytic = t.dram_bytes;
            let ratio = walked as f64 / analytic as f64;
            assert!(
                (0.99..=1.01).contains(&ratio),
                "{}: walked {walked} vs analytic {analytic}",
                spec.name()
            );
        }
    }

    /// kMemory latches: one per active PE per pattern, summed over the
    /// whole walk.
    #[test]
    fn kmem_reads_counted_per_pattern() {
        let spec = ConvLayerSpec::square("t", 4, 13, 3, 1, 1, 64).expect("spec");
        let w = walk(&spec, 1);
        // 64 ofmaps on 64 primitives -> 1 tile; 4 channels x 5 bands.
        assert_eq!(w.kmem_reads, (64 * 9) as u64 * 4 * 5);
    }

    /// Larger batches scale streaming linearly but weights only once.
    #[test]
    fn batch_scaling() {
        let spec = ConvLayerSpec::square("t", 4, 13, 3, 1, 1, 8).expect("spec");
        let w1 = walk(&spec, 1);
        let w4 = walk(&spec, 4);
        assert_eq!(w4.imem.counters().reads, 4 * w1.imem.counters().reads);
        let weight_words = spec.weights();
        assert_eq!(
            w4.dram.counters().reads - weight_words,
            4 * (w1.dram.counters().reads - weight_words)
        );
    }
}
