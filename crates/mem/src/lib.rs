//! Memory hierarchy models and the dataflow traffic engine (paper §IV.D,
//! Fig. 7, Table IV).
//!
//! Chain-NN's hierarchy is: off-chip DRAM → on-chip `iMemory` (32 KB,
//! ifmaps) and `oMemory` (25 KB, partial sums) → per-PE `kMemory`
//! register files (295 KB total, stationary kernels). This crate builds:
//!
//! * [`sram`] — counting models of the SRAMs and DRAM.
//! * [`dataflow`] — the Fig. 7 loop-nest tiling plan: how many ofmap
//!   tiles, kernel tiles and row bands a layer needs, and whether ifmaps
//!   can stay resident across ofmap tiles (the kernel-fit criterion that
//!   turns out to predict the paper's DRAM column).
//! * [`traffic`] — the per-level byte counts of Table IV.
//!
//! # Example
//!
//! ```
//! use chain_nn_core::ChainConfig;
//! use chain_nn_mem::{MemoryConfig, traffic::TrafficModel};
//! use chain_nn_nets::zoo;
//!
//! let model = TrafficModel::new(ChainConfig::paper_576(), MemoryConfig::paper());
//! let alex = zoo::alexnet();
//! // Paper Table IV, conv3 oMemory: 265.8 MB at batch 4.
//! let t = model.layer_traffic(&alex.layers()[2], 4).unwrap();
//! assert_eq!(t.omem_bytes, 265_814_016);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataflow;
pub mod sram;
pub mod traffic;
pub mod walker;

/// On-chip memory capacities (paper §V.B: 32 KB iMemory, 25 KB oMemory,
/// 295 KB kMemory distributed into the PEs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryConfig {
    /// iMemory capacity in bytes.
    pub imem_bytes: usize,
    /// oMemory capacity in bytes.
    pub omem_bytes: usize,
    /// Bytes per operand word (16-bit fixed point → 2).
    pub word_bytes: usize,
}

impl MemoryConfig {
    /// The paper's instance: 32 KB + 25 KB with 16-bit words.
    pub fn paper() -> Self {
        MemoryConfig {
            imem_bytes: 32 * 1024,
            omem_bytes: 25 * 1024,
            word_bytes: 2,
        }
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes() {
        let m = MemoryConfig::paper();
        assert_eq!(m.imem_bytes, 32_768);
        assert_eq!(m.omem_bytes, 25_600);
        assert_eq!(m.word_bytes, 2);
        assert_eq!(m, MemoryConfig::default());
    }
}
