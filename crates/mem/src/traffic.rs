//! Per-level memory traffic (paper Table IV).
//!
//! Byte counts per level, per layer, for a batch of N images:
//!
//! * **oMemory** — every output is read-modified-written once per input
//!   channel pass: `2 · N · M · E² · (C/G)` accesses. Matches the paper's
//!   Table IV *exactly* on all five AlexNet layers.
//! * **iMemory** — the chain consumes `lanes` pixels per streaming cycle
//!   (2 for stride-1 dual-channel, 1 effective for the strided layer):
//!   `lanes · stream_cycles · N` reads. Within ~10 % of the paper.
//! * **kMemory** — each active PE latches its working weight once per
//!   `K·E`-pixel pattern: `stream_cycles · active_PEs / (K·E) · N` reads.
//!   Matches conv2–conv5 within 5 %; the paper's conv1 entry implies a
//!   2.8× higher activity for the strided layer (documented anomaly, see
//!   EXPERIMENTS.md).
//! * **DRAM** — ifmaps cross once per image if all kernels fit in
//!   kMemory, else once per ofmap tile ([`dataflow`](crate::dataflow));
//!   ofmaps are written once; weights are fetched once per batch.
//!   Reproduces conv2–conv5 within 5 %; for conv1 our tiling needs 2.5×
//!   *less* traffic than the paper reports.

use chain_nn_core::perf::{CycleModel, PerfModel};
use chain_nn_core::{ChainConfig, CoreError, KernelMapping, LayerShape};
use chain_nn_nets::{ConvLayerSpec, Network};

use crate::dataflow::plan_group;
use crate::MemoryConfig;

/// Traffic of one layer for a whole batch, in bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerTraffic {
    /// Layer name.
    pub name: String,
    /// Off-chip DRAM traffic.
    pub dram_bytes: u64,
    /// iMemory reads (SRAM → chain).
    pub imem_bytes: u64,
    /// kMemory reads (RF → MAC).
    pub kmem_bytes: u64,
    /// oMemory read+write traffic.
    pub omem_bytes: u64,
    /// DRAM breakdown: ifmap fetches.
    pub dram_ifmap_bytes: u64,
    /// DRAM breakdown: ofmap writebacks (including psum spill if the
    /// working set overflows oMemory).
    pub dram_ofmap_bytes: u64,
    /// DRAM breakdown: kernel fetches (once per batch).
    pub dram_weight_bytes: u64,
}

/// Sums a set of layer traffics (the "Total" column of Table IV).
pub fn totals(layers: &[LayerTraffic]) -> LayerTraffic {
    let mut t = LayerTraffic {
        name: "Total".to_owned(),
        dram_bytes: 0,
        imem_bytes: 0,
        kmem_bytes: 0,
        omem_bytes: 0,
        dram_ifmap_bytes: 0,
        dram_ofmap_bytes: 0,
        dram_weight_bytes: 0,
    };
    for l in layers {
        t.dram_bytes += l.dram_bytes;
        t.imem_bytes += l.imem_bytes;
        t.kmem_bytes += l.kmem_bytes;
        t.omem_bytes += l.omem_bytes;
        t.dram_ifmap_bytes += l.dram_ifmap_bytes;
        t.dram_ofmap_bytes += l.dram_ofmap_bytes;
        t.dram_weight_bytes += l.dram_weight_bytes;
    }
    t
}

/// The analytic traffic model (Table IV generator).
///
/// See the [crate example](crate) for usage.
#[derive(Debug, Clone)]
pub struct TrafficModel {
    chain: ChainConfig,
    mem: MemoryConfig,
    perf: PerfModel,
}

impl TrafficModel {
    /// Builds the model for a chain and memory configuration.
    pub fn new(chain: ChainConfig, mem: MemoryConfig) -> Self {
        TrafficModel {
            perf: PerfModel::new(chain),
            chain,
            mem,
        }
    }

    /// Traffic of one layer for `batch` images.
    ///
    /// # Errors
    ///
    /// Propagates mapping errors for kernels that do not fit the chain.
    pub fn layer_traffic(
        &self,
        spec: &ConvLayerSpec,
        batch: usize,
    ) -> Result<LayerTraffic, CoreError> {
        let n = batch as u64;
        let word = self.mem.word_bytes as u64;
        let e_h = spec.out_h() as u64;
        let e_w = spec.out_w() as u64;

        // oMemory: RMW per output per channel pass, per group.
        let omem_accesses = 2 * n * spec.m() as u64 * e_h * e_w * spec.c_per_group() as u64;

        // Stream cycles per image (paper-calibrated model).
        let perf = self.perf.layer(spec, CycleModel::PaperCalibrated)?;
        let stream = perf.stream_cycles;

        // iMemory: lanes × streaming cycles.
        let lanes = if spec.stride() == 1 { 2.0 } else { 1.0 };
        let imem_reads = lanes * stream * n as f64;

        // kMemory: one working-weight latch per active PE per K·E pixels.
        let mapping = KernelMapping::new(self.chain.num_pes(), spec.k(), spec.k())?;
        let kmem_reads =
            stream * mapping.active_pes() as f64 / (spec.k() as f64 * e_w as f64) * n as f64;

        // DRAM, per group.
        let mut dram_ifmap = 0u64;
        let mut dram_ofmap = 0u64;
        for g in 0..spec.groups() {
            let shape = LayerShape::from_spec_group(spec, g);
            let plan = plan_group(&shape, &self.chain, &self.mem)?;
            let ifmap_words = (shape.c * shape.h * shape.w) as u64;
            dram_ifmap += n * plan.ifmap_dram_passes as u64 * ifmap_words * word;
            let ofmap_words = shape.m as u64 * e_h * e_w;
            let ofmap_factor = if plan.psums_fit_omem {
                1 // written back once
            } else {
                // Psums spill: read+write per channel pass.
                2 * shape.c as u64
            };
            dram_ofmap += n * ofmap_factor * ofmap_words * word;
        }
        let dram_weights = spec.weights() * word; // once per batch

        Ok(LayerTraffic {
            name: spec.name().to_owned(),
            dram_bytes: dram_ifmap + dram_ofmap + dram_weights,
            imem_bytes: (imem_reads * word as f64).round() as u64,
            kmem_bytes: (kmem_reads * word as f64).round() as u64,
            omem_bytes: omem_accesses * word,
            dram_ifmap_bytes: dram_ifmap,
            dram_ofmap_bytes: dram_ofmap,
            dram_weight_bytes: dram_weights,
        })
    }

    /// Traffic of every layer of `net` (the rows of Table IV).
    ///
    /// # Errors
    ///
    /// Propagates per-layer errors.
    pub fn network_traffic(
        &self,
        net: &Network,
        batch: usize,
    ) -> Result<Vec<LayerTraffic>, CoreError> {
        net.layers()
            .iter()
            .map(|l| self.layer_traffic(l, batch))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_nn_nets::zoo;

    fn model() -> TrafficModel {
        TrafficModel::new(ChainConfig::paper_576(), MemoryConfig::paper())
    }

    fn mb(bytes: u64) -> f64 {
        bytes as f64 / 1e6
    }

    /// Table IV oMemory row: 13.9 / 143.3 / 265.8 / 199.4 / 132.9 MB —
    /// reproduced exactly.
    #[test]
    fn table_four_omemory_exact() {
        let rows = model().network_traffic(&zoo::alexnet(), 4).unwrap();
        let got: Vec<f64> = rows.iter().map(|r| mb(r.omem_bytes)).collect();
        let paper = [13.9, 143.3, 265.8, 199.4, 132.9];
        for (g, p) in got.iter().zip(paper) {
            assert!((g - p).abs() < 0.05, "oMemory {g} vs paper {p}");
        }
        let total = totals(&rows);
        assert!((mb(total.omem_bytes) - 755.3).abs() < 0.2);
    }

    /// Table IV iMemory row: 6.6 / 8.7 / 4.8 / 3.6 / 2.4 MB — within 10 %.
    #[test]
    fn table_four_imemory_within_ten_percent() {
        let rows = model().network_traffic(&zoo::alexnet(), 4).unwrap();
        let paper = [6.6, 8.7, 4.8, 3.6, 2.4];
        for (r, p) in rows.iter().zip(paper) {
            let g = mb(r.imem_bytes);
            assert!((g - p).abs() / p < 0.10, "{}: iMemory {g} vs {p}", r.name);
        }
    }

    /// Table IV kMemory row: conv2–conv5 within 5 %; conv1 documented
    /// anomaly (paper 15.4 MB, model 5.6 MB).
    #[test]
    fn table_four_kmemory() {
        let rows = model().network_traffic(&zoo::alexnet(), 4).unwrap();
        let paper = [15.4, 17.8, 37.2, 27.9, 18.6];
        for (i, (r, p)) in rows.iter().zip(paper).enumerate() {
            let g = mb(r.kmem_bytes);
            if i == 0 {
                assert!((g - 5.6).abs() < 0.2, "conv1 anomaly moved: {g}");
            } else {
                assert!((g - p).abs() / p < 0.06, "{}: kMemory {g} vs {p}", r.name);
            }
        }
    }

    /// Table IV DRAM row: 9.0 / 5.5 / 4.3 / 3.4 / 2.3 MB — conv2–conv5
    /// within 5 %, conv1 needs 2.5× less under our tiling.
    #[test]
    fn table_four_dram() {
        let rows = model().network_traffic(&zoo::alexnet(), 4).unwrap();
        let paper = [9.0, 5.5, 4.3, 3.4, 2.3];
        for (i, (r, p)) in rows.iter().zip(paper).enumerate() {
            let g = mb(r.dram_bytes);
            if i == 0 {
                assert!((g - 3.63).abs() < 0.1, "conv1 model moved: {g} (paper {p})");
            } else {
                assert!((g - p).abs() / p < 0.05, "{}: DRAM {g} vs {p}", r.name);
            }
        }
    }

    /// DRAM breakdown components sum to the total.
    #[test]
    fn dram_breakdown_sums() {
        let rows = model().network_traffic(&zoo::alexnet(), 4).unwrap();
        for r in &rows {
            assert_eq!(
                r.dram_bytes,
                r.dram_ifmap_bytes + r.dram_ofmap_bytes + r.dram_weight_bytes
            );
        }
    }

    /// Weights cross DRAM once per batch — bigger batches don't pay more.
    #[test]
    fn weight_traffic_batch_invariant() {
        let m = model();
        let alex = zoo::alexnet();
        let l = &alex.layers()[2];
        let t4 = m.layer_traffic(l, 4).unwrap();
        let t128 = m.layer_traffic(l, 128).unwrap();
        assert_eq!(t4.dram_weight_bytes, t128.dram_weight_bytes);
        assert_eq!(t128.dram_ifmap_bytes, 32 * t4.dram_ifmap_bytes);
    }

    /// Chain-NN's headline claim (§V.C): ifmaps are reused so each pixel
    /// crosses the SRAM boundary only (2K−1)/K times per pattern set —
    /// i.e. iMemory traffic per useful MAC is far below one operand.
    #[test]
    fn imem_traffic_far_below_one_operand_per_mac() {
        let rows = model().network_traffic(&zoo::alexnet(), 4).unwrap();
        let total = totals(&rows);
        let macs = 4 * zoo::alexnet().total_macs();
        let operands_per_mac = total.imem_bytes as f64 / 2.0 / macs as f64;
        assert!(
            operands_per_mac < 0.02,
            "ifmap operand rate {operands_per_mac} — reuse broken"
        );
    }

    /// Psum spill inflates DRAM ofmap traffic when oMemory is tiny.
    #[test]
    fn psum_spill_costs_dram() {
        let small = TrafficModel::new(
            ChainConfig::paper_576(),
            MemoryConfig {
                omem_bytes: 64, // below one conv3 row band (78 B)
                ..MemoryConfig::paper()
            },
        );
        let alex = zoo::alexnet();
        let l = &alex.layers()[2];
        let spill = small.layer_traffic(l, 4).unwrap();
        let fit = model().layer_traffic(l, 4).unwrap();
        assert!(spill.dram_ofmap_bytes > 100 * fit.dram_ofmap_bytes);
    }

    #[test]
    fn totals_accumulate() {
        let rows = model().network_traffic(&zoo::alexnet(), 4).unwrap();
        let t = totals(&rows);
        assert_eq!(t.dram_bytes, rows.iter().map(|r| r.dram_bytes).sum::<u64>());
        assert_eq!(t.name, "Total");
    }
}
