//! Counting models of on-chip SRAMs and off-chip DRAM.
//!
//! These are *architectural* memory models: they track capacity and
//! access counts (the inputs to the energy model), not contents — data
//! correctness is the chain simulator's job.

use std::fmt;

/// Access counters shared by all memory models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessCounters {
    /// Number of read accesses.
    pub reads: u64,
    /// Number of write accesses.
    pub writes: u64,
}

impl AccessCounters {
    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Total traffic in bytes given a word size.
    pub fn bytes(&self, word_bytes: usize) -> u64 {
        self.total() * word_bytes as u64
    }
}

/// A single-level on-chip SRAM with capacity tracking.
///
/// # Example
///
/// ```
/// use chain_nn_mem::sram::Sram;
/// let mut m = Sram::new("iMemory", 32 * 1024, 2);
/// m.read(4);
/// m.write(2);
/// assert_eq!(m.counters().bytes(2), 12);
/// assert!(m.fits(16_000));
/// assert!(!m.fits(17_000));
/// ```
#[derive(Debug, Clone)]
pub struct Sram {
    name: &'static str,
    capacity_bytes: usize,
    word_bytes: usize,
    counters: AccessCounters,
}

impl Sram {
    /// Creates an SRAM model named `name` with `capacity_bytes` capacity
    /// and `word_bytes`-sized words.
    pub fn new(name: &'static str, capacity_bytes: usize, word_bytes: usize) -> Self {
        Sram {
            name,
            capacity_bytes,
            word_bytes,
            counters: AccessCounters::default(),
        }
    }

    /// The memory's name (for reports).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Capacity in words.
    pub fn capacity_words(&self) -> usize {
        self.capacity_bytes / self.word_bytes
    }

    /// True if `words` words fit.
    pub fn fits(&self, words: usize) -> bool {
        words <= self.capacity_words()
    }

    /// Records `n` word reads.
    pub fn read(&mut self, n: u64) {
        self.counters.reads += n;
    }

    /// Records `n` word writes.
    pub fn write(&mut self, n: u64) {
        self.counters.writes += n;
    }

    /// Current counters.
    pub fn counters(&self) -> AccessCounters {
        self.counters
    }

    /// Clears the counters (capacity unchanged).
    pub fn reset(&mut self) {
        self.counters = AccessCounters::default();
    }
}

impl fmt::Display for Sram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} KB, {} reads / {} writes",
            self.name,
            self.capacity_bytes / 1024,
            self.counters.reads,
            self.counters.writes
        )
    }
}

/// Off-chip DRAM: unbounded capacity, counted traffic.
#[derive(Debug, Clone, Default)]
pub struct Dram {
    counters: AccessCounters,
}

impl Dram {
    /// Creates a DRAM model with zeroed counters.
    pub fn new() -> Self {
        Dram::default()
    }

    /// Records `n` word reads.
    pub fn read(&mut self, n: u64) {
        self.counters.reads += n;
    }

    /// Records `n` word writes.
    pub fn write(&mut self, n: u64) {
        self.counters.writes += n;
    }

    /// Current counters.
    pub fn counters(&self) -> AccessCounters {
        self.counters
    }

    /// Clears the counters.
    pub fn reset(&mut self) {
        self.counters = AccessCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Sram::new("oMemory", 25 * 1024, 2);
        m.read(10);
        m.write(5);
        m.read(1);
        assert_eq!(m.counters().reads, 11);
        assert_eq!(m.counters().writes, 5);
        assert_eq!(m.counters().total(), 16);
        assert_eq!(m.counters().bytes(2), 32);
        m.reset();
        assert_eq!(m.counters().total(), 0);
        assert_eq!(m.capacity_bytes(), 25_600);
    }

    #[test]
    fn capacity_in_words() {
        let m = Sram::new("x", 100, 2);
        assert_eq!(m.capacity_words(), 50);
        assert!(m.fits(50));
        assert!(!m.fits(51));
    }

    #[test]
    fn dram_counts() {
        let mut d = Dram::new();
        d.read(7);
        d.write(3);
        assert_eq!(d.counters().bytes(2), 20);
        d.reset();
        assert_eq!(d.counters().total(), 0);
    }

    #[test]
    fn display_mentions_name() {
        let m = Sram::new("iMemory", 32 * 1024, 2);
        assert!(m.to_string().contains("iMemory"));
    }
}
