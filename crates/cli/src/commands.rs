//! Subcommand implementations. Every command is a pure function from
//! parsed arguments to output text, so the test suite drives them
//! directly.

use std::error::Error;
use std::fmt::Write as _;

use chain_nn_core::perf::{CycleModel, PerfModel};
use chain_nn_core::sim::ChainSim;
use chain_nn_core::{polyphase, trace, ChainConfig, LayerShape};
use chain_nn_energy::power::PowerModel;
use chain_nn_fixed::{Fix16, OverflowMode};
use chain_nn_mem::traffic::{totals, TrafficModel};
use chain_nn_mem::MemoryConfig;
use chain_nn_nets::{zoo, Network};
use chain_nn_tensor::conv::{conv2d_fix, ConvGeometry};
use chain_nn_tensor::Tensor;

use crate::args::Flags;

type CmdResult = Result<String, Box<dyn Error>>;

/// Dispatches a full argument vector (without argv0).
///
/// # Errors
///
/// Returns a human-readable error for unknown commands, bad flags or
/// failed model/simulator invocations.
pub fn dispatch(argv: &[String]) -> CmdResult {
    let Some((cmd, rest)) = argv.split_first() else {
        return Ok(help());
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(help()),
        "tables" => Ok(chain_nn_bench::repro_all()),
        "table2" => Ok(chain_nn_bench::repro_table2()),
        "table4" => Ok(chain_nn_bench::repro_table4()),
        "table5" => Ok(chain_nn_bench::repro_table5()),
        "fig5" => Ok(chain_nn_bench::repro_fig5()),
        "fig9" => Ok(chain_nn_bench::repro_fig9()),
        "fig10" => Ok(chain_nn_bench::repro_fig10()),
        "area" => Ok(chain_nn_bench::repro_area()),
        "taxonomy" => Ok(chain_nn_bench::repro_taxonomy()),
        "ablations" => Ok(chain_nn_bench::repro_ablations()),
        "nets" => Ok(nets_cmd()),
        "perf" => perf_cmd(&Flags::parse(rest)?),
        "traffic" => traffic_cmd(&Flags::parse(rest)?),
        "power" => power_cmd(&Flags::parse(rest)?),
        "simulate" => simulate_cmd(&Flags::parse(rest)?),
        "trace" => trace_cmd(&Flags::parse(rest)?),
        other => Err(format!("unknown command '{other}'").into()),
    }
}

fn help() -> String {
    "\
chain-nn — Chain-NN (DATE 2017) reproduction toolkit

USAGE: chain-nn <command> [--flag value ...]

paper artifacts:
  tables                 every table/figure, paper vs measured
  table2|table4|table5   Tables II / IV / V
  fig5|fig9|fig10        Figures 5 / 9 / 10
  area|taxonomy          Fig. 8 substitute / Fig. 2 measured
  ablations              pipeline-depth, batch, kMemory-depth sweeps

models:
  perf    --net NAME [--batch N] [--pes N] [--freq MHZ] [--model paper|strict]
  traffic --net NAME [--batch N] [--pes N]
  power   --net NAME [--batch N]
  nets    list the built-in networks

simulator:
  simulate --c C --h H --m M --k K [--stride S] [--pad P] [--pes N] [--batch N]
           cycle-accurate run, golden-checked (strides use polyphase)
  trace    --h H --k K [--m M] [--out FILE]  VCD waveform of one pattern
"
    .to_owned()
}

fn net_by_name(name: &str) -> Result<Network, Box<dyn Error>> {
    match name.to_ascii_lowercase().as_str() {
        "alexnet" => Ok(zoo::alexnet()),
        "vgg16" | "vgg-16" => Ok(zoo::vgg16()),
        "lenet" | "lenet-5" | "mnist" => Ok(zoo::lenet()),
        "cifar10" | "cifar-10" => Ok(zoo::cifar10()),
        "resnet18" | "resnet-18" => Ok(zoo::resnet18()),
        "mobilenet" | "mobilenetv1" | "mobilenet-v1" => Ok(zoo::mobilenet_v1()),
        other => Err(format!(
            "unknown network '{other}' (try `chain-nn nets`)"
        )
        .into()),
    }
}

fn nets_cmd() -> String {
    let mut s = String::new();
    for net in zoo::all() {
        let _ = write!(s, "{net}");
    }
    s
}

fn chain_from(flags: &Flags) -> Result<ChainConfig, Box<dyn Error>> {
    let pes = flags.get_or("pes", 576usize)?;
    let freq = flags.get_or("freq", 700.0f64)?;
    let depth = flags.get_or("kmemory", 256usize)?;
    Ok(ChainConfig::builder()
        .num_pes(pes)
        .freq_mhz(freq)
        .kmemory_depth(depth)
        .build()?)
}

fn perf_cmd(flags: &Flags) -> CmdResult {
    let net = net_by_name(flags.get_str("net").unwrap_or("alexnet"))?;
    let batch = flags.get_or("batch", 4usize)?;
    let cfg = chain_from(flags)?;
    let model = match flags.get_str("model").unwrap_or("paper") {
        "strict" => CycleModel::Strict,
        _ => CycleModel::PaperCalibrated,
    };
    let perf = PerfModel::new(cfg).network(&net, batch, model)?;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== {} on {} PEs @ {} MHz, batch {batch} ==",
        net.name(),
        cfg.num_pes(),
        cfg.freq_mhz()
    );
    let _ = writeln!(s, "{:<14} {:>12} {:>10}", "layer", "conv(ms)", "load(ms)");
    for l in &perf.layers {
        let _ = writeln!(s, "{:<14} {:>12.3} {:>10.3}", l.name, l.conv_ms, l.load_ms);
    }
    let _ = writeln!(
        s,
        "total {:.2} ms | {:.1} fps | {:.1} GOPS achieved ({:.1}% of peak)",
        perf.total_ms,
        perf.fps,
        perf.gops,
        100.0 * perf.gops / cfg.peak_gops()
    );
    Ok(s)
}

fn traffic_cmd(flags: &Flags) -> CmdResult {
    let net = net_by_name(flags.get_str("net").unwrap_or("alexnet"))?;
    let batch = flags.get_or("batch", 4usize)?;
    let cfg = chain_from(flags)?;
    let rows = TrafficModel::new(cfg, MemoryConfig::paper()).network_traffic(&net, batch)?;
    let mut s = String::new();
    let _ = writeln!(s, "== {} memory traffic, batch {batch} (MB) ==", net.name());
    let _ = writeln!(
        s,
        "{:<14} {:>9} {:>9} {:>9} {:>9}",
        "layer", "DRAM", "iMem", "kMem", "oMem"
    );
    let mb = |b: u64| b as f64 / 1e6;
    for r in &rows {
        let _ = writeln!(
            s,
            "{:<14} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            r.name,
            mb(r.dram_bytes),
            mb(r.imem_bytes),
            mb(r.kmem_bytes),
            mb(r.omem_bytes)
        );
    }
    let t = totals(&rows);
    let _ = writeln!(
        s,
        "{:<14} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
        "Total",
        mb(t.dram_bytes),
        mb(t.imem_bytes),
        mb(t.kmem_bytes),
        mb(t.omem_bytes)
    );
    Ok(s)
}

fn power_cmd(flags: &Flags) -> CmdResult {
    let net = net_by_name(flags.get_str("net").unwrap_or("alexnet"))?;
    let batch = flags.get_or("batch", 4usize)?;
    let cfg = chain_from(flags)?;
    let r = PowerModel::new(cfg, MemoryConfig::paper()).network_power(&net, batch)?;
    let b = r.breakdown;
    let mut s = String::new();
    let _ = writeln!(s, "== {} power, batch {batch} ==", net.name());
    let _ = writeln!(s, "chain   {:>8.1} mW", b.chain_mw);
    let _ = writeln!(s, "kMemory {:>8.1} mW", b.kmem_mw);
    let _ = writeln!(s, "iMemory {:>8.1} mW", b.imem_mw);
    let _ = writeln!(s, "oMemory {:>8.1} mW", b.omem_mw);
    let _ = writeln!(s, "total   {:>8.1} mW (+{:.1} mW DRAM interface)", b.total_mw(), r.dram_mw);
    let _ = writeln!(
        s,
        "{:.1} GOPS/W whole-chip | {:.1} GOPS/W core-only",
        r.gops_per_watt_total(),
        r.gops_per_watt_core()
    );
    Ok(s)
}

fn simulate_cmd(flags: &Flags) -> CmdResult {
    let c = flags.get_or("c", 1usize)?;
    let h = flags.get_or("h", 8usize)?;
    let m = flags.get_or("m", 1usize)?;
    let k = flags.get_or("k", 3usize)?;
    let stride = flags.get_or("stride", 1usize)?;
    let pad = flags.get_or("pad", 0usize)?;
    let batch = flags.get_or("batch", 1usize)?;
    let pes = flags.get_or("pes", (m.min(4) * k * k).max(k * k))?;
    let shape = LayerShape::square(c, h, m, k, stride, pad);
    shape.validate()?;

    let vi = batch * c * h * h;
    let ifmap = Tensor::from_vec(
        [batch, c, h, h],
        (0..vi).map(|i| Fix16::from_raw((i % 29) as i16 - 14)).collect(),
    )
    .map_err(|e| e.to_string())?;
    let vw = m * c * k * k;
    let weights = Tensor::from_vec(
        [m, c, k, k],
        (0..vw).map(|i| Fix16::from_raw((i % 13) as i16 - 6)).collect(),
    )
    .map_err(|e| e.to_string())?;

    let cfg = ChainConfig::builder().num_pes(pes).build()?;
    let sim = ChainSim::new(cfg);
    let (ofmaps, stream, drain, load, util) = if stride == 1 {
        let r = sim.run_layer(&shape, &ifmap, &weights)?;
        let u = r.stats.utilization(pes);
        (r.ofmaps, r.stats.stream_cycles, r.stats.drain_cycles, r.stats.load_cycles, u)
    } else {
        let r = polyphase::run(&sim, &shape, &ifmap, &weights)?;
        let total = r.stats.stream_cycles + r.stats.drain_cycles + r.stats.load_cycles;
        let u = r.stats.mac_ops as f64 / (pes as u64 * total) as f64;
        (r.ofmaps, r.stats.stream_cycles, r.stats.drain_cycles, r.stats.load_cycles, u)
    };

    let golden = conv2d_fix(
        &ifmap,
        &weights,
        ConvGeometry::new(k, stride, pad).map_err(|e| e.to_string())?,
        OverflowMode::Wrapping,
    )
    .map_err(|e| e.to_string())?;
    let check = if ofmaps == golden { "bit-exact vs golden model" } else { "MISMATCH" };
    if ofmaps != golden {
        return Err("simulator output mismatched the golden model".into());
    }

    let mut s = String::new();
    let _ = writeln!(s, "layer {shape} on {pes} PEs (batch {batch})");
    let _ = writeln!(
        s,
        "cycles: {stream} stream + {drain} drain + {load} load = {}",
        stream + drain + load
    );
    let _ = writeln!(s, "utilization: {:.1}%", 100.0 * util);
    let _ = writeln!(s, "outputs: {} ({check})", golden.as_slice().len());
    Ok(s)
}

fn trace_cmd(flags: &Flags) -> CmdResult {
    let h = flags.get_or("h", 6usize)?;
    let k = flags.get_or("k", 3usize)?;
    let m = flags.get_or("m", 2usize)?;
    let shape = LayerShape::square(1, h, m, k, 1, 0);
    let vi = h * h;
    let ifmap = Tensor::from_vec(
        [1, 1, h, h],
        (0..vi).map(|i| Fix16::from_raw((i % 17) as i16 + 1)).collect(),
    )
    .map_err(|e| e.to_string())?;
    let vw = m * k * k;
    let weights = Tensor::from_vec(
        [m, 1, k, k],
        (0..vw).map(|i| Fix16::from_raw((i % 5) as i16 + 1)).collect(),
    )
    .map_err(|e| e.to_string())?;
    let vcd = trace::trace_pattern(&shape, &ifmap, &weights, 0)?;
    match flags.get_str("out") {
        Some(path) => {
            std::fs::write(path, &vcd)?;
            Ok(format!(
                "wrote {} bytes of VCD to {path} (open with GTKWave/Surfer)\n",
                vcd.len()
            ))
        }
        None => Ok(vcd),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> String {
        dispatch(&args.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
            .expect("command succeeds")
    }

    #[test]
    fn help_lists_commands() {
        let h = run(&["help"]);
        for cmd in ["perf", "traffic", "power", "simulate", "trace", "tables"] {
            assert!(h.contains(cmd), "help missing {cmd}");
        }
        assert_eq!(run(&[]), h); // empty argv -> help
    }

    #[test]
    fn unknown_command_fails() {
        assert!(dispatch(&["frobnicate".to_owned()]).is_err());
    }

    #[test]
    fn perf_runs_on_every_zoo_net() {
        for net in ["alexnet", "vgg16", "lenet", "cifar10", "resnet18", "mobilenet"] {
            let out = run(&["perf", "--net", net, "--batch", "2"]);
            assert!(out.contains("fps"), "{net}: {out}");
        }
    }

    #[test]
    fn perf_strict_mode() {
        let out = run(&["perf", "--net", "alexnet", "--model", "strict"]);
        assert!(out.contains("total"));
    }

    #[test]
    fn traffic_and_power_run() {
        assert!(run(&["traffic", "--net", "alexnet"]).contains("oMem"));
        assert!(run(&["power", "--net", "alexnet"]).contains("GOPS/W"));
    }

    #[test]
    fn simulate_is_golden_checked() {
        let out = run(&[
            "simulate", "--c", "2", "--h", "7", "--m", "3", "--k", "3", "--pad", "1",
            "--pes", "27",
        ]);
        assert!(out.contains("bit-exact"), "{out}");
        // Strided path.
        let out = run(&["simulate", "--h", "9", "--k", "3", "--stride", "2"]);
        assert!(out.contains("bit-exact"), "{out}");
    }

    #[test]
    fn simulate_rejects_bad_shapes() {
        assert!(dispatch(&["simulate", "--h", "2", "--k", "5"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect::<Vec<_>>())
        .is_err());
    }

    #[test]
    fn trace_produces_vcd() {
        let out = run(&["trace", "--h", "6", "--k", "3"]);
        assert!(out.starts_with("$date"));
        assert!(out.contains("$enddefinitions"));
    }

    #[test]
    fn table_commands_alias_bench_runners() {
        assert!(run(&["table2"]).contains("576"));
        assert!(run(&["nets"]).contains("AlexNet"));
    }

    #[test]
    fn bad_flags_reported() {
        let err = dispatch(
            &["perf", "--batch", "lots"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect::<Vec<_>>(),
        )
        .expect_err("bad value");
        assert!(err.to_string().contains("lots"));
    }
}
