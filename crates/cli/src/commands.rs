//! Subcommand implementations. Every command is a pure function from
//! parsed arguments to output text, so the test suite drives them
//! directly.

use std::error::Error;
use std::fmt::Write as _;

use chain_nn_core::perf::{CycleModel, PerfModel};
use chain_nn_core::sim::ChainSim;
use chain_nn_core::{polyphase, trace, ChainConfig, LayerShape};
use chain_nn_dse::{
    executor, export, CacheFile, CacheStats, Explorer, PointCache, RangeSpec, SweepSpec,
    WorkloadMix,
};
use chain_nn_energy::power::PowerModel;
use chain_nn_fixed::{Fix16, OverflowMode};
use chain_nn_mem::traffic::{totals, TrafficModel};
use chain_nn_mem::MemoryConfig;
use chain_nn_nets::{zoo, Network};
use chain_nn_tensor::conv::{conv2d_fix, ConvGeometry};
use chain_nn_tensor::Tensor;
use chain_nn_tuner::frontier::{BudgetSweep, FrontierStep, FrontierTuneRequest};
use chain_nn_tuner::{Budget, CacheEvaluator, Objective, TuneRequest, Tuned};

use crate::args::{ArgError, Flags};

type CmdResult = Result<String, Box<dyn Error>>;

/// An optional typed flag (absent is `None`, unparseable is an error).
fn opt_flag<T: std::str::FromStr>(flags: &Flags, name: &str) -> Result<Option<T>, ArgError> {
    match flags.get_str(name) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| ArgError::BadValue {
            flag: name.to_owned(),
            value: v.to_owned(),
        }),
    }
}

/// Dispatches a full argument vector (without argv0).
///
/// # Errors
///
/// Returns a human-readable error for unknown commands, bad flags or
/// failed model/simulator invocations.
pub fn dispatch(argv: &[String]) -> CmdResult {
    let Some((cmd, rest)) = argv.split_first() else {
        return Ok(help());
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(help()),
        "tables" => Ok(chain_nn_bench::repro_all()),
        "table2" => Ok(chain_nn_bench::repro_table2()),
        "table4" => Ok(chain_nn_bench::repro_table4()),
        "table5" => Ok(chain_nn_bench::repro_table5()),
        "fig5" => Ok(chain_nn_bench::repro_fig5()),
        "fig9" => Ok(chain_nn_bench::repro_fig9()),
        "fig10" => Ok(chain_nn_bench::repro_fig10()),
        "area" => Ok(chain_nn_bench::repro_area()),
        "taxonomy" => Ok(chain_nn_bench::repro_taxonomy()),
        "ablations" => Ok(chain_nn_bench::repro_ablations()),
        "nets" => Ok(nets_cmd()),
        "dse" => dse_cmd(&Flags::parse(rest)?),
        "tune" => tune_cmd(&Flags::parse(rest)?),
        "compact" => compact_cmd(&Flags::parse(rest)?),
        "serve" => serve_cmd(&Flags::parse(rest)?),
        "cluster" => cluster_cmd(&Flags::parse(rest)?),
        "query" => query_cmd(rest),
        "top" => top_cmd(&Flags::parse(rest)?),
        "perf" => perf_cmd(&Flags::parse(rest)?),
        "traffic" => traffic_cmd(&Flags::parse(rest)?),
        "power" => power_cmd(&Flags::parse(rest)?),
        "simulate" => simulate_cmd(&Flags::parse(rest)?),
        "trace" => trace_dispatch(rest),
        other => Err(format!("unknown command '{other}'").into()),
    }
}

fn help() -> String {
    "\
chain-nn — Chain-NN (DATE 2017) reproduction toolkit

USAGE: chain-nn <command> [--flag value ...]

paper artifacts:
  tables                 every table/figure, paper vs measured
  table2|table4|table5   Tables II / IV / V
  fig5|fig9|fig10        Figures 5 / 9 / 10
  area|taxonomy          Fig. 8 substitute / Fig. 2 measured
  ablations              pipeline-depth, batch, kMemory-depth sweeps

models:
  perf    --net NAME [--batch N] [--pes N] [--freq MHZ] [--model paper|strict]
  traffic --net NAME [--batch N] [--pes N]
  power   --net NAME [--batch N]
  nets    list the built-in networks

simulator:
  simulate --c C --h H --m M --k K [--stride S] [--pad P] [--pes N] [--batch N]
           cycle-accurate run, golden-checked (strides use polyphase)
  trace    --h H --k K [--m M] [--out FILE]  VCD waveform of one pattern
  trace ID [--chrome F.json] [--host H] [--port P]
           span tree of one causal trace from a running daemon (send
           requests with {\"trace\":{\"id\":N}} or let the daemon assign
           ids); --chrome exports Chrome trace-event JSON whose rows
           are worker threads (chrome://tracing, ui.perfetto.dev)

design-space exploration:
  dse      [--pes 64..=1024:16] [--freq 350,700] [--kmem 256] [--imem-kb 32]
           [--omem-kb 25] [--bits 16] [--batch 1,4] [--net alexnet[,vgg16...]]
           [--threads N] [--probe off] [--cache-file FILE] [--out FILE.csv]
           [--json FILE.json] [--frontier FILE.csv]
           parallel sweep over the model stack; axes are ranges (step
           defaults to 1) or comma lists; every point carries the
           measured SQNR of its (net, word width) pair, so --bits 8,16
           sweeps are comparable on the fps x power x SQNR frontier;
           prints both Pareto frontiers and the 1-vs-N-thread evaluation
           speedup (--probe off skips that measurement); writes CSV/JSON;
           --cache-file makes repeated sweeps incremental across runs
           (a fully-cached sweep reports 0 accuracy recomputations)

auto-tuner:
  tune     [--mix alexnet:0.7,vgg16:0.3] [--max-mw 500] [--max-gates-k N]
           [--min-fps N] [--min-sqnr-db N]
           [--objective fps,power,gates | fps:1,power:0.2]
           [--strategy halving|hillclimb] [--seed 0] [--threads N]
           [--cache-file FILE] [--port 7878 [--host H]]
           [--pes/--freq/--kmem/--imem-kb/--omem-kb/--bits/--batch axes]
           search the grid for the best configuration serving the
           workload mix under the budget, instead of sweeping it;
           --min-sqnr-db adds a measured-accuracy floor (with --bits
           8,16 it is what stops free 8-bit wins); with --port the
           search runs on a live daemon (sharing its cache), otherwise
           locally (--cache-file makes local tunes incremental across
           runs); user guide: docs/TUNING.md
  tune --sweep-budget max-mw=300..=900:50 [--out F.csv] [--json F.json]
           frontier tune: sweep one budget axis (max-mw | max-gates-k |
           min-fps | min-sqnr-db; lo..=hi:step or a comma list) and
           report the whole budget-constrained Pareto frontier — one
           constrained optimum per step, deduplicated/Pareto-filtered,
           warm-started so the sweep costs far less than standalone
           tunes; via --port the daemon streams one line per step as
           it completes; --out/--json export the tuned frontier
  compact  --cache-file FILE
           rewrite a cache snapshot dropping duplicate/rejected records
           (load also compacts automatically past 50% dead records)

explorer daemon:
  serve    [--port 7878] [--host 127.0.0.1] [--threads N] [--queue 16]
           [--batch 32] [--claim adaptive|fixed] [--max-connections 64]
           [--cache-cap POINTS] [--cache-file FILE]
           [--trace-log FILE] [--trace-cap-mb 64] [--slow-log-us N]
           [--sample-interval-ms 250] [--slo eval:p99_us=500,...]
           long-lived explorer sharing one memo cache across clients
           over a line-delimited JSON protocol; --batch caps the points
           one worker claims per turn and --claim picks the sizing
           policy (adaptive shrinks claims while interactive evals wait
           behind a sweep; fixed always claims --batch, the pre-engine
           behavior); --cache-file persists
           evaluations across restarts (loaded at startup, appended on
           completed requests and shutdown); --max-connections answers
           busy at the accept loop beyond the bound; --cache-cap bounds
           the in-memory cache (FIFO eviction of flushed entries);
           --trace-log appends one JSON line per completed request
           (id, type, status, per-phase timings, trace id), rotating to
           FILE.1 at --trace-cap-mb (0 = never rotate), and arms the
           flight recorder: a panic — or a {\"type\":\"dump\"} request —
           writes recent spans + metrics to FILE.flight.json;
           --slow-log-us flags requests at or over
           the threshold with \"slow\":true; a sampler thread snapshots
           the metrics every --sample-interval-ms into a history ring
           (metrics_history / watch / top), and --slo adds latency
           objectives evaluated each tick (docs/OBSERVABILITY.md)
  serve --coordinator --shards H:P,H:P,...  [--port 7878] [--host H]
           [--max-connections 64]
           cluster coordinator: same wire protocol, but requests are
           routed across the named shard daemons by content hash —
           eval goes to the owning shard, sweep/frontier fan out as
           hash-partitioned sub-requests whose frontiers merge back
           byte-identical to a single daemon's, tune rounds run
           scatter-gather; a lost shard degrades the reply
           (\"degraded\":true) instead of failing it (docs/PROTOCOL.md)
  cluster  [--shards N] [--port 7878] [--threads T] [--cache-file FILE]
           one-command local fleet: N in-process shard daemons on
           ephemeral ports plus a coordinator on --port; with
           --cache-file each shard persists to FILE.shardI so warm
           restarts stay incremental; shutdown via the coordinator
           stops the whole fleet
  query    [--port 7878] [--host 127.0.0.1] REQUEST [--text]
           send one request to a running daemon and print the reply;
           REQUEST is a JSON object ('{\"type\":\"sweep\",...}') or a
           bare word shorthand: stats | metrics | metrics-history |
           frontier | frontier2 | frontier-sqnr | frontier-stream |
           watch | dump | shutdown | eval (the paper point); streaming replies
           (tune_frontier, frontier with stream:true, watch) are
           drained line by line; `query metrics --text` renders the
           snapshot as Prometheus-style text; the full wire reference
           is docs/PROTOCOL.md
  top      [--port 7878] [--host 127.0.0.1] [--frames N]
           live terminal dashboard over the daemon's watch stream: one
           frame per sampler tick (req/s, per-type p50/p99, queue-wait
           vs execute split, in-flight, queue depth, cache hit rate);
           --frames N stops after N frames (0 = until daemon shutdown)
"
    .to_owned()
}

fn net_by_name(name: &str) -> Result<Network, Box<dyn Error>> {
    chain_nn_dse::network_by_name(name)
        .ok_or_else(|| format!("unknown network '{name}' (try `chain-nn nets`)").into())
}

fn nets_cmd() -> String {
    let mut s = String::new();
    for net in zoo::all() {
        let _ = write!(s, "{net}");
    }
    s
}

fn chain_from(flags: &Flags) -> Result<ChainConfig, Box<dyn Error>> {
    let pes = flags.get_or("pes", 576usize)?;
    let freq = flags.get_or("freq", 700.0f64)?;
    let depth = flags.get_or("kmemory", 256usize)?;
    Ok(ChainConfig::builder()
        .num_pes(pes)
        .freq_mhz(freq)
        .kmemory_depth(depth)
        .build()?)
}

/// Builds the sweep grid from CLI flags, defaulting every unspecified
/// axis to [`SweepSpec::default_grid`]'s choice.
fn sweep_from(flags: &Flags) -> Result<SweepSpec, Box<dyn Error>> {
    let mut spec = SweepSpec::default_grid();
    let usizes = |text: &str| -> Result<Vec<usize>, Box<dyn Error>> {
        Ok(text.parse::<RangeSpec>()?.as_usizes())
    };
    if let Some(p) = flags.get_str("pes") {
        spec.pes = usizes(p)?;
    }
    if let Some(f) = flags.get_str("freq") {
        spec.freqs_mhz = f
            .split(',')
            .map(|t| t.trim().parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|_| format!("cannot parse '{f}' for --freq"))?;
    }
    if let Some(k) = flags.get_str("kmem") {
        spec.kmem_depths = usizes(k)?;
    }
    if let Some(i) = flags.get_str("imem-kb") {
        spec.imem_kb = usizes(i)?;
    }
    if let Some(o) = flags.get_str("omem-kb") {
        spec.omem_kb = usizes(o)?;
    }
    if let Some(b) = flags.get_str("bits") {
        spec.word_bits = b
            .parse::<RangeSpec>()?
            .values()
            .iter()
            .map(|&v| v as u32)
            .collect();
    }
    if let Some(b) = flags.get_str("batch") {
        spec.batches = usizes(b)?;
    }
    if let Some(n) = flags.get_str("net") {
        spec.nets = n.split(',').map(|t| t.trim().to_owned()).collect();
    }
    Ok(spec)
}

fn dse_cmd(flags: &Flags) -> CmdResult {
    let spec = sweep_from(flags)?;
    let threads = flags.get_or("threads", executor::default_threads())?;
    let mut explorer = Explorer::new();
    // --cache-file makes standalone sweeps incremental across runs, the
    // same way the daemon's snapshot does: load before, flush after.
    let cache_file = flags.get_str("cache-file").map(CacheFile::new);
    let mut loaded = 0;
    if let Some(file) = &cache_file {
        loaded = file.load_into(explorer.cache())?.loaded;
    }
    let accuracy_before = chain_nn_dse::accuracy::recomputations();
    let result = explorer.run(&spec, threads)?;

    let mut s = String::new();
    let _ = writeln!(
        s,
        "== design-space sweep: {} points ({} feasible), {} threads ==",
        result.stats.points, result.stats.feasible, result.stats.threads
    );
    let run_cache = CacheStats {
        hits: result.stats.cache_hits,
        misses: result.stats.cache_misses,
    };
    let _ = writeln!(
        s,
        "wall {:.1} ms | {:.0} points/s | cache {} hits / {} misses ({:.1}% hit rate)",
        result.stats.wall_ms,
        result.stats.points_per_sec(),
        result.stats.cache_hits,
        result.stats.cache_misses,
        100.0 * run_cache.hit_rate()
    );
    // One measurement per fresh (net, word width) pair; cached points
    // and memoized pairs cost nothing — a fully-cached sweep reports 0.
    let _ = writeln!(
        s,
        "accuracy recomputations: {}",
        chain_nn_dse::accuracy::recomputations() - accuracy_before
    );

    // Speedup vs --threads 1, measured as sustained evaluation
    // throughput over this grid (the probe amortizes worker start-up,
    // which would otherwise dwarf a sub-millisecond model sweep). The
    // probe re-evaluates points uncached, so it costs more than the
    // sweep itself; `--probe off` skips it.
    if threads > 1 && flags.get_str("probe") != Some("off") {
        let points = spec.points();
        let evals = (8 * points.len()).clamp(20_000, 200_000);
        let serial_rate = executor::throughput(&points, 1, evals)?;
        let parallel_rate = executor::throughput(&points, threads, evals)?;
        let speedup = parallel_rate / serial_rate;
        let _ = writeln!(
            s,
            "evaluation throughput: {:.0} points/s serial, {:.0} points/s on {} threads \
             -> {:.2}x speedup ({:.0}% parallel efficiency)",
            serial_rate,
            parallel_rate,
            threads,
            speedup,
            100.0 * speedup / threads as f64
        );
    }

    let _ = writeln!(
        s,
        "\nPareto frontier (fps x system mW x kilo-gates): {} of {} feasible points",
        result.frontier_3d.len(),
        result.stats.feasible
    );
    let _ = writeln!(
        s,
        "{:<10} {:>6} {:>6} {:>6} {:>5} {:>3} {:>9} {:>10} {:>10} {:>9} {:>9}",
        "net",
        "pes",
        "MHz",
        "kmem",
        "batch",
        "w",
        "fps",
        "system mW",
        "gates(k)",
        "GOPS/W",
        "SQNR dB"
    );
    for (p, r) in result.frontier_points() {
        let paper = *p == chain_nn_dse::DesignPoint::paper_alexnet();
        let _ = writeln!(
            s,
            "{:<10} {:>6} {:>6.0} {:>6} {:>5} {:>3} {:>9.1} {:>10.1} {:>10.0} {:>9.1} {:>9.1}{}",
            p.net,
            p.pes,
            p.freq_mhz,
            p.kmem_depth,
            p.batch,
            p.word_bits,
            r.fps,
            r.system_mw(),
            r.gates_k,
            r.gops_per_watt(),
            r.sqnr_db,
            if paper { "   <- paper" } else { "" },
        );
    }
    let _ = writeln!(
        s,
        "accuracy frontier (fps x system mW x SQNR): {} points (sqnr_db / frontier_sqnr \
         columns in the CSV/JSON exports)",
        result.frontier_sqnr.len()
    );
    if result.contains_paper_point_on_frontier() {
        let _ = writeln!(
            s,
            "the paper's 576-PE point is Pareto-optimal in this sweep"
        );
    }

    if let Some(path) = flags.get_str("out") {
        std::fs::write(path, export::results_csv(&result))?;
        let _ = writeln!(s, "wrote full results CSV to {path}");
    }
    if let Some(path) = flags.get_str("frontier") {
        std::fs::write(path, export::frontier_csv(&result))?;
        let _ = writeln!(s, "wrote frontier CSV to {path}");
    }
    if let Some(path) = flags.get_str("json") {
        std::fs::write(path, export::results_json(&result))?;
        let _ = writeln!(s, "wrote JSON to {path}");
    }
    if let Some(file) = &cache_file {
        let appended = file.flush_dirty(explorer.cache())?;
        let _ = writeln!(
            s,
            "cache file {}: {} points loaded, {} appended",
            file.path().display(),
            loaded,
            appended
        );
    }
    Ok(s)
}

/// Renders one tune's outcome and accounting, shared by the local and
/// daemon paths.
fn tune_report_text(
    req: &TuneRequest,
    best: &Option<Tuned>,
    evaluations: u64,
    hits: u64,
    misses: u64,
    rounds: usize,
    exhaustive: usize,
) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== tune: {} | budget: {} | objective: {} ==",
        req.mix, req.budget, req.objective
    );
    let _ = writeln!(s, "strategy {} (seed {})", req.strategy, req.seed);
    match best {
        None => {
            let _ = writeln!(s, "no feasible configuration in the search space");
        }
        Some(t) => {
            let _ = writeln!(
                s,
                "chosen: {}{}",
                t.point,
                if t.admitted {
                    "   [within budget]"
                } else {
                    "   [budget NOT met: least-violating feasible point]"
                }
            );
            let _ = writeln!(
                s,
                "  {:.1} fps | {:.1} mW system ({:.1} chip + {:.1} DRAM) | {:.0}k gates | \
                 {:.1} GOPS/W | {:.1} dB SQNR",
                t.result.fps,
                t.result.system_mw(),
                t.result.chip_mw,
                t.result.dram_mw,
                t.result.gates_k,
                t.result.gops_per_watt(),
                t.result.sqnr_db
            );
        }
    }
    let _ = writeln!(
        s,
        "evaluated {} of {} grid configurations ({:.1}%) in {} rounds",
        evaluations,
        exhaustive,
        100.0 * evaluations as f64 / exhaustive.max(1) as f64,
        rounds
    );
    let _ = writeln!(
        s,
        "point lookups: {} ({} hits, {} misses)",
        hits + misses,
        hits,
        misses
    );
    s
}

fn tune_cmd(flags: &Flags) -> CmdResult {
    if flags.get_str("net").is_some() {
        return Err("tune takes --mix (weighted networks), not --net".into());
    }
    let request = TuneRequest {
        space: sweep_from(flags)?,
        mix: WorkloadMix::parse(flags.get_str("mix").unwrap_or("alexnet"))?,
        budget: Budget {
            max_system_mw: opt_flag(flags, "max-mw")?,
            max_gates_k: opt_flag(flags, "max-gates-k")?,
            min_fps: opt_flag(flags, "min-fps")?,
            min_sqnr_db: opt_flag(flags, "min-sqnr-db")?,
        },
        objective: match flags.get_str("objective") {
            None => Objective::default(),
            Some(text) => Objective::parse(text)?,
        },
        strategy: flags.get_str("strategy").unwrap_or("halving").parse()?,
        seed: flags.get_or("seed", 0u64)?,
    };

    // With --port/--host the search runs on a live daemon (sharing its
    // cache with every other client); otherwise locally.
    let on_daemon = flags.get_str("port").is_some() || flags.get_str("host").is_some();
    if on_daemon {
        // The local-only knobs would be silently dead on the daemon
        // path; refuse them rather than let the user believe they took.
        for local_only in ["cache-file", "threads"] {
            if flags.get_str(local_only).is_some() {
                return Err(format!(
                    "--{local_only} applies to local tunes only; the daemon owns its \
                     cache file and worker pool when tuning via --port"
                )
                .into());
            }
        }
    }

    // --sweep-budget turns the tune into a frontier tune: one
    // constrained optimum per budget step, streamed as each completes.
    if let Some(sweep_text) = flags.get_str("sweep-budget") {
        return frontier_tune_cmd(flags, request, sweep_text, on_daemon);
    }
    for frontier_only in ["out", "json"] {
        if flags.get_str(frontier_only).is_some() {
            return Err(format!(
                "--{frontier_only} exports the tuned frontier; it needs --sweep-budget"
            )
            .into());
        }
    }

    if on_daemon {
        let host = flags.get_str("host").unwrap_or("127.0.0.1");
        let port = flags.get_or("port", 7878u16)?;
        let mut client = chain_nn_serve::Client::connect((host, port))?;
        return match client.tune(request.clone())? {
            chain_nn_serve::Response::Tune(s) => Ok(tune_report_text(
                &request,
                &s.best,
                s.evaluations,
                s.cache_hits,
                s.cache_misses,
                s.rounds,
                s.exhaustive_points,
            )),
            chain_nn_serve::Response::Busy { active, capacity } => {
                Err(format!("daemon busy ({active}/{capacity} jobs); retry later").into())
            }
            chain_nn_serve::Response::Error { message } => Err(message.into()),
            other => Err(format!("unexpected daemon reply: {other:?}").into()),
        };
    }

    let cache = PointCache::new();
    let cache_file = flags.get_str("cache-file").map(CacheFile::new);
    let mut loaded = 0;
    if let Some(file) = &cache_file {
        loaded = file.load_into(&cache)?.loaded;
    }
    let threads = flags.get_or("threads", executor::default_threads())?;
    let mut evaluator = CacheEvaluator::new(&cache, threads);
    let report = chain_nn_tuner::tune(&request, &mut evaluator)?;
    let mut s = tune_report_text(
        &request,
        &report.best,
        report.evaluations,
        report.cache_hits,
        report.cache_misses,
        report.rounds,
        report.exhaustive_points,
    );
    if let Some(file) = &cache_file {
        let appended = file.flush_dirty(&cache)?;
        let _ = writeln!(
            s,
            "cache file {}: {} points loaded, {} appended",
            file.path().display(),
            loaded,
            appended
        );
    }
    Ok(s)
}

/// One rendered row of the frontier-tune step table. The frontier
/// marker is only known once every step finished, so rows render
/// admitted/violating state here and the frontier block follows.
fn frontier_step_row(s: &mut String, axis_width: usize, step: &FrontierStep) {
    match &step.best {
        None => {
            let _ = writeln!(
                s,
                "{:>axis_width$}  no feasible configuration",
                step.budget_value
            );
        }
        Some(t) => {
            let _ = writeln!(
                s,
                "{:>axis_width$}  {:<44} {:>9.1} {:>10.1} {:>9.0} {:>8.1}{}",
                step.budget_value,
                t.point.to_string(),
                t.result.fps,
                t.result.system_mw(),
                t.result.gates_k,
                t.result.sqnr_db,
                if t.admitted {
                    ""
                } else {
                    "   [budget NOT met]"
                },
            );
        }
    }
}

/// `chain-nn tune --sweep-budget AXIS=LO..=HI:STEP` — the frontier
/// tune, locally or against a daemon (where the steps stream back one
/// line at a time).
fn frontier_tune_cmd(
    flags: &Flags,
    base: TuneRequest,
    sweep_text: &str,
    on_daemon: bool,
) -> CmdResult {
    let sweep = BudgetSweep::parse(sweep_text)?;
    let request = FrontierTuneRequest { base, sweep };
    let axis = request.sweep.axis;
    let axis_width = axis.cli_name().len().max(6);

    let mut s = String::new();
    let _ = writeln!(
        s,
        "== frontier tune: {} | sweep: {} | objective: {} ==",
        request.base.mix, request.sweep, request.base.objective
    );
    let _ = writeln!(
        s,
        "strategy {} (seed {}) | fixed budget: {}",
        request.base.strategy, request.base.seed, request.base.budget
    );
    let _ = writeln!(
        s,
        "{:>axis_width$}  {:<44} {:>9} {:>10} {:>9} {:>8}",
        axis.cli_name(),
        "chosen configuration",
        "fps",
        "system mW",
        "gates(k)",
        "SQNR dB"
    );

    // Both paths produce the same step list + sweep totals.
    let (steps, frontier, evaluations, standalone, hits, misses, exhaustive);
    let mut cache_file_line = String::new();
    if on_daemon {
        let host = flags.get_str("host").unwrap_or("127.0.0.1");
        let port = flags.get_or("port", 7878u16)?;
        let mut client = chain_nn_serve::Client::connect((host, port))?;
        // The daemon streams one line per budget step; render each row
        // the moment it arrives (like serve's eager readiness line) so
        // a long sweep shows progress instead of a silent stall. The
        // returned text then carries only the summary that follows.
        use std::io::Write as _;
        print!("{s}");
        std::io::stdout().flush()?;
        s.clear();
        let mut streamed: Vec<FrontierStep> = Vec::new();
        let done = client.tune_frontier(request.clone(), |step| {
            let mut row = String::new();
            frontier_step_row(&mut row, axis_width, &step.result);
            print!("{row}");
            let _ = std::io::stdout().flush();
            streamed.push(step.result.clone());
        })?;
        let done = match done {
            chain_nn_serve::Response::TuneFrontierDone(done) => done,
            chain_nn_serve::Response::Busy { active, capacity } => {
                return Err(format!("daemon busy ({active}/{capacity} jobs); retry later").into())
            }
            chain_nn_serve::Response::Error { message } => return Err(message.into()),
            other => return Err(format!("unexpected daemon reply: {other:?}").into()),
        };
        steps = streamed;
        frontier = done.frontier;
        evaluations = done.evaluations;
        standalone = done.standalone_evaluations;
        hits = done.cache_hits;
        misses = done.cache_misses;
        exhaustive = done.exhaustive_points;
    } else {
        let cache = PointCache::new();
        let cache_file = flags.get_str("cache-file").map(CacheFile::new);
        let mut loaded = 0;
        if let Some(file) = &cache_file {
            loaded = file.load_into(&cache)?.loaded;
        }
        let threads = flags.get_or("threads", executor::default_threads())?;
        let mut evaluator = CacheEvaluator::new(&cache, threads);
        let report = chain_nn_tuner::tune_frontier(&request, &mut evaluator, |_, _| Ok(()))?;
        if let Some(file) = &cache_file {
            let appended = file.flush_dirty(&cache)?;
            let _ = writeln!(
                cache_file_line,
                "cache file {}: {} points loaded, {} appended",
                file.path().display(),
                loaded,
                appended
            );
        }
        steps = report.steps;
        frontier = report.frontier;
        evaluations = report.evaluations;
        standalone = report.standalone_evaluations;
        hits = report.cache_hits;
        misses = report.cache_misses;
        exhaustive = report.exhaustive_points;
    }

    if !on_daemon {
        // The daemon path already rendered its rows as they streamed in.
        for step in &steps {
            frontier_step_row(&mut s, axis_width, step);
        }
    }

    let _ = writeln!(
        s,
        "\ntuned frontier: {} distinct Pareto-optimal configurations across {} budget steps",
        frontier.len(),
        steps.len()
    );
    let bound = if axis.is_ceiling() { "<=" } else { ">=" };
    for &i in &frontier {
        if let Some(t) = &steps[i].best {
            let _ = writeln!(
                s,
                "  {} {bound} {:>6}: {}  ({:.1} fps @ {:.1} mW)",
                axis.cli_name(),
                steps[i].budget_value,
                t.point,
                t.result.fps,
                t.result.system_mw()
            );
        }
    }
    let reuse = 100.0 * chain_nn_tuner::frontier::reuse_fraction(evaluations, standalone);
    let _ = writeln!(
        s,
        "evaluated {} distinct configurations of {} in the grid; {} standalone tunes \
         would visit {} ({:.0}% reused via warm start)",
        evaluations,
        exhaustive,
        steps.len(),
        standalone,
        reuse
    );
    let _ = writeln!(
        s,
        "point lookups: {} ({} hits, {} misses)",
        hits + misses,
        hits,
        misses
    );
    s.push_str(&cache_file_line);

    let rows: Vec<export::TunedFrontierRow> = steps
        .iter()
        .enumerate()
        .filter_map(|(i, step)| {
            let t = step.best.as_ref()?;
            Some(export::TunedFrontierRow {
                budget_value: step.budget_value,
                point: t.point.clone(),
                result: t.result,
                admitted: t.admitted,
                on_frontier: frontier.contains(&i),
            })
        })
        .collect();
    if let Some(path) = flags.get_str("out") {
        std::fs::write(path, export::tuned_frontier_csv(axis.name(), &rows))?;
        let _ = writeln!(s, "wrote tuned-frontier CSV to {path}");
    }
    if let Some(path) = flags.get_str("json") {
        std::fs::write(path, export::tuned_frontier_json(axis.name(), &rows))?;
        let _ = writeln!(s, "wrote tuned-frontier JSON to {path}");
    }
    Ok(s)
}

fn compact_cmd(flags: &Flags) -> CmdResult {
    let path = flags
        .get_str("cache-file")
        .ok_or("compact needs --cache-file FILE")?;
    let report = CacheFile::new(path).compact()?;
    Ok(format!(
        "compacted {path}: kept {} records, dropped {} duplicates, {} rejected, {} tail bytes\n",
        report.kept, report.dropped_duplicates, report.dropped_rejected, report.dropped_tail_bytes
    ))
}

fn serve_cmd(flags: &Flags) -> CmdResult {
    use chain_nn_serve::scheduler::ClaimPolicy;
    // A shard list turns this process into a cluster coordinator
    // instead of an evaluating daemon.
    if flags.get_str("shards").is_some() || flags.get_or("coordinator", false)? {
        return coordinator_cmd(flags);
    }
    let batch = flags
        .get_or("batch", chain_nn_serve::scheduler::BATCH_SIZE)?
        .max(1);
    let claim = match flags.get_str("claim").unwrap_or("adaptive") {
        "adaptive" => ClaimPolicy::Adaptive { max: batch },
        "fixed" => ClaimPolicy::Fixed(batch),
        other => return Err(format!("--claim must be adaptive or fixed, got '{other}'").into()),
    };
    let config = chain_nn_serve::ServerConfig {
        host: flags.get_str("host").unwrap_or("127.0.0.1").to_owned(),
        port: flags.get_or("port", 7878u16)?,
        threads: flags.get_or("threads", executor::default_threads())?,
        queue_capacity: flags.get_or("queue", 16usize)?,
        claim,
        max_connections: flags.get_or("max-connections", 64usize)?,
        cache_capacity: opt_flag(flags, "cache-cap")?,
        cache_file: flags.get_str("cache-file").map(std::path::PathBuf::from),
        trace_log: flags.get_str("trace-log").map(std::path::PathBuf::from),
        // 0 is meaningful — it disables rotation (the file grows
        // without bound); negative or non-numeric values are rejected
        // by the flag parser with a clear error.
        trace_max_bytes: flags.get_or("trace-cap-mb", 64u64)? * 1024 * 1024,
        sample_interval: std::time::Duration::from_millis(
            flags.get_or("sample-interval-ms", 250u64)?.max(1),
        ),
        history_capacity: 256,
        slos: match flags.get_str("slo") {
            None => Vec::new(),
            Some(text) => chain_nn_serve::slo::SloSpec::parse_list(text)?,
        },
        slow_log_us: opt_flag(flags, "slow-log-us")?,
    };
    let persistent = config.cache_file.is_some();
    let threads = config.threads;
    let server = chain_nn_serve::Server::bind(config)?;
    // Announce readiness eagerly (run() blocks until shutdown): scripts
    // and the CI smoke job wait for this line before connecting.
    println!(
        "chain-nn explorer daemon listening on {} ({} threads, {} cached points loaded{})",
        server.local_addr()?,
        threads,
        server.loaded_from_disk(),
        if persistent { "" } else { ", no cache file" },
    );
    use std::io::Write as _;
    std::io::stdout().flush()?;
    let report = server.run()?;
    Ok(format!(
        "daemon stopped: {} requests served, {} points cached ({} loaded at start, {} newly persisted)\n",
        report.requests, report.cached_points, report.loaded_from_disk, report.persisted
    ))
}

/// The coordinator variant of `serve`: no evaluation, no cache — just
/// content-hash routing across the named shard daemons.
fn coordinator_cmd(flags: &Flags) -> CmdResult {
    let shards: Vec<String> = flags
        .get_str("shards")
        .unwrap_or("")
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    if shards.is_empty() {
        return Err("a coordinator needs --shards host:port,host:port,...".into());
    }
    let n = shards.len();
    let config = chain_nn_serve::cluster::ClusterConfig {
        host: flags.get_str("host").unwrap_or("127.0.0.1").to_owned(),
        port: flags.get_or("port", 7878u16)?,
        shards,
        max_connections: flags.get_or("max-connections", 64usize)?,
    };
    let coordinator = chain_nn_serve::cluster::Coordinator::bind(config)?;
    // Same eager readiness announcement as `serve` — scripts and the
    // CI cluster-smoke job wait for "listening" before connecting.
    println!(
        "chain-nn cluster coordinator listening on {} ({n} shards)",
        coordinator.local_addr()?,
    );
    use std::io::Write as _;
    std::io::stdout().flush()?;
    let report = coordinator.run()?;
    Ok(format!(
        "coordinator stopped: {} requests served across {n} shards\n",
        report.requests
    ))
}

/// `cluster` — the one-command local fleet: N in-process shard daemons
/// on ephemeral ports plus a coordinator routing across them. Each
/// shard gets its own cache file (`FILE.shardI`) so warm restarts stay
/// incremental per shard.
fn cluster_cmd(flags: &Flags) -> CmdResult {
    let n = flags.get_or("shards", 2usize)?;
    if n == 0 {
        return Err("--shards must be at least 1".into());
    }
    let threads = flags.get_or("threads", executor::default_threads())?;
    let cache_base = flags.get_str("cache-file").map(std::path::PathBuf::from);
    let mut addrs = Vec::new();
    let mut daemons = Vec::new();
    for i in 0..n {
        let config = chain_nn_serve::ServerConfig {
            host: "127.0.0.1".to_owned(),
            port: 0,
            threads,
            cache_file: cache_base.as_ref().map(|base| {
                let mut file = base.clone().into_os_string();
                file.push(format!(".shard{i}"));
                std::path::PathBuf::from(file)
            }),
            ..chain_nn_serve::ServerConfig::default()
        };
        let server = chain_nn_serve::Server::bind(config)?;
        let addr = server.local_addr()?;
        println!(
            "chain-nn shard {i} on {addr} ({} cached points loaded)",
            server.loaded_from_disk()
        );
        addrs.push(addr.to_string());
        daemons.push(std::thread::spawn(move || server.run()));
    }
    let config = chain_nn_serve::cluster::ClusterConfig {
        host: flags.get_str("host").unwrap_or("127.0.0.1").to_owned(),
        port: flags.get_or("port", 7878u16)?,
        shards: addrs,
        max_connections: flags.get_or("max-connections", 64usize)?,
    };
    let coordinator = chain_nn_serve::cluster::Coordinator::bind(config)?;
    println!(
        "chain-nn cluster coordinator listening on {} ({n} shards)",
        coordinator.local_addr()?,
    );
    use std::io::Write as _;
    std::io::stdout().flush()?;
    let report = coordinator.run()?;
    // The coordinator forwarded the shutdown to every shard; collect
    // their reports so the persistence accounting is visible.
    let mut cached = 0usize;
    let mut persisted = 0usize;
    for daemon in daemons {
        if let Ok(Ok(r)) = daemon.join().map_err(|_| "shard panicked") {
            cached += r.cached_points;
            persisted += r.persisted;
        }
    }
    Ok(format!(
        "cluster stopped: {} requests served across {n} shards ({cached} points cached, {persisted} newly persisted)\n",
        report.requests
    ))
}

/// `query` takes one positional REQUEST plus `--host`/`--port` flags,
/// so the tokens are partitioned by hand before [`Flags::parse`] (which
/// rejects positionals).
fn query_cmd(tokens: &[String]) -> CmdResult {
    let mut flag_tokens = Vec::new();
    let mut positionals = Vec::new();
    let mut render_text = false;
    let mut it = tokens.iter();
    while let Some(tok) = it.next() {
        if tok == "--text" {
            // The one valueless flag: renders a metrics reply as
            // Prometheus-style text instead of the wire JSON.
            render_text = true;
        } else if tok.starts_with("--") {
            flag_tokens.push(tok.clone());
            if let Some(value) = it.next() {
                flag_tokens.push(value.clone());
            }
        } else {
            positionals.push(tok.clone());
        }
    }
    let flags = Flags::parse(&flag_tokens)?;
    let host = flags.get_str("host").unwrap_or("127.0.0.1");
    let port = flags.get_or("port", 7878u16)?;
    let request = positionals.join(" ");
    if request.is_empty() {
        return Err("query needs a REQUEST (a JSON object or: stats | metrics | metrics-history | frontier | frontier2 | frontier-sqnr | frontier-stream | watch | dump | shutdown | eval)".into());
    }
    // Bare-word shorthands for the no-payload requests.
    let line = match request.as_str() {
        "stats" => r#"{"type":"stats"}"#.to_owned(),
        "metrics" => r#"{"type":"metrics"}"#.to_owned(),
        "metrics-history" => r#"{"type":"metrics_history"}"#.to_owned(),
        "frontier" => r#"{"type":"frontier","dims":3}"#.to_owned(),
        "frontier2" => r#"{"type":"frontier","dims":2}"#.to_owned(),
        "frontier-sqnr" => r#"{"type":"frontier","dims":3,"axes":"sqnr"}"#.to_owned(),
        "frontier-stream" => r#"{"type":"frontier","dims":3,"stream":true}"#.to_owned(),
        // Bounded so the shorthand terminates; raw JSON with
        // "samples":0 watches until daemon shutdown.
        "watch" => r#"{"type":"watch","samples":5}"#.to_owned(),
        "shutdown" => r#"{"type":"shutdown"}"#.to_owned(),
        "dump" => r#"{"type":"dump"}"#.to_owned(),
        "eval" => r#"{"type":"eval"}"#.to_owned(),
        other => other.to_owned(),
    };
    // Streaming requests answer N result lines then one terminal line;
    // drain them all. (Decode failures fall through to single-reply
    // handling — the daemon will answer the error itself.)
    let streaming = chain_nn_serve::Request::decode(&line)
        .map(|r| r.is_streaming())
        .unwrap_or(false);
    let mut client = chain_nn_serve::Client::connect((host, port))?;
    let mut reply = client.request_raw(&line)?;
    if render_text {
        return match chain_nn_serve::Response::decode(&reply) {
            Ok(chain_nn_serve::Response::Metrics { snapshot }) => {
                Ok(chain_nn_obs::render_text(&snapshot))
            }
            _ => Err(format!("--text expects a metrics reply, got: {reply}").into()),
        };
    }
    let mut out = String::new();
    loop {
        out.push_str(&reply);
        out.push('\n');
        if !streaming {
            return Ok(out);
        }
        match chain_nn_serve::Response::decode(&reply) {
            Ok(chain_nn_serve::Response::TuneFrontierStep(_))
            | Ok(chain_nn_serve::Response::FrontierStreamEntry { .. })
            | Ok(chain_nn_serve::Response::WatchSample(_)) => {
                reply = client.recv_raw_line()?;
            }
            // done / busy / error / anything unexpected terminates.
            _ => return Ok(out),
        }
    }
}

/// One `chain-nn top` dashboard frame rendered from a watch sample.
fn render_top_frame(sample: &chain_nn_serve::protocol::WatchSample) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "chain-nn top — sample #{} (tick {:.2} s, window {:.2} s)",
        sample.seq, sample.interval_s, sample.window_s
    );
    let _ = writeln!(
        s,
        "{:.1} req/s | {:.0} points/s | {} in-flight | {} active jobs | {} queued | \
         cache hit rate {:.1}% | {} requests total",
        sample.req_per_sec,
        sample.points_per_sec,
        sample.inflight,
        sample.active_jobs,
        sample.queue_depth,
        100.0 * sample.cache_hit_rate,
        sample.requests_total
    );
    let _ = writeln!(
        s,
        "queue-wait p99 {:.0} us | execute p99 {:.0} us",
        sample.queue_wait_p99_us, sample.execute_p99_us
    );
    let _ = writeln!(
        s,
        "{:<16} {:>10} {:>12} {:>12}",
        "type", "requests", "p50(us)", "p99(us)"
    );
    for t in &sample.types {
        let _ = writeln!(
            s,
            "{:<16} {:>10} {:>12.0} {:>12.0}",
            t.kind, t.requests, t.p50_us, t.p99_us
        );
    }
    if sample.types.is_empty() {
        let _ = writeln!(s, "(no traffic in the window)");
    }
    s
}

/// `chain-nn top` — the live dashboard: subscribes to the daemon's
/// watch stream and redraws one frame per sampler tick.
fn top_cmd(flags: &Flags) -> CmdResult {
    let host = flags.get_str("host").unwrap_or("127.0.0.1");
    let port = flags.get_or("port", 7878u16)?;
    let frames = flags.get_or("frames", 0u64)?;
    let mut client = chain_nn_serve::Client::connect((host, port))?;
    use std::io::Write as _;
    let done = client.watch(frames, |sample| {
        // ANSI clear + home between frames: redraw in place, like top.
        print!("\x1b[2J\x1b[H{}", render_top_frame(sample));
        let _ = std::io::stdout().flush();
    })?;
    match done {
        chain_nn_serve::Response::WatchDone { samples } => {
            Ok(format!("watch stream ended after {samples} frames\n"))
        }
        chain_nn_serve::Response::Error { message } => Err(message.into()),
        other => Err(format!("unexpected daemon reply: {other:?}").into()),
    }
}

fn perf_cmd(flags: &Flags) -> CmdResult {
    let net = net_by_name(flags.get_str("net").unwrap_or("alexnet"))?;
    let batch = flags.get_or("batch", 4usize)?;
    let cfg = chain_from(flags)?;
    let model = match flags.get_str("model").unwrap_or("paper") {
        "strict" => CycleModel::Strict,
        _ => CycleModel::PaperCalibrated,
    };
    let perf = PerfModel::new(cfg).network(&net, batch, model)?;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "== {} on {} PEs @ {} MHz, batch {batch} ==",
        net.name(),
        cfg.num_pes(),
        cfg.freq_mhz()
    );
    let _ = writeln!(s, "{:<14} {:>12} {:>10}", "layer", "conv(ms)", "load(ms)");
    for l in &perf.layers {
        let _ = writeln!(s, "{:<14} {:>12.3} {:>10.3}", l.name, l.conv_ms, l.load_ms);
    }
    let _ = writeln!(
        s,
        "total {:.2} ms | {:.1} fps | {:.1} GOPS achieved ({:.1}% of peak)",
        perf.total_ms,
        perf.fps,
        perf.gops,
        100.0 * perf.gops / cfg.peak_gops()
    );
    Ok(s)
}

fn traffic_cmd(flags: &Flags) -> CmdResult {
    let net = net_by_name(flags.get_str("net").unwrap_or("alexnet"))?;
    let batch = flags.get_or("batch", 4usize)?;
    let cfg = chain_from(flags)?;
    let rows = TrafficModel::new(cfg, MemoryConfig::paper()).network_traffic(&net, batch)?;
    let mut s = String::new();
    let _ = writeln!(s, "== {} memory traffic, batch {batch} (MB) ==", net.name());
    let _ = writeln!(
        s,
        "{:<14} {:>9} {:>9} {:>9} {:>9}",
        "layer", "DRAM", "iMem", "kMem", "oMem"
    );
    let mb = |b: u64| b as f64 / 1e6;
    for r in &rows {
        let _ = writeln!(
            s,
            "{:<14} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            r.name,
            mb(r.dram_bytes),
            mb(r.imem_bytes),
            mb(r.kmem_bytes),
            mb(r.omem_bytes)
        );
    }
    let t = totals(&rows);
    let _ = writeln!(
        s,
        "{:<14} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
        "Total",
        mb(t.dram_bytes),
        mb(t.imem_bytes),
        mb(t.kmem_bytes),
        mb(t.omem_bytes)
    );
    Ok(s)
}

fn power_cmd(flags: &Flags) -> CmdResult {
    let net = net_by_name(flags.get_str("net").unwrap_or("alexnet"))?;
    let batch = flags.get_or("batch", 4usize)?;
    let cfg = chain_from(flags)?;
    let r = PowerModel::new(cfg, MemoryConfig::paper()).network_power(&net, batch)?;
    let b = r.breakdown;
    let mut s = String::new();
    let _ = writeln!(s, "== {} power, batch {batch} ==", net.name());
    let _ = writeln!(s, "chain   {:>8.1} mW", b.chain_mw);
    let _ = writeln!(s, "kMemory {:>8.1} mW", b.kmem_mw);
    let _ = writeln!(s, "iMemory {:>8.1} mW", b.imem_mw);
    let _ = writeln!(s, "oMemory {:>8.1} mW", b.omem_mw);
    let _ = writeln!(
        s,
        "total   {:>8.1} mW (+{:.1} mW DRAM interface)",
        b.total_mw(),
        r.dram_mw
    );
    let _ = writeln!(
        s,
        "{:.1} GOPS/W whole-chip | {:.1} GOPS/W core-only",
        r.gops_per_watt_total(),
        r.gops_per_watt_core()
    );
    Ok(s)
}

fn simulate_cmd(flags: &Flags) -> CmdResult {
    let c = flags.get_or("c", 1usize)?;
    let h = flags.get_or("h", 8usize)?;
    let m = flags.get_or("m", 1usize)?;
    let k = flags.get_or("k", 3usize)?;
    let stride = flags.get_or("stride", 1usize)?;
    let pad = flags.get_or("pad", 0usize)?;
    let batch = flags.get_or("batch", 1usize)?;
    let pes = flags.get_or("pes", (m.min(4) * k * k).max(k * k))?;
    let shape = LayerShape::square(c, h, m, k, stride, pad);
    shape.validate()?;

    let vi = batch * c * h * h;
    let ifmap = Tensor::from_vec(
        [batch, c, h, h],
        (0..vi)
            .map(|i| Fix16::from_raw((i % 29) as i16 - 14))
            .collect(),
    )
    .map_err(|e| e.to_string())?;
    let vw = m * c * k * k;
    let weights = Tensor::from_vec(
        [m, c, k, k],
        (0..vw)
            .map(|i| Fix16::from_raw((i % 13) as i16 - 6))
            .collect(),
    )
    .map_err(|e| e.to_string())?;

    let cfg = ChainConfig::builder().num_pes(pes).build()?;
    let sim = ChainSim::new(cfg);
    let (ofmaps, stream, drain, load, util) = if stride == 1 {
        let r = sim.run_layer(&shape, &ifmap, &weights)?;
        let u = r.stats.utilization(pes);
        (
            r.ofmaps,
            r.stats.stream_cycles,
            r.stats.drain_cycles,
            r.stats.load_cycles,
            u,
        )
    } else {
        let r = polyphase::run(&sim, &shape, &ifmap, &weights)?;
        let total = r.stats.stream_cycles + r.stats.drain_cycles + r.stats.load_cycles;
        let u = r.stats.mac_ops as f64 / (pes as u64 * total) as f64;
        (
            r.ofmaps,
            r.stats.stream_cycles,
            r.stats.drain_cycles,
            r.stats.load_cycles,
            u,
        )
    };

    let golden = conv2d_fix(
        &ifmap,
        &weights,
        ConvGeometry::new(k, stride, pad).map_err(|e| e.to_string())?,
        OverflowMode::Wrapping,
    )
    .map_err(|e| e.to_string())?;
    let check = if ofmaps == golden {
        "bit-exact vs golden model"
    } else {
        "MISMATCH"
    };
    if ofmaps != golden {
        return Err("simulator output mismatched the golden model".into());
    }

    let mut s = String::new();
    let _ = writeln!(s, "layer {shape} on {pes} PEs (batch {batch})");
    let _ = writeln!(
        s,
        "cycles: {stream} stream + {drain} drain + {load} load = {}",
        stream + drain + load
    );
    let _ = writeln!(s, "utilization: {:.1}%", 100.0 * util);
    let _ = writeln!(s, "outputs: {} ({check})", golden.as_slice().len());
    Ok(s)
}

/// `trace` is two commands sharing a name: with a positional trace ID
/// it queries a running daemon's span tree (`chain-nn trace ID
/// [--chrome F.json] [--host H] [--port P]`); with flags only it
/// renders the simulator's VCD waveform exactly as before.
fn trace_dispatch(tokens: &[String]) -> CmdResult {
    match tokens.first() {
        Some(first) if !first.starts_with("--") => trace_query_cmd(tokens),
        _ => trace_cmd(&Flags::parse(tokens)?),
    }
}

/// Queries a daemon for one trace's span tree and renders it indented
/// by causality; `--chrome FILE` additionally exports the spans as
/// Chrome trace-event JSON (chrome://tracing, ui.perfetto.dev).
fn trace_query_cmd(tokens: &[String]) -> CmdResult {
    let (first, rest) = tokens
        .split_first()
        .expect("caller checked a positional exists");
    let id: u64 = first
        .parse()
        .map_err(|_| format!("trace ID must be a positive integer, got '{first}'"))?;
    if id == 0 {
        return Err("trace ID 0 is reserved for untraced requests".into());
    }
    let flags = Flags::parse(rest)?;
    let host = flags.get_str("host").unwrap_or("127.0.0.1");
    let port = flags.get_or("port", 7878u16)?;
    let chrome = flags.get_str("chrome").map(ToOwned::to_owned);
    let mut client = chain_nn_serve::Client::connect((host, port))?;
    match client.trace_query(id)? {
        chain_nn_serve::Response::Trace { id, dropped, spans } => {
            let mut out = format!("trace {id}: {} spans", spans.len());
            if dropped > 0 {
                let _ = write!(out, " (ring has dropped {dropped} oldest spans overall)");
            }
            out.push('\n');
            if spans.is_empty() {
                out.push_str(
                    "no spans recorded — send requests with {\"trace\":{\"id\":N}} first\n",
                );
                return Ok(out);
            }
            render_span_tree(&mut out, &spans);
            if let Some(path) = chrome {
                let json = chain_nn_obs::trace::chrome_trace_json(&spans);
                std::fs::write(&path, json)?;
                let _ = writeln!(
                    out,
                    "wrote Chrome trace to {path} (load in chrome://tracing or ui.perfetto.dev)"
                );
            }
            Ok(out)
        }
        chain_nn_serve::Response::Error { message } => Err(message.into()),
        other => Err(format!("unexpected reply: {}", other.encode()).into()),
    }
}

/// Renders spans as an indented tree: children under their parent,
/// siblings in start order, with duration, worker and point count.
fn render_span_tree(out: &mut String, spans: &[chain_nn_obs::trace::SpanRecord]) {
    use chain_nn_obs::trace::SpanRecord;
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
    let base_us = spans.iter().map(|s| s.start_us).min().unwrap_or(0);
    fn render(out: &mut String, spans: &[SpanRecord], parent: u64, depth: usize, base_us: u64) {
        for s in spans.iter().filter(|s| s.parent_id == parent) {
            let _ = write!(
                out,
                "{:indent$}{:<12} +{:>8.3} ms {:>10.3} ms",
                "",
                s.name,
                (s.start_us - base_us) as f64 / 1e3,
                s.dur_us as f64 / 1e3,
                indent = 2 + depth * 2,
            );
            if let Some(w) = s.worker {
                let _ = write!(out, "  worker {w}");
            }
            if s.points > 0 {
                let _ = write!(out, "  {} points", s.points);
            }
            out.push('\n');
            render(out, spans, s.span_id, depth + 1, base_us);
        }
    }
    // Roots: spans whose parent is 0 or not in the ring any more (a
    // remote parent id, or one the ring has since overwritten). Render
    // each distinct orphan parent once — rendering per root span would
    // repeat siblings that share the same absent parent.
    let mut orphan_parents: Vec<u64> = spans
        .iter()
        .filter(|s| !ids.contains(&s.parent_id))
        .map(|s| s.parent_id)
        .collect();
    orphan_parents.sort_unstable();
    orphan_parents.dedup();
    for parent in orphan_parents {
        render(out, spans, parent, 0, base_us);
    }
}

fn trace_cmd(flags: &Flags) -> CmdResult {
    let h = flags.get_or("h", 6usize)?;
    let k = flags.get_or("k", 3usize)?;
    let m = flags.get_or("m", 2usize)?;
    let shape = LayerShape::square(1, h, m, k, 1, 0);
    let vi = h * h;
    let ifmap = Tensor::from_vec(
        [1, 1, h, h],
        (0..vi)
            .map(|i| Fix16::from_raw((i % 17) as i16 + 1))
            .collect(),
    )
    .map_err(|e| e.to_string())?;
    let vw = m * k * k;
    let weights = Tensor::from_vec(
        [m, 1, k, k],
        (0..vw)
            .map(|i| Fix16::from_raw((i % 5) as i16 + 1))
            .collect(),
    )
    .map_err(|e| e.to_string())?;
    let vcd = trace::trace_pattern(&shape, &ifmap, &weights, 0)?;
    match flags.get_str("out") {
        Some(path) => {
            std::fs::write(path, &vcd)?;
            Ok(format!(
                "wrote {} bytes of VCD to {path} (open with GTKWave/Surfer)\n",
                vcd.len()
            ))
        }
        None => Ok(vcd),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> String {
        dispatch(&args.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>())
            .expect("command succeeds")
    }

    #[test]
    fn help_lists_commands() {
        let h = run(&["help"]);
        for cmd in [
            "perf", "traffic", "power", "simulate", "trace", "tables", "serve", "query",
        ] {
            assert!(h.contains(cmd), "help missing {cmd}");
        }
        assert_eq!(run(&[]), h); // empty argv -> help
    }

    #[test]
    fn unknown_command_fails() {
        assert!(dispatch(&["frobnicate".to_owned()]).is_err());
    }

    #[test]
    fn serve_trace_cap_rejects_garbage_and_negatives() {
        for bad in ["garbage", "-5", "1.5"] {
            let err = dispatch(&[
                "serve".to_owned(),
                "--trace-cap-mb".to_owned(),
                (*bad).to_owned(),
            ])
            .expect_err("bad cap must be rejected")
            .to_string();
            assert!(err.contains("trace-cap-mb"), "unhelpful error: {err}");
            assert!(err.contains(bad), "error must echo the value: {err}");
        }
    }

    #[test]
    fn serve_trace_cap_zero_parses_as_no_rotation() {
        // 0 must reach ServerConfig unchanged (rotation disabled);
        // the no-rotation file behavior itself is covered by the serve
        // crate's TraceLog tests.
        let flags = Flags::parse(&["--trace-cap-mb".to_owned(), "0".to_owned()]).unwrap();
        assert_eq!(flags.get_or("trace-cap-mb", 64u64).unwrap(), 0);
    }

    #[test]
    fn trace_positional_must_be_a_valid_trace_id() {
        let err = dispatch(&["trace".to_owned(), "abc".to_owned()])
            .expect_err("non-numeric id")
            .to_string();
        assert!(err.contains("trace ID"), "{err}");
        let err = dispatch(&["trace".to_owned(), "0".to_owned()])
            .expect_err("id 0 is reserved")
            .to_string();
        assert!(err.contains("reserved"), "{err}");
    }

    #[test]
    fn perf_runs_on_every_zoo_net() {
        for net in [
            "alexnet",
            "vgg16",
            "lenet",
            "cifar10",
            "resnet18",
            "mobilenet",
        ] {
            let out = run(&["perf", "--net", net, "--batch", "2"]);
            assert!(out.contains("fps"), "{net}: {out}");
        }
    }

    #[test]
    fn perf_strict_mode() {
        let out = run(&["perf", "--net", "alexnet", "--model", "strict"]);
        assert!(out.contains("total"));
    }

    #[test]
    fn traffic_and_power_run() {
        assert!(run(&["traffic", "--net", "alexnet"]).contains("oMem"));
        assert!(run(&["power", "--net", "alexnet"]).contains("GOPS/W"));
    }

    #[test]
    fn simulate_is_golden_checked() {
        let out = run(&[
            "simulate", "--c", "2", "--h", "7", "--m", "3", "--k", "3", "--pad", "1", "--pes", "27",
        ]);
        assert!(out.contains("bit-exact"), "{out}");
        // Strided path.
        let out = run(&["simulate", "--h", "9", "--k", "3", "--stride", "2"]);
        assert!(out.contains("bit-exact"), "{out}");
    }

    #[test]
    fn simulate_rejects_bad_shapes() {
        assert!(dispatch(
            &["simulate", "--h", "2", "--k", "5"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect::<Vec<_>>()
        )
        .is_err());
    }

    #[test]
    fn trace_produces_vcd() {
        let out = run(&["trace", "--h", "6", "--k", "3"]);
        assert!(out.starts_with("$date"));
        assert!(out.contains("$enddefinitions"));
    }

    #[test]
    fn table_commands_alias_bench_runners() {
        assert!(run(&["table2"]).contains("576"));
        assert!(run(&["nets"]).contains("AlexNet"));
    }

    #[test]
    fn dse_sweeps_and_marks_the_paper_point() {
        let out = run(&[
            "dse",
            "--pes",
            "288,576",
            "--freq",
            "700",
            "--batch",
            "4",
            "--threads",
            "2",
        ]);
        assert!(out.contains("2 points"), "{out}");
        assert!(out.contains("Pareto frontier"), "{out}");
        assert!(out.contains("<- paper"), "{out}");
        assert!(out.contains("speedup"), "{out}");
    }

    #[test]
    fn dse_range_axis_and_csv_export() {
        let path = std::env::temp_dir().join("chain_nn_dse_test.csv");
        let path_str = path.to_str().expect("utf-8 temp path");
        let out = run(&[
            "dse",
            "--pes",
            "64..=128:32",
            "--freq",
            "700",
            "--net",
            "lenet",
            "--batch",
            "1",
            "--threads",
            "1",
            "--out",
            path_str,
        ]);
        assert!(out.contains("3 points"), "{out}");
        let csv = std::fs::read_to_string(&path).expect("csv written");
        std::fs::remove_file(&path).ok();
        assert!(csv.starts_with("net,pes,"));
        assert_eq!(csv.lines().count(), 4); // header + 3 points
    }

    #[test]
    fn dse_rejects_bad_axes() {
        for bad in [
            vec!["dse", "--pes", "10..=5"],
            vec!["dse", "--freq", "fast"],
            vec!["dse", "--net", "squeezenet"],
            vec!["dse", "--bits", "12"],
        ] {
            let argv: Vec<String> = bad.iter().map(|s| (*s).to_owned()).collect();
            assert!(dispatch(&argv).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn tune_finds_a_point_under_budget() {
        let out = run(&["tune", "--max-mw", "500", "--seed", "7", "--threads", "2"]);
        assert!(out.contains("within budget"), "{out}");
        assert!(out.contains("chosen:"), "{out}");
        assert!(out.contains("grid configurations"), "{out}");
        // The search must not have swept: the default grid has 244
        // configurations and the report says how many were touched.
        assert!(out.contains("of 244 grid configurations"), "{out}");
    }

    #[test]
    fn tune_with_mix_and_cache_file_is_incremental() {
        let path =
            std::env::temp_dir().join(format!("chain_nn_cli_tune_{}.cache", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let path_str = path.to_str().expect("utf-8 temp path");
        let args = [
            "tune",
            "--mix",
            "alexnet:0.7,vgg16:0.3",
            "--max-mw",
            "900",
            "--pes",
            "576..=1024:64",
            "--threads",
            "1",
            "--cache-file",
            path_str,
        ];
        let first = run(&args);
        assert!(first.contains("70% alexnet + 30% vgg16"), "{first}");
        assert!(first.contains("0 hits"), "{first}");
        let second = run(&args);
        assert!(second.contains(" 0 misses"), "{second}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dse_cache_file_makes_sweeps_incremental_with_zero_accuracy_recomputes() {
        let path =
            std::env::temp_dir().join(format!("chain_nn_cli_dse_{}.cache", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let args = [
            "dse",
            "--pes",
            "25,50",
            "--freq",
            "700",
            "--net",
            "lenet",
            "--batch",
            "1",
            "--threads",
            "1",
            "--cache-file",
            path.to_str().expect("utf-8 temp path"),
        ];
        let first = run(&args);
        assert!(first.contains("2 misses"), "{first}");
        assert!(first.contains("points loaded, 2 appended"), "{first}");
        // Settle every (net, width) pair concurrent tests in this
        // binary can measure: the recomputation counter is
        // process-global, and a measurement completing between the
        // second run's before/after reads would break its "0" report.
        for net in ["lenet", "cifar10", "alexnet", "vgg16"] {
            for bits in [8u32, 16] {
                chain_nn_dse::accuracy::sqnr_for(net, bits).expect("zoo pair measures");
            }
        }
        // Second run: every point (and with it its SQNR) comes off the
        // snapshot — zero evaluations, zero accuracy recomputations.
        let second = run(&args);
        assert!(second.contains("2 hits / 0 misses"), "{second}");
        assert!(second.contains("accuracy recomputations: 0"), "{second}");
        assert!(second.contains("2 points loaded, 0 appended"), "{second}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tune_min_sqnr_db_floor_forces_the_wide_word() {
        // 8- and 16-bit words at one configuration: without the floor
        // the cooler 8-bit point wins; the accuracy floor flips it.
        let base = [
            "tune",
            "--pes",
            "576",
            "--freq",
            "700",
            "--batch",
            "4",
            "--bits",
            "8,16",
            "--threads",
            "1",
        ];
        let free = run(&base);
        assert!(free.contains(" w8 "), "{free}");
        let mut strict = base.to_vec();
        strict.extend(["--min-sqnr-db", "50"]);
        let strict = run(&strict);
        assert!(strict.contains(" w16 "), "{strict}");
        assert!(strict.contains("SQNR >= 50 dB"), "{strict}");
        assert!(strict.contains("within budget"), "{strict}");
    }

    #[test]
    fn tune_sweep_budget_reports_the_tuned_frontier() {
        let out = run(&[
            "tune",
            "--sweep-budget",
            "max-mw=450..=650:100",
            "--threads",
            "2",
        ]);
        assert!(out.contains("== frontier tune:"), "{out}");
        assert!(out.contains("sweep: max-mw 450..650 (3 steps)"), "{out}");
        // One row per budget step, then the frontier block.
        assert!(out.contains("tuned frontier:"), "{out}");
        assert!(out.contains("max-mw <="), "{out}");
        assert!(out.contains("% reused via warm start"), "{out}");
        // The sweep reuses evaluations: distinct < sum of standalone.
        assert!(out.contains("standalone tunes would visit"), "{out}");
    }

    #[test]
    fn tune_sweep_budget_exports_the_frontier() {
        let dir = std::env::temp_dir();
        let csv_path = dir.join(format!("chain_nn_frontier_{}.csv", std::process::id()));
        let json_path = dir.join(format!("chain_nn_frontier_{}.json", std::process::id()));
        let out = run(&[
            "tune",
            "--sweep-budget",
            "max-mw=500..=600:100",
            "--threads",
            "1",
            "--out",
            csv_path.to_str().unwrap(),
            "--json",
            json_path.to_str().unwrap(),
        ]);
        assert!(out.contains("wrote tuned-frontier CSV"), "{out}");
        assert!(out.contains("wrote tuned-frontier JSON"), "{out}");
        let csv = std::fs::read_to_string(&csv_path).expect("csv written");
        std::fs::remove_file(&csv_path).ok();
        assert!(csv.starts_with("budget_axis,budget_value,"), "{csv}");
        assert_eq!(csv.lines().count(), 3, "header + 2 steps: {csv}");
        assert!(csv.contains("max_system_mw,500,1,"), "{csv}");
        let json = std::fs::read_to_string(&json_path).expect("json written");
        std::fs::remove_file(&json_path).ok();
        assert!(
            json.contains("\"budget_axis\": \"max_system_mw\""),
            "{json}"
        );
        assert_eq!(json.matches("\"budget_value\"").count(), 2);
    }

    #[test]
    fn tune_sweep_budget_rejects_bad_sweeps() {
        for bad in [
            vec!["tune", "--sweep-budget", "warp=1..=2"],
            vec!["tune", "--sweep-budget", "max-mw=900..=300:50"],
            vec!["tune", "--sweep-budget", "max-mw=300..=900:0"],
            // The swept axis must not also be fixed.
            vec![
                "tune",
                "--sweep-budget",
                "max-mw=300..=900:50",
                "--max-mw",
                "500",
            ],
            // Frontier exports need the sweep.
            vec!["tune", "--out", "frontier.csv"],
            vec!["tune", "--json", "frontier.json"],
        ] {
            let argv: Vec<String> = bad.iter().map(|s| (*s).to_owned()).collect();
            assert!(dispatch(&argv).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn tune_rejects_bad_flags() {
        for bad in [
            vec!["tune", "--net", "alexnet"],
            vec!["tune", "--mix", "squeezenet"],
            vec!["tune", "--max-mw", "cheap"],
            vec!["tune", "--min-sqnr-db", "lots"],
            vec!["tune", "--objective", "warp"],
            vec!["tune", "--strategy", "warp"],
            // Local-only knobs are refused (not silently ignored) on
            // the daemon path; checked before any connection attempt.
            vec!["tune", "--port", "7878", "--cache-file", "x.cache"],
            vec!["tune", "--port", "7878", "--threads", "4"],
        ] {
            let argv: Vec<String> = bad.iter().map(|s| (*s).to_owned()).collect();
            assert!(dispatch(&argv).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn compact_rewrites_a_cache_file() {
        let path =
            std::env::temp_dir().join(format!("chain_nn_cli_compact_{}.cache", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let file = chain_nn_dse::CacheFile::new(&path);
        let point = chain_nn_dse::DesignPoint::paper_alexnet();
        let outcome = chain_nn_dse::evaluate(&point).unwrap();
        file.append(&[(point.clone(), outcome.clone()), (point, outcome)])
            .unwrap();
        let out = run(&["compact", "--cache-file", path.to_str().unwrap()]);
        assert!(out.contains("kept 1 records"), "{out}");
        assert!(out.contains("dropped 1 duplicates"), "{out}");
        std::fs::remove_file(&path).ok();
        assert!(dispatch(&["compact".to_owned()]).is_err());
    }

    #[test]
    fn query_drives_a_live_daemon() {
        // Bind on an ephemeral port via the library, then drive it
        // through the CLI client path.
        let server = chain_nn_serve::Server::bind(chain_nn_serve::ServerConfig {
            threads: 2,
            ..chain_nn_serve::ServerConfig::default()
        })
        .expect("bind");
        let port = server.local_addr().expect("addr").port().to_string();
        let daemon = std::thread::spawn(move || server.run().expect("daemon runs"));

        let stats = run(&["query", "--port", &port, "stats"]);
        assert!(stats.contains("\"ok\":true"), "{stats}");
        assert!(stats.contains("\"cached_points\":0"), "{stats}");

        let sweep = run(&[
            "query",
            "--port",
            &port,
            r#"{"type":"sweep","spec":{"pes":[288,576],"nets":"alexnet"}}"#,
        ]);
        assert!(sweep.contains("\"points\":2"), "{sweep}");
        assert!(sweep.contains("\"cache_misses\":2"), "{sweep}");

        let frontier = run(&["query", "--port", &port, "frontier"]);
        assert!(frontier.contains("\"entries\":["), "{frontier}");

        // The windowed-history reply answers even before the first
        // sampler tick (empty windows, zero rates).
        let history = run(&["query", "--port", &port, "metrics-history"]);
        assert!(history.contains("\"windows\":["), "{history}");
        assert!(history.contains("\"interval_s\":"), "{history}");

        // The streaming variant drains one line per entry + done.
        let streamed = run(&["query", "--port", &port, "frontier-stream"]);
        let lines: Vec<&str> = streamed.lines().collect();
        assert!(lines.len() >= 2, "{streamed}");
        assert!(lines[0].contains("\"stream\":true"), "{streamed}");
        assert!(
            lines.last().unwrap().contains("\"done\":true"),
            "{streamed}"
        );

        // A streamed frontier tune over the daemon: step lines then done.
        let swept = run(&[
            "query",
            "--port",
            &port,
            r#"{"type":"tune_frontier","sweep":{"axis":"max_system_mw","values":[500,600]}}"#,
        ]);
        let lines: Vec<&str> = swept.lines().collect();
        assert_eq!(lines.len(), 3, "{swept}");
        assert!(lines[0].contains("\"step\":0"), "{swept}");
        assert!(lines[1].contains("\"step\":1"), "{swept}");
        assert!(lines[2].contains("\"done\":true"), "{swept}");

        let bye = run(&["query", "--port", &port, "shutdown"]);
        assert!(bye.contains("\"type\":\"shutdown\""), "{bye}");
        let report = daemon.join().expect("daemon thread");
        // The sweep cached its 2 points; the streamed frontier tune
        // cached its search on top.
        assert!(report.cached_points >= 2, "{}", report.cached_points);
        assert!(report.requests >= 6);
    }

    #[test]
    fn query_requires_a_request() {
        assert!(dispatch(&["query".to_owned()]).is_err());
    }

    #[test]
    fn serve_rejects_malformed_slos() {
        let err = dispatch(&[
            "serve".to_owned(),
            "--slo".to_owned(),
            "eval:p99=500".to_owned(),
        ])
        .expect_err("bad slo spec");
        assert!(err.to_string().contains("p99_us"), "{err}");
    }

    #[test]
    fn top_frame_renders_the_dashboard_fields() {
        let frame = render_top_frame(&chain_nn_serve::protocol::WatchSample {
            seq: 12,
            interval_s: 0.25,
            window_s: 1.0,
            req_per_sec: 42.5,
            points_per_sec: 1360.0,
            inflight: 2,
            active_jobs: 3,
            queue_depth: 1,
            cache_hit_rate: 0.875,
            requests_total: 512,
            queue_wait_p99_us: 180.0,
            execute_p99_us: 950.0,
            types: vec![chain_nn_serve::protocol::HistoryTypeWindow {
                kind: "eval".to_owned(),
                requests: 40,
                p50_us: 120.0,
                p99_us: 800.0,
            }],
        });
        assert!(frame.contains("sample #12"), "{frame}");
        assert!(frame.contains("42.5 req/s"), "{frame}");
        assert!(frame.contains("cache hit rate 87.5%"), "{frame}");
        assert!(frame.contains("queue-wait p99 180 us"), "{frame}");
        assert!(frame.contains("eval"), "{frame}");
    }

    #[test]
    fn top_and_watch_drive_a_live_daemon() {
        let server = chain_nn_serve::Server::bind(chain_nn_serve::ServerConfig {
            threads: 2,
            sample_interval: std::time::Duration::from_millis(20),
            ..chain_nn_serve::ServerConfig::default()
        })
        .expect("bind");
        let port = server.local_addr().expect("addr").port().to_string();
        let daemon = std::thread::spawn(move || server.run().expect("daemon runs"));

        // Some traffic for the dashboard, then two frames off the
        // stream (the frames themselves print eagerly; the returned
        // text is the end-of-stream summary).
        run(&["query", "--port", &port, "eval"]);
        let out = run(&["top", "--port", &port, "--frames", "2"]);
        assert!(out.contains("watch stream ended after 2 frames"), "{out}");

        // The bounded query shorthand drains sample lines then done.
        let watched = run(&["query", "--port", &port, r#"{"type":"watch","samples":2}"#]);
        let lines: Vec<&str> = watched.lines().collect();
        assert_eq!(lines.len(), 3, "{watched}");
        assert!(lines[0].contains("\"seq\":"), "{watched}");
        assert!(lines[2].contains("\"done\":true"), "{watched}");

        run(&["query", "--port", &port, "shutdown"]);
        daemon.join().expect("daemon thread");
    }

    #[test]
    fn tune_sweep_budget_on_a_daemon_matches_local() {
        let server = chain_nn_serve::Server::bind(chain_nn_serve::ServerConfig {
            threads: 2,
            ..chain_nn_serve::ServerConfig::default()
        })
        .expect("bind");
        let port = server.local_addr().expect("addr").port().to_string();
        let daemon = std::thread::spawn(move || server.run().expect("daemon runs"));

        let sweep = ["--sweep-budget", "max-mw=500..=700:100"];
        let local = run(&[&["tune", "--threads", "2"], &sweep[..]].concat());
        let served = run(&[&["tune", "--port", &port], &sweep[..]].concat());
        // Identical frontier + accounting, whichever side searched.
        // (The daemon path prints its step rows eagerly as they stream
        // in, so the returned text carries the summary only.)
        let summary = |s: &str| -> Vec<String> {
            s.lines()
                .skip_while(|l| !l.starts_with("tuned frontier"))
                .map(str::to_owned)
                .collect()
        };
        let local_summary = summary(&local);
        assert!(!local_summary.is_empty(), "{local}");
        assert_eq!(local_summary, summary(&served), "\n{local}\nvs\n{served}");
        // And the local path still renders one row per budget step
        // ahead of the frontier block.
        let step_rows = local
            .lines()
            .take_while(|l| !l.starts_with("tuned frontier"))
            .filter(|l| l.contains("MHz kmem="))
            .count();
        assert_eq!(step_rows, 3, "{local}");

        run(&["query", "--port", &port, "shutdown"]);
        daemon.join().expect("daemon thread");
    }

    #[test]
    fn dse_reports_hit_rate() {
        let out = run(&[
            "dse",
            "--pes",
            "288,576",
            "--freq",
            "700",
            "--batch",
            "4",
            "--threads",
            "1",
        ]);
        assert!(out.contains("% hit rate)"), "{out}");
    }

    #[test]
    fn bad_flags_reported() {
        let err = dispatch(
            &["perf", "--batch", "lots"]
                .iter()
                .map(|s| (*s).to_owned())
                .collect::<Vec<_>>(),
        )
        .expect_err("bad value");
        assert!(err.to_string().contains("lots"));
    }
}
