//! Tiny `--key value` argument parser (no external dependencies).

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// Error produced while parsing command-line arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A positional token appeared where a flag was expected.
    Unexpected(String),
    /// A value failed to parse.
    BadValue {
        /// Flag name.
        flag: String,
        /// Offending value text.
        value: String,
    },
    /// A flag appeared twice.
    Duplicate(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::Unexpected(tok) => write!(f, "unexpected argument '{tok}'"),
            ArgError::BadValue { flag, value } => {
                write!(f, "cannot parse '{value}' for --{flag}")
            }
            ArgError::Duplicate(flag) => write!(f, "flag --{flag} given twice"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Parsed `--key value` pairs.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    /// Parses everything after the subcommand. A `--flag` directly
    /// followed by another `--flag` (or by nothing) is a valueless
    /// switch and parses as the value `true`, so boolean toggles like
    /// `--coordinator` need no explicit operand; no flag in this CLI
    /// takes a value beginning with `--`.
    ///
    /// # Errors
    ///
    /// Returns an [`ArgError`] on malformed input.
    pub fn parse(tokens: &[String]) -> Result<Self, ArgError> {
        let mut values = HashMap::new();
        let mut it = tokens.iter().peekable();
        while let Some(tok) = it.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(ArgError::Unexpected(tok.clone()));
            };
            let value = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().expect("peeked").clone(),
                _ => "true".to_owned(),
            };
            if values.insert(name.to_owned(), value).is_some() {
                return Err(ArgError::Duplicate(name.to_owned()));
            }
        }
        Ok(Flags { values })
    }

    /// A typed flag value, or `default` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when present but unparseable.
    pub fn get_or<T: FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.values.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_owned(),
                value: v.clone(),
            }),
        }
    }

    /// A string flag value, if present.
    pub fn get_str(&self, flag: &str) -> Option<&str> {
        self.values.get(flag).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(|t| (*t).to_owned()).collect()
    }

    #[test]
    fn parses_pairs() {
        let f = Flags::parse(&toks(&["--pes", "576", "--net", "alexnet"])).unwrap();
        assert_eq!(f.get_or("pes", 0usize).unwrap(), 576);
        assert_eq!(f.get_str("net"), Some("alexnet"));
        assert_eq!(f.get_or("batch", 4usize).unwrap(), 4);
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(
            Flags::parse(&toks(&["576"])).unwrap_err(),
            ArgError::Unexpected("576".into())
        );
        assert_eq!(
            Flags::parse(&toks(&["--k", "1", "--k", "2"])).unwrap_err(),
            ArgError::Duplicate("k".into())
        );
    }

    #[test]
    fn bare_flags_are_boolean_switches() {
        let f = Flags::parse(&toks(&["--coordinator", "--port", "8100"])).unwrap();
        assert!(f.get_or("coordinator", false).unwrap());
        assert_eq!(f.get_or("port", 0u16).unwrap(), 8100);
        let f = Flags::parse(&toks(&["--port", "8100", "--coordinator"])).unwrap();
        assert!(f.get_or("coordinator", false).unwrap());
        // A forgotten value still fails loudly, just at typing time.
        let f = Flags::parse(&toks(&["--pes", "--net", "alexnet"])).unwrap();
        assert!(matches!(
            f.get_or("pes", 0usize).unwrap_err(),
            ArgError::BadValue { .. }
        ));
    }

    #[test]
    fn typed_errors() {
        let f = Flags::parse(&toks(&["--pes", "many"])).unwrap();
        let err = f.get_or("pes", 0usize).unwrap_err();
        assert!(matches!(err, ArgError::BadValue { .. }));
        assert!(err.to_string().contains("many"));
    }
}
