//! `chain-nn` — command-line frontend for the Chain-NN reproduction.
//!
//! ```text
//! chain-nn tables                      # every paper table/figure
//! chain-nn table2|table4|table5|fig5|fig9|fig10|area|taxonomy|ablations
//! chain-nn perf    --net alexnet --batch 128 [--pes N] [--freq MHZ] [--model strict]
//! chain-nn traffic --net vgg16 --batch 4
//! chain-nn power   --net alexnet --batch 4
//! chain-nn simulate --c 2 --h 8 --m 4 --k 3 [--stride 1] [--pad 1] [--pes 36]
//! chain-nn trace   --h 6 --k 3 [--m 2] [--out chain.vcd]
//! chain-nn nets
//! chain-nn dse     [--pes 64..=1024] [--threads 8] [--out dse.csv]
//! chain-nn serve   [--port 7878] [--threads 8] [--cache-file dse.cache]
//! chain-nn query   [--port 7878] '{"type":"sweep","spec":{"pes":[288,576]}}'
//! ```

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&argv) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `chain-nn help` for usage");
            ExitCode::FAILURE
        }
    }
}
