//! Budget-constrained auto-tuning of the Chain-NN design space.
//!
//! PR 1/2 answer "what does every point look like" (exhaustive sweeps,
//! Pareto frontiers, a caching daemon). This crate answers the question
//! a deployment actually asks: **"what is the best accelerator for
//! this workload under this budget?"** — e.g. *70 % AlexNet / 30 %
//! VGG-16 traffic, at most 500 mW system power* — by searching the
//! grid instead of sweeping it.
//!
//! * [`budget`] — hard constraints: max system mW, max kilo-gates,
//!   min fps ([`Budget`]).
//! * [`objective`] — what "best" means among admitted candidates:
//!   metrics composed lexicographically or scalarized ([`Objective`]).
//! * [`strategy`] — two deterministic search strategies behind one
//!   [`SearchStrategy`] trait: coarse-to-fine successive halving
//!   ([`SuccessiveHalving`]) and first-improvement local search
//!   ([`HillClimb`]), both cache-first (every candidate goes through
//!   the shared [`chain_nn_dse::PointCache`], so repeated tunes are
//!   incremental) with seeded neighbour order and content-hash
//!   tie-breaks.
//! * [`evaluator`] — where candidates are evaluated: in-process over a
//!   local cache ([`CacheEvaluator`]) or, via the same trait, on the
//!   serving daemon's fair scheduler (`chain-nn-serve`).
//! * [`frontier`] — frontier tuning: sweep one budget axis
//!   ([`BudgetSweep`], e.g. `max-mw=300..=900:50`) and get the whole
//!   budget-constrained Pareto frontier ([`tune_frontier`]) for little
//!   more than the hardest single step, streaming one result per
//!   budget as it completes.
//!
//! Multi-network workloads use [`chain_nn_dse::WorkloadMix`]: per-point
//! objectives aggregate across the mix (weighted harmonic-mean fps,
//! worst-case power) and each `(configuration, network)` pair is
//! evaluated once, ever.
//!
//! The [`TuneReport`] carries evaluation-count accounting — candidates
//! visited vs. the exhaustive grid size — because the whole point of a
//! tuner is `tune ≪ exhaustive`; the acceptance tests pin that ratio.
//!
//! # Example
//!
//! ```
//! use chain_nn_dse::{PointCache, WorkloadMix};
//! use chain_nn_tuner::{tune, Budget, CacheEvaluator, TuneRequest};
//!
//! let request = TuneRequest {
//!     mix: WorkloadMix::parse("alexnet:0.7,vgg16:0.3").unwrap(),
//!     budget: Budget {
//!         max_system_mw: Some(900.0),
//!         ..Budget::default()
//!     },
//!     ..TuneRequest::default()
//! };
//! let cache = PointCache::new();
//! let report = tune(&request, &mut CacheEvaluator::new(&cache, 2)).unwrap();
//! let best = report.best.expect("something admitted");
//! assert!(best.admitted);
//! assert!(best.result.system_mw() <= 900.0);
//! // The tuner searched, it did not sweep:
//! assert!(report.evaluations < report.exhaustive_points as u64 / 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod evaluator;
pub mod frontier;
pub mod objective;
pub mod strategy;

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use chain_nn_dse::{DesignPoint, DseError, MixResult, SweepSpec, WorkloadMix};

pub use budget::Budget;
pub use evaluator::{BatchFnEvaluator, CacheEvaluator, MixEvaluator};
pub use frontier::{
    tune_frontier, BudgetAxis, BudgetSweep, FrontierStep, FrontierTuneReport, FrontierTuneRequest,
};
pub use objective::{Metric, Objective};
pub use strategy::{HillClimb, SearchStrategy, SuccessiveHalving};

use strategy::{Session, Space};

/// Errors produced while tuning.
#[derive(Debug, Clone, PartialEq)]
pub enum TuneError {
    /// The tune request itself is invalid (space, budget, objective).
    Spec(String),
    /// A candidate evaluation failed at the spec level.
    Eval(DseError),
    /// The evaluation backend (scheduler, transport) failed.
    Backend(String),
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::Spec(msg) => write!(f, "invalid tune request: {msg}"),
            TuneError::Eval(e) => write!(f, "evaluation failed: {e}"),
            TuneError::Backend(msg) => write!(f, "tune backend failed: {msg}"),
        }
    }
}

impl Error for TuneError {}

impl From<DseError> for TuneError {
    fn from(e: DseError) -> Self {
        TuneError::Eval(e)
    }
}

/// Which search strategy a tune runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrategyKind {
    /// Coarse-to-fine successive halving ([`SuccessiveHalving`]) — the
    /// default: global, bracket-and-bisect, a few dozen evaluations on
    /// the default grid.
    #[default]
    Halving,
    /// Local hill-climb ([`HillClimb`]) — polish around the incumbent;
    /// best when a cache-file already holds a good neighbourhood.
    HillClimb,
}

impl StrategyKind {
    /// The wire/CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::Halving => "halving",
            StrategyKind::HillClimb => "hillclimb",
        }
    }
}

impl FromStr for StrategyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "halving" | "successive-halving" => Ok(StrategyKind::Halving),
            "hillclimb" | "hill-climb" | "climb" => Ok(StrategyKind::HillClimb),
            other => Err(format!(
                "unknown strategy '{other}' (expected halving | hillclimb)"
            )),
        }
    }
}

impl fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything one tune needs: the space to search, the workload, the
/// constraints, the objective, and the strategy + seed.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneRequest {
    /// The grid to search. The `nets` axis is ignored — networks come
    /// from `mix`.
    pub space: SweepSpec,
    /// The workload the accelerator must serve.
    pub mix: WorkloadMix,
    /// Hard constraints.
    pub budget: Budget,
    /// Ranking among admitted candidates.
    pub objective: Objective,
    /// Search strategy.
    pub strategy: StrategyKind,
    /// Seed for the strategies' candidate-order randomness. The chosen
    /// point for a given `(space, mix, budget, objective, strategy,
    /// seed)` is identical across runs and thread counts.
    pub seed: u64,
}

impl Default for TuneRequest {
    /// The default grid, single-AlexNet workload, no constraints,
    /// fastest-then-coolest-then-smallest, successive halving, seed 0.
    fn default() -> Self {
        TuneRequest {
            space: SweepSpec::default_grid(),
            mix: WorkloadMix::single("alexnet").expect("alexnet is a zoo network"),
            budget: Budget::default(),
            objective: Objective::default(),
            strategy: StrategyKind::default(),
            seed: 0,
        }
    }
}

impl TuneRequest {
    /// Validates space, budget and objective together.
    ///
    /// # Errors
    ///
    /// [`TuneError::Spec`] naming the problem.
    pub fn validate(&self) -> Result<(), TuneError> {
        let mut spec = self.space.clone();
        spec.nets = vec![self.mix.primary().to_owned()];
        spec.validate()
            .map_err(|e| TuneError::Spec(e.to_string()))?;
        self.budget.validate().map_err(TuneError::Spec)?;
        self.objective.validate().map_err(TuneError::Spec)?;
        Ok(())
    }
}

/// The chosen accelerator of one tune.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuned {
    /// The configuration (its `net` field names the mix's primary
    /// network; the result aggregates the whole mix).
    pub point: DesignPoint,
    /// Aggregated workload metrics of the configuration.
    pub result: MixResult,
    /// Whether the point satisfies the budget. `false` means the
    /// search found no admitted point and this is the least-violating
    /// feasible one.
    pub admitted: bool,
}

/// What one tune did: the winner plus the evaluation-count accounting
/// that proves searching beat sweeping.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// The best candidate found, or `None` when every visited
    /// configuration was model-infeasible.
    pub best: Option<Tuned>,
    /// Distinct configurations evaluated (each costing one model
    /// evaluation per mix network, minus cache hits).
    pub evaluations: u64,
    /// Underlying `(configuration, network)` lookups answered from the
    /// cache.
    pub cache_hits: u64,
    /// Underlying lookups that ran the model stack.
    pub cache_misses: u64,
    /// Evaluator round trips (batches).
    pub rounds: usize,
    /// Configurations in the full grid — what an exhaustive sweep
    /// would evaluate per network.
    pub exhaustive_points: usize,
    /// The strategy that ran.
    pub strategy: StrategyKind,
    /// The seed it ran with.
    pub seed: u64,
}

impl TuneReport {
    /// Fraction of the exhaustive grid the tune actually visited.
    pub fn evaluation_fraction(&self) -> f64 {
        if self.exhaustive_points == 0 {
            return 0.0;
        }
        self.evaluations as f64 / self.exhaustive_points as f64
    }
}

/// Runs one tune against `evaluator`.
///
/// # Errors
///
/// [`TuneError::Spec`] for an invalid request; evaluator failures are
/// passed through.
pub fn tune<E: MixEvaluator>(
    request: &TuneRequest,
    evaluator: &mut E,
) -> Result<TuneReport, TuneError> {
    request.validate()?;
    let space = Space::new(request.space.clone(), request.mix.primary());
    let exhaustive_points = space.total();
    let mut session = Session::new(
        space,
        &request.mix,
        &request.budget,
        &request.objective,
        evaluator,
        request.seed,
    );
    match request.strategy {
        StrategyKind::Halving => SuccessiveHalving::default().search(&mut session)?,
        StrategyKind::HillClimb => HillClimb::default().search(&mut session)?,
    }

    let best = session.incumbent().and_then(|idx| {
        let result = *session.outcome(&idx)?.result()?;
        Some(Tuned {
            point: session.space.point(&idx),
            admitted: request.budget.admits(&result),
            result,
        })
    });
    let evaluations = session.evaluations();
    let rounds = session.rounds();
    let (cache_hits, cache_misses) = evaluator.counters();
    Ok(TuneReport {
        best,
        evaluations,
        cache_hits,
        cache_misses,
        rounds,
        exhaustive_points,
        strategy: request.strategy,
        seed: request.seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_nn_dse::PointCache;

    fn request(budget: Budget, strategy: StrategyKind) -> TuneRequest {
        TuneRequest {
            budget,
            strategy,
            ..TuneRequest::default()
        }
    }

    #[test]
    fn unconstrained_tune_gets_close_to_the_fastest_grid_point() {
        let cache = PointCache::new();
        let report = tune(
            &request(Budget::default(), StrategyKind::Halving),
            &mut CacheEvaluator::new(&cache, 2),
        )
        .unwrap();
        let best = report.best.expect("grid has feasible points");
        assert!(best.admitted);
        // The fps landscape is not monotone in PEs (kernel-mapping
        // granularity), so compare against the true exhaustive optimum
        // rather than assuming the corner wins.
        let exhaustive_cache = PointCache::new();
        let points = TuneRequest::default().space.points();
        let best_fps = chain_nn_dse::executor::run(&points, 2, &exhaustive_cache)
            .unwrap()
            .iter()
            .filter_map(|o| o.result().map(|r| r.fps))
            .fold(0.0f64, f64::max);
        assert!(
            best.result.fps >= 0.98 * best_fps,
            "tuned {} vs exhaustive {best_fps}",
            best.result.fps
        );
        // Fastest configurations live at full clock and batch.
        assert_eq!(best.point.freq_mhz, 700.0);
        assert_eq!(best.point.batch, 4);
        assert!(report.evaluations < report.exhaustive_points as u64 / 4);
        assert!(report.rounds > 1);
    }

    #[test]
    fn infeasible_budget_reports_the_least_violating_point() {
        // 1 mW admits nothing; the tuner still reports its best effort,
        // flagged as not admitted.
        let cache = PointCache::new();
        let budget = Budget {
            max_system_mw: Some(1.0),
            ..Budget::default()
        };
        let report = tune(
            &request(budget, StrategyKind::Halving),
            &mut CacheEvaluator::new(&cache, 1),
        )
        .unwrap();
        let best = report.best.expect("feasible points exist");
        assert!(!best.admitted);
        // Least system power in the grid is the best a 1 mW budget can
        // do: the smallest, slowest configuration survives.
        assert_eq!(best.point.freq_mhz, 350.0);
    }

    #[test]
    fn repeated_tune_is_fully_cached() {
        let cache = PointCache::new();
        let req = request(
            Budget {
                max_system_mw: Some(500.0),
                ..Budget::default()
            },
            StrategyKind::Halving,
        );
        let first = tune(&req, &mut CacheEvaluator::new(&cache, 2)).unwrap();
        assert_eq!(first.cache_hits, 0);
        assert!(first.cache_misses > 0);
        let mut again_eval = CacheEvaluator::new(&cache, 2);
        let again = tune(&req, &mut again_eval).unwrap();
        assert_eq!(again.cache_misses, 0, "second tune must be incremental");
        assert_eq!(again.cache_hits, first.cache_misses);
        assert_eq!(again.best, first.best);
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let cache = PointCache::new();
        let mut bad_space = TuneRequest::default();
        bad_space.space.pes.clear();
        assert!(matches!(
            tune(&bad_space, &mut CacheEvaluator::new(&cache, 1)),
            Err(TuneError::Spec(_))
        ));
        let bad_budget = TuneRequest {
            budget: Budget {
                min_fps: Some(-3.0),
                ..Budget::default()
            },
            ..TuneRequest::default()
        };
        assert!(tune(&bad_budget, &mut CacheEvaluator::new(&cache, 1)).is_err());
        let bad_objective = TuneRequest {
            objective: Objective::Lexicographic(vec![]),
            ..TuneRequest::default()
        };
        assert!(tune(&bad_objective, &mut CacheEvaluator::new(&cache, 1)).is_err());
    }

    #[test]
    fn strategy_kind_parses() {
        assert_eq!("halving".parse::<StrategyKind>(), Ok(StrategyKind::Halving));
        assert_eq!(
            "hill-climb".parse::<StrategyKind>(),
            Ok(StrategyKind::HillClimb)
        );
        assert!("warp".parse::<StrategyKind>().is_err());
    }
}
