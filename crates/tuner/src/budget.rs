//! Hard deployment constraints a tuned accelerator must satisfy.
//!
//! # Example
//!
//! ```
//! use chain_nn_dse::MixResult;
//! use chain_nn_tuner::Budget;
//!
//! let budget = Budget {
//!     max_system_mw: Some(500.0),
//!     min_sqnr_db: Some(40.0),
//!     ..Budget::default()
//! };
//! let candidate = MixResult {
//!     fps: 120.0,
//!     chip_mw: 420.0,
//!     dram_mw: 60.0,
//!     peak_gops: 800.0,
//!     gates_k: 3000.0,
//!     sram_kb: 320.0,
//!     sqnr_db: 31.0, // an 8-bit point: cool enough, not precise enough
//! };
//! assert!(!budget.admits(&candidate));
//! assert!(budget.violation(&candidate) > 0.0);
//! ```

use std::fmt;

use chain_nn_dse::MixResult;

/// The hard constraints of one tune: any combination of a system-power
/// ceiling, a logic-area ceiling, a throughput floor and a measured
/// accuracy (SQNR) floor. `None` axes are unconstrained; the default
/// budget admits everything.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Budget {
    /// Maximum worst-case system power (on-chip + DRAM interface), mW.
    pub max_system_mw: Option<f64>,
    /// Maximum chain logic area, NAND2-equivalent kilo-gates.
    pub max_gates_k: Option<f64>,
    /// Minimum mix throughput, frames per second.
    pub min_fps: Option<f64>,
    /// Minimum measured quantization SQNR across the mix, dB — the
    /// accuracy axis: narrow operand words are only admitted when they
    /// still clear this floor ([`chain_nn_dse::accuracy`]).
    pub min_sqnr_db: Option<f64>,
}

impl Budget {
    /// The unconstrained budget (admits every feasible point).
    pub fn unconstrained() -> Self {
        Budget::default()
    }

    /// Whether any constraint is set.
    pub fn is_constrained(&self) -> bool {
        self.max_system_mw.is_some()
            || self.max_gates_k.is_some()
            || self.min_fps.is_some()
            || self.min_sqnr_db.is_some()
    }

    /// Validates the constraint values themselves.
    ///
    /// # Errors
    ///
    /// A human-readable message for a non-finite or non-positive bound
    /// (the SQNR floor only needs to be finite — 0 dB and below are
    /// legitimate, if undemanding, accuracy floors).
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("max_system_mw", self.max_system_mw),
            ("max_gates_k", self.max_gates_k),
            ("min_fps", self.min_fps),
        ] {
            if let Some(v) = v {
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!("budget {name} = {v} is not a positive number"));
                }
            }
        }
        if let Some(v) = self.min_sqnr_db {
            if !v.is_finite() {
                return Err(format!("budget min_sqnr_db = {v} is not a finite number"));
            }
        }
        Ok(())
    }

    /// Whether `r` satisfies every set constraint (all bounds are
    /// inclusive).
    pub fn admits(&self, r: &MixResult) -> bool {
        self.violation(r) == 0.0
    }

    /// How far `r` is outside the budget, as the sum of the relative
    /// excesses over each violated bound — `0.0` iff admitted. The
    /// search ranks not-yet-admitted candidates by this, so a
    /// hill-climb started outside the feasible region walks toward it.
    pub fn violation(&self, r: &MixResult) -> f64 {
        let mut v = 0.0;
        if let Some(max) = self.max_system_mw {
            v += (r.system_mw() / max - 1.0).max(0.0);
        }
        if let Some(max) = self.max_gates_k {
            v += (r.gates_k / max - 1.0).max(0.0);
        }
        if let Some(min) = self.min_fps {
            if r.fps <= 0.0 {
                v += 1.0;
            } else {
                v += (min / r.fps - 1.0).max(0.0);
            }
        }
        if let Some(min) = self.min_sqnr_db {
            // dB is already logarithmic, so the distance itself (not a
            // ratio) is the natural relative measure; normalize by the
            // floor's magnitude to stay commensurate with the other
            // axes. An unmeasured (NaN) SQNR counts as a full violation.
            if r.sqnr_db.is_nan() {
                v += 1.0;
            } else {
                v += ((min - r.sqnr_db) / min.abs().max(1.0)).max(0.0);
            }
        }
        v
    }
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if wrote {
                write!(f, ", ")?;
            }
            wrote = true;
            Ok(())
        };
        if let Some(mw) = self.max_system_mw {
            sep(f)?;
            write!(f, "system <= {mw} mW")?;
        }
        if let Some(g) = self.max_gates_k {
            sep(f)?;
            write!(f, "logic <= {g}k gates")?;
        }
        if let Some(fps) = self.min_fps {
            sep(f)?;
            write!(f, "fps >= {fps}")?;
        }
        if let Some(db) = self.min_sqnr_db {
            sep(f)?;
            write!(f, "SQNR >= {db} dB")?;
        }
        if !wrote {
            write!(f, "unconstrained")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(fps: f64, system: f64, gates: f64) -> MixResult {
        MixResult {
            fps,
            chip_mw: system,
            dram_mw: 0.0,
            peak_gops: 100.0,
            gates_k: gates,
            sram_kb: 57.0,
            sqnr_db: 60.0,
        }
    }

    #[test]
    fn admits_inclusive_bounds() {
        let budget = Budget {
            max_system_mw: Some(500.0),
            max_gates_k: Some(1000.0),
            min_fps: Some(30.0),
            ..Budget::default()
        };
        assert!(budget.admits(&result(30.0, 500.0, 1000.0)));
        assert!(!budget.admits(&result(29.9, 500.0, 1000.0)));
        assert!(!budget.admits(&result(30.0, 500.1, 1000.0)));
        assert!(!budget.admits(&result(30.0, 500.0, 1000.1)));
        assert!(Budget::unconstrained().admits(&result(0.001, 1e9, 1e9)));
    }

    #[test]
    fn violation_grows_with_distance_and_sums_axes() {
        let budget = Budget {
            max_system_mw: Some(500.0),
            min_fps: Some(100.0),
            ..Budget::default()
        };
        assert_eq!(budget.violation(&result(100.0, 400.0, 1.0)), 0.0);
        let near = budget.violation(&result(100.0, 550.0, 1.0));
        let far = budget.violation(&result(100.0, 900.0, 1.0));
        assert!(0.0 < near && near < far);
        let both = budget.violation(&result(50.0, 900.0, 1.0));
        assert!(both > far, "violations must accumulate across axes");
    }

    #[test]
    fn validate_rejects_nonsense_bounds() {
        assert!(Budget::unconstrained().validate().is_ok());
        for bad in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let b = Budget {
                max_system_mw: Some(bad),
                ..Budget::default()
            };
            assert!(b.validate().is_err(), "{bad} must be rejected");
        }
        // The SQNR floor only needs to be finite: 0 dB is a legal floor.
        assert!(Budget {
            min_sqnr_db: Some(0.0),
            ..Budget::default()
        }
        .validate()
        .is_ok());
        for bad in [f64::NAN, f64::INFINITY] {
            let b = Budget {
                min_sqnr_db: Some(bad),
                ..Budget::default()
            };
            assert!(b.validate().is_err(), "sqnr {bad} must be rejected");
        }
    }

    #[test]
    fn sqnr_floor_admits_inclusively_and_violation_scales() {
        let budget = Budget {
            min_sqnr_db: Some(60.0),
            ..Budget::default()
        };
        assert!(budget.is_constrained());
        assert!(budget.admits(&result(10.0, 1e6, 1e6)), "60 dB meets 60 dB");
        let shy = MixResult {
            sqnr_db: 45.0,
            ..result(10.0, 1.0, 1.0)
        };
        let far = MixResult {
            sqnr_db: 20.0,
            ..result(10.0, 1.0, 1.0)
        };
        assert!(!budget.admits(&shy));
        let near_v = budget.violation(&shy);
        let far_v = budget.violation(&far);
        assert!(0.0 < near_v && near_v < far_v);
        // NaN (unmeasured) is a full violation, not a free pass.
        let unknown = MixResult {
            sqnr_db: f64::NAN,
            ..result(10.0, 1.0, 1.0)
        };
        assert!(!budget.admits(&unknown));
        assert!(budget.violation(&unknown) >= 1.0);
        // And the axis sums with the others (far's 1.0 mW system power
        // violates a 0.5 mW ceiling on top of its SQNR shortfall).
        let both = Budget {
            max_system_mw: Some(0.5),
            min_sqnr_db: Some(60.0),
            ..Budget::default()
        };
        assert!(both.violation(&far) > budget.violation(&far));
    }

    #[test]
    fn display_names_the_set_constraints() {
        let b = Budget {
            max_system_mw: Some(500.0),
            min_fps: Some(30.0),
            min_sqnr_db: Some(40.0),
            ..Budget::default()
        };
        let s = b.to_string();
        assert!(s.contains("500 mW") && s.contains("fps >= 30"), "{s}");
        assert!(s.contains("SQNR >= 40 dB"), "{s}");
        assert_eq!(Budget::unconstrained().to_string(), "unconstrained");
    }
}
