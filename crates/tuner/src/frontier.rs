//! Frontier tuning: sweep one budget axis and return the whole
//! budget-constrained Pareto frontier.
//!
//! A single [`crate::tune`] answers one budget with one point. The
//! design question the paper actually poses is a *frontier*: which
//! accelerators are optimal as the power (or area, throughput,
//! accuracy) budget slides? [`tune_frontier`] runs one constrained
//! tune per step of a [`BudgetSweep`] and reports every step's
//! optimum plus the deduplicated, Pareto-filtered frontier across
//! them — for little more than the cost of the hardest single step:
//!
//! * **Pooled evaluations.** Every step's candidate evaluations go
//!   through one sweep-wide pool (on top of the shared
//!   [`chain_nn_dse::PointCache`]), so a configuration visited by any
//!   step is free to every later step. Each step's *search trajectory*
//!   is byte-identical to a standalone [`crate::tune`] at that budget
//!   — the pool is an evaluation backend, invisible to the strategy —
//!   so a frontier step finds the exact constrained optimum wherever
//!   the standalone tune does.
//! * **Carried incumbents (warm start).** After each step's search,
//!   the winners of all previous steps are folded in under the current
//!   step's budget (ceiling sweeps run tight → loose, so an earlier
//!   winner stays admissible). A step's reported optimum is therefore
//!   never worse than its standalone tune, and best-objective values
//!   are monotone along a loosening sweep.
//! * **Streaming.** `on_step` fires as each budget step completes, in
//!   sweep order — the hook the serving daemon uses to stream one
//!   result line per step before the sweep finishes.
//!
//! Determinism: the sweep is a pure function of `(request, seed)` at
//! any thread count, inheriting the per-step guarantee from
//! [`crate::strategy`].
//!
//! # Example
//!
//! ```
//! use chain_nn_dse::PointCache;
//! use chain_nn_tuner::frontier::{tune_frontier, BudgetSweep, FrontierTuneRequest};
//! use chain_nn_tuner::CacheEvaluator;
//!
//! let request = FrontierTuneRequest {
//!     sweep: BudgetSweep::parse("max-mw=400..=600:100").unwrap(),
//!     ..FrontierTuneRequest::default()
//! };
//! let cache = PointCache::new();
//! let report = tune_frontier(&request, &mut CacheEvaluator::new(&cache, 2), |_, _| Ok(()))
//!     .unwrap();
//! assert_eq!(report.steps.len(), 3); // 400, 500, 600 mW
//! for step in &report.steps {
//!     let best = step.best.as_ref().unwrap();
//!     assert!(best.result.system_mw() <= step.budget_value);
//! }
//! // The whole sweep reuses evaluations across steps:
//! assert!(report.evaluations < report.standalone_evaluations);
//! ```

use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

use chain_nn_dse::{DesignPoint, MixOutcome, MixResult, WorkloadMix};

use crate::budget::Budget;
use crate::evaluator::MixEvaluator;
use crate::objective::Objective;
use crate::{tune, StrategyKind, TuneError, TuneRequest, Tuned};

/// Upper bound on budget steps per sweep — a typo guard
/// (`max-mw=300..=900:0.001` would otherwise queue 600k tunes).
pub const MAX_SWEEP_STEPS: usize = 10_000;

/// The budget axis a frontier sweep slides. Each variant maps onto one
/// field of [`Budget`] and one measured metric of a [`MixResult`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetAxis {
    /// `Budget::max_system_mw` — worst-case system power ceiling.
    MaxSystemMw,
    /// `Budget::max_gates_k` — chain logic area ceiling.
    MaxGatesK,
    /// `Budget::min_fps` — mix throughput floor.
    MinFps,
    /// `Budget::min_sqnr_db` — measured accuracy (SQNR) floor.
    MinSqnrDb,
}

impl BudgetAxis {
    /// The wire name (matches the [`Budget`] field).
    pub fn name(&self) -> &'static str {
        match self {
            BudgetAxis::MaxSystemMw => "max_system_mw",
            BudgetAxis::MaxGatesK => "max_gates_k",
            BudgetAxis::MinFps => "min_fps",
            BudgetAxis::MinSqnrDb => "min_sqnr_db",
        }
    }

    /// The CLI flag spelling (`--sweep-budget max-mw=...`), matching
    /// the corresponding fixed-budget `chain-nn tune` flag.
    pub fn cli_name(&self) -> &'static str {
        match self {
            BudgetAxis::MaxSystemMw => "max-mw",
            BudgetAxis::MaxGatesK => "max-gates-k",
            BudgetAxis::MinFps => "min-fps",
            BudgetAxis::MinSqnrDb => "min-sqnr-db",
        }
    }

    /// Whether the axis is a ceiling (`max-*`: larger values loosen the
    /// budget) rather than a floor (`min-*`: larger values tighten it).
    pub fn is_ceiling(&self) -> bool {
        matches!(self, BudgetAxis::MaxSystemMw | BudgetAxis::MaxGatesK)
    }

    /// `base` with this axis set to `value` (the other axes untouched).
    pub fn apply(&self, base: &Budget, value: f64) -> Budget {
        let mut budget = *base;
        match self {
            BudgetAxis::MaxSystemMw => budget.max_system_mw = Some(value),
            BudgetAxis::MaxGatesK => budget.max_gates_k = Some(value),
            BudgetAxis::MinFps => budget.min_fps = Some(value),
            BudgetAxis::MinSqnrDb => budget.min_sqnr_db = Some(value),
        }
        budget
    }

    /// Whether `base` already fixes this axis (a sweep over it would
    /// silently override the fixed bound — refused at validation).
    pub fn is_set_in(&self, base: &Budget) -> bool {
        match self {
            BudgetAxis::MaxSystemMw => base.max_system_mw.is_some(),
            BudgetAxis::MaxGatesK => base.max_gates_k.is_some(),
            BudgetAxis::MinFps => base.min_fps.is_some(),
            BudgetAxis::MinSqnrDb => base.min_sqnr_db.is_some(),
        }
    }

    /// The measured value of this axis' metric on `r` — what the
    /// Pareto filter compares step winners on.
    pub fn measured(&self, r: &MixResult) -> f64 {
        match self {
            BudgetAxis::MaxSystemMw => r.system_mw(),
            BudgetAxis::MaxGatesK => r.gates_k,
            BudgetAxis::MinFps => r.fps,
            BudgetAxis::MinSqnrDb => r.sqnr_db,
        }
    }
}

impl FromStr for BudgetAxis {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "max-mw" | "max_system_mw" | "max-system-mw" => Ok(BudgetAxis::MaxSystemMw),
            "max-gates-k" | "max_gates_k" => Ok(BudgetAxis::MaxGatesK),
            "min-fps" | "min_fps" => Ok(BudgetAxis::MinFps),
            "min-sqnr-db" | "min_sqnr_db" => Ok(BudgetAxis::MinSqnrDb),
            other => Err(format!(
                "unknown budget axis '{other}' \
                 (expected max-mw | max-gates-k | min-fps | min-sqnr-db)"
            )),
        }
    }
}

impl fmt::Display for BudgetAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.cli_name())
    }
}

/// One budget axis plus the strictly increasing values to sweep it
/// over. Ceiling axes therefore sweep tight → loose and floor axes
/// loose → tight, which is what makes carried incumbents sound (see
/// the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetSweep {
    /// The swept axis.
    pub axis: BudgetAxis,
    /// The budget value per step, strictly increasing.
    pub values: Vec<f64>,
}

impl BudgetSweep {
    /// Parses the CLI form `axis=lo..=hi:step` (inclusive range; the
    /// `:step` suffix defaults to 1) or `axis=v1,v2,...` (an explicit
    /// ascending list), e.g. `max-mw=300..=900:50`.
    ///
    /// # Errors
    ///
    /// A human-readable message for an unknown axis, malformed values,
    /// a non-positive step, or anything [`BudgetSweep::validate`]
    /// rejects.
    pub fn parse(text: &str) -> Result<Self, String> {
        let Some((axis_text, values_text)) = text.split_once('=') else {
            return Err(format!(
                "budget sweep '{text}' needs the form axis=lo..=hi:step or axis=v1,v2,..."
            ));
        };
        let axis: BudgetAxis = axis_text.parse()?;
        let parse_f64 = |t: &str| -> Result<f64, String> {
            t.trim()
                .parse::<f64>()
                .map_err(|_| format!("cannot parse budget value '{t}' in sweep '{text}'"))
        };
        let values = if let Some((lo_text, rest)) = values_text.split_once("..=") {
            let lo = parse_f64(lo_text)?;
            let (hi_text, step_text) = match rest.split_once(':') {
                Some((hi, step)) => (hi, Some(step)),
                None => (rest, None),
            };
            let hi = parse_f64(hi_text)?;
            let step = match step_text {
                Some(t) => parse_f64(t)?,
                None => 1.0,
            };
            if !(step.is_finite() && step > 0.0) {
                return Err(format!("budget sweep step {step} must be positive"));
            }
            if !(lo.is_finite() && hi.is_finite() && lo <= hi) {
                return Err(format!(
                    "budget sweep range {lo}..={hi} is empty or not finite"
                ));
            }
            // Index arithmetic, not accumulation: `lo + i*step` keeps
            // long sweeps from drifting and the epsilon admits an
            // endpoint that is an exact multiple of the step.
            let count = ((hi - lo) / step + 1e-9).floor() + 1.0;
            if count > MAX_SWEEP_STEPS as f64 {
                return Err(format!(
                    "budget sweep has {count:.0} steps; the cap is {MAX_SWEEP_STEPS}"
                ));
            }
            (0..count as usize).map(|i| lo + i as f64 * step).collect()
        } else {
            values_text
                .split(',')
                .map(parse_f64)
                .collect::<Result<Vec<_>, _>>()?
        };
        let sweep = BudgetSweep { axis, values };
        sweep.validate()?;
        Ok(sweep)
    }

    /// Validates the sweep: at least one value, at most
    /// [`MAX_SWEEP_STEPS`], strictly increasing, and every value legal
    /// for the axis' [`Budget`] field.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.values.is_empty() {
            return Err("budget sweep has no values".into());
        }
        if self.values.len() > MAX_SWEEP_STEPS {
            return Err(format!(
                "budget sweep has {} steps; the cap is {MAX_SWEEP_STEPS}",
                self.values.len()
            ));
        }
        for w in self.values.windows(2) {
            // partial_cmp so a NaN (incomparable) fails the check too.
            if w[0].partial_cmp(&w[1]) != Some(Ordering::Less) {
                return Err(format!(
                    "budget sweep values must be strictly increasing ({} then {})",
                    w[0], w[1]
                ));
            }
        }
        for &v in &self.values {
            self.axis.apply(&Budget::default(), v).validate()?;
        }
        Ok(())
    }
}

impl fmt::Display for BudgetSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let first = self.values.first().copied().unwrap_or(f64::NAN);
        let last = self.values.last().copied().unwrap_or(f64::NAN);
        write!(
            f,
            "{} {first}..{last} ({} steps)",
            self.axis,
            self.values.len()
        )
    }
}

/// Everything one frontier tune needs: a base tune request (space,
/// mix, the *fixed* budget axes, objective, strategy, seed) plus the
/// swept axis.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierTuneRequest {
    /// The per-step tune parameters. `base.budget` holds the axes that
    /// stay fixed across the sweep; it must not set the swept axis.
    pub base: TuneRequest,
    /// The budget axis to slide and its step values.
    pub sweep: BudgetSweep,
}

impl Default for FrontierTuneRequest {
    /// The default tune request swept over 300..=900 mW system power
    /// in 50 mW steps.
    fn default() -> Self {
        FrontierTuneRequest {
            base: TuneRequest::default(),
            sweep: BudgetSweep {
                axis: BudgetAxis::MaxSystemMw,
                values: (0..=12).map(|i| 300.0 + 50.0 * i as f64).collect(),
            },
        }
    }
}

impl FrontierTuneRequest {
    /// Validates the base request, the sweep, and their combination
    /// (the swept axis must not also be fixed in the base budget).
    ///
    /// # Errors
    ///
    /// [`TuneError::Spec`] naming the problem.
    pub fn validate(&self) -> Result<(), TuneError> {
        self.base.validate()?;
        self.sweep.validate().map_err(TuneError::Spec)?;
        if self.sweep.axis.is_set_in(&self.base.budget) {
            return Err(TuneError::Spec(format!(
                "budget axis {} is both swept and fixed; drop the fixed bound",
                self.sweep.axis
            )));
        }
        Ok(())
    }
}

/// One completed budget step of a frontier tune.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierStep {
    /// The swept axis' value at this step.
    pub budget_value: f64,
    /// The step's constrained optimum (never worse than a standalone
    /// tune at this budget), or `None` when every visited configuration
    /// was model-infeasible.
    pub best: Option<Tuned>,
    /// Configurations the step's search visited — exactly what a
    /// standalone tune at this budget visits.
    pub evaluations: u64,
    /// Of those, configurations no earlier step had visited — what the
    /// step actually paid for.
    pub fresh_evaluations: u64,
    /// This step's `(configuration, network)` cache hits.
    pub cache_hits: u64,
    /// This step's fresh model-stack lookups.
    pub cache_misses: u64,
    /// Evaluator round trips this step.
    pub rounds: usize,
}

/// What one frontier tune did: every step, the frontier across them,
/// and the accounting proving the sweep cost much less than the sum of
/// standalone tunes.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierTuneReport {
    /// One entry per sweep value, in sweep order.
    pub steps: Vec<FrontierStep>,
    /// Indices into `steps` of the tuned frontier: admitted step
    /// winners, deduplicated by configuration and Pareto-filtered on
    /// (objective, swept-axis metric).
    pub frontier: Vec<usize>,
    /// Distinct configurations evaluated across the whole sweep.
    pub evaluations: u64,
    /// What standalone tunes at every step would have evaluated in
    /// total (the sum of [`FrontierStep::evaluations`]).
    pub standalone_evaluations: u64,
    /// Sweep-wide `(configuration, network)` cache hits.
    pub cache_hits: u64,
    /// Sweep-wide fresh model-stack lookups.
    pub cache_misses: u64,
    /// Configurations in the full grid (per step; the sweep shares one
    /// space).
    pub exhaustive_points: usize,
    /// The strategy every step ran.
    pub strategy: StrategyKind,
    /// The seed every step ran with.
    pub seed: u64,
}

impl FrontierTuneReport {
    /// Fraction of the standalone-tune evaluation total the sweep
    /// avoided by pooling (0 when nothing was shared).
    pub fn reuse_fraction(&self) -> f64 {
        reuse_fraction(self.evaluations, self.standalone_evaluations)
    }
}

/// Fraction of `standalone_evaluations` a sweep avoided when it only
/// performed `evaluations` distinct ones — the one definition of
/// "warm-start reuse", shared by [`FrontierTuneReport`] and consumers
/// that hold the two counters without a report (the CLI's daemon
/// path). 0 when there was nothing to reuse against.
pub fn reuse_fraction(evaluations: u64, standalone_evaluations: u64) -> f64 {
    if standalone_evaluations == 0 {
        return 0.0;
    }
    1.0 - evaluations as f64 / standalone_evaluations as f64
}

/// The sweep-wide evaluation pool: a [`MixEvaluator`] wrapper answering
/// any base configuration some earlier step already evaluated without
/// touching the inner evaluator. The pool is keyed on the base point's
/// canonical bytes, which is sound because the mix is fixed across the
/// sweep.
struct PooledEvaluator<'a, E: MixEvaluator> {
    inner: &'a mut E,
    pool: &'a mut HashMap<Vec<u8>, MixOutcome>,
}

impl<E: MixEvaluator> MixEvaluator for PooledEvaluator<'_, E> {
    fn evaluate(
        &mut self,
        mix: &WorkloadMix,
        bases: &[DesignPoint],
    ) -> Result<Vec<MixOutcome>, TuneError> {
        let mut out: Vec<Option<MixOutcome>> = vec![None; bases.len()];
        let mut unknown: Vec<DesignPoint> = Vec::new();
        let mut unknown_at: Vec<(usize, Vec<u8>)> = Vec::new();
        for (i, base) in bases.iter().enumerate() {
            let key = base.canonical_bytes();
            match self.pool.get(&key) {
                Some(outcome) => out[i] = Some(outcome.clone()),
                None => {
                    unknown.push(base.clone());
                    unknown_at.push((i, key));
                }
            }
        }
        if !unknown.is_empty() {
            let fresh = self.inner.evaluate(mix, &unknown)?;
            if fresh.len() != unknown.len() {
                return Err(TuneError::Backend(format!(
                    "evaluator returned {} outcomes for {} candidates",
                    fresh.len(),
                    unknown.len()
                )));
            }
            for ((i, key), outcome) in unknown_at.into_iter().zip(fresh) {
                self.pool.insert(key, outcome.clone());
                out[i] = Some(outcome);
            }
        }
        Ok(out
            .into_iter()
            .map(|o| o.expect("every slot filled"))
            .collect())
    }

    fn counters(&self) -> (u64, u64) {
        self.inner.counters()
    }
}

/// The tuner's total candidate order restricted to feasible
/// candidates, mirrored from `strategy::Session::compare`: admitted
/// beats violating; admitted rank by objective, violating by smaller
/// violation; exact ties break on content hash then canonical bytes.
/// `Greater` means `a` is the better candidate.
fn compare_tuned(budget: &Budget, objective: &Objective, a: &Tuned, b: &Tuned) -> Ordering {
    let class = |t: &Tuned| u8::from(budget.admits(&t.result));
    let by_class = class(a).cmp(&class(b));
    if by_class != Ordering::Equal {
        return by_class;
    }
    let by_value = if budget.admits(&a.result) {
        objective.compare(&a.result, &b.result)
    } else {
        budget
            .violation(&b.result)
            .total_cmp(&budget.violation(&a.result))
    };
    if by_value != Ordering::Equal {
        return by_value;
    }
    match b.point.content_hash().cmp(&a.point.content_hash()) {
        Ordering::Equal => b.point.canonical_bytes().cmp(&a.point.canonical_bytes()),
        other => other,
    }
}

/// Whether frontier candidate `b` dominates `a`: no worse on the
/// objective *and* on the swept axis' measured metric, strictly better
/// on at least one.
fn dominates(axis: BudgetAxis, objective: &Objective, b: &Tuned, a: &Tuned) -> bool {
    let by_objective = objective.compare(&b.result, &a.result);
    let (ma, mb) = (axis.measured(&a.result), axis.measured(&b.result));
    let (axis_no_worse, axis_better) = if axis.is_ceiling() {
        (mb <= ma, mb < ma)
    } else {
        (mb >= ma, mb > ma)
    };
    by_objective != Ordering::Less
        && axis_no_worse
        && (by_objective == Ordering::Greater || axis_better)
}

/// The tuned frontier over the finished steps: admitted winners,
/// deduplicated by configuration (first step wins), Pareto-filtered on
/// (objective, swept-axis metric). Returns step indices in sweep order.
fn extract_frontier(steps: &[FrontierStep], axis: BudgetAxis, objective: &Objective) -> Vec<usize> {
    let mut unique: Vec<(usize, &Tuned)> = Vec::new();
    for (i, step) in steps.iter().enumerate() {
        if let Some(best) = step.best.as_ref().filter(|t| t.admitted) {
            if !unique.iter().any(|(_, t)| t.point == best.point) {
                unique.push((i, best));
            }
        }
    }
    unique
        .iter()
        .filter(|(i, t)| {
            !unique
                .iter()
                .any(|(j, u)| j != i && dominates(axis, objective, u, t))
        })
        .map(|(i, _)| *i)
        .collect()
}

/// Runs one frontier tune against `evaluator`, invoking `on_step` with
/// each step's index and result as it completes (the streaming hook —
/// an error from the callback aborts the sweep and is passed through).
///
/// # Errors
///
/// [`TuneError::Spec`] for an invalid request; evaluator and callback
/// failures are passed through.
pub fn tune_frontier<E: MixEvaluator>(
    request: &FrontierTuneRequest,
    evaluator: &mut E,
    mut on_step: impl FnMut(usize, &FrontierStep) -> Result<(), TuneError>,
) -> Result<FrontierTuneReport, TuneError> {
    request.validate()?;
    let (hits_start, misses_start) = evaluator.counters();
    let mut pool: HashMap<Vec<u8>, MixOutcome> = HashMap::new();
    let mut carried: Vec<Tuned> = Vec::new();
    let mut steps: Vec<FrontierStep> = Vec::with_capacity(request.sweep.values.len());
    let mut exhaustive_points = 0;

    for (i, &value) in request.sweep.values.iter().enumerate() {
        let budget = request.sweep.axis.apply(&request.base.budget, value);
        let step_request = TuneRequest {
            budget,
            ..request.base.clone()
        };
        let fresh_before = pool.len();
        let (hits_before, misses_before) = evaluator.counters();
        let mut pooled = PooledEvaluator {
            inner: evaluator,
            pool: &mut pool,
        };
        let step_started = std::time::Instant::now();
        let report = tune(&step_request, &mut pooled)?;
        let obs = chain_nn_obs::global();
        obs.histogram("tuner_frontier_step_ns")
            .record_duration(step_started.elapsed());
        obs.counter("tuner_frontier_steps_total").inc();
        let (hits_after, misses_after) = evaluator.counters();
        exhaustive_points = report.exhaustive_points;

        // Warm start: fold the previous steps' winners in under this
        // step's budget. The step result can only improve — and on a
        // loosening sweep the best objective value becomes monotone.
        let mut best = report.best.clone();
        for prior in &carried {
            let candidate = Tuned {
                point: prior.point.clone(),
                result: prior.result,
                admitted: budget.admits(&prior.result),
            };
            best = Some(match best {
                None => candidate,
                Some(current) => {
                    if compare_tuned(&budget, &request.base.objective, &candidate, &current)
                        == Ordering::Greater
                    {
                        candidate
                    } else {
                        current
                    }
                }
            });
        }
        let best = best.map(|mut t| {
            t.admitted = budget.admits(&t.result);
            t
        });
        if let Some(standalone) = report.best {
            if !carried.iter().any(|c| c.point == standalone.point) {
                carried.push(standalone);
            }
        }

        let step = FrontierStep {
            budget_value: value,
            best,
            evaluations: report.evaluations,
            fresh_evaluations: (pool.len() - fresh_before) as u64,
            cache_hits: hits_after - hits_before,
            cache_misses: misses_after - misses_before,
            rounds: report.rounds,
        };
        on_step(i, &step)?;
        steps.push(step);
    }

    let frontier = extract_frontier(&steps, request.sweep.axis, &request.base.objective);
    let (hits_end, misses_end) = evaluator.counters();
    Ok(FrontierTuneReport {
        evaluations: pool.len() as u64,
        standalone_evaluations: steps.iter().map(|s| s.evaluations).sum(),
        cache_hits: hits_end - hits_start,
        cache_misses: misses_end - misses_start,
        exhaustive_points,
        strategy: request.base.strategy,
        seed: request.base.seed,
        steps,
        frontier,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheEvaluator;
    use chain_nn_dse::PointCache;

    #[test]
    fn sweep_parse_forms() {
        let sweep = BudgetSweep::parse("max-mw=300..=900:50").unwrap();
        assert_eq!(sweep.axis, BudgetAxis::MaxSystemMw);
        assert_eq!(sweep.values.len(), 13);
        assert_eq!(sweep.values[0], 300.0);
        assert_eq!(*sweep.values.last().unwrap(), 900.0);

        let sweep = BudgetSweep::parse("min-fps=30,60,120").unwrap();
        assert_eq!(sweep.axis, BudgetAxis::MinFps);
        assert_eq!(sweep.values, vec![30.0, 60.0, 120.0]);

        // No step suffix: step 1.
        let sweep = BudgetSweep::parse("max-gates-k=100..=102").unwrap();
        assert_eq!(sweep.values, vec![100.0, 101.0, 102.0]);

        // A range whose span is not a step multiple keeps the last
        // in-range value.
        let sweep = BudgetSweep::parse("max-mw=300..=390:50").unwrap();
        assert_eq!(sweep.values, vec![300.0, 350.0]);

        // The SQNR floor accepts the wire spelling too.
        assert_eq!(
            BudgetSweep::parse("min_sqnr_db=30..=60:15").unwrap().axis,
            BudgetAxis::MinSqnrDb
        );
    }

    #[test]
    fn sweep_parse_rejects_nonsense() {
        for bad in [
            "max-mw",                  // no values
            "warp=1..=2",              // unknown axis
            "max-mw=900..=300:50",     // descending range
            "max-mw=300..=900:0",      // zero step
            "max-mw=300..=900:-50",    // negative step
            "max-mw=fast..=900",       // unparseable bound
            "max-mw=500,400",          // descending list
            "max-mw=500,500",          // not strictly increasing
            "max-mw=-100..=-50:10",    // negative power bound
            "max-mw=300..=9000000:.1", // step cap
        ] {
            assert!(BudgetSweep::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn request_rejects_a_doubly_constrained_axis() {
        let request = FrontierTuneRequest {
            base: TuneRequest {
                budget: Budget {
                    max_system_mw: Some(500.0),
                    ..Budget::default()
                },
                ..TuneRequest::default()
            },
            ..FrontierTuneRequest::default()
        };
        assert!(matches!(request.validate(), Err(TuneError::Spec(_))));
        // Sweeping one axis with a different fixed axis is fine.
        let request = FrontierTuneRequest {
            base: TuneRequest {
                budget: Budget {
                    max_gates_k: Some(4000.0),
                    ..Budget::default()
                },
                ..TuneRequest::default()
            },
            ..FrontierTuneRequest::default()
        };
        assert!(request.validate().is_ok());
    }

    #[test]
    fn steps_stream_in_order_and_match_the_report() {
        let request = FrontierTuneRequest {
            sweep: BudgetSweep::parse("max-mw=450..=650:100").unwrap(),
            ..FrontierTuneRequest::default()
        };
        let cache = PointCache::new();
        let mut streamed: Vec<(usize, FrontierStep)> = Vec::new();
        let report = tune_frontier(&request, &mut CacheEvaluator::new(&cache, 2), |i, step| {
            streamed.push((i, step.clone()));
            Ok(())
        })
        .unwrap();
        assert_eq!(streamed.len(), report.steps.len());
        for (i, (streamed_i, step)) in streamed.iter().enumerate() {
            assert_eq!(*streamed_i, i);
            assert_eq!(step, &report.steps[i]);
        }
        // A callback error aborts the sweep.
        let err = tune_frontier(&request, &mut CacheEvaluator::new(&cache, 2), |_, _| {
            Err(TuneError::Backend("sink closed".into()))
        });
        assert!(matches!(err, Err(TuneError::Backend(_))));
    }

    #[test]
    fn frontier_is_deduplicated_and_pareto_filtered() {
        // Consecutive loose budgets choose the same configuration; the
        // frontier keeps it once.
        let request = FrontierTuneRequest {
            sweep: BudgetSweep::parse("max-mw=800..=1000:50").unwrap(),
            ..FrontierTuneRequest::default()
        };
        let cache = PointCache::new();
        let report =
            tune_frontier(&request, &mut CacheEvaluator::new(&cache, 2), |_, _| Ok(())).unwrap();
        let frontier_points: Vec<_> = report
            .frontier
            .iter()
            .map(|&i| report.steps[i].best.as_ref().unwrap().point.clone())
            .collect();
        let mut deduped = frontier_points.clone();
        deduped.dedup();
        assert_eq!(frontier_points.len(), deduped.len());
        assert!(!report.frontier.is_empty());
        assert!(report.frontier.len() <= report.steps.len());
        // Frontier entries are mutually non-dominated on (fps, mW).
        for &i in &report.frontier {
            for &j in &report.frontier {
                if i == j {
                    continue;
                }
                let a = report.steps[i].best.as_ref().unwrap();
                let b = report.steps[j].best.as_ref().unwrap();
                assert!(
                    !dominates(BudgetAxis::MaxSystemMw, &request.base.objective, b, a),
                    "step {j} dominates step {i}"
                );
            }
        }
    }

    #[test]
    fn infeasible_floor_steps_report_their_best_effort() {
        // fps floors beyond the grid's reach: the later steps cannot be
        // admitted, but each still reports the least-violating point.
        let request = FrontierTuneRequest {
            sweep: BudgetSweep::parse("min-fps=100,100000").unwrap(),
            ..FrontierTuneRequest::default()
        };
        let cache = PointCache::new();
        let report =
            tune_frontier(&request, &mut CacheEvaluator::new(&cache, 2), |_, _| Ok(())).unwrap();
        let feasible = report.steps[0].best.as_ref().unwrap();
        assert!(feasible.admitted);
        let hopeless = report.steps[1].best.as_ref().unwrap();
        assert!(!hopeless.admitted);
        // Only the admitted step can be on the frontier.
        assert_eq!(report.frontier, vec![0]);
    }
}
