//! Where tuner candidates get evaluated: a small trait so the same
//! search strategies run in-process (against a local [`PointCache`])
//! and inside the serving daemon (against the shared scheduler, one
//! job per round, interleaving fairly with concurrent sweeps).

use chain_nn_dse::{executor, DesignPoint, MixOutcome, PointCache, WorkloadMix};

use crate::TuneError;

/// Evaluates batches of candidate configurations over a workload mix.
///
/// One call is one **round**: implementations may fan the expanded
/// `(configuration, network)` points out across threads or a remote
/// worker pool, but must return aggregates aligned with `bases` and
/// must be deterministic — the model stack is pure, so this holds for
/// free as long as implementations do not reorder results.
pub trait MixEvaluator {
    /// Evaluates every base configuration over `mix`, returning one
    /// [`MixOutcome`] per base, in order. The `net` field of each base
    /// is ignored (the mix decides the networks).
    ///
    /// # Errors
    ///
    /// Spec-level evaluation failures or backend (scheduler/transport)
    /// failures; per-network model infeasibility is data, not an error.
    fn evaluate(
        &mut self,
        mix: &WorkloadMix,
        bases: &[DesignPoint],
    ) -> Result<Vec<MixOutcome>, TuneError>;

    /// Cumulative `(cache_hits, cache_misses)` of the underlying
    /// `(configuration, network)` lookups this evaluator performed.
    fn counters(&self) -> (u64, u64);
}

/// Expands bases through a mix into the flat per-network point list the
/// cache keys on. Shared by every evaluator implementation.
pub fn expand(mix: &WorkloadMix, bases: &[DesignPoint]) -> Vec<DesignPoint> {
    bases.iter().flat_map(|b| mix.points_for(b)).collect()
}

/// Folds the flat per-network outcomes of [`expand`]ed points back into
/// one aggregate per base.
///
/// # Panics
///
/// Panics when `outcomes` is not `bases.len() × mix.entries().len()`
/// long — a caller bug.
pub fn collapse(
    mix: &WorkloadMix,
    bases: &[DesignPoint],
    outcomes: &[chain_nn_dse::PointOutcome],
) -> Vec<MixOutcome> {
    let per_base = mix.entries().len();
    assert_eq!(outcomes.len(), bases.len() * per_base, "outcome alignment");
    outcomes
        .chunks(per_base)
        .map(|chunk| mix.aggregate(chunk))
        .collect()
}

/// In-process evaluator over a [`PointCache`] the caller owns
/// exclusively for the duration of the tune (`chain-nn tune` without
/// `--port`, tests, benches). Rounds run on the DSE work-queue
/// executor, so batches parallelize across `threads` without changing
/// results.
///
/// # Example
///
/// ```
/// use chain_nn_dse::{DesignPoint, PointCache, WorkloadMix};
/// use chain_nn_tuner::{CacheEvaluator, MixEvaluator};
///
/// let cache = PointCache::new();
/// let mix = WorkloadMix::single("lenet").unwrap();
/// let mut eval = CacheEvaluator::new(&cache, 2);
/// let base = DesignPoint {
///     pes: 25,
///     ..DesignPoint::paper_alexnet()
/// };
/// let outcomes = eval.evaluate(&mix, &[base.clone()]).unwrap();
/// assert!(outcomes[0].result().is_some());
/// assert_eq!(eval.counters(), (0, 1)); // one fresh (config, net) lookup
/// eval.evaluate(&mix, &[base]).unwrap();
/// assert_eq!(eval.counters(), (1, 1)); // the repeat is a cache hit
/// ```
///
/// Hit/miss accounting reads the cache's global counters before and
/// after each round, which is only correct because the cache is not
/// shared with concurrent users — the daemon-side evaluator uses
/// per-job counters instead.
pub struct CacheEvaluator<'a> {
    cache: &'a PointCache,
    threads: usize,
    hits: u64,
    misses: u64,
}

impl<'a> CacheEvaluator<'a> {
    /// An evaluator over `cache` running each round on `threads`
    /// workers.
    pub fn new(cache: &'a PointCache, threads: usize) -> Self {
        CacheEvaluator {
            cache,
            threads: threads.max(1),
            hits: 0,
            misses: 0,
        }
    }
}

impl MixEvaluator for CacheEvaluator<'_> {
    fn evaluate(
        &mut self,
        mix: &WorkloadMix,
        bases: &[DesignPoint],
    ) -> Result<Vec<MixOutcome>, TuneError> {
        let points = expand(mix, bases);
        let before = self.cache.stats();
        let outcomes = executor::run(&points, self.threads, self.cache)?;
        let after = self.cache.stats();
        self.hits += after.hits - before.hits;
        self.misses += after.misses - before.misses;
        Ok(collapse(mix, bases, &outcomes))
    }

    fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

/// An evaluator over any batch-evaluation backend: the closure takes a
/// round's expanded point list and returns `(outcomes, hits, misses)`
/// with outcomes aligned to the points. [`expand`]/[`collapse`] are
/// handled here, so a backend only has to evaluate a flat point list —
/// this is how the cluster coordinator's scatter-gather (partition by
/// content hash, fan out, reassemble in order) plugs the tuner in
/// without the tuner knowing about shards.
pub struct BatchFnEvaluator<F> {
    eval: F,
    hits: u64,
    misses: u64,
}

impl<F> BatchFnEvaluator<F>
where
    F: FnMut(&[DesignPoint]) -> Result<(Vec<chain_nn_dse::PointOutcome>, u64, u64), TuneError>,
{
    /// An evaluator delegating each round's flat point list to `eval`.
    pub fn new(eval: F) -> Self {
        BatchFnEvaluator {
            eval,
            hits: 0,
            misses: 0,
        }
    }
}

impl<F> MixEvaluator for BatchFnEvaluator<F>
where
    F: FnMut(&[DesignPoint]) -> Result<(Vec<chain_nn_dse::PointOutcome>, u64, u64), TuneError>,
{
    fn evaluate(
        &mut self,
        mix: &WorkloadMix,
        bases: &[DesignPoint],
    ) -> Result<Vec<MixOutcome>, TuneError> {
        let points = expand(mix, bases);
        let (outcomes, hits, misses) = (self.eval)(&points)?;
        if outcomes.len() != points.len() {
            return Err(TuneError::Backend(format!(
                "batch backend returned {} outcomes for {} points",
                outcomes.len(),
                points.len()
            )));
        }
        self.hits += hits;
        self.misses += misses;
        Ok(collapse(mix, bases, &outcomes))
    }

    fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_evaluator_rounds_are_incremental() {
        let cache = PointCache::new();
        let mix = WorkloadMix::parse("alexnet:0.7,vgg16:0.3").unwrap();
        let mut eval = CacheEvaluator::new(&cache, 2);
        let bases = vec![
            DesignPoint::paper_alexnet(),
            DesignPoint {
                pes: 288,
                ..DesignPoint::paper_alexnet()
            },
        ];
        let out = eval.evaluate(&mix, &bases).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|o| o.result().is_some()));
        assert_eq!(eval.counters(), (0, 4));
        // The same round again costs nothing fresh.
        let again = eval.evaluate(&mix, &bases).unwrap();
        assert_eq!(again, out);
        assert_eq!(eval.counters(), (4, 4));
    }

    #[test]
    fn expand_collapse_round_trip_alignment() {
        let mix = WorkloadMix::parse("alexnet,vgg16").unwrap();
        let bases = vec![
            DesignPoint::paper_alexnet(),
            DesignPoint {
                pes: 1152,
                ..DesignPoint::paper_alexnet()
            },
        ];
        let points = expand(&mix, &bases);
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].net, "alexnet");
        assert_eq!(points[1].net, "vgg16");
        assert_eq!(points[2].pes, 1152);
        let cache = PointCache::new();
        let outcomes = executor::run(&points, 1, &cache).unwrap();
        let collapsed = collapse(&mix, &bases, &outcomes);
        assert_eq!(collapsed.len(), 2);
    }
}
