//! What "best" means: single metrics composed lexicographically or
//! scalarized into one weighted score.
//!
//! # Example
//!
//! ```
//! use chain_nn_tuner::{Metric, Objective};
//!
//! // "fastest; among the fastest, coolest; among those, smallest":
//! assert_eq!(
//!     Objective::parse("fps,power,gates").unwrap(),
//!     Objective::Lexicographic(vec![Metric::Fps, Metric::SystemMw, Metric::GatesK])
//! );
//! // name:weight pairs scalarize instead:
//! assert_eq!(
//!     Objective::parse("fps:1,power:0.25").unwrap(),
//!     Objective::Scalarized(vec![(Metric::Fps, 1.0), (Metric::SystemMw, 0.25)])
//! );
//! // Measured accuracy is a rankable metric too:
//! assert_eq!(Objective::parse("sqnr").unwrap(),
//!            Objective::Lexicographic(vec![Metric::SqnrDb]));
//! ```

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

use chain_nn_dse::MixResult;

/// One optimizable metric of a [`MixResult`], with its built-in
/// direction (throughput up, power/area down).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Mix throughput, maximized.
    Fps,
    /// Worst-case system power, minimized.
    SystemMw,
    /// Chain logic area, minimized.
    GatesK,
    /// Peak GOPS per on-chip watt, maximized.
    GopsPerWatt,
    /// Measured quantization SQNR (worst across the mix), maximized.
    SqnrDb,
}

impl Metric {
    /// The metric's raw value on `r`.
    pub fn value(&self, r: &MixResult) -> f64 {
        match self {
            Metric::Fps => r.fps,
            Metric::SystemMw => r.system_mw(),
            Metric::GatesK => r.gates_k,
            Metric::GopsPerWatt => r.gops_per_watt(),
            Metric::SqnrDb => r.sqnr_db,
        }
    }

    /// Whether bigger is better for this metric.
    pub fn maximize(&self) -> bool {
        matches!(self, Metric::Fps | Metric::GopsPerWatt | Metric::SqnrDb)
    }

    /// The metric's value with maximization sign applied: bigger is
    /// always better for the signed value.
    fn signed(&self, r: &MixResult) -> f64 {
        let v = self.value(r);
        if self.maximize() {
            v
        } else {
            -v
        }
    }

    /// The wire/CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Fps => "fps",
            Metric::SystemMw => "system_mw",
            Metric::GatesK => "gates_k",
            Metric::GopsPerWatt => "gops_per_watt",
            Metric::SqnrDb => "sqnr_db",
        }
    }
}

impl FromStr for Metric {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "fps" | "throughput" => Ok(Metric::Fps),
            "system_mw" | "power" | "mw" => Ok(Metric::SystemMw),
            "gates_k" | "gates" | "area" => Ok(Metric::GatesK),
            "gops_per_watt" | "gops-w" | "efficiency" => Ok(Metric::GopsPerWatt),
            "sqnr_db" | "sqnr" | "accuracy" => Ok(Metric::SqnrDb),
            other => Err(format!(
                "unknown objective metric '{other}' \
                 (expected fps | system_mw | gates_k | gops_per_watt | sqnr_db)"
            )),
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The tune objective over budget-admitted candidates.
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// Compare metric by metric in order; the first strict difference
    /// decides. `[Fps, SystemMw, GatesK]` reads "fastest; among the
    /// fastest, coolest; among those, smallest".
    Lexicographic(Vec<Metric>),
    /// Maximize the weighted sum of signed metric values (each metric
    /// contributes `weight × value`, negated for minimized metrics).
    /// Weights must be positive — direction lives in the metric.
    Scalarized(Vec<(Metric, f64)>),
}

impl Default for Objective {
    /// Fastest under budget, then coolest, then smallest.
    fn default() -> Self {
        Objective::Lexicographic(vec![Metric::Fps, Metric::SystemMw, Metric::GatesK])
    }
}

impl Objective {
    /// Validates metric lists and weights.
    ///
    /// # Errors
    ///
    /// A human-readable message for an empty objective or a
    /// non-positive/non-finite weight.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Objective::Lexicographic(metrics) => {
                if metrics.is_empty() {
                    return Err("lexicographic objective has no metrics".into());
                }
            }
            Objective::Scalarized(terms) => {
                if terms.is_empty() {
                    return Err("scalarized objective has no terms".into());
                }
                for (m, w) in terms {
                    if !(w.is_finite() && *w > 0.0) {
                        return Err(format!("weight {w} for {m} is not positive"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Compares two admitted results: `Ordering::Greater` means `a` is
    /// the better accelerator under this objective.
    pub fn compare(&self, a: &MixResult, b: &MixResult) -> Ordering {
        match self {
            Objective::Lexicographic(metrics) => {
                for m in metrics {
                    let ord = m.signed(a).total_cmp(&m.signed(b));
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            }
            Objective::Scalarized(terms) => {
                let score =
                    |r: &MixResult| -> f64 { terms.iter().map(|(m, w)| w * m.signed(r)).sum() };
                score(a).total_cmp(&score(b))
            }
        }
    }

    /// Parses the CLI form: a comma list of metric names is
    /// lexicographic (`"fps,power,gates"`); `name:weight` pairs make it
    /// scalarized (`"fps:1,power:0.2"`). Mixing the two forms is an
    /// error.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending token.
    pub fn parse(text: &str) -> Result<Self, String> {
        let parts: Vec<&str> = text.split(',').map(str::trim).collect();
        if parts.iter().any(|p| p.is_empty()) {
            return Err(format!("empty entry in objective '{text}'"));
        }
        let weighted = parts.iter().any(|p| p.contains(':'));
        if weighted {
            let mut terms = Vec::with_capacity(parts.len());
            for p in &parts {
                let Some((name, w)) = p.split_once(':') else {
                    return Err(format!(
                        "objective '{text}' mixes weighted and unweighted metrics"
                    ));
                };
                let weight: f64 = w
                    .trim()
                    .parse()
                    .map_err(|_| format!("cannot parse objective weight '{w}'"))?;
                terms.push((name.parse::<Metric>()?, weight));
            }
            let obj = Objective::Scalarized(terms);
            obj.validate()?;
            Ok(obj)
        } else {
            let metrics = parts
                .iter()
                .map(|p| p.parse::<Metric>())
                .collect::<Result<Vec<_>, _>>()?;
            let obj = Objective::Lexicographic(metrics);
            obj.validate()?;
            Ok(obj)
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::Lexicographic(metrics) => {
                for (i, m) in metrics.iter().enumerate() {
                    if i > 0 {
                        write!(f, " then ")?;
                    }
                    write!(f, "{}{}", if m.maximize() { "max " } else { "min " }, m)?;
                }
                Ok(())
            }
            Objective::Scalarized(terms) => {
                write!(f, "max ")?;
                for (i, (m, w)) in terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{w}*{}{m}", if m.maximize() { "" } else { "-" })?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(fps: f64, system: f64, gates: f64) -> MixResult {
        MixResult {
            fps,
            chip_mw: system,
            dram_mw: 0.0,
            peak_gops: 100.0,
            gates_k: gates,
            sram_kb: 57.0,
            sqnr_db: 60.0,
        }
    }

    #[test]
    fn lexicographic_first_difference_decides() {
        let obj = Objective::default();
        let fast_hot = result(100.0, 600.0, 900.0);
        let slow_cool = result(50.0, 100.0, 100.0);
        assert_eq!(obj.compare(&fast_hot, &slow_cool), Ordering::Greater);
        // Tied fps: power decides, area never consulted.
        let a = result(100.0, 500.0, 999.0);
        let b = result(100.0, 600.0, 1.0);
        assert_eq!(obj.compare(&a, &b), Ordering::Greater);
        // Full tie.
        assert_eq!(obj.compare(&a, &a), Ordering::Equal);
    }

    #[test]
    fn scalarized_trades_axes_by_weight() {
        // 1 fps is worth 1 mW: +20 fps beats +10 mW.
        let obj = Objective::Scalarized(vec![(Metric::Fps, 1.0), (Metric::SystemMw, 1.0)]);
        let a = result(120.0, 510.0, 1.0);
        let b = result(100.0, 500.0, 1.0);
        assert_eq!(obj.compare(&a, &b), Ordering::Greater);
        // At power weight 2 the +20 fps exactly cancels the +10 mW.
        let obj = Objective::Scalarized(vec![(Metric::Fps, 1.0), (Metric::SystemMw, 2.0)]);
        assert_eq!(obj.compare(&a, &b), Ordering::Equal);
        let obj = Objective::Scalarized(vec![(Metric::Fps, 1.0), (Metric::SystemMw, 3.0)]);
        assert_eq!(obj.compare(&a, &b), Ordering::Less);
    }

    #[test]
    fn sqnr_metric_ranks_precision() {
        let obj = Objective::Lexicographic(vec![Metric::SqnrDb, Metric::SystemMw]);
        let precise = MixResult {
            sqnr_db: 75.0,
            ..result(10.0, 600.0, 1.0)
        };
        let coarse = MixResult {
            sqnr_db: 30.0,
            ..result(10.0, 300.0, 1.0)
        };
        assert_eq!(obj.compare(&precise, &coarse), Ordering::Greater);
        assert_eq!(
            Objective::parse("sqnr").unwrap(),
            Objective::parse("accuracy").unwrap()
        );
        assert_eq!(
            Objective::parse("sqnr_db").unwrap(),
            Objective::Lexicographic(vec![Metric::SqnrDb])
        );
        assert!(Metric::SqnrDb.maximize());
        assert_eq!(Metric::SqnrDb.name(), "sqnr_db");
    }

    #[test]
    fn parse_both_forms() {
        assert_eq!(
            Objective::parse("fps,power,gates").unwrap(),
            Objective::default()
        );
        assert_eq!(
            Objective::parse("efficiency").unwrap(),
            Objective::Lexicographic(vec![Metric::GopsPerWatt])
        );
        assert_eq!(
            Objective::parse("fps:1,power:0.25").unwrap(),
            Objective::Scalarized(vec![(Metric::Fps, 1.0), (Metric::SystemMw, 0.25)])
        );
        assert!(Objective::parse("").is_err());
        assert!(Objective::parse("fps,warp").is_err());
        assert!(Objective::parse("fps:1,power").is_err());
        assert!(Objective::parse("fps:-1").is_err());
        assert!(Objective::parse("fps:zero").is_err());
    }

    #[test]
    fn validate_rejects_empty() {
        assert!(Objective::Lexicographic(vec![]).validate().is_err());
        assert!(Objective::Scalarized(vec![]).validate().is_err());
        assert!(Objective::Scalarized(vec![(Metric::Fps, 0.0)])
            .validate()
            .is_err());
    }
}
