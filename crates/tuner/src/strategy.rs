//! The search strategies and the session state they share.
//!
//! A candidate is an **index vector** into the seven swept axes of a
//! [`SweepSpec`] (PEs, clock, kMemory depth, iMemory, oMemory, word
//! width, batch — networks come from the workload mix, not an axis).
//! Strategies propose candidate index vectors; the [`Session`]
//! deduplicates them against everything already visited, evaluates the
//! fresh ones through the [`MixEvaluator`] one batch (= one round) at a
//! time, and maintains the incumbent under a total candidate order:
//!
//! 1. budget-admitted feasible candidates, ranked by the objective;
//! 2. feasible but budget-violating candidates, ranked by smaller
//!    [`Budget::violation`] (so searches walk toward the feasible
//!    region);
//! 3. model-infeasible candidates;
//!
//! with exact ties broken by the candidate's content hash (then by its
//! canonical bytes), so the winner is unique and identical at any
//! thread count.
//!
//! Both strategies are deterministic given `(spec, mix, budget,
//! objective, seed)`: candidate proposal order is a pure function of
//! those inputs, and the model stack itself is pure.
//!
//! # Example
//!
//! ```
//! use chain_nn_dse::{PointCache, SweepSpec, WorkloadMix};
//! use chain_nn_tuner::{tune, CacheEvaluator, StrategyKind, TuneRequest};
//!
//! let request = TuneRequest {
//!     space: SweepSpec {
//!         pes: vec![25, 50, 100, 200],
//!         freqs_mhz: vec![350.0, 700.0],
//!         ..SweepSpec::paper_point()
//!     },
//!     mix: WorkloadMix::single("lenet").unwrap(),
//!     strategy: StrategyKind::HillClimb,
//!     ..TuneRequest::default()
//! };
//! let cache = PointCache::new();
//! let report = tune(&request, &mut CacheEvaluator::new(&cache, 2)).unwrap();
//! let best = report.best.unwrap();
//! // Unconstrained: the climb reaches the fastest corner of the grid.
//! assert_eq!((best.point.pes, best.point.freq_mhz), (200, 700.0));
//! assert_eq!(report.exhaustive_points, 8);
//! ```

use std::cmp::Ordering;
use std::collections::HashMap;

use chain_nn_dse::{DesignPoint, MixOutcome, SweepSpec, WorkloadMix};

use crate::budget::Budget;
use crate::evaluator::MixEvaluator;
use crate::objective::Objective;
use crate::TuneError;

/// Number of swept axes a candidate indexes.
pub const AXES: usize = 7;

/// One candidate: per-axis indices into the space (PEs, clock, kMemory
/// depth, iMemory, oMemory, word width, batch).
pub type Idx = [usize; AXES];

/// The search space: the spec's axes plus the mix's primary network
/// (the canonical `net` of a candidate's base point).
pub(crate) struct Space {
    spec: SweepSpec,
    primary_net: String,
}

impl Space {
    pub(crate) fn new(spec: SweepSpec, primary_net: &str) -> Self {
        Space {
            spec,
            primary_net: primary_net.to_owned(),
        }
    }

    /// Per-axis lengths, in candidate index order.
    pub fn lens(&self) -> [usize; AXES] {
        [
            self.spec.pes.len(),
            self.spec.freqs_mhz.len(),
            self.spec.kmem_depths.len(),
            self.spec.imem_kb.len(),
            self.spec.omem_kb.len(),
            self.spec.word_bits.len(),
            self.spec.batches.len(),
        ]
    }

    /// Configurations in the full grid (the exhaustive-sweep count per
    /// network).
    pub(crate) fn total(&self) -> usize {
        self.lens().iter().product()
    }

    /// The base design point of a candidate (net = the mix's primary).
    pub(crate) fn point(&self, idx: &Idx) -> DesignPoint {
        DesignPoint {
            pes: self.spec.pes[idx[0]],
            freq_mhz: self.spec.freqs_mhz[idx[1]],
            kmem_depth: self.spec.kmem_depths[idx[2]],
            imem_kb: self.spec.imem_kb[idx[3]],
            omem_kb: self.spec.omem_kb[idx[4]],
            word_bits: self.spec.word_bits[idx[5]],
            batch: self.spec.batches[idx[6]],
            net: self.primary_net.clone(),
        }
    }
}

/// Shared search state: the space, the ranking inputs, the evaluator,
/// and everything visited so far. Strategies drive it through
/// [`Session::eval_batch`] and read back outcomes and rankings; they
/// cannot construct one — the [`crate::tune`] driver does.
pub struct Session<'a, E: MixEvaluator> {
    pub(crate) space: Space,
    mix: &'a WorkloadMix,
    budget: &'a Budget,
    objective: &'a Objective,
    evaluator: &'a mut E,
    pub(crate) seed: u64,
    visited: HashMap<Idx, MixOutcome>,
    incumbent: Option<Idx>,
    rounds: usize,
    /// This search's own causal trace: `(trace_id, root_span)` when the
    /// span ring is enabled. Each evaluator round records a
    /// `search_round` span under the root, so a standalone tune renders
    /// as a timeline of rounds. (Served tunes additionally appear as
    /// `tune_round` spans in the *request's* trace on the daemon side.)
    trace: Option<(u64, u64)>,
}

impl<'a, E: MixEvaluator> Session<'a, E> {
    pub(crate) fn new(
        space: Space,
        mix: &'a WorkloadMix,
        budget: &'a Budget,
        objective: &'a Objective,
        evaluator: &'a mut E,
        seed: u64,
    ) -> Self {
        Session {
            space,
            mix,
            budget,
            objective,
            evaluator,
            seed,
            visited: HashMap::new(),
            incumbent: None,
            rounds: 0,
            trace: chain_nn_obs::trace::spans().is_enabled().then(|| {
                (
                    chain_nn_obs::trace::next_trace_id(),
                    chain_nn_obs::trace::next_span_id(),
                )
            }),
        }
    }

    /// Per-axis lengths of the space, in candidate index order.
    pub fn lens(&self) -> [usize; AXES] {
        self.space.lens()
    }

    /// The best candidate visited so far (under the total order).
    pub fn incumbent(&self) -> Option<Idx> {
        self.incumbent
    }

    /// Evaluator round trips so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Distinct candidates evaluated so far.
    pub fn evaluations(&self) -> u64 {
        self.visited.len() as u64
    }

    /// The outcome of a visited candidate.
    pub fn outcome(&self, idx: &Idx) -> Option<&MixOutcome> {
        self.visited.get(idx)
    }

    /// Whether a candidate has already been evaluated.
    pub fn is_visited(&self, idx: &Idx) -> bool {
        self.visited.contains_key(idx)
    }

    /// Evaluates the not-yet-visited candidates of `candidates` as one
    /// round, then folds them into the incumbent. Duplicate and
    /// already-visited candidates cost nothing; a batch with no fresh
    /// candidate costs no round either.
    pub fn eval_batch(&mut self, candidates: &[Idx]) -> Result<(), TuneError> {
        let mut fresh: Vec<Idx> = Vec::with_capacity(candidates.len());
        for &idx in candidates {
            if !self.visited.contains_key(&idx) && !fresh.contains(&idx) {
                fresh.push(idx);
            }
        }
        if fresh.is_empty() {
            return Ok(());
        }
        let bases: Vec<DesignPoint> = fresh.iter().map(|i| self.space.point(i)).collect();
        let round_started = std::time::Instant::now();
        let outcomes = self.evaluator.evaluate(self.mix, &bases)?;
        let obs = chain_nn_obs::global();
        obs.histogram("tuner_round_ns")
            .record_duration(round_started.elapsed());
        obs.counter("tuner_rounds_total").inc();
        obs.counter("tuner_evaluations_total")
            .add(bases.len() as u64);
        if let Some((trace_id, root)) = self.trace {
            chain_nn_obs::trace::spans().record(&chain_nn_obs::trace::Span {
                trace_id,
                span_id: chain_nn_obs::trace::next_span_id(),
                parent_id: root,
                name: "search_round",
                start: round_started,
                dur: round_started.elapsed(),
                worker: None,
                points: bases.len().min(u32::MAX as usize) as u32,
            });
        }
        if outcomes.len() != bases.len() {
            return Err(TuneError::Backend(format!(
                "evaluator returned {} outcomes for {} candidates",
                outcomes.len(),
                bases.len()
            )));
        }
        self.rounds += 1;
        for (idx, outcome) in fresh.into_iter().zip(outcomes) {
            self.visited.insert(idx, outcome);
            let better = match self.incumbent {
                None => true,
                Some(inc) => self.compare(&idx, &inc) == Ordering::Greater,
            };
            if better {
                self.incumbent = Some(idx);
            }
        }
        Ok(())
    }

    /// Total candidate order (see the module docs); `Greater` means `a`
    /// is the better candidate. Both must have been visited.
    pub fn compare(&self, a: &Idx, b: &Idx) -> Ordering {
        let class = |o: &MixOutcome| match o {
            MixOutcome::Feasible(r) if self.budget.admits(r) => 2u8,
            MixOutcome::Feasible(_) => 1,
            MixOutcome::Infeasible(_) => 0,
        };
        let oa = self.outcome(a).expect("candidate a visited");
        let ob = self.outcome(b).expect("candidate b visited");
        let by_class = class(oa).cmp(&class(ob));
        if by_class != Ordering::Equal {
            return by_class;
        }
        let by_value = match (oa, ob) {
            (MixOutcome::Feasible(ra), MixOutcome::Feasible(rb)) => {
                if self.budget.admits(ra) {
                    self.objective.compare(ra, rb)
                } else {
                    // Both violate: closer to the budget is better.
                    self.budget
                        .violation(rb)
                        .total_cmp(&self.budget.violation(ra))
                }
            }
            _ => Ordering::Equal,
        };
        if by_value != Ordering::Equal {
            return by_value;
        }
        // Deterministic tie-break: the smaller content hash wins, with
        // the canonical encoding as the collision-proof final word.
        let pa = self.space.point(a);
        let pb = self.space.point(b);
        match pb.content_hash().cmp(&pa.content_hash()) {
            Ordering::Equal => pb.canonical_bytes().cmp(&pa.canonical_bytes()),
            other => other,
        }
    }

    /// The `k` best visited candidates, best first.
    pub fn top_k(&self, k: usize) -> Vec<Idx> {
        let mut all: Vec<Idx> = self.visited.keys().copied().collect();
        all.sort_by(|a, b| self.compare(b, a));
        all.truncate(k);
        all
    }

    /// The budget-violating candidate worth bisecting toward: among
    /// feasible candidates outside the budget **whose objective value
    /// beats the incumbent's** (they would win if only they fit), the
    /// one closest to the budget. The constrained optimum sits on the
    /// feasibility boundary of some branch of the space; this candidate
    /// brackets that boundary from the infeasible side, where the
    /// plain least-violating point may sit on a branch (say, a
    /// low-batch one) that could never beat the incumbent even if
    /// admitted. With no admitted incumbent yet, every violating
    /// candidate qualifies.
    pub fn best_violating(&self) -> Option<Idx> {
        let incumbent_result = self.incumbent.and_then(|idx| match self.outcome(&idx) {
            Some(MixOutcome::Feasible(r)) if self.budget.admits(r) => Some(*r),
            _ => None,
        });
        self.visited
            .iter()
            .filter_map(|(idx, outcome)| match outcome {
                MixOutcome::Feasible(r) if !self.budget.admits(r) => Some((*idx, *r)),
                _ => None,
            })
            .filter(|(_, r)| match &incumbent_result {
                Some(inc) => self.objective.compare(r, inc) == Ordering::Greater,
                None => true,
            })
            .min_by(|(ia, ra), (ib, rb)| {
                self.budget
                    .violation(ra)
                    .total_cmp(&self.budget.violation(rb))
                    .then_with(|| {
                        // Smaller content hash wins exact ties.
                        self.space
                            .point(ia)
                            .content_hash()
                            .cmp(&self.space.point(ib).content_hash())
                    })
            })
            .map(|(idx, _)| idx)
    }
}

/// One search strategy over a [`Session`]. Strategies only propose
/// candidates and read outcomes; ranking, deduplication and accounting
/// live in the session, so every strategy inherits cache-first
/// incremental behaviour and determinism.
pub trait SearchStrategy {
    /// Runs the search to completion on `session`.
    ///
    /// # Errors
    ///
    /// Propagates evaluator failures ([`TuneError`]).
    fn search<E: MixEvaluator>(&self, session: &mut Session<'_, E>) -> Result<(), TuneError>;
}

/// Coarse-to-fine grid refinement (successive halving).
///
/// Round 0 evaluates a coarse sub-grid: each axis keeps every
/// `stride`-th value plus its endpoint, with the stride picked so an
/// axis contributes at most ~5 values. Every following round halves
/// the strides and evaluates, for each refinement seed, the
/// one-axis-at-a-time neighbours one new stride away — so the search
/// brackets the constrained optimum and bisects toward it, touching a
/// small multiple of `log₂(axis length)` points instead of the whole
/// grid.
///
/// The seeds are the `survivors` best candidates overall **plus** the
/// best budget-violating one ([`Session::best_violating`]): a budget's
/// optimum sits on the feasibility boundary, and without the violating
/// seed the refinement can converge onto an interior branch (e.g. the
/// low-clock half of the grid) while the true optimum hides one stride
/// past the best admitted coarse point.
#[derive(Debug, Clone, Copy)]
pub struct SuccessiveHalving {
    /// How many of the best candidates seed each refinement round.
    pub survivors: usize,
}

impl Default for SuccessiveHalving {
    fn default() -> Self {
        // One elite plus the boundary seed: two brackets per round,
        // which keeps the default-grid evaluation count under 15 % of
        // exhaustive (the acceptance bound) while still bisecting both
        // sides of the budget boundary.
        SuccessiveHalving { survivors: 1 }
    }
}

/// The round-0 stride for an axis of `len` values: the smallest power
/// of two giving at most four strides across the axis (≤ 5 coarse
/// values), 1 for short axes.
fn initial_stride(len: usize) -> usize {
    if len <= 2 {
        return 1;
    }
    let mut stride = 1usize;
    while (len - 1).div_ceil(stride) > 4 {
        stride *= 2;
    }
    stride
}

/// Every `stride`-th index of `0..len`, endpoint included.
fn coarse_indices(len: usize, stride: usize) -> Vec<usize> {
    let mut out: Vec<usize> = (0..len).step_by(stride).collect();
    if *out.last().expect("len > 0") != len - 1 {
        out.push(len - 1);
    }
    out
}

impl SearchStrategy for SuccessiveHalving {
    fn search<E: MixEvaluator>(&self, session: &mut Session<'_, E>) -> Result<(), TuneError> {
        let lens = session.lens();
        let mut stride: [usize; AXES] = [0; AXES];
        for (a, &len) in lens.iter().enumerate() {
            stride[a] = initial_stride(len);
        }

        // Round 0: the cartesian product of the coarse axis values.
        let per_axis: Vec<Vec<usize>> = lens
            .iter()
            .zip(&stride)
            .map(|(&len, &s)| coarse_indices(len, s))
            .collect();
        let mut coarse: Vec<Idx> = vec![[0; AXES]];
        for (a, values) in per_axis.iter().enumerate() {
            coarse = coarse
                .into_iter()
                .flat_map(|idx| {
                    values.iter().map(move |&v| {
                        let mut next = idx;
                        next[a] = v;
                        next
                    })
                })
                .collect();
        }
        session.eval_batch(&coarse)?;

        // Halve and refine around the survivors until every axis is at
        // stride 1.
        while stride.iter().any(|&s| s > 1) {
            let mut next = stride;
            for s in &mut next {
                *s = (*s / 2).max(1);
            }
            let mut seeds = session.top_k(self.survivors.max(1));
            if let Some(violating) = session.best_violating() {
                if !seeds.contains(&violating) {
                    seeds.push(violating);
                }
            }
            let mut candidates = Vec::new();
            for survivor in seeds {
                for a in 0..AXES {
                    if stride[a] <= 1 {
                        continue; // the coarse round already covered it
                    }
                    for dir in [-1isize, 1] {
                        let moved = survivor[a] as isize + dir * next[a] as isize;
                        let moved = moved.clamp(0, lens[a] as isize - 1) as usize;
                        if moved != survivor[a] {
                            let mut idx = survivor;
                            idx[a] = moved;
                            candidates.push(idx);
                        }
                    }
                }
            }
            stride = next;
            session.eval_batch(&candidates)?;
        }
        Ok(())
    }
}

/// Local hill-climb from the incumbent.
///
/// Starts from the session's incumbent (the grid centre when nothing
/// has been evaluated yet), then repeatedly evaluates the ±1-index
/// neighbours of the current incumbent in seeded order, moving to the
/// first neighbour that improves it (first-improvement ascent). Stops
/// at a local optimum or after `max_steps` moves.
#[derive(Debug, Clone, Copy)]
pub struct HillClimb {
    /// Upper bound on accepted moves.
    pub max_steps: usize,
}

impl Default for HillClimb {
    fn default() -> Self {
        HillClimb { max_steps: 256 }
    }
}

/// `splitmix64` step — the classic 64-bit mixer; plenty for shuffling
/// neighbour order deterministically.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeded Fisher-Yates.
fn shuffle<T>(items: &mut [T], rng: &mut u64) {
    for i in (1..items.len()).rev() {
        let j = (splitmix64(rng) % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

impl SearchStrategy for HillClimb {
    fn search<E: MixEvaluator>(&self, session: &mut Session<'_, E>) -> Result<(), TuneError> {
        let lens = session.lens();
        if session.incumbent().is_none() {
            let mut centre: Idx = [0; AXES];
            for (a, &len) in lens.iter().enumerate() {
                centre[a] = len / 2;
            }
            session.eval_batch(&[centre])?;
        }
        let mut rng = session.seed ^ 0x5eed_c11b_0000_0000;
        for _step in 0..self.max_steps {
            let Some(current) = session.incumbent() else {
                return Ok(());
            };
            let mut neighbours: Vec<Idx> = Vec::with_capacity(2 * AXES);
            for a in 0..AXES {
                for dir in [-1isize, 1] {
                    let moved = current[a] as isize + dir;
                    if moved < 0 || moved >= lens[a] as isize {
                        continue;
                    }
                    let mut idx = current;
                    idx[a] = moved as usize;
                    neighbours.push(idx);
                }
            }
            shuffle(&mut neighbours, &mut rng);
            let mut moved = false;
            for n in neighbours {
                if session.is_visited(&n) {
                    continue; // already folded into the incumbent
                }
                session.eval_batch(&[n])?;
                if session.incumbent() != Some(current) {
                    moved = true;
                    break; // first improvement: climb from there
                }
            }
            if !moved {
                return Ok(()); // local optimum
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_stride_gives_at_most_five_coarse_values() {
        for len in 1..=200 {
            let s = initial_stride(len);
            let coarse = coarse_indices(len, s);
            assert!(coarse.len() <= 5, "len {len}: {coarse:?}");
            assert_eq!(*coarse.first().unwrap(), 0);
            assert_eq!(*coarse.last().unwrap(), len - 1);
            // Strictly increasing (endpoint not duplicated).
            assert!(coarse.windows(2).all(|w| w[0] < w[1]), "{coarse:?}");
        }
        assert_eq!(initial_stride(61), 16);
        assert_eq!(coarse_indices(61, 16), vec![0, 16, 32, 48, 60]);
        assert_eq!(initial_stride(2), 1);
        assert_eq!(initial_stride(1), 1);
    }

    #[test]
    fn shuffle_is_deterministic_per_seed() {
        let base: Vec<u32> = (0..10).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        let mut rng_a = 42u64;
        let mut rng_b = 42u64;
        shuffle(&mut a, &mut rng_a);
        shuffle(&mut b, &mut rng_b);
        assert_eq!(a, b);
        let mut c = base.clone();
        let mut rng_c = 43u64;
        shuffle(&mut c, &mut rng_c);
        assert_ne!(a, c, "different seeds should differ on 10 items");
        let mut sorted = a;
        sorted.sort_unstable();
        assert_eq!(sorted, base);
    }
}
