//! Long-lived explorer serving daemon for the Chain-NN design-space
//! engine.
//!
//! `chain-nn dse` rebuilt its memo cache from nothing on every
//! invocation. This crate turns the explorer into a **service**: a
//! daemon holding one shared, persistent
//! [`PointCache`](chain_nn_dse::PointCache) behind a
//! line-delimited JSON protocol over TCP, so concurrent clients (and
//! successive processes) pay for each design point once, ever.
//!
//! * [`protocol`] — typed requests/responses and their wire encoding
//!   (`eval`, `sweep`, `tune`, `tune_frontier`, `frontier`, `stats`,
//!   `metrics`, `metrics_history`, `watch`, `shutdown`), shared by
//!   daemon and client so the two cannot drift. `tune_frontier`,
//!   `frontier` with `"stream":true` and `watch` are **streaming**
//!   requests: N result lines, flushed as each is produced, then one
//!   `done` line (`docs/PROTOCOL.md` states the framing rule).
//! * [`slo`] — latency service-level objectives (`eval:p99_us=500`)
//!   evaluated every sampler tick over the trailing 10 s window, with
//!   per-SLO compliance and error-budget gauges in the registry.
//! * [`scheduler`] — the daemon's binding of the work-assisting
//!   engine (`chain_nn_dse::engine`): per-request point lists with
//!   atomic claim cursors, adaptive claim sizes (big for a lone
//!   sweep, 1–4 points while interactive evals wait), bounded
//!   admission with an explicit `busy` reply as backpressure.
//!   Iterative requests (the auto-tuner) hold one admission slot
//!   across their rounds ([`scheduler::AdmissionSlot`]) while each
//!   round interleaves with everyone else's sweeps.
//! * [`server`] — `std::net::TcpListener` accept loop, session threads,
//!   the worker pool, cache-file replay at startup and append-flush on
//!   completed requests and shutdown (std-only: the build environment
//!   has no async runtime, and a worker pool over blocking sockets
//!   serves this protocol fine).
//! * [`client`] — blocking client used by `chain-nn query` and tests.
//! * [`json`] — the dependency-free JSON tree both sides parse with.
//!
//! # Example
//!
//! ```
//! use chain_nn_serve::client::Client;
//! use chain_nn_serve::protocol::Response;
//! use chain_nn_serve::server::{Server, ServerConfig};
//! use chain_nn_dse::SweepSpec;
//!
//! let server = Server::bind(ServerConfig::default()).unwrap();
//! let addr = server.local_addr().unwrap();
//! let daemon = std::thread::spawn(move || server.run().unwrap());
//!
//! let mut client = Client::connect(addr).unwrap();
//! let spec = SweepSpec {
//!     pes: vec![288, 576],
//!     ..SweepSpec::paper_point()
//! };
//! let Response::Sweep(summary) = client.sweep(spec.clone()).unwrap() else {
//!     panic!("expected a sweep summary")
//! };
//! assert_eq!(summary.points, 2);
//! assert_eq!(summary.cache_misses, 2);
//! // The daemon remembers: the same sweep again is all hits.
//! let Response::Sweep(again) = client.sweep(spec).unwrap() else {
//!     panic!("expected a sweep summary")
//! };
//! assert_eq!(again.cache_misses, 0);
//!
//! client.shutdown().unwrap();
//! daemon.join().unwrap();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod cluster;
pub mod json;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod slo;

pub use client::{Client, ClientError};
pub use protocol::{Request, Response};
pub use server::{Server, ServerConfig, ServerReport};
