//! Fair batch scheduler: many clients, one cache, bounded admission.
//!
//! The CLI executor (`chain_nn_dse::executor`) drains one point list
//! with an atomic cursor. The daemon generalizes that shape to many
//! concurrent lists: every admitted request is a job with its own
//! cursor, and the worker pool claims fixed-size **batches** round-robin
//! across the active jobs. A 10⁶-point sweep therefore cannot starve a
//! one-point `eval` that arrives behind it — the eval's job joins the
//! rotation and is claimed within one batch-length of work.
//!
//! Backpressure is at admission: at most `capacity` jobs may be active;
//! [`Scheduler::submit`] refuses further work with [`SubmitError::Busy`]
//! (the protocol's `busy` response) instead of queueing unboundedly.
//!
//! Iterative requests (the tuner) hold **one** admission slot across
//! many rounds: [`Scheduler::admit`] reserves the slot as an RAII
//! [`AdmissionSlot`], and [`Scheduler::submit_in`] enqueues each
//! round's point list against it without re-checking capacity — so a
//! 5-round tune counts as one job at admission while its rounds still
//! interleave batch-by-batch with everyone else's sweeps.
//!
//! Every evaluation goes through [`executor::evaluate_cached`] against
//! the one shared [`PointCache`], so concurrent clients sweeping
//! overlapping grids pay for each distinct point once, whichever
//! connection got there first.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use chain_nn_dse::executor;
use chain_nn_dse::{DesignPoint, DseError, PointCache, PointOutcome};
use chain_nn_obs::{Counter, Histogram, Registry};

/// Points claimed per scheduling turn. Small enough that a single-point
/// eval behind a huge sweep waits at most ~one batch of model
/// evaluations (microseconds each); large enough that the scheduler
/// lock is cold next to the evaluations themselves.
pub const BATCH_SIZE: usize = 32;

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission bound is reached; retry later.
    Busy {
        /// Jobs currently admitted.
        active: usize,
        /// The admission bound.
        capacity: usize,
    },
    /// The scheduler is draining for shutdown and admits nothing new.
    ShuttingDown,
}

/// Which trace a job's batch spans belong to: the owning trace id and
/// the request's root span the batches hang under. Carried through the
/// queue so the worker that executes a batch — not the session thread —
/// records the span, with its own worker index as the timeline row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRef {
    /// Owning trace (see [`chain_nn_obs::trace`]).
    pub trace_id: u64,
    /// The request's root span id; batch spans parent onto it.
    pub parent_span: u64,
}

/// One admitted request: a point list, a claim cursor, and the
/// completion state its submitter waits on.
struct Job {
    points: Arc<Vec<DesignPoint>>,
    next: usize,
    done: Arc<Completion>,
    trace: Option<TraceRef>,
}

/// Completion state shared between the workers and the waiting
/// submitter.
#[derive(Debug)]
struct Completion {
    state: Mutex<CompletionState>,
    cv: Condvar,
    slot: SlotOwnership,
    /// When the job entered the queue.
    submitted: Instant,
    /// When a worker first claimed a batch of it. A `OnceLock` rather
    /// than a field under either lock: `claim()` holds the scheduler
    /// lock and the waiter reads under the completion lock, and this
    /// way neither has to take the other.
    first_claimed: OnceLock<Instant>,
    /// When the last batch was delivered (set under the completion
    /// lock, before the waiter is notified).
    finished_at: OnceLock<Instant>,
}

#[derive(Debug)]
struct CompletionState {
    results: Vec<(usize, PointOutcome)>,
    finished: usize,
    total: usize,
    /// Per-job cache traffic (global cache deltas would count the other
    /// clients' concurrent activity too).
    cache_hits: u64,
    cache_misses: u64,
    error: Option<DseError>,
    /// Set exactly once, by the worker that observed completion first;
    /// guards the active-count decrement against racing late batches.
    closed: bool,
}

/// Whether completing this job releases an admission slot. Jobs from
/// [`Scheduler::submit`] own their slot; jobs from
/// [`Scheduler::submit_in`] run inside an [`AdmissionSlot`] that
/// releases on drop instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotOwnership {
    Owned,
    External,
}

/// Everything one finished job produced.
#[derive(Debug)]
pub struct JobResult {
    /// Outcomes in the submitted point order.
    pub outcomes: Vec<PointOutcome>,
    /// Lookups this job answered from the shared cache.
    pub cache_hits: u64,
    /// Fresh evaluations this job paid for.
    pub cache_misses: u64,
    /// Submission → first batch claimed: time spent queued behind
    /// other jobs (zero for empty jobs, which are never claimed).
    pub queue_wait: Duration,
    /// First batch claimed → last batch delivered: time spent actually
    /// evaluating (including rotation gaps between this job's batches).
    pub execute: Duration,
}

/// Handle the submitter blocks on.
#[derive(Debug)]
pub struct JobHandle {
    done: Arc<Completion>,
}

impl JobHandle {
    /// Blocks until every point of the job is evaluated (or the job
    /// failed), returning outcomes in the submitted point order.
    ///
    /// # Errors
    ///
    /// The first spec-level evaluation error the workers hit, or the
    /// shutdown notice if the scheduler was torn down mid-job.
    pub fn wait(self) -> Result<JobResult, DseError> {
        let mut state = self.done.state.lock().expect("completion lock poisoned");
        while state.error.is_none() && state.finished < state.total {
            state = self.done.cv.wait(state).expect("completion lock poisoned");
        }
        if let Some(e) = state.error.take() {
            return Err(e);
        }
        let mut results = std::mem::take(&mut state.results);
        results.sort_by_key(|(i, _)| *i);
        let end = self
            .done
            .finished_at
            .get()
            .copied()
            .unwrap_or_else(Instant::now);
        let (queue_wait, execute) = match self.done.first_claimed.get() {
            Some(&first) => (
                first.saturating_duration_since(self.done.submitted),
                end.saturating_duration_since(first),
            ),
            // Never claimed: the empty-job fast path.
            None => (Duration::ZERO, Duration::ZERO),
        };
        Ok(JobResult {
            outcomes: results.into_iter().map(|(_, o)| o).collect(),
            cache_hits: state.cache_hits,
            cache_misses: state.cache_misses,
            queue_wait,
            execute,
        })
    }
}

/// One claimed batch: evaluate `points[start..end]`, report to `done`.
struct Claim {
    points: Arc<Vec<DesignPoint>>,
    start: usize,
    end: usize,
    done: Arc<Completion>,
    trace: Option<TraceRef>,
}

struct SchedState {
    jobs: VecDeque<Job>,
    shutting_down: bool,
    active: usize,
}

/// The scheduler's registered metric handles (registration happens at
/// construction; recording is lock-free).
struct SchedMetrics {
    /// Wall time per claimed batch evaluation.
    batch_eval_ns: Arc<Histogram>,
    /// Batches claimed.
    batches: Arc<Counter>,
    /// Points evaluated through the scheduler.
    points: Arc<Counter>,
}

impl SchedMetrics {
    fn register(registry: &Registry) -> SchedMetrics {
        SchedMetrics {
            batch_eval_ns: registry.histogram("sched_batch_eval_ns"),
            batches: registry.counter("sched_batches_total"),
            points: registry.counter("sched_points_total"),
        }
    }
}

/// The shared scheduler; construct once, hand clones of the `Arc` to
/// the worker pool and every connection handler.
pub struct Scheduler {
    state: Mutex<SchedState>,
    work_ready: Condvar,
    cache: Arc<PointCache>,
    capacity: usize,
    batch: usize,
    metrics: SchedMetrics,
}

impl Scheduler {
    /// A scheduler over `cache` admitting at most `capacity` concurrent
    /// jobs and claiming `batch` points per turn. Batch metrics land in
    /// a private throwaway registry; the daemon uses
    /// [`Scheduler::with_registry`] to surface them.
    pub fn new(cache: Arc<PointCache>, capacity: usize, batch: usize) -> Self {
        Scheduler::with_registry(cache, capacity, batch, &Registry::new())
    }

    /// [`Scheduler::new`], registering the batch metrics
    /// (`sched_batch_eval_ns`, `sched_batches_total`,
    /// `sched_points_total`) in `registry`.
    pub fn with_registry(
        cache: Arc<PointCache>,
        capacity: usize,
        batch: usize,
        registry: &Registry,
    ) -> Self {
        Scheduler {
            state: Mutex::new(SchedState {
                jobs: VecDeque::new(),
                shutting_down: false,
                active: 0,
            }),
            work_ready: Condvar::new(),
            cache,
            capacity: capacity.max(1),
            batch: batch.max(1),
            metrics: SchedMetrics::register(registry),
        }
    }

    /// The shared cache (for stats and frontier queries).
    pub fn cache(&self) -> &PointCache {
        &self.cache
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs admitted and not yet finished.
    pub fn active_jobs(&self) -> usize {
        self.state.lock().expect("scheduler lock poisoned").active
    }

    /// Jobs currently queued in the batch rotation (admitted work with
    /// unclaimed points; an active job whose last batch is being
    /// evaluated no longer counts). `queue_depth() <= active_jobs()`
    /// modulo the race between the two lock acquisitions.
    pub fn queue_depth(&self) -> usize {
        self.state
            .lock()
            .expect("scheduler lock poisoned")
            .jobs
            .len()
    }

    fn completion(total: usize, slot: SlotOwnership) -> Arc<Completion> {
        Arc::new(Completion {
            state: Mutex::new(CompletionState {
                results: Vec::with_capacity(total),
                finished: 0,
                total,
                cache_hits: 0,
                cache_misses: 0,
                error: None,
                closed: false,
            }),
            cv: Condvar::new(),
            slot,
            submitted: Instant::now(),
            first_claimed: OnceLock::new(),
            finished_at: OnceLock::new(),
        })
    }

    /// Admits `points` as one job.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] at the admission bound;
    /// [`SubmitError::ShuttingDown`] once shutdown began.
    pub fn submit(&self, points: Vec<DesignPoint>) -> Result<JobHandle, SubmitError> {
        self.submit_traced(points, None)
    }

    /// [`Scheduler::submit`], tagging the job so every batch a worker
    /// claims from it records a `batch` span under `trace`.
    ///
    /// # Errors
    ///
    /// Exactly [`Scheduler::submit`]'s.
    pub fn submit_traced(
        &self,
        points: Vec<DesignPoint>,
        trace: Option<TraceRef>,
    ) -> Result<JobHandle, SubmitError> {
        let total = points.len();
        let done = Scheduler::completion(total, SlotOwnership::Owned);
        {
            let mut state = self.state.lock().expect("scheduler lock poisoned");
            if state.shutting_down {
                return Err(SubmitError::ShuttingDown);
            }
            if state.active >= self.capacity {
                return Err(SubmitError::Busy {
                    active: state.active,
                    capacity: self.capacity,
                });
            }
            state.active += 1;
            if total > 0 {
                state.jobs.push_back(Job {
                    points: Arc::new(points),
                    next: 0,
                    done: Arc::clone(&done),
                    trace,
                });
            } else {
                // An empty job completes immediately; it was still
                // admission-checked so capacity semantics are uniform.
                state.active -= 1;
            }
        }
        self.work_ready.notify_all();
        Ok(JobHandle { done })
    }

    /// Reserves one admission slot without submitting work yet — the
    /// entry point for iterative requests that will run several
    /// [`Scheduler::submit_in`] rounds under a single unit of
    /// admission. The slot is released when the returned guard drops.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] at the admission bound;
    /// [`SubmitError::ShuttingDown`] once shutdown began.
    pub fn admit(&self) -> Result<AdmissionSlot<'_>, SubmitError> {
        let mut state = self.state.lock().expect("scheduler lock poisoned");
        if state.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if state.active >= self.capacity {
            return Err(SubmitError::Busy {
                active: state.active,
                capacity: self.capacity,
            });
        }
        state.active += 1;
        Ok(AdmissionSlot { scheduler: self })
    }

    /// Enqueues `points` as one job inside an already-held admission
    /// slot: no capacity check (the slot is the capacity), same fair
    /// batch rotation as every other job. The borrow ties the job to
    /// its slot, so a round cannot outlive the admission it runs under.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShuttingDown`] once shutdown began — admitted
    /// slots do not exempt *new* rounds from the drain.
    pub fn submit_in(
        &self,
        slot: &AdmissionSlot<'_>,
        points: Vec<DesignPoint>,
    ) -> Result<JobHandle, SubmitError> {
        self.submit_in_traced(slot, points, None)
    }

    /// [`Scheduler::submit_in`], tagging the round's job so its batch
    /// spans land under `trace` (the tune request's root span).
    ///
    /// # Errors
    ///
    /// Exactly [`Scheduler::submit_in`]'s.
    pub fn submit_in_traced(
        &self,
        _slot: &AdmissionSlot<'_>,
        points: Vec<DesignPoint>,
        trace: Option<TraceRef>,
    ) -> Result<JobHandle, SubmitError> {
        let total = points.len();
        let done = Scheduler::completion(total, SlotOwnership::External);
        {
            let mut state = self.state.lock().expect("scheduler lock poisoned");
            if state.shutting_down {
                return Err(SubmitError::ShuttingDown);
            }
            if total > 0 {
                state.jobs.push_back(Job {
                    points: Arc::new(points),
                    next: 0,
                    done: Arc::clone(&done),
                    trace,
                });
            }
        }
        self.work_ready.notify_all();
        Ok(JobHandle { done })
    }

    /// Claims the next batch. Blocks while idle; returns `None` once
    /// shutdown began *and* all admitted work is claimed — the worker
    /// exit condition.
    fn claim(&self) -> Option<Claim> {
        let mut state = self.state.lock().expect("scheduler lock poisoned");
        loop {
            if let Some(mut job) = state.jobs.pop_front() {
                let start = job.next;
                let end = (start + self.batch).min(job.points.len());
                job.next = end;
                let claim = Claim {
                    points: Arc::clone(&job.points),
                    start,
                    end,
                    done: Arc::clone(&job.done),
                    trace: job.trace,
                };
                // First claim of this job ends its queue wait.
                let _ = claim.done.first_claimed.set(Instant::now());
                if job.next < job.points.len() {
                    // Unfinished: rotate to the queue tail. Pop-front +
                    // push-back is exactly round-robin across jobs.
                    state.jobs.push_back(job);
                }
                return Some(claim);
            }
            if state.shutting_down {
                return None;
            }
            state = self
                .work_ready
                .wait(state)
                .expect("scheduler lock poisoned");
        }
    }

    fn finish_job(&self) {
        let mut state = self.state.lock().expect("scheduler lock poisoned");
        state.active -= 1;
    }

    /// Stops admission and wakes every idle worker so the pool can
    /// drain admitted jobs and exit.
    pub fn begin_shutdown(&self) {
        self.state
            .lock()
            .expect("scheduler lock poisoned")
            .shutting_down = true;
        self.work_ready.notify_all();
    }

    /// One worker: claim → evaluate → deliver, until shutdown drains
    /// the queue. Run this on `threads` std threads.
    /// ([`Scheduler::worker_loop_indexed`] additionally tags batch
    /// spans with the worker's pool index; this entry point is worker
    /// 0, for tests and single-threaded embedding.)
    pub fn worker_loop(&self) {
        self.worker_loop_indexed(0);
    }

    /// [`Scheduler::worker_loop`] with an explicit pool index: batches
    /// of traced jobs record a `batch` span tagged with `worker`, so a
    /// sweep's trace renders as a per-thread timeline.
    pub fn worker_loop_indexed(&self, worker: u32) {
        while let Some(Claim {
            points,
            start,
            end,
            done,
            trace,
        }) = self.claim()
        {
            let batch_started = Instant::now();
            let mut results = Vec::with_capacity(end - start);
            let mut error = None;
            let (mut hits, mut misses) = (0u64, 0u64);
            for i in start..end {
                match executor::evaluate_cached_tracked(&points[i], self.cache()) {
                    Ok((outcome, hit)) => {
                        if hit {
                            hits += 1;
                        } else {
                            misses += 1;
                        }
                        results.push((i, outcome));
                    }
                    Err(e) => {
                        error = Some(e);
                        break;
                    }
                }
            }
            self.metrics
                .batch_eval_ns
                .record_duration(batch_started.elapsed());
            self.metrics.batches.inc();
            self.metrics.points.add((end - start) as u64);
            if let Some(t) = trace {
                chain_nn_obs::trace::spans().record(&chain_nn_obs::trace::Span {
                    trace_id: t.trace_id,
                    span_id: chain_nn_obs::trace::next_span_id(),
                    parent_id: t.parent_span,
                    name: "batch",
                    start: batch_started,
                    dur: batch_started.elapsed(),
                    worker: Some(worker),
                    points: (end - start) as u32,
                });
            }
            // On error the whole remaining range counts as finished so
            // the waiter's completion arithmetic still closes.
            let finished_now = end - start;
            let job_complete = {
                let mut cs = done.state.lock().expect("completion lock poisoned");
                cs.finished += finished_now;
                cs.cache_hits += hits;
                cs.cache_misses += misses;
                cs.results.append(&mut results);
                if let Some(e) = error {
                    if cs.error.is_none() {
                        cs.error = Some(e);
                    }
                    // Poison the job: nothing further should be claimed.
                    cs.finished = cs.finished.max(cs.total);
                }
                if cs.error.is_some() || cs.finished >= cs.total {
                    // Stamp the end of execution before the waiter can
                    // observe completion.
                    let _ = done.finished_at.set(Instant::now());
                }
                done.cv.notify_all();
                let complete = cs.finished >= cs.total && !cs.closed;
                if complete {
                    cs.closed = true;
                }
                complete
            };
            if job_complete {
                self.remove_job(&done);
                if done.slot == SlotOwnership::Owned {
                    self.finish_job();
                }
            }
        }
    }

    /// Drops a poisoned/finished job from the rotation if it is still
    /// queued (it is not, in the common complete-by-last-batch case).
    fn remove_job(&self, done: &Arc<Completion>) {
        let mut state = self.state.lock().expect("scheduler lock poisoned");
        state.jobs.retain(|job| !Arc::ptr_eq(&job.done, done));
    }
}

/// RAII reservation of one admission slot (see [`Scheduler::admit`]).
/// Dropping it releases the slot.
pub struct AdmissionSlot<'a> {
    scheduler: &'a Scheduler,
}

impl Drop for AdmissionSlot<'_> {
    fn drop(&mut self) {
        self.scheduler.finish_job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_nn_dse::SweepSpec;
    use std::sync::Arc;

    fn grid(pes: Vec<usize>) -> Vec<DesignPoint> {
        SweepSpec {
            pes,
            freqs_mhz: vec![350.0, 700.0],
            nets: vec!["lenet".into()],
            ..SweepSpec::paper_point()
        }
        .points()
    }

    fn with_workers<R>(sched: &Arc<Scheduler>, n: usize, body: impl FnOnce() -> R) -> R {
        std::thread::scope(|scope| {
            for _ in 0..n {
                let s = Arc::clone(sched);
                scope.spawn(move || s.worker_loop());
            }
            let out = body();
            sched.begin_shutdown();
            out
        })
    }

    #[test]
    fn results_come_back_in_point_order() {
        let sched = Arc::new(Scheduler::new(Arc::new(PointCache::new()), 4, 2));
        let points = grid(vec![25, 50, 100]);
        let job = with_workers(&sched, 3, || {
            sched.submit(points.clone()).unwrap().wait().unwrap()
        });
        assert_eq!(job.outcomes.len(), points.len());
        assert_eq!(job.cache_misses, points.len() as u64);
        assert_eq!(job.cache_hits, 0);
        // Same as the reference executor.
        let reference = executor::run(&points, 1, &PointCache::new()).unwrap();
        assert_eq!(job.outcomes, reference);
    }

    #[test]
    fn concurrent_jobs_share_the_cache() {
        let cache = Arc::new(PointCache::new());
        let sched = Arc::new(Scheduler::new(Arc::clone(&cache), 4, 4));
        let a = grid(vec![25, 50, 100]);
        let b = grid(vec![50, 100, 200]); // overlaps on 50 and 100
        with_workers(&sched, 2, || {
            std::thread::scope(|scope| {
                let sa = Arc::clone(&sched);
                let pa = a.clone();
                let ha = scope.spawn(move || sa.submit(pa).unwrap().wait().unwrap());
                let sb = Arc::clone(&sched);
                let pb = b.clone();
                let hb = scope.spawn(move || sb.submit(pb).unwrap().wait().unwrap());
                ha.join().unwrap();
                hb.join().unwrap();
            });
        });
        let stats = cache.stats();
        // 8 distinct points across both grids; 12 total lookups. The
        // overlap may race (both clients miss the same point before
        // either inserts), so distinct misses is a lower bound — but
        // combined misses must beat two standalone runs (6 + 6).
        assert!(stats.misses >= 8);
        assert!(
            stats.misses < 12,
            "overlapping clients must share: {stats:?}"
        );
        assert_eq!(stats.hits + stats.misses, 12);
    }

    #[test]
    fn admission_bound_returns_busy() {
        // No workers: submitted jobs just sit there.
        let sched = Scheduler::new(Arc::new(PointCache::new()), 2, 8);
        let p = grid(vec![25]);
        let _a = sched.submit(p.clone()).unwrap();
        let _b = sched.submit(p.clone()).unwrap();
        match sched.submit(p.clone()) {
            Err(SubmitError::Busy { active, capacity }) => {
                assert_eq!((active, capacity), (2, 2));
            }
            other => panic!("expected busy, got {other:?}"),
        }
        assert_eq!(sched.active_jobs(), 2);
        // With no workers both jobs still sit in the rotation.
        assert_eq!(sched.queue_depth(), 2);
    }

    #[test]
    fn big_job_does_not_starve_small_one() {
        // One worker, batch 1: with round-robin the small job completes
        // after at most a couple of turns even though a big job was
        // admitted first.
        let sched = Arc::new(Scheduler::new(Arc::new(PointCache::new()), 4, 1));
        let big = grid((1..=40).map(|i| i * 25).collect());
        let small = grid(vec![25]);
        with_workers(&sched, 1, || {
            let hb = sched.submit(big.clone()).unwrap();
            let hs = sched.submit(small.clone()).unwrap();
            // The small job finishing at all before shutdown proves it
            // interleaved; measure progress too: the big job cannot have
            // been fully drained first on one worker unless the small
            // job waited behind all 80 points. Round-robin guarantees it
            // did not. (Timing-free check: both complete.)
            let small_out = hs.wait().unwrap();
            assert_eq!(small_out.outcomes.len(), small.len());
            let big_out = hb.wait().unwrap();
            assert_eq!(big_out.outcomes.len(), big.len());
        });
    }

    #[test]
    fn spec_error_fails_the_job_not_the_scheduler() {
        let sched = Arc::new(Scheduler::new(Arc::new(PointCache::new()), 4, 2));
        let mut bad = grid(vec![25, 50]);
        bad[3].net = "notanet".into();
        let good = grid(vec![100]);
        with_workers(&sched, 2, || {
            assert!(sched.submit(bad.clone()).unwrap().wait().is_err());
            // The scheduler survives and serves the next job.
            let out = sched.submit(good.clone()).unwrap().wait().unwrap();
            assert_eq!(out.outcomes.len(), good.len());
        });
        assert_eq!(sched.active_jobs(), 0);
    }

    #[test]
    fn shutdown_drains_admitted_work_then_refuses() {
        let sched = Arc::new(Scheduler::new(Arc::new(PointCache::new()), 4, 2));
        let points = grid(vec![25, 50, 100]);
        std::thread::scope(|scope| {
            let s = Arc::clone(&sched);
            scope.spawn(move || s.worker_loop());
            let handle = sched.submit(points.clone()).unwrap();
            sched.begin_shutdown();
            // Already-admitted work completes...
            assert_eq!(handle.wait().unwrap().outcomes.len(), points.len());
            // ...new work does not get in.
            assert_eq!(
                sched.submit(points.clone()).unwrap_err(),
                SubmitError::ShuttingDown
            );
        });
    }

    #[test]
    fn admission_slot_spans_rounds_and_counts_once() {
        let sched = Arc::new(Scheduler::new(Arc::new(PointCache::new()), 2, 2));
        with_workers(&sched, 2, || {
            let slot = sched.admit().unwrap();
            assert_eq!(sched.active_jobs(), 1);
            // Several rounds under the one slot: active never grows.
            for pes in [25, 50, 100] {
                let out = sched
                    .submit_in(&slot, grid(vec![pes]))
                    .unwrap()
                    .wait()
                    .unwrap();
                assert_eq!(out.outcomes.len(), 2);
                assert_eq!(sched.active_jobs(), 1);
            }
            // A plain submit still fits beside the slot; a second slot
            // at capacity does not.
            let h = sched.submit(grid(vec![200])).unwrap();
            h.wait().unwrap();
            let second = sched.admit().unwrap();
            assert!(matches!(sched.admit(), Err(SubmitError::Busy { .. })));
            drop(second);
            drop(slot);
        });
        assert_eq!(sched.active_jobs(), 0);
    }

    #[test]
    fn slot_rounds_refuse_after_shutdown() {
        let sched = Arc::new(Scheduler::new(Arc::new(PointCache::new()), 2, 2));
        let slot = sched.admit().unwrap();
        sched.begin_shutdown();
        assert_eq!(
            sched.submit_in(&slot, grid(vec![25])).unwrap_err(),
            SubmitError::ShuttingDown
        );
        drop(slot);
        assert_eq!(sched.active_jobs(), 0);
    }

    #[test]
    fn empty_round_in_slot_completes_immediately() {
        let sched = Scheduler::new(Arc::new(PointCache::new()), 2, 2);
        let slot = sched.admit().unwrap();
        let out = sched.submit_in(&slot, Vec::new()).unwrap().wait().unwrap();
        assert!(out.outcomes.is_empty());
        drop(slot);
    }

    #[test]
    fn job_timing_separates_queue_wait_from_execute() {
        let sched = Arc::new(Scheduler::new(Arc::new(PointCache::new()), 4, 2));
        let points = grid(vec![25, 50, 100]);
        let (job, empty) = with_workers(&sched, 1, || {
            let job = sched.submit(points.clone()).unwrap().wait().unwrap();
            // An empty job is never claimed: both stages are zero.
            let empty = sched.submit(Vec::new()).unwrap().wait().unwrap();
            (job, empty)
        });
        // The job was actually claimed and evaluated, so execution took
        // measurable time; both stages are reported independently.
        assert!(job.execute > Duration::ZERO);
        assert!(job.queue_wait + job.execute > Duration::ZERO);
        assert_eq!(empty.queue_wait, Duration::ZERO);
        assert_eq!(empty.execute, Duration::ZERO);
    }

    #[test]
    fn scheduler_registers_batch_metrics() {
        let registry = Registry::new();
        let sched = Arc::new(Scheduler::with_registry(
            Arc::new(PointCache::new()),
            4,
            2,
            &registry,
        ));
        let points = grid(vec![25, 50, 100]);
        with_workers(&sched, 2, || {
            sched.submit(points.clone()).unwrap().wait().unwrap()
        });
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("sched_points_total", &[]),
            Some(points.len() as u64)
        );
        // 6 points at batch size 2 is 3 batches (any worker split).
        assert_eq!(snap.counter("sched_batches_total", &[]), Some(3));
        let h = snap.histogram("sched_batch_eval_ns", &[]).unwrap();
        assert_eq!(h.count, 3);
        assert!(h.sum > 0);
    }

    #[test]
    fn empty_job_completes_immediately() {
        let sched = Scheduler::new(Arc::new(PointCache::new()), 4, 2);
        // No workers exist; an empty job must not wait on them.
        let out = sched.submit(Vec::new()).unwrap().wait().unwrap();
        assert!(out.outcomes.is_empty());
        assert_eq!(sched.active_jobs(), 0);
    }
}
