//! The daemon's view of the work-assisting engine: many clients, one
//! cache, bounded admission.
//!
//! The claim/worker machinery used to live here as a fixed-batch
//! round-robin scheduler; it is now
//! [`chain_nn_dse::engine`], shared with the
//! standalone sweep executor and (through it) the tuner. This module
//! binds that engine to the daemon's shared [`PointCache`] and keeps
//! the serving-side API: every admitted request is a job with its own
//! atomic claim cursor, and the worker pool self-distributes onto
//! whichever job has unclaimed points — under the default
//! [`ClaimPolicy::Adaptive`] a one-point `eval` behind a 10⁶-point
//! sweep is claimed within a few points of model evaluation, while a
//! lone sweep still gets [`BATCH_SIZE`]-sized claims.
//!
//! Backpressure is at admission: at most `capacity` jobs may be active;
//! [`Scheduler::submit`] refuses further work with [`SubmitError::Busy`]
//! (the protocol's `busy` response) instead of queueing unboundedly.
//!
//! Iterative requests (the tuner) hold **one** admission slot across
//! many rounds: [`Scheduler::admit`] reserves the slot as an RAII
//! [`AdmissionSlot`], and [`Scheduler::submit_in`] enqueues each
//! round's point list against it without re-checking capacity — so a
//! 5-round tune counts as one job at admission while its rounds still
//! interleave claim-by-claim with everyone else's sweeps.
//!
//! Every evaluation goes through `executor::evaluate_cached_tracked`
//! against the one shared [`PointCache`], so concurrent clients
//! sweeping overlapping grids pay for each distinct point once,
//! whichever connection got there first.

use std::sync::Arc;

use chain_nn_dse::engine::Engine;
use chain_nn_dse::{DesignPoint, PointCache};
use chain_nn_obs::Registry;

pub use chain_nn_dse::engine::{
    AdmissionSlot, ClaimPolicy, JobHandle, JobResult, SubmitError, TraceRef, CONTENDED_CLAIM,
    DEFAULT_MAX_CLAIM,
};

/// Upper bound on points claimed per scheduling turn (the engine's
/// [`DEFAULT_MAX_CLAIM`]). Under the default adaptive policy this is
/// the claim size only while a single sweep owns the queue; with other
/// jobs waiting, claims shrink to [`CONTENDED_CLAIM`] points.
pub const BATCH_SIZE: usize = DEFAULT_MAX_CLAIM;

/// The daemon's scheduler: the work-assisting [`Engine`] bound to the
/// shared point cache. Construct once, hand clones of the `Arc` to the
/// worker pool and every connection handler.
pub struct Scheduler {
    engine: Engine,
    cache: Arc<PointCache>,
}

impl Scheduler {
    /// A scheduler over `cache` admitting at most `capacity` concurrent
    /// jobs, claiming adaptively up to `max_claim` points per turn.
    /// Claim metrics land in a private throwaway registry; the daemon
    /// uses [`Scheduler::with_registry`] to surface them.
    #[must_use]
    pub fn new(cache: Arc<PointCache>, capacity: usize, max_claim: usize) -> Self {
        Scheduler::with_registry(cache, capacity, max_claim, &Registry::new())
    }

    /// [`Scheduler::new`], registering the claim metrics
    /// (`sched_batch_eval_ns`, `sched_claim_points`,
    /// `sched_batches_total`, `sched_points_total`) in `registry`.
    #[must_use]
    pub fn with_registry(
        cache: Arc<PointCache>,
        capacity: usize,
        max_claim: usize,
        registry: &Registry,
    ) -> Self {
        Scheduler::with_policy(
            cache,
            capacity,
            ClaimPolicy::Adaptive {
                max: max_claim.max(1),
            },
            registry,
        )
    }

    /// [`Scheduler::with_registry`] with an explicit claim policy —
    /// [`ClaimPolicy::Fixed`] restores the pre-engine fixed-batch
    /// behavior (the comparison baseline of the mixed-traffic bench).
    #[must_use]
    pub fn with_policy(
        cache: Arc<PointCache>,
        capacity: usize,
        policy: ClaimPolicy,
        registry: &Registry,
    ) -> Self {
        Scheduler {
            engine: Engine::with_registry(capacity, policy, registry),
            cache,
        }
    }

    /// The shared cache (for stats and frontier queries).
    #[must_use]
    pub fn cache(&self) -> &PointCache {
        &self.cache
    }

    /// The admission bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.engine.capacity()
    }

    /// Jobs admitted and not yet finished.
    #[must_use]
    pub fn active_jobs(&self) -> usize {
        self.engine.active_jobs()
    }

    /// Remaining **points** across admitted unfinished jobs (claimed
    /// or not; delivered points no longer count). This changed with
    /// the work-assisting engine — it used to count whole queued jobs
    /// — so a nearly-done sweep reports its actual leftover work, not
    /// full depth (`docs/PROTOCOL.md` records the semantics change).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.engine.queue_depth()
    }

    /// Points delivered over the scheduler's lifetime; reconciles with
    /// `sched_points_total`.
    #[must_use]
    pub fn completed_points(&self) -> u64 {
        self.engine.completed_points()
    }

    /// Admits `points` as one job.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] at the admission bound;
    /// [`SubmitError::ShuttingDown`] once shutdown began.
    pub fn submit(&self, points: Vec<DesignPoint>) -> Result<JobHandle, SubmitError> {
        self.engine.submit(points)
    }

    /// [`Scheduler::submit`], tagging the job so every range a worker
    /// claims from it records a `batch` span under `trace`.
    ///
    /// # Errors
    ///
    /// Exactly [`Scheduler::submit`]'s.
    pub fn submit_traced(
        &self,
        points: Vec<DesignPoint>,
        trace: Option<TraceRef>,
    ) -> Result<JobHandle, SubmitError> {
        self.engine.submit_traced(points, trace)
    }

    /// Reserves one admission slot without submitting work yet (see
    /// [`chain_nn_dse::engine::Engine::admit`]).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Busy`] at the admission bound;
    /// [`SubmitError::ShuttingDown`] once shutdown began.
    pub fn admit(&self) -> Result<AdmissionSlot<'_>, SubmitError> {
        self.engine.admit()
    }

    /// Enqueues `points` as one job inside an already-held admission
    /// slot: no capacity check (the slot is the capacity).
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShuttingDown`] once shutdown began.
    pub fn submit_in(
        &self,
        slot: &AdmissionSlot<'_>,
        points: Vec<DesignPoint>,
    ) -> Result<JobHandle, SubmitError> {
        self.engine.submit_in(slot, points)
    }

    /// [`Scheduler::submit_in`], tagging the round's job so its batch
    /// spans land under `trace` (the tune request's root span).
    ///
    /// # Errors
    ///
    /// Exactly [`Scheduler::submit_in`]'s.
    pub fn submit_in_traced(
        &self,
        slot: &AdmissionSlot<'_>,
        points: Vec<DesignPoint>,
        trace: Option<TraceRef>,
    ) -> Result<JobHandle, SubmitError> {
        self.engine.submit_in_traced(slot, points, trace)
    }

    /// Stops admission and wakes every idle worker so the pool can
    /// drain admitted jobs — including the unclaimed remainder of
    /// partially-claimed ones — and exit.
    pub fn begin_shutdown(&self) {
        self.engine.begin_shutdown();
    }

    /// One worker: claim → evaluate → deliver, until shutdown drains
    /// the queue. Run this on `threads` std threads.
    /// ([`Scheduler::worker_loop_indexed`] additionally tags batch
    /// spans with the worker's pool index; this entry point is worker
    /// 0, for tests and single-threaded embedding.)
    pub fn worker_loop(&self) {
        self.engine.worker_loop(&self.cache);
    }

    /// [`Scheduler::worker_loop`] with an explicit pool index: claims
    /// of traced jobs record a `batch` span tagged with `worker`, so a
    /// sweep's trace renders as a per-thread timeline.
    pub fn worker_loop_indexed(&self, worker: u32) {
        self.engine.worker_loop_indexed(worker, &self.cache);
    }

    /// Executes at most one pending claim on the calling thread,
    /// returning whether there was one. Never blocks.
    pub fn run_one_claim(&self) -> bool {
        self.engine.run_one_claim(&self.cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_nn_dse::{executor, SweepSpec};
    use chain_nn_obs::Registry;
    use std::sync::Arc;
    use std::time::Duration;

    fn grid(pes: Vec<usize>) -> Vec<DesignPoint> {
        SweepSpec {
            pes,
            freqs_mhz: vec![350.0, 700.0],
            nets: vec!["lenet".into()],
            ..SweepSpec::paper_point()
        }
        .points()
    }

    fn with_workers<R>(sched: &Arc<Scheduler>, n: usize, body: impl FnOnce() -> R) -> R {
        std::thread::scope(|scope| {
            for w in 0..n {
                let s = Arc::clone(sched);
                scope.spawn(move || s.worker_loop_indexed(w as u32));
            }
            let out = body();
            sched.begin_shutdown();
            out
        })
    }

    #[test]
    fn results_come_back_in_point_order() {
        let sched = Arc::new(Scheduler::new(Arc::new(PointCache::new()), 4, 2));
        let points = grid(vec![25, 50, 100]);
        let job = with_workers(&sched, 3, || {
            sched.submit(points.clone()).unwrap().wait().unwrap()
        });
        assert_eq!(job.outcomes.len(), points.len());
        assert_eq!(job.cache_misses, points.len() as u64);
        assert_eq!(job.cache_hits, 0);
        // Same as the reference executor.
        let reference = executor::run(&points, 1, &PointCache::new()).unwrap();
        assert_eq!(job.outcomes, reference);
    }

    #[test]
    fn concurrent_jobs_share_the_cache() {
        let cache = Arc::new(PointCache::new());
        let sched = Arc::new(Scheduler::new(Arc::clone(&cache), 4, 4));
        let a = grid(vec![25, 50, 100]);
        let b = grid(vec![50, 100, 200]); // overlaps on 50 and 100
        with_workers(&sched, 2, || {
            std::thread::scope(|scope| {
                let sa = Arc::clone(&sched);
                let pa = a.clone();
                let ha = scope.spawn(move || sa.submit(pa).unwrap().wait().unwrap());
                let sb = Arc::clone(&sched);
                let pb = b.clone();
                let hb = scope.spawn(move || sb.submit(pb).unwrap().wait().unwrap());
                ha.join().unwrap();
                hb.join().unwrap();
            });
        });
        let stats = cache.stats();
        // 8 distinct points across both grids; 12 total lookups. The
        // overlap may race (both clients miss the same point before
        // either inserts), so distinct misses is a lower bound — but
        // combined misses must beat two standalone runs (6 + 6).
        assert!(stats.misses >= 8);
        assert!(
            stats.misses < 12,
            "overlapping clients must share: {stats:?}"
        );
        assert_eq!(stats.hits + stats.misses, 12);
    }

    #[test]
    fn admission_bound_returns_busy() {
        // No workers: submitted jobs just sit there.
        let sched = Scheduler::new(Arc::new(PointCache::new()), 2, 8);
        let p = grid(vec![25]);
        let _a = sched.submit(p.clone()).unwrap();
        let _b = sched.submit(p.clone()).unwrap();
        match sched.submit(p.clone()) {
            Err(SubmitError::Busy { active, capacity }) => {
                assert_eq!((active, capacity), (2, 2));
            }
            other => panic!("expected busy, got {other:?}"),
        }
        assert_eq!(sched.active_jobs(), 2);
        // Depth is in points now: two untouched 2-point jobs.
        assert_eq!(sched.queue_depth(), 4);
    }

    #[test]
    fn big_job_does_not_starve_small_one() {
        // One worker: with work-assisting claims the small job is
        // picked up within one rotation turn even though a big job was
        // admitted first. (Timing-free check: both complete.)
        let sched = Arc::new(Scheduler::new(Arc::new(PointCache::new()), 4, 1));
        let big = grid((1..=40).map(|i| i * 25).collect());
        let small = grid(vec![25]);
        with_workers(&sched, 1, || {
            let hb = sched.submit(big.clone()).unwrap();
            let hs = sched.submit(small.clone()).unwrap();
            let small_out = hs.wait().unwrap();
            assert_eq!(small_out.outcomes.len(), small.len());
            let big_out = hb.wait().unwrap();
            assert_eq!(big_out.outcomes.len(), big.len());
        });
    }

    #[test]
    fn spec_error_fails_the_job_not_the_scheduler() {
        let sched = Arc::new(Scheduler::new(Arc::new(PointCache::new()), 4, 2));
        let mut bad = grid(vec![25, 50]);
        bad[3].net = "notanet".into();
        let good = grid(vec![100]);
        with_workers(&sched, 2, || {
            assert!(sched.submit(bad.clone()).unwrap().wait().is_err());
            // The scheduler survives and serves the next job.
            let out = sched.submit(good.clone()).unwrap().wait().unwrap();
            assert_eq!(out.outcomes.len(), good.len());
        });
        assert_eq!(sched.active_jobs(), 0);
    }

    #[test]
    fn shutdown_drains_admitted_work_then_refuses() {
        let sched = Arc::new(Scheduler::new(Arc::new(PointCache::new()), 4, 2));
        let points = grid(vec![25, 50, 100]);
        std::thread::scope(|scope| {
            let s = Arc::clone(&sched);
            scope.spawn(move || s.worker_loop());
            let handle = sched.submit(points.clone()).unwrap();
            sched.begin_shutdown();
            // Already-admitted work completes...
            assert_eq!(handle.wait().unwrap().outcomes.len(), points.len());
            // ...new work does not get in.
            assert_eq!(
                sched.submit(points.clone()).unwrap_err(),
                SubmitError::ShuttingDown
            );
        });
    }

    #[test]
    fn shutdown_drains_a_job_claimed_mid_way() {
        // The drain-mid-claim regression: part of a job is already
        // claimed and delivered when shutdown begins, with no worker
        // pool running. Workers joining afterwards must finish the
        // unclaimed remainder — no deadlock, no dropped points.
        let sched = Arc::new(Scheduler::with_policy(
            Arc::new(PointCache::new()),
            4,
            ClaimPolicy::Fixed(8),
            &Registry::new(),
        ));
        let points = grid((1..=20).map(|i| i * 25).collect());
        let handle = sched.submit(points.clone()).unwrap();
        assert!(sched.run_one_claim()); // 8 of 40 delivered
        assert_eq!(sched.queue_depth(), points.len() - 8);
        sched.begin_shutdown();
        std::thread::scope(|scope| {
            for w in 0..2 {
                let s = Arc::clone(&sched);
                scope.spawn(move || s.worker_loop_indexed(w));
            }
        });
        let job = handle.wait().unwrap();
        assert_eq!(job.outcomes.len(), points.len());
        assert_eq!(sched.queue_depth(), 0);
        assert_eq!(sched.active_jobs(), 0);
    }

    #[test]
    fn queue_depth_reports_remaining_points_not_jobs() {
        // The depth-semantics regression: a nearly-done job must not
        // report full depth. No workers; claims are stepped by hand.
        let sched = Scheduler::with_policy(
            Arc::new(PointCache::new()),
            4,
            ClaimPolicy::Fixed(8),
            &Registry::new(),
        );
        let points = grid((1..=16).map(|i| i * 25).collect()); // 32 points
        let handle = sched.submit(points).unwrap();
        assert_eq!(sched.queue_depth(), 32);
        assert!(sched.run_one_claim());
        assert_eq!(sched.queue_depth(), 24, "delivered points leave the depth");
        while sched.run_one_claim() {}
        assert_eq!(sched.queue_depth(), 0);
        handle.wait().unwrap();
    }

    #[test]
    fn admission_slot_spans_rounds_and_counts_once() {
        let sched = Arc::new(Scheduler::new(Arc::new(PointCache::new()), 2, 2));
        with_workers(&sched, 2, || {
            let slot = sched.admit().unwrap();
            assert_eq!(sched.active_jobs(), 1);
            // Several rounds under the one slot: active never grows.
            for pes in [25, 50, 100] {
                let out = sched
                    .submit_in(&slot, grid(vec![pes]))
                    .unwrap()
                    .wait()
                    .unwrap();
                assert_eq!(out.outcomes.len(), 2);
                assert_eq!(sched.active_jobs(), 1);
            }
            // A plain submit still fits beside the slot; a second slot
            // at capacity does not.
            let h = sched.submit(grid(vec![200])).unwrap();
            h.wait().unwrap();
            let second = sched.admit().unwrap();
            assert!(matches!(sched.admit(), Err(SubmitError::Busy { .. })));
            drop(second);
            drop(slot);
        });
        assert_eq!(sched.active_jobs(), 0);
    }

    #[test]
    fn slot_rounds_refuse_after_shutdown() {
        let sched = Arc::new(Scheduler::new(Arc::new(PointCache::new()), 2, 2));
        let slot = sched.admit().unwrap();
        sched.begin_shutdown();
        assert_eq!(
            sched.submit_in(&slot, grid(vec![25])).unwrap_err(),
            SubmitError::ShuttingDown
        );
        drop(slot);
        assert_eq!(sched.active_jobs(), 0);
    }

    #[test]
    fn empty_round_in_slot_completes_immediately() {
        let sched = Scheduler::new(Arc::new(PointCache::new()), 2, 2);
        let slot = sched.admit().unwrap();
        let out = sched.submit_in(&slot, Vec::new()).unwrap().wait().unwrap();
        assert!(out.outcomes.is_empty());
        drop(slot);
    }

    #[test]
    fn job_timing_separates_queue_wait_from_execute() {
        let sched = Arc::new(Scheduler::new(Arc::new(PointCache::new()), 4, 2));
        let points = grid(vec![25, 50, 100]);
        let (job, empty) = with_workers(&sched, 1, || {
            let job = sched.submit(points.clone()).unwrap().wait().unwrap();
            // An empty job is never claimed: both stages are zero.
            let empty = sched.submit(Vec::new()).unwrap().wait().unwrap();
            (job, empty)
        });
        // The job was actually claimed and evaluated, so execution took
        // measurable time; both stages are reported independently.
        assert!(job.execute > Duration::ZERO);
        assert!(job.queue_wait + job.execute > Duration::ZERO);
        assert_eq!(empty.queue_wait, Duration::ZERO);
        assert_eq!(empty.execute, Duration::ZERO);
    }

    #[test]
    fn scheduler_registers_batch_metrics() {
        let registry = Registry::new();
        let sched = Arc::new(Scheduler::with_policy(
            Arc::new(PointCache::new()),
            4,
            ClaimPolicy::Fixed(2),
            &registry,
        ));
        let points = grid(vec![25, 50, 100]);
        with_workers(&sched, 2, || {
            sched.submit(points.clone()).unwrap().wait().unwrap()
        });
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("sched_points_total", &[]),
            Some(points.len() as u64)
        );
        // 6 points at fixed claim size 2 is 3 claims (any worker split).
        assert_eq!(snap.counter("sched_batches_total", &[]), Some(3));
        let h = snap.histogram("sched_batch_eval_ns", &[]).unwrap();
        assert_eq!(h.count, 3);
        assert!(h.sum > 0);
        // The claim-size histogram mirrors the split: 3 claims of 2.
        let claims = snap.histogram("sched_claim_points", &[]).unwrap();
        assert_eq!((claims.count, claims.sum), (3, 6));
    }

    #[test]
    fn empty_job_completes_immediately() {
        let sched = Scheduler::new(Arc::new(PointCache::new()), 4, 2);
        // No workers exist; an empty job must not wait on them.
        let out = sched.submit(Vec::new()).unwrap().wait().unwrap();
        assert!(out.outcomes.is_empty());
        assert_eq!(sched.active_jobs(), 0);
    }
}
