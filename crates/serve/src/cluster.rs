//! The cluster coordinator: one daemon that speaks the ordinary
//! line-delimited protocol on the front and fans work out to a fleet of
//! shard daemons on the back.
//!
//! Routing is by content hash: `eval` goes to the shard that owns
//! `point.content_hash() % shards`, sweeps are split into
//! hash-partitioned sub-sweeps (one per shard, carrying global grid
//! indices), whole-cache frontiers are gathered and re-filtered, and
//! tune rounds run through a scatter-gather [`BatchFnEvaluator`] that
//! partitions each round's expanded points the same way. Because every
//! shard evaluates the same pure model stack and partitions are merged
//! by global index (see [`pareto::merge_candidates`] for the proof),
//! the coordinator's merged replies are byte-identical to a single
//! daemon's — at any shard count.
//!
//! Failure policy: a shard that refuses with `busy` is retried a few
//! times with a short backoff; a shard that is unreachable (or still
//! busy after the retries) is marked **degraded**. `eval` and tune
//! rounds re-route the affected points to the next healthy shard
//! (the models are pure, so any shard computes the same answer);
//! sweep and frontier replies cover the surviving partitions and carry
//! `"degraded":true` so the client knows the merge is partial. Shard
//! connections are re-established on use, so a restarted shard
//! (warm from its own `--cache-file`) rejoins without coordinator
//! restart.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use chain_nn_dse::{pareto, DesignPoint, PointOutcome, SweepPart, SweepSpec};
use chain_nn_obs::{Counter, Gauge, Registry};
use chain_nn_tuner::{frontier, tune, BatchFnEvaluator, TuneError};

use crate::client::{Client, ClientError};
use crate::protocol::{
    FrontierEntry, FrontierStepSummary, Request, Response, ServerStats, ShardStat, SweepSummary,
    TuneSummary,
};
use crate::server::LineSink;

/// Cap on one request line, matching the shard daemon's bound.
const MAX_REQUEST_BYTES: u64 = 1 << 20;

/// How many times a `busy` shard is retried before it is degraded.
const BUSY_RETRIES: u32 = 3;

/// Backoff between busy retries. Short: shard queues drain in
/// milliseconds under the bench workloads this daemon fronts.
const BUSY_BACKOFF: Duration = Duration::from_millis(20);

/// How the coordinator is set up. `Default` binds an ephemeral
/// loopback port with no shards (useful only in tests; real configs
/// name at least one shard address).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Bind address of the coordinator's own listener.
    pub host: String,
    /// TCP port; 0 asks the OS for an ephemeral one.
    pub port: u16,
    /// Shard daemon addresses (`host:port`), in routing order —
    /// shard `i` owns the points with `content_hash() % len == i`.
    pub shards: Vec<String>,
    /// Connection bound on the coordinator's own listener.
    pub max_connections: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            host: "127.0.0.1".to_owned(),
            port: 0,
            shards: Vec::new(),
            max_connections: 64,
        }
    }
}

/// What one coordinator lifetime did, returned by [`Coordinator::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterReport {
    /// Requests served across all client connections.
    pub requests: u64,
}

/// Health and traffic record of one shard, shared by all sessions.
struct ShardSlot {
    addr: String,
    /// Requests the coordinator issued to this shard
    /// (`cluster_shard_requests_total{shard=…}`).
    requests: Arc<Counter>,
    /// Transport failures and exhausted-busy refusals
    /// (`cluster_shard_errors_total{shard=…}`).
    errors: Arc<Counter>,
    /// Degraded marker (`cluster_shard_degraded{shard=…}`): set when
    /// the shard was unreachable or persistently busy at last contact,
    /// cleared by the next successful call.
    degraded: AtomicBool,
    degraded_gauge: Arc<Gauge>,
}

impl ShardSlot {
    fn mark_ok(&self) {
        self.degraded.store(false, Ordering::Relaxed);
        self.degraded_gauge.set(0.0);
    }

    fn mark_degraded(&self) {
        self.errors.inc();
        self.degraded.store(true, Ordering::Relaxed);
        self.degraded_gauge.set(1.0);
    }

    fn stat(&self) -> ShardStat {
        ShardStat {
            addr: self.addr.clone(),
            requests: self.requests.get(),
            errors: self.errors.get(),
            degraded: self.degraded.load(Ordering::Relaxed),
        }
    }
}

struct Shared {
    shards: Vec<ShardSlot>,
    requests: AtomicU64,
    shutdown: AtomicBool,
    connections: AtomicUsize,
    max_connections: usize,
    registry: Registry,
}

/// One session's connection to one shard: lazily connected, dropped on
/// failure and re-established on the next use — which is exactly what
/// lets a restarted shard rejoin mid-session.
struct ShardConn<'a> {
    slot: &'a ShardSlot,
    client: Option<Client>,
}

/// Why a shard call failed terminally (after reconnect/busy retries).
#[derive(Debug)]
enum ShardError {
    /// Unreachable, mid-call transport failure, or unparseable reply.
    Unreachable,
    /// Still `busy` after [`BUSY_RETRIES`] attempts.
    Busy,
}

impl ShardConn<'_> {
    fn new(slot: &ShardSlot) -> ShardConn<'_> {
        ShardConn { slot, client: None }
    }

    /// One request/reply round trip on this session's connection,
    /// reconnecting once if the connection is stale (or was never
    /// opened) and retrying `busy` refusals with backoff. Marks the
    /// slot degraded on terminal failure, healthy on success.
    fn call(&mut self, request: &Request) -> Result<Response, ShardError> {
        self.slot.requests.inc();
        let mut busy_left = BUSY_RETRIES;
        // Two connection attempts: the held connection (which may be a
        // stale socket to a shard that restarted) and one fresh one.
        let mut connects_left = 2;
        loop {
            if self.client.is_none() {
                if connects_left == 0 {
                    self.slot.mark_degraded();
                    return Err(ShardError::Unreachable);
                }
                connects_left -= 1;
                match Client::connect(self.slot.addr.as_str()) {
                    Ok(c) => self.client = Some(c),
                    Err(_) => continue,
                }
            }
            let client = self.client.as_mut().expect("connection just ensured");
            match client.request(request) {
                Err(ClientError::Io(_)) => {
                    // Stale or dead connection: drop it and let the
                    // loop try one fresh connect.
                    self.client = None;
                }
                Err(ClientError::Protocol(_)) => {
                    self.client = None;
                    self.slot.mark_degraded();
                    return Err(ShardError::Unreachable);
                }
                Ok(Response::Busy { .. }) => {
                    if busy_left == 0 {
                        self.slot.mark_degraded();
                        return Err(ShardError::Busy);
                    }
                    busy_left -= 1;
                    std::thread::sleep(BUSY_BACKOFF);
                }
                Ok(response) => {
                    self.slot.mark_ok();
                    return Ok(response);
                }
            }
        }
    }
}

/// Splits `points` into per-shard batches by content hash, remembering
/// each point's position so gathered outcomes reassemble in order.
fn partition_points(points: &[DesignPoint], shards: usize) -> Vec<Vec<(usize, DesignPoint)>> {
    let mut parts: Vec<Vec<(usize, DesignPoint)>> = vec![Vec::new(); shards];
    for (i, p) in points.iter().enumerate() {
        parts[(p.content_hash() % shards as u64) as usize].push((i, p.clone()));
    }
    parts
}

/// Runs `call` against every shard concurrently (one thread per shard,
/// each owning that shard's session connection) and returns the
/// replies in shard order.
fn fan_out<'env, T: Send + 'env>(
    conns: &mut [ShardConn<'env>],
    call: impl Fn(usize, &mut ShardConn<'env>) -> T + Sync,
) -> Vec<T> {
    let call = &call;
    std::thread::scope(|scope| {
        let handles: Vec<_> = conns
            .iter_mut()
            .enumerate()
            .map(|(i, conn)| scope.spawn(move || call(i, conn)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard fan-out thread panicked"))
            .collect()
    })
}

/// Evaluates `points` across the cluster: hash-partitioned `eval_batch`
/// per shard, failed shards re-routed to the healthy ones, outcomes
/// reassembled in input order. Returns `(outcomes, hits, misses,
/// degraded)`; `Err` only when some points could not be evaluated by
/// *any* shard.
fn scatter_gather(
    conns: &mut [ShardConn<'_>],
    points: &[DesignPoint],
) -> Result<(Vec<PointOutcome>, u64, u64, bool), String> {
    let shards = conns.len();
    let parts = partition_points(points, shards);
    let mut slots: Vec<Option<PointOutcome>> = vec![None; points.len()];
    let (mut hits, mut misses) = (0u64, 0u64);
    let mut degraded = false;
    // First pass: every shard gets its own partition, concurrently.
    let replies = fan_out(conns, |i, conn| {
        if parts[i].is_empty() {
            return None;
        }
        let batch: Vec<DesignPoint> = parts[i].iter().map(|(_, p)| p.clone()).collect();
        Some(conn.call(&Request::EvalBatch(batch)))
    });
    let mut strays: Vec<(usize, DesignPoint)> = Vec::new();
    for (part, reply) in parts.into_iter().zip(replies) {
        match reply {
            None => {}
            Some(Ok(Response::EvalBatch {
                outcomes,
                cache_hits,
                cache_misses,
            })) if outcomes.len() == part.len() => {
                hits += cache_hits;
                misses += cache_misses;
                for ((idx, _), outcome) in part.into_iter().zip(outcomes) {
                    slots[idx] = Some(outcome);
                }
            }
            Some(_) => {
                // Transport failure, busy exhaustion, or a malformed
                // reply: every point of this partition is re-routed.
                degraded = true;
                strays.extend(part);
            }
        }
    }
    // Re-route pass: surviving shards take the strays in routing order.
    // Sequential on purpose — this is the degraded path.
    if !strays.is_empty() {
        let batch: Vec<DesignPoint> = strays.iter().map(|(_, p)| p.clone()).collect();
        let mut served = false;
        for conn in conns.iter_mut() {
            if conn.slot.degraded.load(Ordering::Relaxed) {
                continue;
            }
            if let Ok(Response::EvalBatch {
                outcomes,
                cache_hits,
                cache_misses,
            }) = conn.call(&Request::EvalBatch(batch.clone()))
            {
                if outcomes.len() == batch.len() {
                    hits += cache_hits;
                    misses += cache_misses;
                    for ((idx, _), outcome) in strays.iter().zip(outcomes) {
                        slots[*idx] = Some(outcome);
                    }
                    served = true;
                    break;
                }
            }
        }
        if !served {
            return Err("no shard could evaluate the batch".to_owned());
        }
    }
    let outcomes = slots
        .into_iter()
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| "shard replies left points unanswered".to_owned())?;
    Ok((outcomes, hits, misses, degraded))
}

/// The cluster coordinator daemon.
pub struct Coordinator {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Coordinator {
    /// Binds the coordinator's listener. Shards are *not* contacted
    /// here — connections are per-session and on demand, so shards may
    /// come up after the coordinator (and restart under it).
    ///
    /// # Errors
    ///
    /// Bind failures, or an empty shard list.
    pub fn bind(config: ClusterConfig) -> std::io::Result<Coordinator> {
        if config.shards.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a coordinator needs at least one shard address",
            ));
        }
        let listener = TcpListener::bind((config.host.as_str(), config.port))?;
        let registry = Registry::new();
        let shards = config
            .shards
            .iter()
            .map(|addr| {
                let labels: &[(&str, &str)] = &[("shard", addr.as_str())];
                ShardSlot {
                    addr: addr.clone(),
                    requests: registry.counter_with("cluster_shard_requests_total", labels),
                    errors: registry.counter_with("cluster_shard_errors_total", labels),
                    degraded: AtomicBool::new(false),
                    degraded_gauge: registry.gauge_with("cluster_shard_degraded", labels),
                }
            })
            .collect();
        Ok(Coordinator {
            listener,
            shared: Arc::new(Shared {
                shards,
                requests: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                connections: AtomicUsize::new(0),
                max_connections: config.max_connections.max(1),
                registry,
            }),
        })
    }

    /// The actually-bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `shutdown` request arrives (which is also
    /// forwarded to every shard), then returns the lifetime report.
    ///
    /// # Errors
    ///
    /// Fatal listener failures; per-connection I/O errors only end
    /// that session.
    pub fn run(self) -> std::io::Result<ClusterReport> {
        self.listener.set_nonblocking(true)?;
        let shared = &self.shared;
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _addr)) => {
                    // Same as the shard daemon: pipelined replies are
                    // many small writes; Nagle would stall them on the
                    // peer's delayed ACKs.
                    stream.set_nodelay(true).ok();
                    let open = shared.connections.load(Ordering::SeqCst);
                    if open >= shared.max_connections {
                        let mut wire = Response::Busy {
                            active: open,
                            capacity: shared.max_connections,
                        }
                        .encode();
                        wire.push('\n');
                        let mut writer = BufWriter::new(stream);
                        let _ = writer
                            .write_all(wire.as_bytes())
                            .and_then(|()| writer.flush());
                        continue;
                    }
                    shared.connections.fetch_add(1, Ordering::SeqCst);
                    let s = Arc::clone(shared);
                    std::thread::spawn(move || {
                        serve_session(stream, &s);
                        s.connections.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(ClusterReport {
            requests: shared.requests.load(Ordering::Relaxed),
        })
    }
}

/// One client session on the coordinator: line in, merged line(s) out.
/// Each session holds its own lazily-connected shard fleet, so
/// concurrent client sessions fan out independently.
fn serve_session(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(peer_read) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(peer_read);
    let mut writer = BufWriter::new(stream);
    let mut conns: Vec<ShardConn<'_>> = shared.shards.iter().map(ShardConn::new).collect();
    let mut line = String::new();
    loop {
        line.clear();
        match (&mut reader).take(MAX_REQUEST_BYTES).read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) if line.len() as u64 >= MAX_REQUEST_BYTES && !line.ends_with('\n') => {
                let mut refusal = Response::Error {
                    message: format!("request exceeds {MAX_REQUEST_BYTES} bytes"),
                }
                .encode();
                refusal.push('\n');
                let _ = writer
                    .write_all(refusal.as_bytes())
                    .and_then(|()| writer.flush());
                return;
            }
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let (request, meta) = match Request::decode_with_meta(trimmed) {
            Ok(pair) => pair,
            Err(e) => {
                let reply = Response::Error {
                    message: e.to_string(),
                };
                if LineSink::new(&mut writer).send(&reply).is_err() {
                    return;
                }
                continue;
            }
        };
        let mut sink = LineSink::with_id(&mut writer, meta.req_id);
        let stop = matches!(request, Request::Shutdown);
        if handle_request(request, shared, &mut conns, &mut sink).is_err() {
            return; // client went away mid-reply
        }
        if stop {
            shared.shutdown.store(true, Ordering::SeqCst);
            return;
        }
    }
}

/// Routes one request across the shard fleet and writes the merged
/// reply (or streamed lines) through `sink`. `Err` means the *client*
/// connection died; shard failures degrade the reply instead.
fn handle_request(
    request: Request,
    shared: &Arc<Shared>,
    conns: &mut [ShardConn<'_>],
    sink: &mut LineSink<'_>,
) -> std::io::Result<()> {
    match request {
        Request::Eval(point) => {
            // Route to the owner; on failure walk the other shards —
            // the models are pure, so any shard computes the same
            // reply (it just caches it off-partition).
            let shards = conns.len();
            let home = (point.content_hash() % shards as u64) as usize;
            let mut reply = None;
            for step in 0..shards {
                let conn = &mut conns[(home + step) % shards];
                if step > 0 && conn.slot.degraded.load(Ordering::Relaxed) {
                    continue;
                }
                if let Ok(r) = conn.call(&Request::Eval(point.clone())) {
                    reply = Some(r);
                    break;
                }
            }
            sink.send(&reply.unwrap_or_else(|| Response::Error {
                message: "no shard could evaluate the point".to_owned(),
            }))
        }
        Request::EvalBatch(points) => {
            let reply = match scatter_gather(conns, &points) {
                Ok((outcomes, cache_hits, cache_misses, _degraded)) => Response::EvalBatch {
                    outcomes,
                    cache_hits,
                    cache_misses,
                },
                Err(message) => Response::Error { message },
            };
            sink.send(&reply)
        }
        Request::Sweep(spec) => sink.send(&merged_sweep(conns, &spec)),
        Request::Tune(request) => {
            let mut degraded = false;
            let result = {
                let degraded = &mut degraded;
                let mut evaluator = BatchFnEvaluator::new(|points: &[DesignPoint]| {
                    let (outcomes, hits, misses, part_degraded) =
                        scatter_gather(conns, points).map_err(TuneError::Backend)?;
                    *degraded |= part_degraded;
                    Ok((outcomes, hits, misses))
                });
                tune(&request, &mut evaluator)
            };
            let reply = match result {
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
                Ok(report) => Response::Tune(TuneSummary {
                    best: report.best,
                    evaluations: report.evaluations,
                    cache_hits: report.cache_hits,
                    cache_misses: report.cache_misses,
                    rounds: report.rounds,
                    exhaustive_points: report.exhaustive_points,
                    degraded,
                }),
            };
            sink.send(&reply)
        }
        Request::TuneFrontier(request) => {
            let mut sink_dead = false;
            let result = {
                let mut evaluator = BatchFnEvaluator::new(|points: &[DesignPoint]| {
                    let (outcomes, hits, misses, _degraded) =
                        scatter_gather(conns, points).map_err(TuneError::Backend)?;
                    Ok((outcomes, hits, misses))
                });
                let steps = request.sweep.values.len();
                frontier::tune_frontier(&request, &mut evaluator, |i, step| {
                    let line = Response::TuneFrontierStep(FrontierStepSummary {
                        step: i,
                        steps,
                        result: step.clone(),
                    });
                    sink.send(&line).map_err(|_| {
                        sink_dead = true;
                        TuneError::Backend("client closed the stream".to_owned())
                    })
                })
            };
            match result {
                Ok(report) => sink.send(&Response::TuneFrontierDone(
                    crate::protocol::FrontierDoneSummary {
                        steps: report.steps.len(),
                        frontier: report.frontier,
                        evaluations: report.evaluations,
                        standalone_evaluations: report.standalone_evaluations,
                        cache_hits: report.cache_hits,
                        cache_misses: report.cache_misses,
                        exhaustive_points: report.exhaustive_points,
                    },
                )),
                Err(_) if sink_dead => Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "client closed the stream",
                )),
                Err(e) => sink.send(&Response::Error {
                    message: e.to_string(),
                }),
            }
        }
        Request::Frontier { dims, sqnr, stream } => {
            let (entries, degraded) = merged_frontier(conns, dims, sqnr);
            if stream {
                let total = entries.len();
                for entry in entries {
                    sink.send(&Response::FrontierStreamEntry { entry })?;
                }
                sink.send(&Response::FrontierStreamDone {
                    dims,
                    entries: total,
                    degraded,
                })
            } else {
                sink.send(&Response::Frontier {
                    dims,
                    entries,
                    degraded,
                })
            }
        }
        Request::Stats => sink.send(&merged_stats(conns, shared)),
        Request::Metrics => {
            let snapshot = shared.registry.snapshot();
            sink.send(&Response::Metrics { snapshot })
        }
        Request::Shutdown => {
            // Best effort: shards that are down stay down.
            for conn in conns.iter_mut() {
                let _ = conn.call(&Request::Shutdown);
            }
            sink.send(&Response::Shutdown)
        }
        Request::MetricsHistory
        | Request::Watch { .. }
        | Request::TraceQuery { .. }
        | Request::Dump => sink.send(&Response::Error {
            message: "not supported by the cluster coordinator; ask a shard directly".to_owned(),
        }),
    }
}

/// Fans one sweep out as hash-partitioned sub-sweeps and merges the
/// replies: counters summed, frontiers re-filtered from the shards'
/// candidate sets (global indices, so the result is byte-identical to
/// a single daemon's — see [`pareto::merge_candidates`]).
fn merged_sweep(conns: &mut [ShardConn<'_>], spec: &SweepSpec) -> Response {
    if spec.part.is_some() {
        return Response::Error {
            message: "the coordinator assigns sweep partitions itself; send an unpartitioned spec"
                .to_owned(),
        };
    }
    if let Err(e) = spec.validate() {
        return Response::Error {
            message: e.to_string(),
        };
    }
    let shards = conns.len();
    let start = Instant::now();
    let replies = fan_out(conns, |i, conn| {
        let mut part = spec.clone();
        part.part = Some(SweepPart {
            index: i,
            of: shards,
        });
        conn.call(&Request::Sweep(part))
    });
    let mut summary = SweepSummary {
        points: 0,
        feasible: 0,
        cache_hits: 0,
        cache_misses: 0,
        wall_ms: 0.0,
        frontier_3d: Vec::new(),
        frontier_sqnr: Vec::new(),
        candidates: Vec::new(),
        degraded: false,
    };
    let mut parts: Vec<Vec<(usize, pareto::Objectives)>> = Vec::new();
    let mut shard_error = None;
    let mut answered = 0usize;
    for reply in replies {
        match reply {
            Ok(Response::Sweep(s)) => {
                answered += 1;
                summary.points += s.points;
                summary.feasible += s.feasible;
                summary.cache_hits += s.cache_hits;
                summary.cache_misses += s.cache_misses;
                summary.degraded |= s.degraded;
                parts.push(s.candidates);
            }
            Ok(Response::Error { message }) => shard_error = Some(message),
            Ok(_) | Err(_) => summary.degraded = true,
        }
    }
    if answered == 0 {
        // Nothing merged: a spec the shards reject is an error reply
        // (every shard said the same thing); an unreachable fleet too.
        return Response::Error {
            message: shard_error.unwrap_or_else(|| "no shard answered the sweep".to_owned()),
        };
    }
    summary.degraded |= answered < conns.len();
    summary.frontier_3d = pareto::merge_frontier_3d(&parts);
    summary.frontier_sqnr = pareto::merge_frontier_accuracy(&parts);
    summary.wall_ms = start.elapsed().as_secs_f64() * 1e3;
    Response::Sweep(summary)
}

/// Gathers every shard's whole-cache frontier and re-filters the union.
/// Entries are sorted by canonical point bytes before filtering — the
/// same deterministic order a single daemon's cache iterates in — and
/// identical entries (a point that was re-routed during degradation
/// and evaluated on two shards) are deduplicated first.
fn merged_frontier(
    conns: &mut [ShardConn<'_>],
    dims: u8,
    sqnr: bool,
) -> (Vec<FrontierEntry>, bool) {
    let replies = fan_out(conns, |_, conn| {
        conn.call(&Request::Frontier {
            dims,
            sqnr,
            stream: false,
        })
    });
    let mut degraded = false;
    let mut all: Vec<FrontierEntry> = Vec::new();
    for reply in replies {
        match reply {
            Ok(Response::Frontier {
                entries,
                degraded: d,
                ..
            }) => {
                degraded |= d;
                all.extend(entries);
            }
            _ => degraded = true,
        }
    }
    all.sort_by_key(|e| e.point.canonical_bytes());
    all.dedup_by(|a, b| a.point == b.point);
    let objectives: Vec<(usize, pareto::Objectives)> = all
        .iter()
        .enumerate()
        .map(|(i, e)| (i, pareto::Objectives::from(&e.result)))
        .collect();
    let keep = if dims == 2 {
        pareto::frontier_2d(&objectives)
    } else if sqnr {
        pareto::frontier_accuracy(&objectives)
    } else {
        pareto::frontier_3d(&objectives)
    };
    (keep.into_iter().map(|i| all[i].clone()).collect(), degraded)
}

/// Aggregates shard `stats` into one fleet view, with the per-shard
/// health list attached.
fn merged_stats(conns: &mut [ShardConn<'_>], shared: &Shared) -> Response {
    let replies = fan_out(conns, |_, conn| conn.call(&Request::Stats));
    let mut stats = ServerStats {
        cached_points: 0,
        hits: 0,
        misses: 0,
        hit_rate: 0.0,
        requests: shared.requests.load(Ordering::Relaxed),
        active_jobs: 0,
        queue_capacity: 0,
        open_connections: shared.connections.load(Ordering::SeqCst),
        max_connections: shared.max_connections,
        threads: 0,
        loaded_from_disk: 0,
        persistent: false,
        uptime_s: shared.registry.uptime().as_secs_f64(),
        inflight_requests: 0,
        queue_depth: 0,
        slos: 0,
        slo_breach_ticks: 0,
        shards: Vec::new(),
    };
    for reply in replies {
        if let Ok(Response::Stats(s)) = reply {
            stats.cached_points += s.cached_points;
            stats.hits += s.hits;
            stats.misses += s.misses;
            stats.active_jobs += s.active_jobs;
            stats.queue_capacity += s.queue_capacity;
            stats.threads += s.threads;
            stats.loaded_from_disk += s.loaded_from_disk;
            stats.persistent |= s.persistent;
            stats.inflight_requests += s.inflight_requests;
            stats.queue_depth += s.queue_depth;
            stats.slos += s.slos;
            stats.slo_breach_ticks += s.slo_breach_ticks;
        }
    }
    let looked_up = stats.hits + stats.misses;
    if looked_up > 0 {
        stats.hit_rate = stats.hits as f64 / looked_up as f64;
    }
    stats.shards = shared.shards.iter().map(ShardSlot::stat).collect();
    Response::Stats(stats)
}
