//! Blocking client for the explorer daemon.
//!
//! One [`Client`] is one TCP session; requests are answered in order on
//! the same connection, so a client is also the natural unit of
//! "sweeps that share a session". Used by `chain-nn query` and by the
//! integration tests; anything that speaks newline-delimited JSON (a
//! shell with `nc`, for instance) interoperates.

use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use chain_nn_dse::{DesignPoint, PointOutcome, SweepSpec};
use chain_nn_obs::trace::TraceContext;

use crate::protocol::{ProtocolError, Request, Response};

/// Client-side failure: transport or protocol.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write, EOF mid-reply).
    Io(std::io::Error),
    /// The daemon answered something unparseable.
    Protocol(ProtocolError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

/// One connection to a running daemon.
///
/// Every typed request carries a monotonically increasing pipelining
/// id (`"req"`), which the daemon echoes on every reply line it
/// produces for that request. Replies still arrive in request order
/// (the daemon serves a session sequentially), but the ids let the
/// client *verify* the attribution — and discard stale lines of an
/// abandoned stream — instead of assuming strict request/reply
/// alternation. [`Client::pipeline`] sends without flushing or
/// waiting, so N requests can be in flight before the first
/// [`Client::recv_reply`]; on loopback that amortizes the write/read
/// syscall round trip across the whole batch.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// When set, every request this client sends carries this trace
    /// context, so the daemon files the request's spans under the
    /// caller's trace id instead of assigning its own.
    trace: Option<TraceContext>,
    /// The next pipelining id. Starts at 1 so 0 never appears on the
    /// wire (and a daemon that echoes nothing stays distinguishable).
    next_req: u64,
}

impl Client {
    /// Connects to `addr` (anything `ToSocketAddrs`, e.g.
    /// `"127.0.0.1:7878"`).
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok(); // request/reply, not bulk
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            trace: None,
            next_req: 1,
        })
    }

    /// Sets (or clears) the trace context attached to every subsequent
    /// request on this session. Propagating one context across several
    /// requests stitches them into a single causal trace the daemon can
    /// answer `trace_query` for.
    pub fn set_trace(&mut self, ctx: Option<TraceContext>) {
        self.trace = ctx;
    }

    /// Sends one request and blocks for its reply.
    ///
    /// # Errors
    ///
    /// Transport failures, or a reply that does not parse. A `busy` or
    /// `error` reply is a successful round trip — inspect the
    /// [`Response`].
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        let id = self.pipeline(request)?;
        self.recv_reply(id)
    }

    /// Queues one request without flushing or waiting, returning its
    /// pipelining id. Send as many as you like, then collect the
    /// replies **in the same order** with [`Client::recv_reply`] — the
    /// daemon serves a session sequentially, so out-of-order collection
    /// would deadlock on a reply that has not been produced yet.
    ///
    /// # Errors
    ///
    /// Transport failures while buffering the line.
    pub fn pipeline(&mut self, request: &Request) -> Result<u64, ClientError> {
        let id = self.next_req;
        self.next_req += 1;
        let mut wire = request.encode_with_meta(self.trace, Some(id));
        wire.push('\n');
        self.writer.write_all(wire.as_bytes())?;
        Ok(id)
    }

    /// Flushes any pipelined requests and blocks for the reply with
    /// this id, discarding reply lines that belong to other requests
    /// (stale lines of an abandoned stream, or replies the caller
    /// chose not to collect). Lines without an echoed id — a daemon
    /// predating pipelining, or its connection-bound `busy` refusal —
    /// are accepted as the next in-order reply.
    ///
    /// # Errors
    ///
    /// Transport failures, or a reply that does not parse.
    pub fn recv_reply(&mut self, id: u64) -> Result<Response, ClientError> {
        self.writer.flush()?;
        self.recv_matching(id)
    }

    /// Blocks for the next reply line belonging to request `id`.
    fn recv_matching(&mut self, id: u64) -> Result<Response, ClientError> {
        loop {
            let line = self.recv_raw_line()?;
            let (response, req) = Response::decode_with_req(line.trim())?;
            match req {
                Some(other) if other != id => continue,
                _ => return Ok(response),
            }
        }
    }

    /// Blocks for the next raw reply line — the streaming counterpart
    /// of [`Client::request_raw`], used by `chain-nn query` to drain a
    /// streaming response line by line.
    ///
    /// # Errors
    ///
    /// Transport failures, including EOF before a line arrived.
    pub fn recv_raw_line(&mut self) -> Result<String, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection before replying",
            )));
        }
        Ok(line.trim_end().to_owned())
    }

    /// Sends a raw request line (already-encoded JSON) and returns the
    /// raw reply line — the `chain-nn query` passthrough.
    ///
    /// # Errors
    ///
    /// Transport failures only; the reply is not interpreted.
    pub fn request_raw(&mut self, line: &str) -> Result<String, ClientError> {
        self.writer.write_all(line.trim().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.recv_raw_line()
    }

    /// Evaluates one point.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures ([`ClientError`]).
    pub fn eval(&mut self, point: DesignPoint) -> Result<Response, ClientError> {
        self.request(&Request::Eval(point))
    }

    /// Evaluates a batch of points as one scheduler job, returning one
    /// outcome per point in order ([`Response::EvalBatch`]) — the
    /// cluster coordinator's scatter-gather primitive.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures ([`ClientError`]).
    pub fn eval_batch(&mut self, points: Vec<DesignPoint>) -> Result<Response, ClientError> {
        self.request(&Request::EvalBatch(points))
    }

    /// Runs one sweep.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures ([`ClientError`]).
    pub fn sweep(&mut self, spec: SweepSpec) -> Result<Response, ClientError> {
        self.request(&Request::Sweep(spec))
    }

    /// Runs a budget-constrained tune on the daemon.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures ([`ClientError`]).
    pub fn tune(&mut self, request: chain_nn_tuner::TuneRequest) -> Result<Response, ClientError> {
        self.request(&Request::Tune(Box::new(request)))
    }

    /// Runs a frontier tune (budget-axis sweep) on the daemon,
    /// invoking `on_step` with each streamed step line as it arrives —
    /// before later steps have been computed. Returns the terminal
    /// line: [`Response::TuneFrontierDone`] on success, or the `busy`/
    /// `error` response that ended the stream.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures ([`ClientError`]).
    pub fn tune_frontier(
        &mut self,
        request: chain_nn_tuner::FrontierTuneRequest,
        mut on_step: impl FnMut(&crate::protocol::FrontierStepSummary),
    ) -> Result<Response, ClientError> {
        let id = self.pipeline(&Request::TuneFrontier(Box::new(request)))?;
        self.writer.flush()?;
        loop {
            match self.recv_matching(id)? {
                Response::TuneFrontierStep(step) => on_step(&step),
                terminal => return Ok(terminal),
            }
        }
    }

    /// Queries the frontier of everything the daemon has cached
    /// (fps × power for `dims == 2`, fps × power × area for 3).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures ([`ClientError`]).
    pub fn frontier(&mut self, dims: u8) -> Result<Response, ClientError> {
        self.request(&Request::Frontier {
            dims,
            sqnr: false,
            stream: false,
        })
    }

    /// Queries the accuracy frontier (fps × power × SQNR) of everything
    /// the daemon has cached.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures ([`ClientError`]).
    pub fn frontier_accuracy(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::Frontier {
            dims: 3,
            sqnr: true,
            stream: false,
        })
    }

    /// Streams the whole-cache frontier: `on_entry` fires once per
    /// non-dominated entry line as it arrives. Returns the terminal
    /// line ([`Response::FrontierStreamDone`] on success).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures ([`ClientError`]).
    pub fn frontier_stream(
        &mut self,
        dims: u8,
        sqnr: bool,
        mut on_entry: impl FnMut(&crate::protocol::FrontierEntry),
    ) -> Result<Response, ClientError> {
        let id = self.pipeline(&Request::Frontier {
            dims,
            sqnr,
            stream: true,
        })?;
        self.writer.flush()?;
        loop {
            match self.recv_matching(id)? {
                Response::FrontierStreamEntry { entry } => on_entry(&entry),
                terminal => return Ok(terminal),
            }
        }
    }

    /// Fetches server counters.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures ([`ClientError`]).
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::Stats)
    }

    /// Fetches the daemon's full metric snapshot (serve-layer request
    /// latencies and counters merged with the process-global dse/tuner
    /// metrics).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures ([`ClientError`]).
    pub fn metrics(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::Metrics)
    }

    /// Fetches the daemon's windowed metrics history (1 s / 10 s / 60 s
    /// rates and latency quantiles from the sampler ring).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures ([`ClientError`]).
    pub fn metrics_history(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::MetricsHistory)
    }

    /// Subscribes to the daemon's sampler stream: `on_sample` fires
    /// once per sampler tick as each [`crate::protocol::WatchSample`]
    /// line arrives. `samples == 0` watches until the daemon shuts
    /// down. Returns the terminal line ([`Response::WatchDone`] on
    /// success).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures ([`ClientError`]).
    pub fn watch(
        &mut self,
        samples: u64,
        mut on_sample: impl FnMut(&crate::protocol::WatchSample),
    ) -> Result<Response, ClientError> {
        let id = self.pipeline(&Request::Watch { samples })?;
        self.writer.flush()?;
        loop {
            match self.recv_matching(id)? {
                Response::WatchSample(sample) => on_sample(&sample),
                terminal => return Ok(terminal),
            }
        }
    }

    /// Fetches the span tree recorded for one trace id
    /// ([`Response::Trace`]: the spans sorted by start time, plus the
    /// ring's dropped-span count).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures ([`ClientError`]).
    pub fn trace_query(&mut self, id: u64) -> Result<Response, ClientError> {
        self.request(&Request::TraceQuery { id })
    }

    /// Asks the daemon to write its flight file (recent spans + current
    /// metrics) right now — the on-demand counterpart of the panic
    /// hook. Requires the daemon to run with `--trace-log`.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures ([`ClientError`]).
    pub fn dump(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::Dump)
    }

    /// Asks the daemon to drain, flush and exit.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures ([`ClientError`]).
    pub fn shutdown(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::Shutdown)
    }
}

/// Convenience used by tests and the eval outcome display path: renders
/// an outcome the way `chain-nn query` prints it.
pub fn outcome_summary(outcome: &PointOutcome) -> String {
    match outcome {
        PointOutcome::Feasible(r) => format!(
            "ok: {:.1} fps, {:.1} mW system, {:.0}k gates, {:.1} GOPS/W, {:.1} dB SQNR",
            r.fps,
            r.system_mw(),
            r.gates_k,
            r.gops_per_watt(),
            r.sqnr_db
        ),
        PointOutcome::Infeasible(reason) => format!("infeasible: {reason}"),
    }
}
