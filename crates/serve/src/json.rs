//! Minimal JSON tree: parser and writer.
//!
//! The workspace carries no serde, and the serve protocol needs both
//! directions (the daemon decodes requests and encodes responses; the
//! client does the reverse), so this module implements just enough
//! JSON: the full value grammar on parse, compact single-line output on
//! write, shortest-round-trip float formatting (Rust's `{}` for `f64`),
//! and `\uXXXX` escapes including surrogate pairs. No comments, no
//! trailing commas, no NaN/Infinity — by design, since none of those
//! survive a round trip through other tooling.

use std::fmt;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, duplicate keys keep the last.
    Obj(Vec<(String, Json)>),
}

/// Parse failure: a message plus the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage not).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first offending byte.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { text, at: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes().len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// The value of `key`, when this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            // rev(): duplicate keys keep the last occurrence.
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer (rejects
    /// fractions, negatives and anything above 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > 9_007_199_254_740_992.0 {
            return None;
        }
        Some(n as u64)
    }

    /// The element list, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Writes `s` JSON-escaped, with surrounding quotes.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // Not representable in JSON; null is the least-bad
                    // lossy choice and never occurs for protocol data
                    // (specs validate finiteness).
                    f.write_str("null")
                }
            }
            Json::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                write_escaped(&mut buf, s);
                f.write_str(&buf)
            }
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    write_escaped(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    text: &'a str,
    at: usize,
}

impl<'a> Parser<'a> {
    fn bytes(&self) -> &'a [u8] {
        self.text.as_bytes()
    }

    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            at: self.at,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes()[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.at + 4;
        let slice = self
            .bytes()
            .get(self.at..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let code = u16::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.at = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.at += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.at += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.at += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{0008}');
                            self.at += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{000c}');
                            self.at += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.at += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.at += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.at += 1;
                        }
                        Some(b'u') => {
                            self.at += 1;
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() == Some(b'\\') {
                                    self.at += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    0x10000
                                        + ((u32::from(hi) - 0xd800) << 10)
                                        + (u32::from(lo) - 0xdc00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                u32::from(hi)
                            };
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad code point"))?,
                            );
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar; `at` only ever advances
                    // past ASCII or whole chars, so it is a boundary.
                    let c = self.text[self.at..].chars().next().expect("non-empty");
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.at += 1;
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.at += 1;
            }
        }
        self.text[start..self.at]
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, 2, {"b": "x"}], "c": null, "d": {"e": true}}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Null));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("d").unwrap().get("e"), Some(&Json::Bool(true)));
    }

    #[test]
    fn escapes_round_trip() {
        let original = Json::Str("a\"b\\c\nd\te\u{0001}f/🦀".into());
        let encoded = original.to_string();
        assert_eq!(Json::parse(&encoded).unwrap(), original);
        // Explicit escape forms parse too.
        let v = Json::parse(r#""\u0041\u00e9\ud83e\udd80\/""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé🦀/"));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [
            0.1,
            1.0 / 3.0,
            700.0,
            1e-300,
            f64::MAX,
            -0.0,
            123.456_789_012_345_67,
        ] {
            let encoded = Json::Num(x).to_string();
            let back = Json::parse(&encoded).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} re-parsed as {back}");
        }
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{'a':1}",
            "tru",
            "1.2.3",
            "\"\\q\"",
            "\"\u{0009}\"",
            "[1] []",
            "nan",
            "\"\\ud800x\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn as_u64_is_strict() {
        assert_eq!(Json::parse("576").unwrap().as_u64(), Some(576));
        assert_eq!(Json::parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e300").unwrap().as_u64(), None);
    }

    #[test]
    fn duplicate_keys_keep_the_last() {
        let v = Json::parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(2.0));
    }
}
