//! The explorer daemon: TCP accept loop, per-connection sessions, the
//! worker pool, and cache persistence.
//!
//! One [`Server`] owns one [`Scheduler`] (and through it the one shared
//! [`PointCache`]). Each accepted connection gets a session thread that
//! reads request lines, submits work, and writes response lines; the
//! actual evaluations happen on the scheduler's worker pool, where
//! batches from all sessions interleave fairly. With a cache file
//! attached, the daemon replays it before accepting connections and
//! appends every completed request's fresh evaluations (plus a final
//! sweep at shutdown), so a restarted daemon re-serves prior sweeps
//! without a single model evaluation.
//!
//! Shutdown is cooperative: a `shutdown` request is acknowledged on its
//! own connection, admission closes, the workers drain what was already
//! admitted, the cache is flushed, and [`Server::run`] returns.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock, Weak};
use std::time::{Duration, Instant};

use chain_nn_dse::{pareto, CacheFile, DesignPoint, MixOutcome, PointCache, WorkloadMix};
use chain_nn_obs::timeseries::{TimeSeries, Window};
use chain_nn_obs::trace::{self as obs_trace, TraceContext};
use chain_nn_obs::{Counter, Gauge, Histogram, Registry};
use chain_nn_tuner::{evaluator, frontier, tune, MixEvaluator, TuneError};

use crate::json::Json;
use crate::protocol::{
    FrontierDoneSummary, FrontierEntry, FrontierStepSummary, HistoryTypeWindow, HistoryWindow,
    MetricsHistory, Request, Response, ServerStats, SweepSummary, TuneSummary, WatchSample,
};
use crate::scheduler::{AdmissionSlot, ClaimPolicy, Scheduler, SubmitError, TraceRef, BATCH_SIZE};
use crate::slo::{SloSpec, SloTracker};

/// How the daemon is set up. `Default` binds an ephemeral loopback
/// port, one worker per host core, no persistence.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; loopback unless you mean to expose the daemon.
    pub host: String,
    /// TCP port; 0 asks the OS for an ephemeral one (see
    /// [`Server::local_addr`]).
    pub port: u16,
    /// Worker threads evaluating points.
    pub threads: usize,
    /// Admission bound: concurrent jobs beyond this get `busy`.
    pub queue_capacity: usize,
    /// How many points one scheduling turn claims. The default
    /// adapts to traffic ([`ClaimPolicy::Adaptive`] up to
    /// [`BATCH_SIZE`]): big claims while one sweep owns the queue,
    /// [`crate::scheduler::CONTENDED_CLAIM`]-sized ones while
    /// interactive evals wait behind it. [`ClaimPolicy::Fixed`]
    /// restores the pre-engine fixed-batch behavior (the mixed-traffic
    /// bench's comparison baseline).
    pub claim: ClaimPolicy,
    /// Connection bound: accepted sockets beyond this are answered
    /// `busy` and closed at the accept loop, pairing with the
    /// job-admission bound so idle clients cannot accumulate session
    /// threads either.
    pub max_connections: usize,
    /// Optional cache capacity (points): bounds the in-memory cache
    /// with FIFO eviction of flushed entries for month-long daemon
    /// lifetimes. `None` (the default) keeps the cache grow-only.
    pub cache_capacity: Option<usize>,
    /// Snapshot file for cross-process cache persistence.
    pub cache_file: Option<std::path::PathBuf>,
    /// Optional structured trace log: one JSON line per completed
    /// request (id, type, status, and the per-phase timings), written
    /// as requests finish. The file is truncated at bind time — each
    /// daemon lifetime gets a fresh trace.
    pub trace_log: Option<std::path::PathBuf>,
    /// Size cap for the trace log: when appending a line would push the
    /// file past this, the file is renamed to `<path>.1` (replacing the
    /// previous rotation) and a fresh one is started. The daemon keeps
    /// at most two files — the live trace and one predecessor. `0`
    /// disables rotation entirely: the file grows without bound.
    pub trace_max_bytes: u64,
    /// How often the sampler thread snapshots the registry into the
    /// metrics history ring (drives `metrics_history`, `watch`, and
    /// SLO evaluation).
    pub sample_interval: Duration,
    /// Ring capacity in samples. With the default 250 ms interval, 256
    /// samples hold just over a minute of history — enough for the 1
    /// s/10 s/60 s windows `metrics_history` reports.
    pub history_capacity: usize,
    /// Latency SLOs (`eval:p99_us=500`) evaluated every sampler tick
    /// over the trailing [`crate::slo::SLO_WINDOW`].
    pub slos: Vec<SloSpec>,
    /// Slow-request threshold in microseconds: requests whose total
    /// latency meets or exceeds it get `"slow":true` in their trace
    /// line and count into `serve_slow_requests_total{type=…}`.
    pub slow_log_us: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            host: "127.0.0.1".to_owned(),
            port: 0,
            threads: chain_nn_dse::executor::default_threads(),
            queue_capacity: 16,
            claim: ClaimPolicy::Adaptive { max: BATCH_SIZE },
            max_connections: 64,
            cache_capacity: None,
            cache_file: None,
            trace_log: None,
            trace_max_bytes: 64 * 1024 * 1024,
            sample_interval: Duration::from_millis(250),
            history_capacity: 256,
            slos: Vec::new(),
            slow_log_us: None,
        }
    }
}

/// What one daemon lifetime did, returned by [`Server::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerReport {
    /// Requests served across all connections.
    pub requests: u64,
    /// Cache entries replayed from disk at startup.
    pub loaded_from_disk: usize,
    /// Fresh evaluations appended to the cache file over the lifetime.
    pub persisted: usize,
    /// Distinct points in the cache at shutdown.
    pub cached_points: usize,
}

struct Shared {
    scheduler: Scheduler,
    cache: Arc<PointCache>,
    cache_file: Option<CacheFile>,
    /// Serializes flushes so concurrent batch completions do not
    /// interleave appends.
    flush_lock: Mutex<()>,
    persisted: AtomicU64,
    requests: AtomicU64,
    shutdown: AtomicBool,
    threads: usize,
    loaded_from_disk: usize,
    /// Whether the cache has a capacity bound (`--cache-cap`).
    cache_bounded: bool,
    /// Sessions currently open (incremented at accept, decremented when
    /// the session thread exits).
    connections: AtomicUsize,
    max_connections: usize,
    /// This daemon's private metric registry. Per-daemon (not the
    /// process-global one) so two servers in one test process do not
    /// see each other's request counters; the `metrics` reply merges
    /// in [`chain_nn_obs::global`] for the dse/tuner-layer metrics.
    registry: Registry,
    /// Hot-path metric handles, resolved once at bind time.
    metrics: ServeMetrics,
    /// Structured trace sink (`--trace-log`): one JSON line per
    /// completed request, flushed per line so a tailing reader sees
    /// requests as they finish. Rotates at its size cap.
    trace: Option<Mutex<TraceLog>>,
    /// Monotonic request ids for the trace log.
    next_request_id: AtomicU64,
    /// Where flight-recorder dumps land (`<trace-log>.flight.json`);
    /// `None` without `--trace-log`, which also disables the `dump`
    /// request and the panic hook.
    flight_path: Option<PathBuf>,
    /// Fixed-capacity ring of registry samples, advanced once per
    /// [`ServerConfig::sample_interval`] by the sampler thread. Every
    /// windowed read (`metrics_history`, `watch`, SLO evaluation)
    /// derives from this one history.
    history: Mutex<TimeSeries>,
    sample_interval: Duration,
    /// SLO evaluation state, driven by the sampler thread.
    slo: Mutex<SloTracker>,
    /// Sampler ticks on which at least one SLO was out of compliance.
    slo_breach_ticks: AtomicU64,
    /// Slow-request trace threshold (µs), when configured.
    slow_log_us: Option<u64>,
}

/// The rotating trace sink: an open writer plus the byte count that
/// decides when to rename the file to `<path>.1` and start fresh. One
/// predecessor is kept — enough to never lose the tail of a long run
/// while bounding disk to roughly twice the cap.
struct TraceLog {
    path: PathBuf,
    writer: BufWriter<File>,
    written: u64,
    max_bytes: u64,
}

impl TraceLog {
    fn create(path: PathBuf, max_bytes: u64) -> std::io::Result<TraceLog> {
        let writer = BufWriter::new(File::create(&path)?);
        Ok(TraceLog {
            path,
            writer,
            written: 0,
            max_bytes,
        })
    }

    /// Appends one complete trace line, rotating first when the line
    /// would push the file past the cap. A line larger than the cap
    /// itself still lands whole — rotation only ever splits *between*
    /// lines, so both files always hold complete JSON records. A cap of
    /// 0 means "no rotation": the file grows without bound.
    fn append(&mut self, line: &str) -> std::io::Result<()> {
        if self.max_bytes > 0
            && self.written > 0
            && self.written + line.len() as u64 > self.max_bytes
        {
            self.rotate()?;
        }
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        self.written += line.len() as u64;
        Ok(())
    }

    fn rotate(&mut self) -> std::io::Result<()> {
        self.writer.flush()?;
        let mut rotated = self.path.clone().into_os_string();
        rotated.push(".1");
        std::fs::rename(&self.path, &rotated)?;
        self.writer = BufWriter::new(File::create(&self.path)?);
        self.written = 0;
        Ok(())
    }
}

/// The serve-layer metric handles that sit on every request's path,
/// registered once so session threads never take the registry lock for
/// them. Per-request-type families (`serve_requests_total{type=…}` and
/// the latency histograms) are resolved through the registry instead —
/// once per request, off the evaluation hot path.
struct ServeMetrics {
    /// Requests currently between accept-of-line and reply.
    inflight: Arc<Gauge>,
    /// Admission refusals (`busy` replies from the job queue bound).
    busy: Arc<Counter>,
    /// Connections refused at the accept loop (connection bound).
    refused: Arc<Counter>,
    /// Cache hits summed over completed jobs (per-job counters, so
    /// one client's traffic is not counted against another's).
    cache_hits: Arc<Counter>,
    /// Cache misses summed over completed jobs.
    cache_misses: Arc<Counter>,
    /// Post-request cache-file flush durations.
    flush_ns: Arc<Histogram>,
}

impl ServeMetrics {
    fn register(registry: &Registry) -> ServeMetrics {
        ServeMetrics {
            inflight: registry.gauge("serve_inflight_requests"),
            busy: registry.counter("serve_busy_total"),
            refused: registry.counter("serve_connections_refused_total"),
            cache_hits: registry.counter("serve_cache_hits_total"),
            cache_misses: registry.counter("serve_cache_misses_total"),
            flush_ns: registry.histogram("serve_flush_ns"),
        }
    }
}

/// Per-request measurement record: filled in by [`handle_request`] as
/// the request moves through parse → queue → execute → flush, then
/// folded into the registry and (optionally) the trace log by the
/// session loop.
struct RequestSpan {
    /// Monotonic id, unique within one daemon lifetime.
    id: u64,
    /// Owning trace: the client-propagated id, or a daemon-assigned
    /// one. 0 until the line parses (parse errors record no spans).
    trace_id: u64,
    /// The client's remote parent span (0 = this request roots the
    /// tree).
    remote_parent: u64,
    /// The request's root span id in the process span ring; batch and
    /// tune-round spans hang under it.
    root_span: u64,
    /// Request type label (`eval`, `sweep`, …; `parse_error` when the
    /// line never decoded).
    kind: &'static str,
    /// Time spent decoding the request line.
    parse: Duration,
    /// Submission → first claim, summed over the request's jobs.
    queue_wait: Duration,
    /// First claim → completion, summed over the request's jobs.
    execute: Duration,
    /// Post-request cache-file flush time.
    flush: Duration,
    /// Scheduler jobs this request ran (0 for stats/metrics/frontier —
    /// their spans carry no queue/execute time).
    jobs: u64,
    /// Points evaluated (or tuner evaluations) on behalf of this
    /// request.
    points: u64,
    /// Per-job cache hits attributed to this request.
    cache_hits: u64,
    /// Per-job cache misses attributed to this request.
    cache_misses: u64,
    /// The client's pipelining id (`"req"`), echoed on every reply
    /// line of this request. `None` for non-pipelining clients (and
    /// for lines that never parsed), which keeps the wire unchanged.
    req_id: Option<u64>,
}

impl RequestSpan {
    fn new(id: u64) -> RequestSpan {
        RequestSpan {
            id,
            trace_id: 0,
            remote_parent: 0,
            root_span: 0,
            kind: "unknown",
            parse: Duration::ZERO,
            queue_wait: Duration::ZERO,
            execute: Duration::ZERO,
            flush: Duration::ZERO,
            jobs: 0,
            points: 0,
            cache_hits: 0,
            cache_misses: 0,
            req_id: None,
        }
    }

    /// The scheduler-facing trace reference: who batch spans should
    /// parent onto. `None` before the line parsed (and for parse
    /// errors), which records no spans at all.
    fn trace_ref(&self) -> Option<TraceRef> {
        (self.trace_id != 0).then_some(TraceRef {
            trace_id: self.trace_id,
            parent_span: self.root_span,
        })
    }

    /// Folds one completed scheduler job's timings and cache counters
    /// into the span.
    fn absorb_job(&mut self, queue_wait: Duration, execute: Duration, hits: u64, misses: u64) {
        self.queue_wait += queue_wait;
        self.execute += execute;
        self.cache_hits += hits;
        self.cache_misses += misses;
        self.jobs += 1;
    }
}

impl Shared {
    /// Appends the cache's dirty journal to the snapshot file (no-op
    /// without one). Called after every request that may have evaluated
    /// something, and once more at shutdown.
    fn flush(&self) -> std::io::Result<usize> {
        let Some(file) = &self.cache_file else {
            if self.cache_bounded {
                // No persistence to protect: discard the journal so the
                // capacity bound can actually evict (eviction never
                // touches dirty entries) and the journal does not hold
                // a second copy of every evaluation forever.
                let _guard = self.flush_lock.lock().expect("flush lock poisoned");
                drop(self.cache.take_dirty());
            }
            return Ok(0);
        };
        let _guard = self.flush_lock.lock().expect("flush lock poisoned");
        let n = file.flush_dirty(&self.cache)?;
        self.persisted.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    /// Refreshes the scrape-time gauges: state that lives in counters
    /// and structs elsewhere, sampled into the registry so one snapshot
    /// carries everything. Called on every sampler tick *and* on the
    /// `metrics`/`stats` request paths — a daemon with a long
    /// `--sample-interval-ms` must not serve stale queue depth to a
    /// scrape that asked right now.
    fn refresh_gauges(&self) {
        let stats = self.cache.stats();
        let registry = &self.registry;
        registry
            .gauge("serve_uptime_seconds")
            .set(registry.uptime().as_secs_f64());
        registry
            .gauge("serve_open_connections")
            .set(self.connections.load(Ordering::SeqCst) as f64);
        registry
            .gauge("serve_active_jobs")
            .set(self.scheduler.active_jobs() as f64);
        registry
            .gauge("serve_queue_depth")
            .set(self.scheduler.queue_depth() as f64);
        registry.gauge("cache_points").set(self.cache.len() as f64);
        registry.gauge("cache_hit_rate").set(stats.hit_rate());
    }

    /// One sampler tick: refresh the scrape-time gauges (so the ring
    /// carries them too, not just `metrics` replies), append a sample
    /// to the history, and evaluate the SLOs against the new window.
    fn take_sample(&self) {
        self.refresh_gauges();
        let breach = {
            let mut history = self.history.lock().expect("history lock poisoned");
            history.sample(&self.registry);
            let mut slo = self.slo.lock().expect("slo lock poisoned");
            slo.evaluate(&history, &self.registry)
        };
        if breach {
            self.slo_breach_ticks.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The sampler thread body: one [`Shared::take_sample`] per
    /// interval, sleeping in short naps so shutdown stays prompt.
    fn sampler_loop(&self) {
        loop {
            let mut slept = Duration::ZERO;
            while slept < self.sample_interval {
                if self.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let nap = (self.sample_interval - slept).min(Duration::from_millis(5));
                std::thread::sleep(nap);
                slept += nap;
            }
            self.take_sample();
        }
    }
}

/// A bound, loaded, ready-to-run daemon.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and, when configured, replays the cache file.
    ///
    /// # Errors
    ///
    /// Bind failures and cache-file I/O failures (a *corrupt* cache
    /// file is not an error — it loads to its valid prefix — but an
    /// unreadable one, or one with a foreign magic line, is).
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind((config.host.as_str(), config.port))?;
        let cache = Arc::new(match config.cache_capacity {
            Some(capacity) => PointCache::bounded(capacity),
            None => PointCache::new(),
        });
        let cache_file = config.cache_file.as_ref().map(CacheFile::new);
        let mut loaded_from_disk = 0;
        if let Some(file) = &cache_file {
            loaded_from_disk = file.load_into(&cache)?.loaded;
        }
        let threads = config.threads.max(1);
        let registry = Registry::new();
        let metrics = ServeMetrics::register(&registry);
        let trace = match &config.trace_log {
            Some(path) => Some(Mutex::new(TraceLog::create(
                path.clone(),
                config.trace_max_bytes,
            )?)),
            None => None,
        };
        let sample_interval = config.sample_interval.max(Duration::from_millis(1));
        let flight_path = config.trace_log.as_ref().map(|p| {
            let mut flight = p.clone().into_os_string();
            flight.push(".flight.json");
            PathBuf::from(flight)
        });
        let shared = Arc::new(Shared {
            scheduler: Scheduler::with_policy(
                Arc::clone(&cache),
                config.queue_capacity,
                config.claim,
                &registry,
            ),
            cache,
            cache_file,
            flush_lock: Mutex::new(()),
            persisted: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            threads,
            loaded_from_disk,
            cache_bounded: config.cache_capacity.is_some(),
            connections: AtomicUsize::new(0),
            max_connections: config.max_connections.max(1),
            registry,
            metrics,
            trace,
            next_request_id: AtomicU64::new(1),
            flight_path: flight_path.clone(),
            history: Mutex::new(TimeSeries::new(
                sample_interval,
                config.history_capacity.max(2),
            )),
            sample_interval,
            slo: Mutex::new(SloTracker::new(config.slos)),
            slo_breach_ticks: AtomicU64::new(0),
            slow_log_us: config.slow_log_us,
        });
        if let Some(path) = flight_path {
            register_flight_recorder(path, &shared);
        }
        Ok(Server { listener, shared })
    }

    /// The actually-bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket introspection failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Entries replayed from the cache file at bind time.
    pub fn loaded_from_disk(&self) -> usize {
        self.shared.loaded_from_disk
    }

    /// Serves until a `shutdown` request arrives, then drains, flushes
    /// and returns the lifetime report.
    ///
    /// # Errors
    ///
    /// Fatal listener failures and the final cache flush. Per-connection
    /// I/O errors only terminate that connection.
    pub fn run(self) -> std::io::Result<ServerReport> {
        // Poll-accept so the loop can observe the shutdown flag; 5 ms
        // keeps idle CPU at noise level while staying prompt.
        self.listener.set_nonblocking(true)?;
        let shared = &self.shared;
        std::thread::scope(|scope| -> std::io::Result<()> {
            for idx in 0..shared.threads {
                let s = Arc::clone(shared);
                scope.spawn(move || s.scheduler.worker_loop_indexed(idx as u32));
            }
            {
                // The sampler: one registry snapshot per interval into
                // the metrics history ring, plus SLO evaluation.
                let s = Arc::clone(shared);
                scope.spawn(move || s.sampler_loop());
            }
            let mut outcome = Ok(());
            while !shared.shutdown.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _addr)) => {
                        // Replies are small and a pipelining client
                        // stuffs many requests down before reading:
                        // without TCP_NODELAY, Nagle holds each reply
                        // for the peer's delayed ACK once the lockstep
                        // request/reply rhythm is gone.
                        stream.set_nodelay(true).ok();
                        // The connection bound is enforced here, at the
                        // accept loop: beyond it the daemon answers one
                        // `busy` line and closes instead of accumulating
                        // session threads for idle sockets.
                        let open = shared.connections.load(Ordering::SeqCst);
                        if open >= shared.max_connections {
                            shared.metrics.refused.inc();
                            refuse_connection(stream, open, shared.max_connections);
                            continue;
                        }
                        shared.connections.fetch_add(1, Ordering::SeqCst);
                        let s = Arc::clone(shared);
                        // Detached on purpose: a session blocked on an
                        // idle client must not block shutdown. Sessions
                        // hold only an Arc and die with the process (or
                        // return Busy/ShuttingDown after drain).
                        std::thread::spawn(move || {
                            serve_connection(stream, &s);
                            s.connections.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => {
                        outcome = Err(e);
                        break;
                    }
                }
            }
            // Wake the pool so the scope can join the drained workers —
            // on the clean path admission is already closed (the
            // shutdown handler did it before setting the flag), and on
            // the error path this is what closes it. The flag is also
            // (re)set here so the sampler thread exits on the error
            // path, where no shutdown request ever stored it.
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.scheduler.begin_shutdown();
            outcome
        })?;
        shared.flush()?;
        Ok(ServerReport {
            requests: shared.requests.load(Ordering::Relaxed),
            loaded_from_disk: shared.loaded_from_disk,
            persisted: shared.persisted.load(Ordering::Relaxed) as usize,
            cached_points: shared.cache.len(),
        })
    }
}

/// Longest request line the daemon will buffer. Real requests are a
/// few hundred bytes (the largest is a sweep spec with explicit axis
/// lists); anything bigger is a hostile or broken client, and an
/// unbounded `read_line` would buffer it into daemon memory wholesale.
const MAX_REQUEST_BYTES: u64 = 1 << 20;

/// The line-streaming writer every response line goes through: one
/// `\n`-terminated JSON object per [`LineSink::send`], **flushed
/// immediately**. For single-reply requests the flush is merely
/// prompt; for the streaming requests (`tune_frontier`, `frontier`
/// with `"stream":true`, `watch`) it is the contract — each result
/// line reaches the client as it is produced, before the next
/// step/entry/sample is computed.
pub struct LineSink<'a> {
    writer: &'a mut dyn Write,
    req_id: Option<u64>,
}

impl<'a> LineSink<'a> {
    /// Wraps a transport writer (a `BufWriter<TcpStream>` in the
    /// daemon; anything `Write` in tests).
    pub fn new(writer: &'a mut dyn Write) -> Self {
        LineSink {
            writer,
            req_id: None,
        }
    }

    /// Wraps a transport writer and stamps every line with the
    /// pipelining id the client sent (`None` leaves the wire
    /// unchanged). Streamed lines carry the id too — that is what lets
    /// a pipelining client attribute every line of an interleaved
    /// session to the request that produced it.
    pub fn with_id(writer: &'a mut dyn Write, req_id: Option<u64>) -> Self {
        LineSink { writer, req_id }
    }

    /// Writes one response line and flushes it to the peer.
    ///
    /// # Errors
    ///
    /// The underlying transport failure — the peer is gone; abandon
    /// the session.
    pub fn send(&mut self, response: &Response) -> std::io::Result<()> {
        let mut wire = response.encode_with_req(self.req_id);
        wire.push('\n');
        self.writer.write_all(wire.as_bytes())?;
        self.writer.flush()
    }
}

/// How one request left the session: a normal reply (plus whether the
/// session must stop afterwards), or a streamed response that already
/// went through the sink (plus whether the sink died mid-stream).
enum RequestOutcome {
    Reply(Box<Response>, bool),
    Streamed { sink_dead: bool },
}

impl RequestOutcome {
    /// A single-reply outcome (boxed so the streamed variant stays
    /// pointer-sized).
    fn reply(response: Response, stop_after_reply: bool) -> Self {
        RequestOutcome::Reply(Box::new(response), stop_after_reply)
    }
}

/// Answers one `busy` line on a just-accepted socket and drops it —
/// the connection-bound refusal path.
fn refuse_connection(stream: TcpStream, active: usize, capacity: usize) {
    let mut wire = Response::Busy { active, capacity }.encode();
    wire.push('\n');
    let mut writer = BufWriter::new(stream);
    let _ = writer
        .write_all(wire.as_bytes())
        .and_then(|()| writer.flush());
}

/// One session: line in, line out, until EOF or shutdown.
fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(peer_read) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(peer_read);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match (&mut reader).take(MAX_REQUEST_BYTES).read_line(&mut line) {
            Ok(0) => return,  // clean EOF
            Err(_) => return, // peer went away
            Ok(_) if line.len() as u64 >= MAX_REQUEST_BYTES && !line.ends_with('\n') => {
                // Oversized request: answer once, drop the connection
                // (the rest of the line cannot be resynchronized).
                let refusal = Response::Error {
                    message: format!("request exceeds {MAX_REQUEST_BYTES} bytes"),
                }
                .encode();
                let _ = writer
                    .write_all(refusal.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush());
                return;
            }
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let received = Instant::now();
        shared.metrics.inflight.inc();
        let mut span = RequestSpan::new(shared.next_request_id.fetch_add(1, Ordering::Relaxed));
        let outcome = handle_request(trimmed, shared, &mut writer, &mut span);
        shared.metrics.inflight.dec();
        let status = match &outcome {
            RequestOutcome::Reply(response, _) => match **response {
                Response::Error { .. } => "error",
                Response::Busy { .. } => "busy",
                _ => "ok",
            },
            RequestOutcome::Streamed { sink_dead: false } => "ok",
            RequestOutcome::Streamed { sink_dead: true } => "disconnect",
        };
        record_span(shared, &span, status, received, received.elapsed());
        match outcome {
            RequestOutcome::Reply(response, stop_after_reply) => {
                let mut wire = response.encode_with_req(span.req_id);
                wire.push('\n');
                if writer.write_all(wire.as_bytes()).is_err() {
                    return;
                }
                // Pipelining: when the client has already buffered the
                // next request line, hold the flush so a whole burst of
                // replies coalesces into one write syscall (and fewer
                // packets). A lockstep client always sees an immediate
                // flush — its next line cannot be buffered yet.
                let more_pending = reader.buffer().contains(&b'\n');
                if (!more_pending || stop_after_reply) && writer.flush().is_err() {
                    return;
                }
                if stop_after_reply {
                    shared.shutdown.store(true, Ordering::SeqCst);
                    return;
                }
            }
            RequestOutcome::Streamed { sink_dead } => {
                if sink_dead {
                    return;
                }
            }
        }
    }
}

/// Folds one finished request's span into the registry (per-type
/// counter and latency families, busy counter, per-job cache traffic),
/// records the request's root + phase spans into the causal-trace ring,
/// and appends its trace line when `--trace-log` is on.
fn record_span(
    shared: &Shared,
    span: &RequestSpan,
    status: &str,
    received: Instant,
    total: Duration,
) {
    record_trace_spans(span, received, total);
    let labels: &[(&str, &str)] = &[("type", span.kind)];
    let registry = &shared.registry;
    registry.counter_with("serve_requests_total", labels).inc();
    registry
        .histogram_with("serve_request_ns", labels)
        .record_duration(total);
    if span.jobs > 0 {
        // Only requests that ran scheduler jobs carry queue/execute
        // time; recording zeros for stats/metrics/frontier would
        // poison the wait-time quantiles.
        registry
            .histogram_with("serve_queue_wait_ns", labels)
            .record_duration(span.queue_wait);
        registry
            .histogram_with("serve_execute_ns", labels)
            .record_duration(span.execute);
    }
    if status == "busy" {
        shared.metrics.busy.inc();
    }
    shared.metrics.cache_hits.add(span.cache_hits);
    shared.metrics.cache_misses.add(span.cache_misses);
    let slow = shared
        .slow_log_us
        .is_some_and(|threshold| total.as_micros() as u64 >= threshold);
    if slow {
        registry
            .counter_with("serve_slow_requests_total", labels)
            .inc();
    }
    let Some(trace) = &shared.trace else { return };
    // Hand-rolled JSON: every field is a number or a static label, so
    // no escaping is needed.
    let mut line = format!(
        concat!(
            "{{\"id\":{},\"type\":\"{}\",\"status\":\"{}\",\"parse_us\":{},",
            "\"queue_wait_us\":{},\"execute_us\":{},\"flush_us\":{},\"total_us\":{},",
            "\"jobs\":{},\"points\":{},\"cache_hits\":{},\"cache_misses\":{}"
        ),
        span.id,
        span.kind,
        status,
        span.parse.as_micros(),
        span.queue_wait.as_micros(),
        span.execute.as_micros(),
        span.flush.as_micros(),
        total.as_micros(),
        span.jobs,
        span.points,
        span.cache_hits,
        span.cache_misses,
    );
    if span.trace_id != 0 {
        line.push_str(&format!(",\"trace\":{}", span.trace_id));
    }
    if slow {
        line.push_str(",\"slow\":true");
    }
    line.push_str("}\n");
    if let Ok(mut sink) = trace.lock() {
        let _ = sink.append(&line);
    }
}

/// Records the finished request into the span ring: one root span for
/// the whole request plus phase children (parse, then queue-wait and
/// execute when scheduler jobs ran, then flush). The phases were timed
/// independently on the session thread, so children are laid out
/// sequentially from the root start with each duration clamped to the
/// root's remainder — the invariants "children nest inside the root"
/// and "queue_wait + execute ≤ total" hold by construction.
fn record_trace_spans(span: &RequestSpan, received: Instant, total: Duration) {
    if span.trace_id == 0 {
        // Parse failures never resolve a trace context; nothing to file.
        return;
    }
    let spans = obs_trace::spans();
    if !spans.is_enabled() {
        return;
    }
    spans.record(&obs_trace::Span {
        trace_id: span.trace_id,
        span_id: span.root_span,
        parent_id: span.remote_parent,
        name: span.kind,
        start: received,
        dur: total,
        worker: None,
        points: span.points.min(u64::from(u32::MAX)) as u32,
    });
    let mut phases: Vec<(&str, Duration)> = vec![("parse", span.parse)];
    if span.jobs > 0 {
        phases.push(("queue_wait", span.queue_wait));
        phases.push(("execute", span.execute));
    }
    phases.push(("flush", span.flush));
    let mut cursor = Duration::ZERO;
    for (name, dur) in phases {
        let dur = dur.min(total.saturating_sub(cursor));
        spans.record(&obs_trace::Span {
            trace_id: span.trace_id,
            span_id: obs_trace::next_span_id(),
            parent_id: span.root_span,
            name,
            start: received + cursor,
            dur,
            worker: None,
            points: 0,
        });
        cursor += dur;
    }
}

/// Runs the post-request cache flush and times it into the span and
/// the `serve_flush_ns` histogram.
fn timed_flush(shared: &Shared, span: &mut RequestSpan) {
    let started = Instant::now();
    let _ = shared.flush();
    span.flush = started.elapsed();
    shared.metrics.flush_ns.record_duration(span.flush);
}

/// Dispatches one parsed request. Streaming requests write their lines
/// through `writer` themselves; everything else returns the single
/// reply for the session loop to send (the bool asks the session to
/// close and trip the daemon shutdown flag after replying).
fn handle_request(
    line: &str,
    shared: &Arc<Shared>,
    writer: &mut dyn Write,
    span: &mut RequestSpan,
) -> RequestOutcome {
    let parse_started = Instant::now();
    let (request, meta) = match Request::decode_with_meta(line) {
        Ok(pair) => pair,
        Err(e) => {
            span.parse = parse_started.elapsed();
            span.kind = "parse_error";
            return RequestOutcome::reply(
                Response::Error {
                    message: e.to_string(),
                },
                false,
            );
        }
    };
    span.parse = parse_started.elapsed();
    span.req_id = meta.req_id;
    let ctx = meta.trace;
    // Every well-formed request gets a trace: the client's propagated
    // context when present, a daemon-assigned id otherwise (offset so
    // it can never collide with small client-chosen ids).
    let ctx = ctx.unwrap_or_else(|| TraceContext {
        id: obs_trace::next_trace_id(),
        parent: 0,
    });
    span.trace_id = ctx.id;
    span.remote_parent = ctx.parent;
    span.root_span = obs_trace::next_span_id();
    span.kind = match &request {
        Request::Eval(_) => "eval",
        Request::EvalBatch(_) => "eval_batch",
        Request::Sweep(_) => "sweep",
        Request::Tune(_) => "tune",
        Request::TuneFrontier(_) => "tune_frontier",
        Request::Frontier { .. } => "frontier",
        Request::Stats => "stats",
        Request::Metrics => "metrics",
        Request::MetricsHistory => "metrics_history",
        Request::Watch { .. } => "watch",
        Request::TraceQuery { .. } => "trace_query",
        Request::Dump => "dump",
        Request::Shutdown => "shutdown",
    };
    match request {
        Request::Eval(point) => {
            // Cache-hit fast path: a memoized point is answered inline.
            // The scheduler round trip (submit, wake a worker, wake the
            // session) costs tens of microseconds of handoff — more
            // than the lookup itself — and would serialize a pipelined
            // client's cached evals behind it.
            let response = if let Some(outcome) = shared.scheduler.cache().probe(&point) {
                span.absorb_job(Duration::ZERO, Duration::ZERO, 1, 0);
                span.points = 1;
                Response::Eval { point, outcome }
            } else {
                match shared
                    .scheduler
                    .submit_traced(vec![point.clone()], span.trace_ref())
                {
                    Err(e) => submit_error_response(e),
                    Ok(handle) => match handle.wait() {
                        Err(e) => Response::Error {
                            message: e.to_string(),
                        },
                        Ok(mut job) => {
                            span.absorb_job(
                                job.queue_wait,
                                job.execute,
                                job.cache_hits,
                                job.cache_misses,
                            );
                            span.points = 1;
                            Response::Eval {
                                point,
                                outcome: job.outcomes.remove(0),
                            }
                        }
                    },
                }
            };
            timed_flush(shared, span);
            RequestOutcome::reply(response, false)
        }
        Request::EvalBatch(points) => {
            // The coordinator's scatter-gather primitive: one job, one
            // outcome per point, in order. An empty batch short-circuits
            // (the engine has nothing to schedule).
            let total = points.len();
            let response = if total == 0 {
                Response::EvalBatch {
                    outcomes: Vec::new(),
                    cache_hits: 0,
                    cache_misses: 0,
                }
            } else {
                match shared.scheduler.submit_traced(points, span.trace_ref()) {
                    Err(e) => submit_error_response(e),
                    Ok(handle) => match handle.wait() {
                        Err(e) => Response::Error {
                            message: e.to_string(),
                        },
                        Ok(job) => {
                            span.absorb_job(
                                job.queue_wait,
                                job.execute,
                                job.cache_hits,
                                job.cache_misses,
                            );
                            span.points = total as u64;
                            Response::EvalBatch {
                                outcomes: job.outcomes,
                                cache_hits: job.cache_hits,
                                cache_misses: job.cache_misses,
                            }
                        }
                    },
                }
            };
            timed_flush(shared, span);
            RequestOutcome::reply(response, false)
        }
        Request::Sweep(spec) => {
            if let Err(e) = spec.validate() {
                return RequestOutcome::reply(
                    Response::Error {
                        message: e.to_string(),
                    },
                    false,
                );
            }
            // Partitioned sweeps (`spec.part` set by a cluster
            // coordinator) walk the same full grid but keep only the
            // owned points; indices stay *global*, so per-shard
            // frontiers merge into exactly the single-daemon indices.
            let indexed = spec.indexed_points();
            let points: Vec<_> = indexed.iter().map(|(_, p)| p.clone()).collect();
            let total = points.len();
            let start = Instant::now();
            let response = match shared.scheduler.submit_traced(points, span.trace_ref()) {
                Err(e) => submit_error_response(e),
                Ok(handle) => match handle.wait() {
                    Err(e) => Response::Error {
                        message: e.to_string(),
                    },
                    Ok(job) => {
                        span.absorb_job(
                            job.queue_wait,
                            job.execute,
                            job.cache_hits,
                            job.cache_misses,
                        );
                        span.points = total as u64;
                        let objectives: Vec<(usize, pareto::Objectives)> = job
                            .outcomes
                            .iter()
                            .zip(&indexed)
                            .filter_map(|(o, (gi, _))| {
                                Some((*gi, pareto::Objectives::from(o.result()?)))
                            })
                            .collect();
                        let frontier_3d = pareto::frontier_3d(&objectives);
                        let frontier_sqnr = pareto::frontier_accuracy(&objectives);
                        // A partitioned reply carries its frontier
                        // *candidates* (index + objectives of every
                        // point on either frontier) so the coordinator
                        // can re-filter the merged set without
                        // re-evaluating anything.
                        let candidates = if spec.part.is_some() {
                            let mut keep: Vec<usize> =
                                frontier_3d.iter().chain(&frontier_sqnr).copied().collect();
                            keep.sort_unstable();
                            keep.dedup();
                            objectives
                                .iter()
                                .filter(|(i, _)| keep.binary_search(i).is_ok())
                                .copied()
                                .collect()
                        } else {
                            Vec::new()
                        };
                        Response::Sweep(SweepSummary {
                            points: total,
                            feasible: objectives.len(),
                            // Per-job counters from the scheduler:
                            // global cache deltas would also count the
                            // other clients' concurrent traffic.
                            cache_hits: job.cache_hits,
                            cache_misses: job.cache_misses,
                            wall_ms: start.elapsed().as_secs_f64() * 1e3,
                            frontier_3d,
                            frontier_sqnr,
                            candidates,
                            degraded: false,
                        })
                    }
                },
            };
            timed_flush(shared, span);
            RequestOutcome::reply(response, false)
        }
        Request::Tune(request) => {
            // A tune is one unit of admission however many rounds it
            // runs; its rounds are ordinary jobs in the fair rotation,
            // so concurrent sweeps interleave with every round.
            let response = match shared.scheduler.admit() {
                Err(e) => submit_error_response(e),
                Ok(slot) => {
                    let mut evaluator =
                        SchedulerEvaluator::new(&shared.scheduler, &slot, span.trace_ref());
                    let result = tune(&request, &mut evaluator);
                    evaluator.fold_into(span);
                    match result {
                        Err(e) => Response::Error {
                            message: e.to_string(),
                        },
                        Ok(report) => {
                            span.points = report.evaluations;
                            Response::Tune(TuneSummary {
                                best: report.best,
                                evaluations: report.evaluations,
                                cache_hits: report.cache_hits,
                                cache_misses: report.cache_misses,
                                rounds: report.rounds,
                                exhaustive_points: report.exhaustive_points,
                                degraded: false,
                            })
                        }
                    }
                }
            };
            timed_flush(shared, span);
            RequestOutcome::reply(response, false)
        }
        Request::TuneFrontier(request) => {
            // One admission slot for the WHOLE budget sweep, exactly as
            // a plain tune holds one slot across its rounds: the sweep
            // is one unit of admission however many steps it runs, and
            // every step's rounds interleave with concurrent jobs.
            let outcome = match shared.scheduler.admit() {
                Err(e) => RequestOutcome::reply(submit_error_response(e), false),
                Ok(slot) => {
                    let mut evaluator =
                        SchedulerEvaluator::new(&shared.scheduler, &slot, span.trace_ref());
                    let steps = request.sweep.values.len();
                    let mut sink = LineSink::with_id(writer, span.req_id);
                    let mut sink_dead = false;
                    let result = frontier::tune_frontier(&request, &mut evaluator, |i, step| {
                        let line = Response::TuneFrontierStep(FrontierStepSummary {
                            step: i,
                            steps,
                            result: step.clone(),
                        });
                        sink.send(&line).map_err(|_| {
                            sink_dead = true;
                            TuneError::Backend("client closed the stream".to_owned())
                        })
                    });
                    evaluator.fold_into(span);
                    match result {
                        Ok(report) => {
                            span.points = report.evaluations;
                            let done = Response::TuneFrontierDone(FrontierDoneSummary {
                                steps: report.steps.len(),
                                frontier: report.frontier,
                                evaluations: report.evaluations,
                                standalone_evaluations: report.standalone_evaluations,
                                cache_hits: report.cache_hits,
                                cache_misses: report.cache_misses,
                                exhaustive_points: report.exhaustive_points,
                            });
                            sink_dead = sink_dead || sink.send(&done).is_err();
                            RequestOutcome::Streamed { sink_dead }
                        }
                        // A pre-stream spec error is an ordinary error
                        // reply; a mid-stream failure terminates the
                        // stream with one error line (the framing rule
                        // allows it in place of `done`).
                        Err(e) if !sink_dead => {
                            let error = Response::Error {
                                message: e.to_string(),
                            };
                            let sink_dead = sink.send(&error).is_err();
                            RequestOutcome::Streamed { sink_dead }
                        }
                        Err(_) => RequestOutcome::Streamed { sink_dead: true },
                    }
                }
            };
            timed_flush(shared, span);
            outcome
        }
        Request::Frontier { dims, sqnr, stream } => {
            let feasible: Vec<FrontierEntry> = shared
                .cache
                .entries()
                .into_iter()
                .filter_map(|(point, outcome)| {
                    let result = *outcome.result()?;
                    Some(FrontierEntry { point, result })
                })
                .collect();
            let objectives: Vec<(usize, pareto::Objectives)> = feasible
                .iter()
                .enumerate()
                .map(|(i, e)| (i, pareto::Objectives::from(&e.result)))
                .collect();
            let keep = if dims == 2 {
                pareto::frontier_2d(&objectives)
            } else if sqnr {
                pareto::frontier_accuracy(&objectives)
            } else {
                pareto::frontier_3d(&objectives)
            };
            if stream {
                // The streaming variant: one entry per line through the
                // shared sink, then the terminal line. For very large
                // caches the client starts consuming the frontier while
                // the daemon is still writing it.
                let mut sink = LineSink::with_id(writer, span.req_id);
                let total = keep.len();
                for i in keep {
                    let line = Response::FrontierStreamEntry {
                        entry: feasible[i].clone(),
                    };
                    if sink.send(&line).is_err() {
                        return RequestOutcome::Streamed { sink_dead: true };
                    }
                }
                let done = Response::FrontierStreamDone {
                    dims,
                    entries: total,
                    degraded: false,
                };
                return RequestOutcome::Streamed {
                    sink_dead: sink.send(&done).is_err(),
                };
            }
            let entries = keep.into_iter().map(|i| feasible[i].clone()).collect();
            RequestOutcome::reply(
                Response::Frontier {
                    dims,
                    entries,
                    degraded: false,
                },
                false,
            )
        }
        Request::Stats => {
            // A scrape-adjacent path: refresh the gauges here too, so a
            // registry snapshot taken right after a `stats` reply agrees
            // with it even under a long sampler interval.
            shared.refresh_gauges();
            let stats = shared.cache.stats();
            RequestOutcome::reply(
                Response::Stats(ServerStats {
                    cached_points: shared.cache.len(),
                    hits: stats.hits,
                    misses: stats.misses,
                    hit_rate: stats.hit_rate(),
                    requests: shared.requests.load(Ordering::Relaxed),
                    active_jobs: shared.scheduler.active_jobs(),
                    queue_capacity: shared.scheduler.capacity(),
                    open_connections: shared.connections.load(Ordering::SeqCst),
                    max_connections: shared.max_connections,
                    threads: shared.threads,
                    loaded_from_disk: shared.loaded_from_disk,
                    persistent: shared.cache_file.is_some(),
                    uptime_s: shared.registry.uptime().as_secs_f64(),
                    // Includes this stats request itself — the session
                    // loop holds the in-flight gauge across the handler.
                    inflight_requests: shared.metrics.inflight.get().max(0.0) as usize,
                    queue_depth: shared.scheduler.queue_depth(),
                    slos: shared.slo.lock().expect("slo lock poisoned").len(),
                    slo_breach_ticks: shared.slo_breach_ticks.load(Ordering::Relaxed),
                    shards: Vec::new(),
                }),
                false,
            )
        }
        Request::Metrics => {
            // Scrape-time gauges: refreshed here as well as on sampler
            // ticks, so a scrape never reads values as stale as the
            // sampler interval.
            shared.refresh_gauges();
            // The daemon's own registry plus the process-global one:
            // dse/tuner-layer metrics (`dse_*`, `tuner_*`) record to
            // the global registry, and the name prefixes are disjoint
            // from the serve/sched families, so the merge is clean.
            let snapshot = shared
                .registry
                .snapshot()
                .merge(chain_nn_obs::global().snapshot());
            RequestOutcome::reply(Response::Metrics { snapshot }, false)
        }
        Request::MetricsHistory => {
            let history = shared.history.lock().expect("history lock poisoned");
            RequestOutcome::reply(
                Response::MetricsHistory(Box::new(build_history(&history))),
                false,
            )
        }
        Request::Watch { samples } => {
            // The second streaming request category: instead of N
            // precomputed result lines, one line per *sampler tick*,
            // pushed as the tick lands. No admission slot — a watcher
            // only reads the history ring, and a dashboard must not
            // occupy capacity a sweep could use.
            let mut sink = LineSink::with_id(writer, span.req_id);
            let mut last_seq = shared.history.lock().expect("history lock poisoned").seq();
            let mut sent: u64 = 0;
            while (samples == 0 || sent < samples) && !shared.shutdown.load(Ordering::SeqCst) {
                let next = {
                    let history = shared.history.lock().expect("history lock poisoned");
                    if history.seq() > last_seq {
                        last_seq = history.seq();
                        Some(build_watch_sample(&history, shared))
                    } else {
                        None
                    }
                };
                match next {
                    Some(sample) => {
                        if sink.send(&Response::WatchSample(Box::new(sample))).is_err() {
                            return RequestOutcome::Streamed { sink_dead: true };
                        }
                        sent += 1;
                        span.points = sent;
                    }
                    None => std::thread::sleep(Duration::from_millis(2)),
                }
            }
            let done = Response::WatchDone { samples: sent };
            RequestOutcome::Streamed {
                sink_dead: sink.send(&done).is_err(),
            }
        }
        Request::TraceQuery { id } => {
            let spans = obs_trace::spans();
            RequestOutcome::reply(
                Response::Trace {
                    id,
                    dropped: spans.dropped(),
                    spans: spans.for_trace(id),
                },
                false,
            )
        }
        Request::Dump => {
            let response = match &shared.flight_path {
                None => Response::Error {
                    message: "flight recorder disabled: start the daemon with --trace-log"
                        .to_owned(),
                },
                Some(path) => match write_flight_file(path, shared) {
                    Err(e) => Response::Error {
                        message: format!("flight dump failed: {e}"),
                    },
                    Ok(spans) => Response::Dump {
                        path: path.display().to_string(),
                        spans,
                        dropped: obs_trace::spans().dropped(),
                    },
                },
            };
            RequestOutcome::reply(response, false)
        }
        Request::Shutdown => {
            // Close admission *before* acknowledging, so nothing new
            // slips in between the reply and the accept loop noticing.
            shared.scheduler.begin_shutdown();
            RequestOutcome::reply(Response::Shutdown, true)
        }
    }
}

/// Per-request-type rows for one window: how many requests of each
/// type landed in it and their windowed latency quantiles. Types with
/// no traffic in the window are omitted — a dashboard shows what is
/// happening now, not every label ever seen.
fn type_windows(window: &Window) -> Vec<HistoryTypeWindow> {
    window
        .histogram_labels("serve_request_ns")
        .into_iter()
        .filter_map(|(_, labels)| {
            let kind = &labels.iter().find(|(k, _)| k == "type")?.1;
            let hist = window.histogram("serve_request_ns", &[("type", kind)])?;
            if hist.count() == 0 {
                return None;
            }
            Some(HistoryTypeWindow {
                kind: kind.clone(),
                requests: window.counter_delta("serve_requests_total", &[("type", kind)]),
                p50_us: hist.quantile(0.5) / 1e3,
                p99_us: hist.quantile(0.99) / 1e3,
            })
        })
        .collect()
}

/// The `metrics_history` reply: the ring's shape plus 1 s / 10 s / 60 s
/// windows, each with overall rates and per-type latency quantiles.
fn build_history(history: &TimeSeries) -> MetricsHistory {
    let windows = [1_u64, 10, 60]
        .into_iter()
        .map(|secs| {
            let window = history.window(Duration::from_secs(secs));
            HistoryWindow {
                window_s: secs as f64,
                duration_s: window.duration.as_secs_f64(),
                samples: window.samples,
                req_per_sec: window.family_rate("serve_requests_total"),
                points_per_sec: window.rate("sched_points_total", &[]),
                types: type_windows(&window),
            }
        })
        .collect();
    MetricsHistory {
        interval_s: history.interval().as_secs_f64(),
        samples: history.seq(),
        capacity: history.capacity(),
        windows,
    }
}

/// One `watch` stream line: the trailing-second window's rates and
/// quantiles plus instantaneous daemon state (in-flight, queue depth,
/// cache hit rate) read live at sample-build time.
fn build_watch_sample(history: &TimeSeries, shared: &Shared) -> WatchSample {
    let window = history.window(Duration::from_secs(1));
    WatchSample {
        seq: history.seq(),
        interval_s: history.interval().as_secs_f64(),
        window_s: window.duration.as_secs_f64(),
        req_per_sec: window.family_rate("serve_requests_total"),
        points_per_sec: window.rate("sched_points_total", &[]),
        inflight: shared.metrics.inflight.get().max(0.0) as u64,
        active_jobs: shared.scheduler.active_jobs() as u64,
        queue_depth: shared.scheduler.queue_depth() as u64,
        cache_hit_rate: shared.cache.stats().hit_rate(),
        requests_total: shared.requests.load(Ordering::Relaxed),
        queue_wait_p99_us: window
            .histogram_family("serve_queue_wait_ns")
            .quantile(0.99)
            / 1e3,
        execute_p99_us: window.histogram_family("serve_execute_ns").quantile(0.99) / 1e3,
        types: type_windows(&window),
    }
}

fn submit_error_response(e: SubmitError) -> Response {
    match e {
        SubmitError::Busy { active, capacity } => Response::Busy { active, capacity },
        SubmitError::ShuttingDown => Response::Error {
            message: "server is shutting down".to_owned(),
        },
    }
}

/// One flight-recorder registration: where the daemon's dump goes.
/// `Weak` so a finished server doesn't stay alive just because the
/// process-global hook once knew about it.
type FlightEntry = (PathBuf, Weak<Shared>);

/// Daemons registered for flight dumps. The panic hook walks this list
/// and writes each live daemon's flight file before the default hook
/// prints the backtrace.
static FLIGHT: OnceLock<Mutex<Vec<FlightEntry>>> = OnceLock::new();
/// Installs the panic hook at most once per process, chaining whatever
/// hook was already installed.
static FLIGHT_HOOK: Once = Once::new();

/// Arms the flight recorder for one daemon: remembers where its dump
/// goes and (first call only) installs a panic hook that writes every
/// registered daemon's flight file on the way down. Called from
/// [`Server::bind`] when `--trace-log` is configured.
fn register_flight_recorder(path: PathBuf, shared: &Arc<Shared>) {
    let daemons = FLIGHT.get_or_init(|| Mutex::new(Vec::new()));
    if let Ok(mut list) = daemons.lock() {
        list.retain(|(_, weak)| weak.strong_count() > 0);
        list.push((path, Arc::downgrade(shared)));
    }
    FLIGHT_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(daemons) = FLIGHT.get() {
                if let Ok(list) = daemons.lock() {
                    for (path, weak) in list.iter() {
                        if let Some(shared) = weak.upgrade() {
                            let _ = write_flight_file(path, &shared);
                        }
                    }
                }
            }
            previous(info);
        }));
    });
}

/// One span of the flight file. Unlike a `trace` reply (scoped to one
/// trace id), the flight dump spans every recent trace, so the trace id
/// is spelled out per span.
fn flight_span_json(s: &chain_nn_obs::trace::SpanRecord) -> Json {
    let mut json = crate::protocol::span_to_json(s);
    if let Json::Obj(fields) = &mut json {
        fields.insert(0, ("trace".into(), Json::Num(s.trace_id as f64)));
    }
    json
}

/// Writes the flight file: `{"dropped":N,"spans":[...],"metrics":[...]}`
/// — the span ring's recent contents (oldest first) plus a current
/// metrics snapshot, so a postmortem sees both what the daemon was
/// doing and what its counters said. Returns the span count written.
fn write_flight_file(path: &Path, shared: &Arc<Shared>) -> std::io::Result<usize> {
    let spans = obs_trace::spans();
    let mut records = spans.snapshot();
    records.sort_by_key(|s| (s.start_us, s.span_id));
    let snapshot = shared
        .registry
        .snapshot()
        .merge(chain_nn_obs::global().snapshot());
    let json = Json::Obj(vec![
        ("dropped".into(), Json::Num(spans.dropped() as f64)),
        (
            "spans".into(),
            Json::Arr(records.iter().map(flight_span_json).collect()),
        ),
        (
            "metrics".into(),
            Json::Arr(
                snapshot
                    .entries
                    .iter()
                    .map(crate::protocol::metric_entry_to_json)
                    .collect(),
            ),
        ),
    ]);
    let mut file = File::create(path)?;
    file.write_all(json.to_string().as_bytes())?;
    file.write_all(b"\n")?;
    Ok(records.len())
}

/// The daemon-side tuner evaluator: each round becomes one scheduler
/// job inside the tune's admission slot, so candidate evaluations share
/// the cache with (and interleave fairly against) every concurrent
/// sweep. Hit/miss accounting uses the per-job counters — global cache
/// deltas would count other clients' traffic.
struct SchedulerEvaluator<'a> {
    scheduler: &'a Scheduler,
    slot: &'a AdmissionSlot<'a>,
    /// The owning request's trace: each round records a `tune_round`
    /// span under the request's root, and the ref rides on the round's
    /// scheduler job so worker batch spans attach to the same trace.
    trace: Option<TraceRef>,
    hits: u64,
    misses: u64,
    /// Queue wait summed over this request's rounds (each round is one
    /// scheduler job, so a tune's span reports how long its rounds
    /// collectively sat behind other traffic).
    queue_wait: Duration,
    /// Execute time summed over this request's rounds.
    execute: Duration,
    /// Rounds run (scheduler jobs submitted and waited on).
    jobs: u64,
}

impl<'a> SchedulerEvaluator<'a> {
    fn new(scheduler: &'a Scheduler, slot: &'a AdmissionSlot<'a>, trace: Option<TraceRef>) -> Self {
        SchedulerEvaluator {
            scheduler,
            slot,
            trace,
            hits: 0,
            misses: 0,
            queue_wait: Duration::ZERO,
            execute: Duration::ZERO,
            jobs: 0,
        }
    }

    /// Copies the accumulated per-round timings and cache counters
    /// into the request's span once the tune/sweep is over.
    fn fold_into(&self, span: &mut RequestSpan) {
        span.queue_wait += self.queue_wait;
        span.execute += self.execute;
        span.cache_hits += self.hits;
        span.cache_misses += self.misses;
        span.jobs += self.jobs;
    }
}

impl MixEvaluator for SchedulerEvaluator<'_> {
    fn evaluate(
        &mut self,
        mix: &WorkloadMix,
        bases: &[DesignPoint],
    ) -> Result<Vec<MixOutcome>, TuneError> {
        let round_started = Instant::now();
        let points = evaluator::expand(mix, bases);
        let round_points = points.len();
        let handle = self
            .scheduler
            .submit_in_traced(self.slot, points, self.trace)
            .map_err(|e| match e {
                SubmitError::Busy { .. } => {
                    TuneError::Backend("scheduler refused an admitted round".to_owned())
                }
                SubmitError::ShuttingDown => {
                    TuneError::Backend("server is shutting down".to_owned())
                }
            })?;
        let job = handle.wait().map_err(TuneError::Eval)?;
        self.hits += job.cache_hits;
        self.misses += job.cache_misses;
        self.queue_wait += job.queue_wait;
        self.execute += job.execute;
        self.jobs += 1;
        if let Some(t) = self.trace {
            obs_trace::spans().record(&obs_trace::Span {
                trace_id: t.trace_id,
                span_id: obs_trace::next_span_id(),
                parent_id: t.parent_span,
                name: "tune_round",
                start: round_started,
                dur: round_started.elapsed(),
                worker: None,
                points: round_points.min(u32::MAX as usize) as u32,
            });
        }
        Ok(evaluator::collapse(mix, bases, &job.outcomes))
    }

    fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A transport stand-in that records, at every flush, how many
    /// admitted jobs the scheduler still holds. A streamed line
    /// flushing while the request's admission slot is live proves the
    /// line reached the transport *before* the request completed —
    /// the deterministic form of "the first step line arrives before
    /// the last step finishes".
    struct Probe {
        shared: Arc<Shared>,
        buffer: Vec<u8>,
        lines: Vec<String>,
        active_at_flush: Vec<usize>,
    }

    impl Probe {
        fn new(shared: &Arc<Shared>) -> Self {
            Probe {
                shared: Arc::clone(shared),
                buffer: Vec::new(),
                lines: Vec::new(),
                active_at_flush: Vec::new(),
            }
        }
    }

    impl Write for Probe {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.buffer.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            self.active_at_flush
                .push(self.shared.scheduler.active_jobs());
            while let Some(pos) = self.buffer.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buffer.drain(..=pos).collect();
                self.lines.push(
                    String::from_utf8(line)
                        .expect("utf-8")
                        .trim_end()
                        .to_owned(),
                );
            }
            Ok(())
        }
    }

    fn with_workers<R>(shared: &Arc<Shared>, body: impl FnOnce() -> R) -> R {
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let s = Arc::clone(shared);
                scope.spawn(move || s.scheduler.worker_loop());
            }
            let out = body();
            shared.scheduler.begin_shutdown();
            out
        })
    }

    /// Drives one request line through the same span + record path the
    /// session loop uses, returning the outcome.
    fn handle_instrumented(line: &str, shared: &Arc<Shared>) -> RequestOutcome {
        let received = Instant::now();
        let mut span = RequestSpan::new(shared.next_request_id.fetch_add(1, Ordering::Relaxed));
        let outcome = handle_request(line, shared, &mut Probe::new(shared), &mut span);
        let status = match &outcome {
            RequestOutcome::Reply(response, _) => match **response {
                Response::Error { .. } => "error",
                Response::Busy { .. } => "busy",
                _ => "ok",
            },
            RequestOutcome::Streamed { sink_dead } => {
                if *sink_dead {
                    "disconnect"
                } else {
                    "ok"
                }
            }
        };
        record_span(shared, &span, status, received, received.elapsed());
        outcome
    }

    #[test]
    fn metrics_reply_reconciles_with_the_requests_made() {
        let server = Server::bind(ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        })
        .expect("bind");
        let shared = Arc::clone(&server.shared);
        let snapshot = with_workers(&shared, || {
            let eval = r#"{"type":"eval","point":{"pes":288}}"#;
            for _ in 0..3 {
                assert!(matches!(
                    handle_instrumented(eval, &shared),
                    RequestOutcome::Reply(r, false) if matches!(*r, Response::Eval { .. })
                ));
            }
            let sweep = r#"{"type":"sweep","spec":{"pes":[144,288],"nets":"lenet"}}"#;
            assert!(matches!(
                handle_instrumented(sweep, &shared),
                RequestOutcome::Reply(r, false) if matches!(*r, Response::Sweep(_))
            ));
            match handle_instrumented(r#"{"type":"metrics"}"#, &shared) {
                RequestOutcome::Reply(r, false) => match *r {
                    Response::Metrics { snapshot } => snapshot,
                    other => panic!("expected a metrics reply, got {other:?}"),
                },
                _ => panic!("expected a metrics reply"),
            }
        });
        let eval_labels: &[(&str, &str)] = &[("type", "eval")];
        assert_eq!(
            snapshot.counter("serve_requests_total", eval_labels),
            Some(3)
        );
        assert_eq!(
            snapshot.counter("serve_requests_total", &[("type", "sweep")]),
            Some(1)
        );
        let latency = snapshot
            .histogram("serve_request_ns", eval_labels)
            .expect("eval latency histogram");
        assert_eq!(latency.count, 3);
        assert!(latency.p50 > 0.0 && latency.p99 >= latency.p50);
        let execute = snapshot
            .histogram("serve_execute_ns", eval_labels)
            .expect("eval execute histogram");
        assert_eq!(execute.count, 3);
        // The scheduler-side metrics live in the same (private)
        // registry: the first (cold) eval + the 2-point sweep → 3
        // scheduled points; the two warm repeat evals were answered
        // inline from the cache and never entered the scheduler.
        assert_eq!(snapshot.counter("sched_points_total", &[]), Some(3));
        // Scrape-time gauges were sampled into the snapshot.
        assert!(snapshot.gauge("serve_uptime_seconds", &[]).expect("uptime") > 0.0);
        assert_eq!(
            snapshot.gauge("cache_points", &[]),
            Some(shared.cache.len() as f64)
        );
        // Two daemons must not share request counters: a fresh one
        // starts at zero even in this same process.
        let other = Server::bind(ServerConfig::default()).expect("bind");
        assert!(other
            .shared
            .registry
            .snapshot()
            .counter("serve_requests_total", eval_labels)
            .is_none());
    }

    #[test]
    fn trace_log_records_one_line_per_request_with_phase_timings() {
        let dir = std::env::temp_dir().join(format!("chain-nn-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("trace.jsonl");
        let server = Server::bind(ServerConfig {
            threads: 2,
            trace_log: Some(path.clone()),
            ..ServerConfig::default()
        })
        .expect("bind");
        let shared = Arc::clone(&server.shared);
        with_workers(&shared, || {
            let eval = r#"{"type":"eval","point":{"pes":288}}"#;
            assert!(matches!(
                handle_instrumented(eval, &shared),
                RequestOutcome::Reply(r, false) if matches!(*r, Response::Eval { .. })
            ));
            assert!(matches!(
                handle_instrumented("not json", &shared),
                RequestOutcome::Reply(r, false) if matches!(*r, Response::Error { .. })
            ));
        });
        let trace = std::fs::read_to_string(&path).expect("trace file");
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 2, "{trace}");
        assert!(lines[0].contains("\"type\":\"eval\"") && lines[0].contains("\"status\":\"ok\""));
        assert!(lines[0].contains("\"queue_wait_us\":") && lines[0].contains("\"execute_us\":"));
        assert!(lines[0].contains("\"jobs\":1") && lines[0].contains("\"points\":1"));
        assert!(
            lines[1].contains("\"type\":\"parse_error\"")
                && lines[1].contains("\"status\":\"error\"")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tune_frontier_streams_each_step_before_the_sweep_finishes() {
        let server = Server::bind(ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        })
        .expect("bind");
        let shared = Arc::clone(&server.shared);
        let probe = with_workers(&shared, || {
            let mut probe = Probe::new(&shared);
            let request = r#"{"type":"tune_frontier","sweep":{"axis":"max_system_mw","values":[450,500,550,600]}}"#;
            let outcome = handle_request(request, &shared, &mut probe, &mut RequestSpan::new(0));
            assert!(matches!(
                outcome,
                RequestOutcome::Streamed { sink_dead: false }
            ));
            probe
        });
        // 4 step lines then the done line, each flushed individually.
        assert_eq!(probe.lines.len(), 5, "{:?}", probe.lines);
        assert_eq!(probe.active_at_flush.len(), 5);
        for (i, line) in probe.lines.iter().take(4).enumerate() {
            match Response::decode(line).expect("step line decodes") {
                Response::TuneFrontierStep(step) => {
                    assert_eq!(step.step, i);
                    assert_eq!(step.steps, 4);
                }
                other => panic!("expected a step line, got {other:?}"),
            }
            // The sweep's admission slot was still held when this line
            // was flushed: the line left before the sweep completed.
            assert_eq!(probe.active_at_flush[i], 1, "line {i} was not streamed");
        }
        match Response::decode(&probe.lines[4]).expect("done line decodes") {
            Response::TuneFrontierDone(done) => {
                assert_eq!(done.steps, 4);
                assert!(done.evaluations > 0);
                assert!(done.evaluations < done.standalone_evaluations);
            }
            other => panic!("expected the done line, got {other:?}"),
        }
        assert_eq!(shared.scheduler.active_jobs(), 0, "slot released");
    }

    #[test]
    fn streaming_frontier_shares_the_line_sink_framing() {
        let server = Server::bind(ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        })
        .expect("bind");
        let shared = Arc::clone(&server.shared);
        let (aggregate, probe) = with_workers(&shared, || {
            // Prime the cache with a few points.
            let mut warmup = Probe::new(&shared);
            let sweep = r#"{"type":"sweep","spec":{"pes":[144,288,576],"nets":"lenet"}}"#;
            assert!(matches!(
                handle_request(sweep, &shared, &mut warmup, &mut RequestSpan::new(0)),
                RequestOutcome::Reply(r, false) if matches!(*r, Response::Sweep(_))
            ));
            // Aggregate and streamed variants must agree entry for entry.
            let aggregate = match handle_request(
                r#"{"type":"frontier","dims":3}"#,
                &shared,
                &mut Probe::new(&shared),
                &mut RequestSpan::new(0),
            ) {
                RequestOutcome::Reply(r, false) => match *r {
                    Response::Frontier { entries, .. } => entries,
                    other => panic!("expected a frontier reply, got {other:?}"),
                },
                _ => panic!("expected a frontier reply"),
            };
            let mut probe = Probe::new(&shared);
            let outcome = handle_request(
                r#"{"type":"frontier","dims":3,"stream":true}"#,
                &shared,
                &mut probe,
                &mut RequestSpan::new(0),
            );
            assert!(matches!(
                outcome,
                RequestOutcome::Streamed { sink_dead: false }
            ));
            (aggregate, probe)
        });
        assert_eq!(probe.lines.len(), aggregate.len() + 1);
        for (line, expected) in probe.lines.iter().zip(&aggregate) {
            match Response::decode(line).expect("entry line decodes") {
                Response::FrontierStreamEntry { entry } => assert_eq!(&entry, expected),
                other => panic!("expected an entry line, got {other:?}"),
            }
        }
        match Response::decode(probe.lines.last().expect("done line")).expect("decodes") {
            Response::FrontierStreamDone { dims, entries, .. } => {
                assert_eq!(dims, 3);
                assert_eq!(entries, aggregate.len());
            }
            other => panic!("expected the done line, got {other:?}"),
        }
    }

    #[test]
    fn watch_streams_samples_then_done_while_a_slot_is_held() {
        let server = Server::bind(ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        })
        .expect("bind");
        let shared = Arc::clone(&server.shared);
        let probe = with_workers(&shared, || {
            shared.take_sample(); // baseline: the next tick carries deltas
            let eval = r#"{"type":"eval","point":{"pes":288}}"#;
            for _ in 0..3 {
                assert!(matches!(
                    handle_instrumented(eval, &shared),
                    RequestOutcome::Reply(r, false) if matches!(*r, Response::Eval { .. })
                ));
            }
            // A held admission slot stands in for a sweep mid-flight:
            // the watcher's lines must flush while it is live, proving
            // watch reports on work still in progress.
            let slot = shared.scheduler.admit().expect("admission slot");
            let probe = std::thread::scope(|s| {
                let watcher = s.spawn(|| {
                    let mut probe = Probe::new(&shared);
                    let outcome = handle_request(
                        r#"{"type":"watch","samples":2}"#,
                        &shared,
                        &mut probe,
                        &mut RequestSpan::new(0),
                    );
                    assert!(matches!(
                        outcome,
                        RequestOutcome::Streamed { sink_dead: false }
                    ));
                    probe
                });
                // Drive the sampler by hand — deterministic ticks
                // instead of a real 250 ms cadence.
                while !watcher.is_finished() {
                    shared.take_sample();
                    std::thread::sleep(Duration::from_millis(2));
                }
                watcher.join().expect("watcher thread")
            });
            drop(slot);
            probe
        });
        // 2 sample lines then the done line, each flushed individually
        // while the admission slot was still held.
        assert_eq!(probe.lines.len(), 3, "{:?}", probe.lines);
        let mut prev_seq = 0;
        for (i, line) in probe.lines.iter().take(2).enumerate() {
            match Response::decode(line).expect("sample line decodes") {
                Response::WatchSample(sample) => {
                    assert!(sample.seq > prev_seq, "seq must be monotonic");
                    prev_seq = sample.seq;
                    assert!(sample.active_jobs >= 1, "slot live during sample {i}");
                }
                other => panic!("expected a watch sample, got {other:?}"),
            }
            assert!(
                probe.active_at_flush[i] >= 1,
                "line {i} was not flushed while the slot was live"
            );
        }
        match Response::decode(&probe.lines[2]).expect("done line decodes") {
            Response::WatchDone { samples } => assert_eq!(samples, 2),
            other => panic!("expected the done line, got {other:?}"),
        }
        // The first sample's window saw the eval burst: nonzero rate,
        // an eval row with the right count and a real latency quantile.
        let Response::WatchSample(first) = Response::decode(&probe.lines[0]).expect("decodes")
        else {
            unreachable!()
        };
        assert!(first.req_per_sec > 0.0);
        let eval_row = first
            .types
            .iter()
            .find(|t| t.kind == "eval")
            .expect("eval row in the first sample");
        assert_eq!(eval_row.requests, 3);
        assert!(eval_row.p99_us > 0.0 && eval_row.p99_us >= eval_row.p50_us);
    }

    #[test]
    fn metrics_history_reports_windowed_rates() {
        let server = Server::bind(ServerConfig {
            threads: 2,
            ..ServerConfig::default()
        })
        .expect("bind");
        let shared = Arc::clone(&server.shared);
        with_workers(&shared, || {
            shared.take_sample();
            let eval = r#"{"type":"eval","point":{"pes":288}}"#;
            for _ in 0..2 {
                handle_instrumented(eval, &shared);
            }
            shared.take_sample();
        });
        let history = match handle_instrumented(r#"{"type":"metrics_history"}"#, &shared) {
            RequestOutcome::Reply(r, false) => match *r {
                Response::MetricsHistory(h) => h,
                other => panic!("expected a history reply, got {other:?}"),
            },
            _ => panic!("expected a history reply"),
        };
        assert_eq!(history.samples, 1);
        assert_eq!(history.capacity, 256);
        assert_eq!(history.windows.len(), 3);
        let one_second = &history.windows[0];
        assert_eq!(one_second.window_s, 1.0);
        assert!(one_second.req_per_sec > 0.0);
        assert!(one_second.points_per_sec > 0.0);
        let eval_row = one_second
            .types
            .iter()
            .find(|t| t.kind == "eval")
            .expect("eval row");
        assert_eq!(eval_row.requests, 2);
    }

    #[test]
    fn trace_log_rotates_at_the_size_cap_keeping_one_predecessor() {
        let dir =
            std::env::temp_dir().join(format!("chain-nn-trace-rotate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("trace.jsonl");
        let server = Server::bind(ServerConfig {
            threads: 2,
            trace_log: Some(path.clone()),
            // Roughly one stats trace line per file: every append
            // rotates, exercising the boundary repeatedly.
            trace_max_bytes: 256,
            slow_log_us: Some(0),
            ..ServerConfig::default()
        })
        .expect("bind");
        let shared = Arc::clone(&server.shared);
        with_workers(&shared, || {
            for _ in 0..8 {
                assert!(matches!(
                    handle_instrumented(r#"{"type":"stats"}"#, &shared),
                    RequestOutcome::Reply(r, false) if matches!(*r, Response::Stats(_))
                ));
            }
        });
        let rotated_path = {
            let mut p = path.clone().into_os_string();
            p.push(".1");
            PathBuf::from(p)
        };
        let current = std::fs::read_to_string(&path).expect("live trace file");
        let rotated = std::fs::read_to_string(&rotated_path).expect("rotated trace file");
        let id_of = |line: &str| -> u64 {
            let rest = line.strip_prefix("{\"id\":").expect("complete record");
            rest[..rest.find(',').expect("comma after id")]
                .parse()
                .expect("numeric id")
        };
        // Both files hold only complete records, with a 0-µs slow
        // threshold every request is flagged, and ids are contiguous
        // across the rotation boundary up to the newest request.
        for line in current.lines().chain(rotated.lines()) {
            assert!(line.ends_with('}'), "torn record: {line}");
            assert!(line.contains("\"slow\":true"), "unflagged: {line}");
        }
        let newest = current.lines().last().expect("live file has lines");
        assert_eq!(id_of(newest), 8, "newest id is the request count");
        let first_current = id_of(current.lines().next().expect("first line"));
        let last_rotated = id_of(rotated.lines().last().expect("rotated has lines"));
        assert_eq!(last_rotated + 1, first_current, "rotation split the ids");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_log_cap_zero_never_rotates() {
        let dir =
            std::env::temp_dir().join(format!("chain-nn-trace-norotate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("trace.jsonl");
        let server = Server::bind(ServerConfig {
            threads: 2,
            trace_log: Some(path.clone()),
            // 0 = no rotation: the file must grow without bound even
            // though every line exceeds the "cap".
            trace_max_bytes: 0,
            ..ServerConfig::default()
        })
        .expect("bind");
        let shared = Arc::clone(&server.shared);
        with_workers(&shared, || {
            for _ in 0..8 {
                assert!(matches!(
                    handle_instrumented(r#"{"type":"stats"}"#, &shared),
                    RequestOutcome::Reply(r, false) if matches!(*r, Response::Stats(_))
                ));
            }
        });
        let rotated_path = {
            let mut p = path.clone().into_os_string();
            p.push(".1");
            PathBuf::from(p)
        };
        let current = std::fs::read_to_string(&path).expect("live trace file");
        assert_eq!(current.lines().count(), 8, "every request in one file");
        assert!(
            !rotated_path.exists(),
            "cap 0 must never create a rotated predecessor"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slow_log_flags_only_requests_over_the_threshold() {
        let dir = std::env::temp_dir().join(format!("chain-nn-slow-log-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("trace.jsonl");
        let server = Server::bind(ServerConfig {
            threads: 2,
            trace_log: Some(path.clone()),
            // An hour: nothing in this test can cross it.
            slow_log_us: Some(3_600_000_000),
            ..ServerConfig::default()
        })
        .expect("bind");
        let shared = Arc::clone(&server.shared);
        with_workers(&shared, || {
            handle_instrumented(r#"{"type":"eval","point":{"pes":288}}"#, &shared);
            handle_instrumented(r#"{"type":"stats"}"#, &shared);
        });
        let trace = std::fs::read_to_string(&path).expect("trace file");
        assert_eq!(trace.lines().count(), 2);
        assert!(!trace.contains("\"slow\""), "nothing crossed an hour");
        assert!(shared
            .registry
            .snapshot()
            .counter("serve_slow_requests_total", &[("type", "eval")])
            .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
