//! Latency service-level objectives for the serving daemon.
//!
//! An SLO names a request type, a latency quantile and a target in
//! microseconds — `eval:p99_us=500` reads "the windowed p99 of `eval`
//! requests stays at or under 500 µs". The daemon's sampler thread
//! evaluates every configured SLO once per tick against the trailing
//! [`SLO_WINDOW`] of its metrics history (windowed quantiles, not
//! since-boot ones: a spike shows up within seconds and ages out the
//! same way), and publishes four gauges plus a breach counter per SLO
//! into the daemon registry, so both `metrics` and the Prometheus
//! text exposition carry them:
//!
//! ```text
//! slo_target_us{slo="eval:p99_us=500"}                the target
//! slo_current_us{slo="eval:p99_us=500"}               windowed quantile now
//! slo_compliant{slo="eval:p99_us=500"}                1 in / 0 out of compliance
//! slo_error_budget_remaining{slo="eval:p99_us=500"}   1 full .. 0 exhausted
//! slo_breach_ticks_total{slo="eval:p99_us=500"}       ticks out of compliance
//! ```
//!
//! The error budget follows the classic SRE definition over sampler
//! ticks: with an allowed violation fraction of
//! [`ALLOWED_VIOLATION_FRACTION`] (1 %, i.e. a 99 % compliance
//! objective), `remaining = 1 − (violated_ticks / total_ticks) / 0.01`,
//! clamped at 0 once overspent. A window with no traffic of the SLO's
//! type is vacuously compliant — an idle daemon does not burn budget.

use std::fmt;
use std::time::Duration;

use chain_nn_obs::timeseries::TimeSeries;
use chain_nn_obs::Registry;

/// Trailing window SLOs are evaluated over.
pub const SLO_WINDOW: Duration = Duration::from_secs(10);

/// Fraction of sampler ticks an SLO may spend out of compliance
/// before its error budget is exhausted (a 99 % compliance objective).
pub const ALLOWED_VIOLATION_FRACTION: f64 = 0.01;

/// One parsed SLO target: `<type>:p<QQ>_us=<target>`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Request type the SLO constrains (`eval`, `sweep`, ...).
    pub kind: String,
    /// Quantile in `(0, 1)` (wire form `p50`/`p95`/`p99`/...).
    pub quantile: f64,
    /// Latency target in microseconds.
    pub target_us: f64,
}

impl SloSpec {
    /// Parses one `eval:p99_us=500` spec.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed part.
    pub fn parse(text: &str) -> Result<SloSpec, String> {
        let text = text.trim();
        let (kind, rest) = text
            .split_once(':')
            .ok_or_else(|| format!("SLO '{text}' needs the form type:pQQ_us=target"))?;
        if kind.is_empty() {
            return Err(format!("SLO '{text}' has an empty request type"));
        }
        let (metric, target) = rest
            .split_once('=')
            .ok_or_else(|| format!("SLO '{text}' needs '=target_us' after the quantile"))?;
        let digits = metric
            .strip_prefix('p')
            .and_then(|m| m.strip_suffix("_us"))
            .ok_or_else(|| format!("SLO '{text}': quantile must look like p99_us"))?;
        let percent: u32 = digits
            .parse()
            .map_err(|_| format!("SLO '{text}': quantile 'p{digits}' is not a number"))?;
        if !(1..=99).contains(&percent) {
            return Err(format!("SLO '{text}': quantile must be p1..=p99"));
        }
        let target_us: f64 = target
            .parse()
            .map_err(|_| format!("SLO '{text}': target '{target}' is not a number"))?;
        if !target_us.is_finite() || target_us <= 0.0 {
            return Err(format!("SLO '{text}': target must be a positive number"));
        }
        Ok(SloSpec {
            kind: kind.to_owned(),
            quantile: f64::from(percent) / 100.0,
            target_us,
        })
    }

    /// Parses a comma-separated SLO list (the `--slo` flag value).
    ///
    /// # Errors
    ///
    /// The first malformed entry's message.
    pub fn parse_list(text: &str) -> Result<Vec<SloSpec>, String> {
        text.split(',')
            .filter(|part| !part.trim().is_empty())
            .map(SloSpec::parse)
            .collect()
    }
}

impl fmt::Display for SloSpec {
    /// The canonical spec string, also used as the `slo` label value.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:p{}_us={}",
            self.kind,
            (self.quantile * 100.0).round() as u32,
            self.target_us
        )
    }
}

struct SloStatus {
    spec: SloSpec,
    label: String,
    ticks: u64,
    violations: u64,
}

/// Per-daemon SLO evaluation state: the parsed specs plus each one's
/// tick/violation tally. Driven once per sampler tick by the daemon;
/// publishes its verdicts as registry gauges.
pub struct SloTracker {
    slos: Vec<SloStatus>,
}

impl SloTracker {
    /// A tracker over the given specs (empty is fine: evaluation is a
    /// no-op).
    #[must_use]
    pub fn new(specs: Vec<SloSpec>) -> SloTracker {
        SloTracker {
            slos: specs
                .into_iter()
                .map(|spec| SloStatus {
                    label: spec.to_string(),
                    spec,
                    ticks: 0,
                    violations: 0,
                })
                .collect(),
        }
    }

    /// Number of SLOs tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slos.len()
    }

    /// Whether no SLO is configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slos.is_empty()
    }

    /// Evaluates every SLO against the trailing [`SLO_WINDOW`] of
    /// `history`, updates the `slo_*` gauges in `registry`, and
    /// returns whether at least one SLO is out of compliance this
    /// tick. A window holding no requests of an SLO's type counts as
    /// compliant.
    pub fn evaluate(&mut self, history: &TimeSeries, registry: &Registry) -> bool {
        if self.slos.is_empty() {
            return false;
        }
        let window = history.window(SLO_WINDOW);
        let mut any_breach = false;
        for slo in &mut self.slos {
            let current_us = window
                .histogram("serve_request_ns", &[("type", &slo.spec.kind)])
                .filter(|h| h.count() > 0)
                .map(|h| h.quantile(slo.spec.quantile) / 1_000.0);
            let violated = current_us.is_some_and(|us| us > slo.spec.target_us);
            slo.ticks += 1;
            if violated {
                slo.violations += 1;
                any_breach = true;
            }
            let burn = (slo.violations as f64 / slo.ticks as f64) / ALLOWED_VIOLATION_FRACTION;
            let labels = &[("slo", slo.label.as_str())];
            registry
                .gauge_with("slo_target_us", labels)
                .set(slo.spec.target_us);
            registry
                .gauge_with("slo_current_us", labels)
                .set(current_us.unwrap_or(0.0));
            registry
                .gauge_with("slo_compliant", labels)
                .set(if violated { 0.0 } else { 1.0 });
            registry
                .gauge_with("slo_error_budget_remaining", labels)
                .set((1.0 - burn).max(0.0));
            if violated {
                registry
                    .counter_with("slo_breach_ticks_total", labels)
                    .inc();
            }
        }
        any_breach
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    const TICK: Duration = Duration::from_millis(250);

    #[test]
    fn specs_parse_and_round_trip_through_display() {
        let slo = SloSpec::parse("eval:p99_us=500").unwrap();
        assert_eq!(slo.kind, "eval");
        assert_eq!(slo.quantile, 0.99);
        assert_eq!(slo.target_us, 500.0);
        assert_eq!(slo.to_string(), "eval:p99_us=500");
        assert_eq!(SloSpec::parse(&slo.to_string()).unwrap(), slo);

        let list = SloSpec::parse_list("eval:p50_us=200, sweep:p95_us=30000").unwrap();
        assert_eq!(list.len(), 2);
        assert_eq!(list[1].kind, "sweep");
        assert_eq!(list[1].quantile, 0.95);
        assert!(SloSpec::parse_list("").unwrap().is_empty());
    }

    #[test]
    fn malformed_specs_are_rejected_with_reasons() {
        for bad in [
            "eval",
            "eval:p99_us",
            ":p99_us=500",
            "eval:q99_us=500",
            "eval:p99=500",
            "eval:pfast_us=500",
            "eval:p0_us=500",
            "eval:p100_us=500",
            "eval:p99_us=warp",
            "eval:p99_us=-5",
            "eval:p99_us=0",
        ] {
            assert!(SloSpec::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn evaluation_tracks_compliance_and_burns_error_budget() {
        let registry = Registry::new();
        let latency = registry.histogram_with("serve_request_ns", &[("type", "eval")]);
        let mut history = TimeSeries::new(TICK, 64);
        history.sample_after(&registry, TICK); // baseline
        let mut tracker = SloTracker::new(vec![SloSpec::parse("eval:p99_us=500").unwrap()]);
        assert_eq!(tracker.len(), 1);
        let labels: &[(&str, &str)] = &[("slo", "eval:p99_us=500")];

        // Tick 1: all requests well under target (100 µs = 100_000 ns).
        for _ in 0..10 {
            latency.record(100_000);
        }
        history.sample_after(&registry, TICK);
        assert!(!tracker.evaluate(&history, &registry));
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("slo_compliant", labels), Some(1.0));
        assert_eq!(snap.gauge("slo_target_us", labels), Some(500.0));
        assert_eq!(snap.gauge("slo_current_us", labels), Some(100.0));
        assert_eq!(snap.gauge("slo_error_budget_remaining", labels), Some(1.0));
        assert_eq!(snap.counter("slo_breach_ticks_total", labels), None);

        // Tick 2: a latency spike (4 ms) blows straight through p99.
        for _ in 0..10 {
            latency.record(4_000_000);
        }
        history.sample_after(&registry, TICK);
        assert!(tracker.evaluate(&history, &registry));
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("slo_compliant", labels), Some(0.0));
        assert_eq!(snap.gauge("slo_current_us", labels), Some(4_000.0));
        // 1 of 2 ticks violated with a 1% allowance: budget is gone.
        assert_eq!(snap.gauge("slo_error_budget_remaining", labels), Some(0.0));
        assert_eq!(snap.counter("slo_breach_ticks_total", labels), Some(1));

        // The spike stays in the 10 s window on the very next tick —
        // windowed SLOs react to recent history, not just the last
        // interval.
        history.sample_after(&registry, TICK);
        assert!(tracker.evaluate(&history, &registry));

        // Once the spike ages out of the window entirely (40 quiet
        // ticks × 250 ms > 10 s), an idle daemon is vacuously
        // compliant — current reads 0 (nothing to measure) — but
        // spent budget stays spent.
        for _ in 0..41 {
            history.sample_after(&registry, TICK);
        }
        assert!(!tracker.evaluate(&history, &registry));
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("slo_compliant", labels), Some(1.0));
        assert_eq!(snap.gauge("slo_current_us", labels), Some(0.0));
        assert_eq!(snap.counter("slo_breach_ticks_total", labels), Some(2));
        assert_eq!(snap.gauge("slo_error_budget_remaining", labels), Some(0.0));
    }

    #[test]
    fn an_empty_tracker_is_a_no_op() {
        let registry = Registry::new();
        let mut history = TimeSeries::new(TICK, 4);
        history.sample_after(&registry, TICK);
        history.sample_after(&registry, TICK);
        let mut tracker = SloTracker::new(vec![]);
        assert!(tracker.is_empty());
        assert!(!tracker.evaluate(&history, &registry));
        assert!(registry.snapshot().entries.is_empty());
    }
}
