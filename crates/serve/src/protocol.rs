//! The explorer serving protocol: typed requests/responses and their
//! line-delimited JSON wire form.
//!
//! One connection carries any number of requests; each request is one
//! `\n`-terminated JSON object and produces exactly one
//! `\n`-terminated JSON object in reply, in order. Both the daemon
//! ([`crate::server`]) and the client ([`crate::client`]) use this
//! module, so encode/decode cannot drift apart.
//!
//! Requests (`"type"` selects the operation):
//!
//! ```text
//! {"type":"eval","point":{...}}          evaluate one design point
//! {"type":"sweep","spec":{...}}          evaluate a SweepSpec grid
//! {"type":"tune","space":{...},"mix":{...},"budget":{...},...}
//!                                        budget-constrained search
//! {"type":"tune_frontier",...,"sweep":{"axis":"max_system_mw","values":[...]}}
//!                                        budget-axis sweep, streamed
//! {"type":"frontier","dims":2|3}         Pareto frontier of the whole cache
//! {"type":"frontier","dims":3,"axes":"sqnr"}
//!                                        accuracy variant: fps × mW × SQNR
//! {"type":"frontier","dims":3,"stream":true}
//!                                        one entry per line + a done line
//! {"type":"stats"}                       cache/server counters
//! {"type":"metrics"}                     full observability snapshot
//! {"type":"metrics_history"}             windowed rates/quantiles (1s/10s/60s)
//! {"type":"watch","samples":5}           one sample line per interval, streamed
//! {"type":"shutdown"}                    drain, flush, exit
//! ```
//!
//! Most requests produce exactly one reply line. The **streaming**
//! requests (`tune_frontier`, `frontier` with `"stream":true`, and
//! `watch`) instead produce N result lines followed by one terminal
//! `done` line, each flushed as it is produced — see
//! `docs/PROTOCOL.md` for the framing rule.
//!
//! # Example
//!
//! The typed codec round-trips every shape; this is the entry point
//! both sides share:
//!
//! ```
//! use chain_nn_serve::protocol::{Request, Response};
//!
//! let request = Request::decode(r#"{"type":"eval","point":{"pes":288}}"#).unwrap();
//! let Request::Eval(point) = &request else { panic!("not an eval") };
//! assert_eq!(point.pes, 288);
//! assert_eq!(Request::decode(&request.encode()).unwrap(), request);
//!
//! let reply = Response::decode(r#"{"ok":false,"error":"busy","active":16,"capacity":16}"#);
//! assert!(matches!(reply.unwrap(), Response::Busy { active: 16, capacity: 16 }));
//! ```
//!
//! The complete wire reference — every request/response shape, the
//! `sqnr` fields, `busy` backpressure and the `tune` admission-slot
//! semantics — lives in `docs/PROTOCOL.md`.
//!
//! A `tune` request's fields are all optional: `space` defaults to the
//! default exploration grid, `mix` (an object of `net: weight` pairs,
//! or a `"net:w,net:w"` string) to single-AlexNet, `budget`
//! (`max_system_mw` / `max_gates_k` / `min_fps` / `min_sqnr_db`) to
//! unconstrained, `objective` (a metric name, an array of names for
//! lexicographic order, or `{"scalarized":{name: weight}}`) to
//! fps-then-power-then-gates, `strategy` to `"halving"`, `seed` to 0.
//!
//! A `point` object may omit any field, which then defaults to the
//! paper's AlexNet configuration; a `spec` object's axes default to the
//! single paper point per axis, and each axis accepts either a scalar
//! or an array. Responses always carry `"ok"` (`true`/`false`); `ok:
//! false` responses are either `"busy"` (backpressure — retry later) or
//! `"error"` (the request is at fault).

use std::fmt;

use chain_nn_dse::pareto::Objectives;
use chain_nn_dse::{
    DesignPoint, MixEntry, MixResult, PointOutcome, PointResult, SweepPart, SweepSpec, WorkloadMix,
};
use chain_nn_obs::trace::{SpanRecord, TraceContext};
use chain_nn_obs::{HistogramSummary, MetricEntry, MetricValue, Snapshot};
use chain_nn_tuner::{
    Budget, BudgetAxis, BudgetSweep, FrontierStep, FrontierTuneRequest, Metric, Objective,
    StrategyKind, TuneRequest, Tuned,
};

use crate::json::Json;

/// Malformed wire data (unparseable JSON, missing/mistyped fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "protocol error: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn bad(msg: impl Into<String>) -> ProtocolError {
    ProtocolError(msg.into())
}

/// One client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Evaluate one design point.
    Eval(DesignPoint),
    /// Evaluate an explicit list of design points in one round trip,
    /// returning outcomes aligned with the list. This is the cluster
    /// coordinator's scatter-gather primitive: a tune round's expanded
    /// points are hash-partitioned, each shard evaluates its slice as
    /// one `eval_batch`, and the replies reassemble in order.
    EvalBatch(Vec<DesignPoint>),
    /// Evaluate a whole sweep grid.
    Sweep(SweepSpec),
    /// Budget-constrained search of a grid for a workload mix (boxed:
    /// a tune request carries a full spec plus mix/budget/objective).
    Tune(Box<TuneRequest>),
    /// Budget-axis sweep returning the whole constrained frontier — a
    /// **streaming** request: one [`Response::TuneFrontierStep`] line
    /// per budget step as it completes, then one
    /// [`Response::TuneFrontierDone`] line.
    TuneFrontier(Box<FrontierTuneRequest>),
    /// The Pareto frontier over everything the daemon has cached.
    Frontier {
        /// 2 (fps × power) or 3 (fps × power × area).
        dims: u8,
        /// With `dims == 3`: swap the area axis for measured SQNR
        /// (fps × power × accuracy). Wire form: `"axes":"sqnr"`.
        sqnr: bool,
        /// Stream the frontier as one [`Response::FrontierStreamEntry`]
        /// line per entry plus a [`Response::FrontierStreamDone`] line,
        /// instead of one aggregate reply. Wire form: `"stream":true`.
        stream: bool,
    },
    /// Cache and server counters.
    Stats,
    /// Full observability snapshot: every counter/gauge/histogram of
    /// the daemon's registry (request latencies, scheduler batches,
    /// DSE executor, tuner rounds), with p50/p95/p99 per histogram.
    Metrics,
    /// Windowed view of the daemon's sampled metric history: per-type
    /// request rates and latency quantiles over the last 1s/10s/60s,
    /// derived from counter and histogram deltas.
    MetricsHistory,
    /// Subscribe to the sampler: a **streaming** request producing one
    /// [`Response::WatchSample`] line per sampler tick, then one
    /// [`Response::WatchDone`] line after `samples` ticks (or on
    /// daemon shutdown).
    Watch {
        /// Sample lines to stream before the done line; `0` streams
        /// until the client disconnects or the daemon shuts down.
        samples: u64,
    },
    /// The span tree of one trace: every span the daemon's ring still
    /// holds for the given trace id (see the `"trace"` request field).
    TraceQuery {
        /// The trace id to look up.
        id: u64,
    },
    /// Flight-recorder dump: write the span ring's recent spans plus a
    /// current metrics snapshot to `<trace-log>.flight.json` for
    /// post-mortem forensics (errors when the daemon has no trace log).
    Dump,
    /// Drain in-flight work, flush the cache file, stop the daemon.
    Shutdown,
}

/// What one sweep did, without shipping every outcome back: sizes,
/// cache traffic and the Pareto-optimal indices into the grid's
/// deterministic point order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSummary {
    /// Points in the grid.
    pub points: usize,
    /// Feasible points.
    pub feasible: usize,
    /// Cache hits this sweep.
    pub cache_hits: u64,
    /// Fresh evaluations this sweep.
    pub cache_misses: u64,
    /// Server-side wall time, milliseconds.
    pub wall_ms: f64,
    /// Indices of 3D-Pareto-optimal points (grid order, ascending).
    pub frontier_3d: Vec<usize>,
    /// Indices of fps × power × SQNR non-dominated points (grid order,
    /// ascending) — the accuracy variant of the frontier.
    pub frontier_sqnr: Vec<usize>,
    /// Frontier candidates with their objective vectors, only present
    /// on partitioned sub-sweep replies (`spec.part` set): the union of
    /// this shard's `frontier_3d`/`frontier_sqnr` points as
    /// `(global grid index, objectives)` pairs, ascending. The
    /// coordinator concatenates shard candidate lists, sorts by index
    /// and re-filters to reproduce the single-daemon frontier exactly
    /// ([`chain_nn_dse::pareto::merge_candidates`]). Empty — and absent
    /// on the wire — for ordinary sweeps.
    pub candidates: Vec<(usize, Objectives)>,
    /// Set by the coordinator when one or more shards were lost
    /// mid-sweep and the summary covers only the surviving partitions.
    /// Absent on the wire when false, so non-degraded replies are
    /// byte-identical to single-daemon ones.
    pub degraded: bool,
}

/// One frontier entry: the point and its model results.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierEntry {
    /// The design point.
    pub point: DesignPoint,
    /// Its evaluation.
    pub result: PointResult,
}

/// What one tune did: the winner (if any configuration was feasible)
/// plus the evaluation-count accounting proving search ≪ sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneSummary {
    /// The chosen configuration, its aggregated workload metrics and
    /// whether it satisfies the budget; `None` when every visited
    /// configuration was model-infeasible.
    pub best: Option<Tuned>,
    /// Distinct configurations the search evaluated.
    pub evaluations: u64,
    /// Underlying `(configuration, network)` lookups answered from the
    /// shared cache.
    pub cache_hits: u64,
    /// Underlying lookups that ran the model stack.
    pub cache_misses: u64,
    /// Evaluator round trips.
    pub rounds: usize,
    /// Configurations an exhaustive sweep of the space would evaluate.
    pub exhaustive_points: usize,
    /// Set by the coordinator when shard loss forced rerouting during
    /// the tune (results are still exact — any shard computes the same
    /// pure models — but cache locality was lost). Absent on the wire
    /// when false.
    pub degraded: bool,
}

/// One budget step of a streaming frontier tune
/// ([`Response::TuneFrontierStep`]): the tuner's step result framed
/// with its position in the sweep. Wrapping [`FrontierStep`] (rather
/// than mirroring its fields) keeps the wire and the tuner from
/// drifting: a field added to the step type shows up here by
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierStepSummary {
    /// Zero-based step index, in sweep order.
    pub step: usize,
    /// Total steps the sweep will run.
    pub steps: usize,
    /// The step itself: budget value, winner (never worse than a
    /// standalone tune at this budget), evaluation accounting.
    pub result: FrontierStep,
}

/// Terminal line of a streaming frontier tune
/// ([`Response::TuneFrontierDone`]): the frontier across the steps and
/// the sweep-wide accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierDoneSummary {
    /// Steps the sweep ran (= step lines that preceded this line).
    pub steps: usize,
    /// Step indices on the tuned frontier (deduplicated, Pareto-kept).
    pub frontier: Vec<usize>,
    /// Distinct configurations evaluated across the whole sweep.
    pub evaluations: u64,
    /// What standalone tunes at every step would have evaluated.
    pub standalone_evaluations: u64,
    /// Sweep-wide cache hits.
    pub cache_hits: u64,
    /// Sweep-wide fresh model-stack lookups.
    pub cache_misses: u64,
    /// Configurations in the full grid.
    pub exhaustive_points: usize,
}

/// The transport envelope of one decoded request line: the optional
/// propagated `"trace"` context plus the optional pipelining id
/// `"req"`. When a client sends `"req"`, the daemon echoes it on
/// *every* reply line of that request (streamed lines included), which
/// is what lets a pipelining client discard stale lines of an
/// abandoned stream instead of misattributing them to the next
/// request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestMeta {
    /// Propagated trace context, if present.
    pub trace: Option<TraceContext>,
    /// Pipelining correlation id, if present.
    pub req_id: Option<u64>,
}

/// Health of one cluster shard as seen by the coordinator, reported in
/// coordinator [`Request::Stats`] replies.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStat {
    /// The shard's `host:port` address.
    pub addr: String,
    /// Requests the coordinator sent this shard.
    pub requests: u64,
    /// Transport/busy failures talking to this shard.
    pub errors: u64,
    /// Whether the shard is currently marked degraded (unreachable or
    /// persistently busy at last contact).
    pub degraded: bool,
}

/// Daemon-side counters reported by [`Request::Stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Distinct points in the shared cache.
    pub cached_points: usize,
    /// Cache hits since daemon start (including loaded-file hits).
    pub hits: u64,
    /// Cache misses since daemon start.
    pub misses: u64,
    /// `hits / (hits + misses)`, 0 before any lookup.
    pub hit_rate: f64,
    /// Requests served (all types, including rejected ones).
    pub requests: u64,
    /// Jobs admitted and not yet finished.
    pub active_jobs: usize,
    /// Admission bound ([`Response::Busy`] beyond it).
    pub queue_capacity: usize,
    /// Sessions currently open.
    pub open_connections: usize,
    /// Connection bound (`busy` at the accept loop beyond it).
    pub max_connections: usize,
    /// Worker threads evaluating points.
    pub threads: usize,
    /// Entries replayed from the cache file at startup.
    pub loaded_from_disk: usize,
    /// Whether a cache file is attached.
    pub persistent: bool,
    /// Seconds since the daemon started (0 from daemons predating the
    /// observability layer).
    pub uptime_s: f64,
    /// Requests currently being handled (parsing, queued or
    /// executing) across all connections.
    pub inflight_requests: usize,
    /// Remaining **points** across admitted unfinished jobs right now
    /// (0 from daemons predating the temporal-observability layer).
    /// Work-assisting daemons report the actual point backlog; older
    /// daemons reported whole queued jobs (`docs/PROTOCOL.md` records
    /// the semantics change).
    pub queue_depth: usize,
    /// Latency SLOs the daemon was configured with (0 when none, and
    /// from pre-SLO daemons).
    pub slos: usize,
    /// Sampler ticks on which at least one SLO was out of compliance,
    /// since daemon start (0 from pre-SLO daemons).
    pub slo_breach_ticks: u64,
    /// Per-shard health, coordinator daemons only (empty — and absent
    /// on the wire — for ordinary daemons).
    pub shards: Vec<ShardStat>,
}

/// Windowed per-request-type statistics, shared by
/// [`Response::MetricsHistory`] windows and [`Response::WatchSample`]
/// lines: the request count and latency quantiles observed for one
/// `type` label over one window.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryTypeWindow {
    /// The request type label (`eval`, `sweep`, ...).
    pub kind: String,
    /// Requests of this type completed inside the window.
    pub requests: u64,
    /// Median request latency over the window, microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency over the window, microseconds.
    pub p99_us: f64,
}

/// One aggregation window of a [`Response::MetricsHistory`] reply:
/// deltas over the trailing `window_s` seconds of sampler history.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryWindow {
    /// Nominal window length, seconds (1, 10 or 60).
    pub window_s: f64,
    /// Seconds of history actually covered (less than `window_s` on a
    /// young daemon).
    pub duration_s: f64,
    /// Sampler ticks merged into this window.
    pub samples: usize,
    /// Requests per second across all types over the window.
    pub req_per_sec: f64,
    /// Design points evaluated per second over the window.
    pub points_per_sec: f64,
    /// Per-request-type counts and latency quantiles.
    pub types: Vec<HistoryTypeWindow>,
}

/// The [`Request::MetricsHistory`] reply: the sampler's windowed view.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsHistory {
    /// Sampler tick interval, seconds.
    pub interval_s: f64,
    /// Samples taken since daemon start (monotone; the ring only
    /// retains the most recent `capacity`).
    pub samples: u64,
    /// Ring-buffer capacity in samples.
    pub capacity: usize,
    /// Trailing windows, shortest first (1s/10s/60s).
    pub windows: Vec<HistoryWindow>,
}

/// One sample line of a streaming [`Request::Watch`]: the live
/// dashboard row the `chain-nn top` command renders.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchSample {
    /// Sampler sequence number (monotone since daemon start).
    pub seq: u64,
    /// Seconds the sampled interval actually covered.
    pub interval_s: f64,
    /// Seconds the trailing rate/quantile window covered (~1s).
    pub window_s: f64,
    /// Requests per second over the window.
    pub req_per_sec: f64,
    /// Design points evaluated per second over the window.
    pub points_per_sec: f64,
    /// Requests in flight at sample time.
    pub inflight: u64,
    /// Jobs admitted and not yet finished at sample time.
    pub active_jobs: u64,
    /// Remaining points across admitted unfinished jobs at sample
    /// time (whole queued jobs from pre-engine daemons).
    pub queue_depth: u64,
    /// Since-boot cache hit rate at sample time.
    pub cache_hit_rate: f64,
    /// Requests served since daemon start (cumulative, so a watcher
    /// can reconcile the stream against its own tally).
    pub requests_total: u64,
    /// 99th-percentile scheduler queue wait over the window, µs.
    pub queue_wait_p99_us: f64,
    /// 99th-percentile batch execute time over the window, µs.
    pub execute_p99_us: f64,
    /// Per-request-type counts and latency quantiles over the window.
    pub types: Vec<HistoryTypeWindow>,
}

/// One daemon reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Echo of the evaluated point plus its outcome.
    Eval {
        /// The point as the daemon understood it (defaults filled in).
        point: DesignPoint,
        /// Feasible result or infeasibility reason.
        outcome: PointOutcome,
    },
    /// Outcomes of an [`Request::EvalBatch`], aligned with the request's
    /// point list.
    EvalBatch {
        /// One outcome per requested point, in request order.
        outcomes: Vec<PointOutcome>,
        /// Cache hits among the batch's lookups.
        cache_hits: u64,
        /// Fresh evaluations the batch ran.
        cache_misses: u64,
    },
    /// Sweep summary.
    Sweep(SweepSummary),
    /// Tune summary.
    Tune(TuneSummary),
    /// One budget step of a streaming frontier tune (N of these lines,
    /// flushed as each step completes, then one
    /// [`Response::TuneFrontierDone`]).
    TuneFrontierStep(FrontierStepSummary),
    /// Terminal line of a streaming frontier tune.
    TuneFrontierDone(FrontierDoneSummary),
    /// One entry line of a streaming whole-cache frontier (N of these,
    /// then one [`Response::FrontierStreamDone`]).
    FrontierStreamEntry {
        /// The non-dominated `(point, result)` pair.
        entry: FrontierEntry,
    },
    /// Terminal line of a streaming whole-cache frontier.
    FrontierStreamDone {
        /// Objective dimensionality the frontier was taken in.
        dims: u8,
        /// Entry lines that preceded this line.
        entries: usize,
        /// Coordinator only: the frontier covers surviving shards only.
        degraded: bool,
    },
    /// Frontier of the whole cache, canonically ordered.
    Frontier {
        /// Objective dimensionality the frontier was taken in.
        dims: u8,
        /// Non-dominated `(point, result)` pairs.
        entries: Vec<FrontierEntry>,
        /// Coordinator only: the frontier covers surviving shards only.
        /// Absent on the wire when false.
        degraded: bool,
    },
    /// Counter snapshot.
    Stats(ServerStats),
    /// Observability snapshot: the daemon's whole metric registry.
    Metrics {
        /// Every metric instance, sorted by `(name, labels)`.
        snapshot: Snapshot,
    },
    /// Windowed sampler history ([`Request::MetricsHistory`] reply).
    MetricsHistory(Box<MetricsHistory>),
    /// One sample line of a streaming watch (N of these, flushed as
    /// the sampler ticks, then one [`Response::WatchDone`]).
    WatchSample(Box<WatchSample>),
    /// Terminal line of a streaming watch.
    WatchDone {
        /// Sample lines that preceded this line.
        samples: u64,
    },
    /// The span tree for one trace id ([`Request::TraceQuery`] reply).
    Trace {
        /// The queried trace id.
        id: u64,
        /// Spans the ring has dropped (overwritten) since daemon
        /// start — non-zero means the tree below may be incomplete.
        dropped: u64,
        /// The trace's spans, ordered by start time; parent ids encode
        /// the tree.
        spans: Vec<SpanRecord>,
    },
    /// Flight-recorder dump written ([`Request::Dump`] reply).
    Dump {
        /// Where the flight file landed.
        path: String,
        /// Spans written into it.
        spans: usize,
        /// Ring drop counter at dump time.
        dropped: u64,
    },
    /// Shutdown acknowledged; the daemon exits after this reply.
    Shutdown,
    /// Backpressure: the admission queue is full, retry later.
    Busy {
        /// Jobs currently admitted.
        active: usize,
        /// The admission bound.
        capacity: usize,
    },
    /// The request was understood to be at fault.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

// ---------------------------------------------------------------- encode

fn num(n: f64) -> Json {
    Json::Num(n)
}

fn unum(n: u64) -> Json {
    Json::Num(n as f64)
}

fn point_to_json(p: &DesignPoint) -> Json {
    Json::Obj(vec![
        ("net".into(), Json::Str(p.net.clone())),
        ("pes".into(), unum(p.pes as u64)),
        ("freq_mhz".into(), num(p.freq_mhz)),
        ("kmem_depth".into(), unum(p.kmem_depth as u64)),
        ("imem_kb".into(), unum(p.imem_kb as u64)),
        ("omem_kb".into(), unum(p.omem_kb as u64)),
        ("word_bits".into(), unum(u64::from(p.word_bits))),
        ("batch".into(), unum(p.batch as u64)),
    ])
}

fn spec_to_json(s: &SweepSpec) -> Json {
    let us = |axis: &[usize]| Json::Arr(axis.iter().map(|&v| unum(v as u64)).collect());
    let mut fields = vec![
        (
            "nets".into(),
            Json::Arr(s.nets.iter().map(|n| Json::Str(n.clone())).collect()),
        ),
        ("pes".into(), us(&s.pes)),
        (
            "freqs_mhz".into(),
            Json::Arr(s.freqs_mhz.iter().map(|&f| num(f)).collect()),
        ),
        ("kmem_depths".into(), us(&s.kmem_depths)),
        ("imem_kb".into(), us(&s.imem_kb)),
        ("omem_kb".into(), us(&s.omem_kb)),
        (
            "word_bits".into(),
            Json::Arr(s.word_bits.iter().map(|&b| unum(u64::from(b))).collect()),
        ),
        ("batches".into(), us(&s.batches)),
    ];
    if let Some(part) = &s.part {
        fields.push((
            "part".into(),
            Json::Obj(vec![
                ("index".into(), unum(part.index as u64)),
                ("of".into(), unum(part.of as u64)),
            ]),
        ));
    }
    Json::Obj(fields)
}

fn mix_to_json(mix: &WorkloadMix) -> Json {
    Json::Obj(
        mix.entries()
            .iter()
            .map(|e| (e.net.clone(), num(e.weight)))
            .collect(),
    )
}

fn budget_to_json(b: &Budget) -> Json {
    let mut fields = Vec::new();
    if let Some(v) = b.max_system_mw {
        fields.push(("max_system_mw".to_owned(), num(v)));
    }
    if let Some(v) = b.max_gates_k {
        fields.push(("max_gates_k".to_owned(), num(v)));
    }
    if let Some(v) = b.min_fps {
        fields.push(("min_fps".to_owned(), num(v)));
    }
    if let Some(v) = b.min_sqnr_db {
        fields.push(("min_sqnr_db".to_owned(), num(v)));
    }
    Json::Obj(fields)
}

fn objective_to_json(o: &Objective) -> Json {
    match o {
        Objective::Lexicographic(metrics) => Json::Arr(
            metrics
                .iter()
                .map(|m| Json::Str(m.name().to_owned()))
                .collect(),
        ),
        Objective::Scalarized(terms) => Json::Obj(vec![(
            "scalarized".to_owned(),
            Json::Obj(
                terms
                    .iter()
                    .map(|(m, w)| (m.name().to_owned(), num(*w)))
                    .collect(),
            ),
        )]),
    }
}

fn mix_result_fields(r: &MixResult) -> Vec<(String, Json)> {
    vec![
        ("fps".into(), num(r.fps)),
        ("chip_mw".into(), num(r.chip_mw)),
        ("dram_mw".into(), num(r.dram_mw)),
        ("system_mw".into(), num(r.system_mw())),
        ("peak_gops".into(), num(r.peak_gops)),
        ("gops_per_watt".into(), num(r.gops_per_watt())),
        ("gates_k".into(), num(r.gates_k)),
        ("sram_kb".into(), num(r.sram_kb)),
        ("sqnr_db".into(), num(r.sqnr_db)),
    ]
}

fn result_fields(r: &PointResult) -> Vec<(String, Json)> {
    vec![
        ("status".into(), Json::Str("ok".into())),
        ("fps".into(), num(r.fps)),
        ("achieved_gops".into(), num(r.achieved_gops)),
        ("peak_gops".into(), num(r.peak_gops)),
        ("chip_mw".into(), num(r.chip_mw)),
        ("dram_mw".into(), num(r.dram_mw)),
        ("system_mw".into(), num(r.system_mw())),
        ("gops_per_watt".into(), num(r.gops_per_watt())),
        ("gates_k".into(), num(r.gates_k)),
        ("sram_kb".into(), num(r.sram_kb)),
        ("sqnr_db".into(), num(r.sqnr_db)),
    ]
}

fn outcome_fields(outcome: &PointOutcome) -> Vec<(String, Json)> {
    match outcome {
        PointOutcome::Feasible(r) => result_fields(r),
        PointOutcome::Infeasible(reason) => vec![
            ("status".into(), Json::Str("infeasible".into())),
            ("reason".into(), Json::Str(reason.clone())),
        ],
    }
}

/// The shared field block of `tune` and `tune_frontier` requests.
fn tune_fields(kind: &str, req: &TuneRequest) -> Vec<(String, Json)> {
    vec![
        ("type".into(), Json::Str(kind.into())),
        ("space".into(), spec_to_json(&req.space)),
        ("mix".into(), mix_to_json(&req.mix)),
        ("budget".into(), budget_to_json(&req.budget)),
        ("objective".into(), objective_to_json(&req.objective)),
        ("strategy".into(), Json::Str(req.strategy.name().into())),
        // Seeds ride the JSON number; above 2^53 they would lose
        // precision, which the decoder rejects rather than silently
        // aliasing.
        ("seed".into(), unum(req.seed)),
    ]
}

impl Request {
    /// Whether this request streams its reply (N result lines followed
    /// by one `done` line) instead of answering one line.
    pub fn is_streaming(&self) -> bool {
        matches!(
            self,
            Request::TuneFrontier(_)
                | Request::Frontier { stream: true, .. }
                | Request::Watch { .. }
        )
    }

    /// The single-line wire form (no trailing newline; the transport
    /// adds it).
    pub fn encode(&self) -> String {
        self.to_json().to_string()
    }

    /// The wire form carrying a propagated trace context: the same
    /// line [`Request::encode`] produces plus a
    /// `"trace":{"id":...,"parent":...}` field (`parent` omitted when
    /// 0). Daemons that predate tracing ignore the extra field.
    pub fn encode_with_trace(&self, ctx: TraceContext) -> String {
        self.encode_with_meta(Some(ctx), None)
    }

    /// The wire form carrying the optional trace context plus an
    /// optional pipelining request id (`"req":N`). A daemon echoes the
    /// id on **every** reply line for the request — including streamed
    /// lines and the terminal `done` line — so a pipelining client can
    /// match replies to requests instead of assuming strict
    /// request/reply alternation. Daemons predating pipelining ignore
    /// the field.
    pub fn encode_with_meta(&self, ctx: Option<TraceContext>, req_id: Option<u64>) -> String {
        let Json::Obj(mut fields) = self.to_json() else {
            unreachable!("requests encode as objects");
        };
        // Right after "type", so the wire reads naturally.
        let mut at = 1.min(fields.len());
        if let Some(ctx) = ctx {
            let mut trace_fields = vec![("id".to_owned(), unum(ctx.id))];
            if ctx.parent != 0 {
                trace_fields.push(("parent".to_owned(), unum(ctx.parent)));
            }
            fields.insert(at, ("trace".to_owned(), Json::Obj(trace_fields)));
            at += 1;
        }
        if let Some(id) = req_id {
            fields.insert(at.min(fields.len()), ("req".to_owned(), unum(id)));
        }
        Json::Obj(fields).to_string()
    }

    fn to_json(&self) -> Json {
        match self {
            Request::Eval(point) => Json::Obj(vec![
                ("type".into(), Json::Str("eval".into())),
                ("point".into(), point_to_json(point)),
            ]),
            Request::EvalBatch(points) => Json::Obj(vec![
                ("type".into(), Json::Str("eval_batch".into())),
                (
                    "points".into(),
                    Json::Arr(points.iter().map(point_to_json).collect()),
                ),
            ]),
            Request::Sweep(spec) => Json::Obj(vec![
                ("type".into(), Json::Str("sweep".into())),
                ("spec".into(), spec_to_json(spec)),
            ]),
            Request::Tune(req) => Json::Obj(tune_fields("tune", req)),
            Request::TuneFrontier(req) => {
                let mut fields = tune_fields("tune_frontier", &req.base);
                fields.push((
                    "sweep".into(),
                    Json::Obj(vec![
                        ("axis".into(), Json::Str(req.sweep.axis.name().into())),
                        (
                            "values".into(),
                            Json::Arr(req.sweep.values.iter().map(|&v| num(v)).collect()),
                        ),
                    ]),
                ));
                Json::Obj(fields)
            }
            Request::Frontier { dims, sqnr, stream } => {
                let mut fields = vec![
                    ("type".into(), Json::Str("frontier".into())),
                    ("dims".into(), unum(u64::from(*dims))),
                ];
                if *sqnr {
                    fields.push(("axes".into(), Json::Str("sqnr".into())));
                }
                if *stream {
                    fields.push(("stream".into(), Json::Bool(true)));
                }
                Json::Obj(fields)
            }
            Request::Stats => Json::Obj(vec![("type".into(), Json::Str("stats".into()))]),
            Request::Metrics => Json::Obj(vec![("type".into(), Json::Str("metrics".into()))]),
            Request::MetricsHistory => {
                Json::Obj(vec![("type".into(), Json::Str("metrics_history".into()))])
            }
            Request::Watch { samples } => Json::Obj(vec![
                ("type".into(), Json::Str("watch".into())),
                ("samples".into(), unum(*samples)),
            ]),
            Request::TraceQuery { id } => Json::Obj(vec![
                ("type".into(), Json::Str("trace_query".into())),
                ("id".into(), unum(*id)),
            ]),
            Request::Dump => Json::Obj(vec![("type".into(), Json::Str("dump".into()))]),
            Request::Shutdown => Json::Obj(vec![("type".into(), Json::Str("shutdown".into()))]),
        }
    }
}

impl Response {
    /// The single-line wire form (no trailing newline).
    pub fn encode(&self) -> String {
        self.to_json().to_string()
    }

    /// The wire form echoing a pipelining request id: the same line
    /// [`Response::encode`] produces plus `"req":N` right after
    /// `"type"` (after `"error"` on failure lines). The daemon uses
    /// this for every line it writes in reply to a request that
    /// carried `"req"`.
    pub fn encode_with_req(&self, req_id: Option<u64>) -> String {
        let Some(id) = req_id else {
            return self.encode();
        };
        let Json::Obj(mut fields) = self.to_json() else {
            unreachable!("responses encode as objects");
        };
        fields.insert(2.min(fields.len()), ("req".to_owned(), unum(id)));
        Json::Obj(fields).to_string()
    }

    fn to_json(&self) -> Json {
        match self {
            Response::Eval { point, outcome } => {
                let mut fields = vec![
                    ("ok".into(), Json::Bool(true)),
                    ("type".into(), Json::Str("eval".into())),
                    ("point".into(), point_to_json(point)),
                ];
                fields.extend(outcome_fields(outcome));
                Json::Obj(fields)
            }
            Response::EvalBatch {
                outcomes,
                cache_hits,
                cache_misses,
            } => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("type".into(), Json::Str("eval_batch".into())),
                ("cache_hits".into(), unum(*cache_hits)),
                ("cache_misses".into(), unum(*cache_misses)),
                (
                    "outcomes".into(),
                    Json::Arr(
                        outcomes
                            .iter()
                            .map(|o| Json::Obj(outcome_fields(o)))
                            .collect(),
                    ),
                ),
            ]),
            Response::Sweep(s) => {
                let mut fields = vec![
                    ("ok".into(), Json::Bool(true)),
                    ("type".into(), Json::Str("sweep".into())),
                    ("points".into(), unum(s.points as u64)),
                    ("feasible".into(), unum(s.feasible as u64)),
                    ("cache_hits".into(), unum(s.cache_hits)),
                    ("cache_misses".into(), unum(s.cache_misses)),
                    ("wall_ms".into(), num(s.wall_ms)),
                    (
                        "frontier_3d".into(),
                        Json::Arr(s.frontier_3d.iter().map(|&i| unum(i as u64)).collect()),
                    ),
                    (
                        "frontier_sqnr".into(),
                        Json::Arr(s.frontier_sqnr.iter().map(|&i| unum(i as u64)).collect()),
                    ),
                ];
                if !s.candidates.is_empty() {
                    fields.push((
                        "candidates".into(),
                        Json::Arr(
                            s.candidates
                                .iter()
                                .map(|(i, o)| {
                                    Json::Obj(vec![
                                        ("i".into(), unum(*i as u64)),
                                        ("fps".into(), num(o.fps)),
                                        ("system_mw".into(), num(o.system_mw)),
                                        ("gates_k".into(), num(o.gates_k)),
                                        ("sqnr_db".into(), num(o.sqnr_db)),
                                    ])
                                })
                                .collect(),
                        ),
                    ));
                }
                if s.degraded {
                    fields.push(("degraded".into(), Json::Bool(true)));
                }
                Json::Obj(fields)
            }
            Response::Tune(s) => {
                let mut fields = vec![
                    ("ok".into(), Json::Bool(true)),
                    ("type".into(), Json::Str("tune".into())),
                    ("found".into(), Json::Bool(s.best.is_some())),
                ];
                if let Some(t) = &s.best {
                    fields.push(("admitted".into(), Json::Bool(t.admitted)));
                    fields.push(("point".into(), point_to_json(&t.point)));
                    fields.extend(mix_result_fields(&t.result));
                }
                fields.extend([
                    ("evaluations".into(), unum(s.evaluations)),
                    ("cache_hits".into(), unum(s.cache_hits)),
                    ("cache_misses".into(), unum(s.cache_misses)),
                    ("rounds".into(), unum(s.rounds as u64)),
                    ("exhaustive_points".into(), unum(s.exhaustive_points as u64)),
                ]);
                if s.degraded {
                    fields.push(("degraded".into(), Json::Bool(true)));
                }
                Json::Obj(fields)
            }
            Response::TuneFrontierStep(s) => {
                let step = &s.result;
                let mut fields = vec![
                    ("ok".into(), Json::Bool(true)),
                    ("type".into(), Json::Str("tune_frontier".into())),
                    ("step".into(), unum(s.step as u64)),
                    ("steps".into(), unum(s.steps as u64)),
                    ("budget_value".into(), num(step.budget_value)),
                    ("found".into(), Json::Bool(step.best.is_some())),
                ];
                if let Some(t) = &step.best {
                    fields.push(("admitted".into(), Json::Bool(t.admitted)));
                    fields.push(("point".into(), point_to_json(&t.point)));
                    fields.extend(mix_result_fields(&t.result));
                }
                fields.extend([
                    ("evaluations".into(), unum(step.evaluations)),
                    ("fresh_evaluations".into(), unum(step.fresh_evaluations)),
                    ("cache_hits".into(), unum(step.cache_hits)),
                    ("cache_misses".into(), unum(step.cache_misses)),
                    ("rounds".into(), unum(step.rounds as u64)),
                ]);
                Json::Obj(fields)
            }
            Response::TuneFrontierDone(s) => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("type".into(), Json::Str("tune_frontier".into())),
                ("done".into(), Json::Bool(true)),
                ("steps".into(), unum(s.steps as u64)),
                (
                    "frontier".into(),
                    Json::Arr(s.frontier.iter().map(|&i| unum(i as u64)).collect()),
                ),
                ("evaluations".into(), unum(s.evaluations)),
                (
                    "standalone_evaluations".into(),
                    unum(s.standalone_evaluations),
                ),
                ("cache_hits".into(), unum(s.cache_hits)),
                ("cache_misses".into(), unum(s.cache_misses)),
                ("exhaustive_points".into(), unum(s.exhaustive_points as u64)),
            ]),
            Response::FrontierStreamEntry { entry } => {
                let mut fields = vec![
                    ("ok".into(), Json::Bool(true)),
                    ("type".into(), Json::Str("frontier".into())),
                    ("stream".into(), Json::Bool(true)),
                    ("point".into(), point_to_json(&entry.point)),
                ];
                fields.extend(result_fields(&entry.result));
                Json::Obj(fields)
            }
            Response::FrontierStreamDone {
                dims,
                entries,
                degraded,
            } => {
                let mut fields = vec![
                    ("ok".into(), Json::Bool(true)),
                    ("type".into(), Json::Str("frontier".into())),
                    ("done".into(), Json::Bool(true)),
                    ("dims".into(), unum(u64::from(*dims))),
                    ("entries".into(), unum(*entries as u64)),
                ];
                if *degraded {
                    fields.push(("degraded".into(), Json::Bool(true)));
                }
                Json::Obj(fields)
            }
            Response::Frontier {
                dims,
                entries,
                degraded,
            } => {
                let mut fields = vec![
                    ("ok".into(), Json::Bool(true)),
                    ("type".into(), Json::Str("frontier".into())),
                    ("dims".into(), unum(u64::from(*dims))),
                    (
                        "entries".into(),
                        Json::Arr(
                            entries
                                .iter()
                                .map(|e| {
                                    let mut fields =
                                        vec![("point".into(), point_to_json(&e.point))];
                                    fields.extend(result_fields(&e.result));
                                    Json::Obj(fields)
                                })
                                .collect(),
                        ),
                    ),
                ];
                if *degraded {
                    fields.push(("degraded".into(), Json::Bool(true)));
                }
                Json::Obj(fields)
            }
            Response::Stats(st) => {
                let mut fields = vec![
                    ("ok".into(), Json::Bool(true)),
                    ("type".into(), Json::Str("stats".into())),
                    ("cached_points".into(), unum(st.cached_points as u64)),
                    ("hits".into(), unum(st.hits)),
                    ("misses".into(), unum(st.misses)),
                    ("hit_rate".into(), num(st.hit_rate)),
                    ("requests".into(), unum(st.requests)),
                    ("active_jobs".into(), unum(st.active_jobs as u64)),
                    ("queue_capacity".into(), unum(st.queue_capacity as u64)),
                    ("open_connections".into(), unum(st.open_connections as u64)),
                    ("max_connections".into(), unum(st.max_connections as u64)),
                    ("threads".into(), unum(st.threads as u64)),
                    ("loaded_from_disk".into(), unum(st.loaded_from_disk as u64)),
                    ("persistent".into(), Json::Bool(st.persistent)),
                    ("uptime_s".into(), num(st.uptime_s)),
                    (
                        "inflight_requests".into(),
                        unum(st.inflight_requests as u64),
                    ),
                    ("queue_depth".into(), unum(st.queue_depth as u64)),
                    ("slos".into(), unum(st.slos as u64)),
                    ("slo_breach_ticks".into(), unum(st.slo_breach_ticks)),
                ];
                if !st.shards.is_empty() {
                    fields.push((
                        "shards".into(),
                        Json::Arr(
                            st.shards
                                .iter()
                                .map(|s| {
                                    let mut f = vec![
                                        ("addr".into(), Json::Str(s.addr.clone())),
                                        ("requests".into(), unum(s.requests)),
                                        ("errors".into(), unum(s.errors)),
                                    ];
                                    if s.degraded {
                                        f.push(("degraded".into(), Json::Bool(true)));
                                    }
                                    Json::Obj(f)
                                })
                                .collect(),
                        ),
                    ));
                }
                Json::Obj(fields)
            }
            Response::Metrics { snapshot } => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("type".into(), Json::Str("metrics".into())),
                ("uptime_s".into(), num(snapshot.uptime_s)),
                (
                    "metrics".into(),
                    Json::Arr(snapshot.entries.iter().map(metric_entry_to_json).collect()),
                ),
            ]),
            Response::MetricsHistory(h) => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("type".into(), Json::Str("metrics_history".into())),
                ("interval_s".into(), num(h.interval_s)),
                ("samples".into(), unum(h.samples)),
                ("capacity".into(), unum(h.capacity as u64)),
                (
                    "windows".into(),
                    Json::Arr(
                        h.windows
                            .iter()
                            .map(|w| {
                                Json::Obj(vec![
                                    ("window_s".into(), num(w.window_s)),
                                    ("duration_s".into(), num(w.duration_s)),
                                    ("samples".into(), unum(w.samples as u64)),
                                    ("req_per_sec".into(), num(w.req_per_sec)),
                                    ("points_per_sec".into(), num(w.points_per_sec)),
                                    ("types".into(), type_windows_to_json(&w.types)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::WatchSample(s) => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("type".into(), Json::Str("watch".into())),
                ("seq".into(), unum(s.seq)),
                ("interval_s".into(), num(s.interval_s)),
                ("window_s".into(), num(s.window_s)),
                ("req_per_sec".into(), num(s.req_per_sec)),
                ("points_per_sec".into(), num(s.points_per_sec)),
                ("inflight".into(), unum(s.inflight)),
                ("active_jobs".into(), unum(s.active_jobs)),
                ("queue_depth".into(), unum(s.queue_depth)),
                ("cache_hit_rate".into(), num(s.cache_hit_rate)),
                ("requests_total".into(), unum(s.requests_total)),
                ("queue_wait_p99_us".into(), num(s.queue_wait_p99_us)),
                ("execute_p99_us".into(), num(s.execute_p99_us)),
                ("types".into(), type_windows_to_json(&s.types)),
            ]),
            Response::WatchDone { samples } => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("type".into(), Json::Str("watch".into())),
                ("done".into(), Json::Bool(true)),
                ("samples".into(), unum(*samples)),
            ]),
            Response::Trace { id, dropped, spans } => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("type".into(), Json::Str("trace".into())),
                ("id".into(), unum(*id)),
                ("dropped".into(), unum(*dropped)),
                (
                    "spans".into(),
                    Json::Arr(spans.iter().map(span_to_json).collect()),
                ),
            ]),
            Response::Dump {
                path,
                spans,
                dropped,
            } => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("type".into(), Json::Str("dump".into())),
                ("path".into(), Json::Str(path.clone())),
                ("spans".into(), unum(*spans as u64)),
                ("dropped".into(), unum(*dropped)),
            ]),
            Response::Shutdown => Json::Obj(vec![
                ("ok".into(), Json::Bool(true)),
                ("type".into(), Json::Str("shutdown".into())),
            ]),
            Response::Busy { active, capacity } => Json::Obj(vec![
                ("ok".into(), Json::Bool(false)),
                ("error".into(), Json::Str("busy".into())),
                ("active".into(), unum(*active as u64)),
                ("capacity".into(), unum(*capacity as u64)),
            ]),
            Response::Error { message } => Json::Obj(vec![
                ("ok".into(), Json::Bool(false)),
                ("error".into(), Json::Str(message.clone())),
            ]),
        }
    }
}

fn type_windows_to_json(types: &[HistoryTypeWindow]) -> Json {
    Json::Arr(
        types
            .iter()
            .map(|t| {
                Json::Obj(vec![
                    ("kind".into(), Json::Str(t.kind.clone())),
                    ("requests".into(), unum(t.requests)),
                    ("p50_us".into(), num(t.p50_us)),
                    ("p99_us".into(), num(t.p99_us)),
                ])
            })
            .collect(),
    )
}

/// One span of a `trace` reply. The span's trace id is implied by the
/// reply-level `id` and not repeated per span.
pub(crate) fn span_to_json(s: &SpanRecord) -> Json {
    let mut fields = vec![
        ("span".into(), unum(s.span_id)),
        ("parent".into(), unum(s.parent_id)),
        ("name".into(), Json::Str(s.name.clone())),
        ("start_us".into(), unum(s.start_us)),
        ("dur_us".into(), unum(s.dur_us)),
    ];
    if let Some(w) = s.worker {
        fields.push(("worker".into(), unum(u64::from(w))));
    }
    if s.points != 0 {
        fields.push(("points".into(), unum(u64::from(s.points))));
    }
    Json::Obj(fields)
}

pub(crate) fn metric_entry_to_json(entry: &MetricEntry) -> Json {
    let mut fields = vec![("name".into(), Json::Str(entry.name.clone()))];
    if !entry.labels.is_empty() {
        fields.push((
            "labels".into(),
            Json::Obj(
                entry
                    .labels
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                    .collect(),
            ),
        ));
    }
    match &entry.value {
        MetricValue::Counter(v) => {
            fields.push(("kind".into(), Json::Str("counter".into())));
            fields.push(("value".into(), unum(*v)));
        }
        MetricValue::Gauge(v) => {
            fields.push(("kind".into(), Json::Str("gauge".into())));
            fields.push(("value".into(), num(*v)));
        }
        MetricValue::Histogram(h) => {
            fields.push(("kind".into(), Json::Str("histogram".into())));
            fields.push(("count".into(), unum(h.count)));
            fields.push(("sum".into(), unum(h.sum)));
            fields.push(("p50".into(), num(h.p50)));
            fields.push(("p95".into(), num(h.p95)));
            fields.push(("p99".into(), num(h.p99)));
            fields.push(("max".into(), num(h.max)));
        }
    }
    Json::Obj(fields)
}

// ---------------------------------------------------------------- decode

fn span_from_json(trace_id: u64, v: &Json) -> Result<SpanRecord, ProtocolError> {
    Ok(SpanRecord {
        trace_id,
        span_id: v
            .get("span")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("span entry needs an integer 'span'"))?,
        parent_id: get_usize(v, "parent", 0)? as u64,
        name: v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("span entry needs a string 'name'"))?
            .to_owned(),
        start_us: get_usize(v, "start_us", 0)? as u64,
        dur_us: get_usize(v, "dur_us", 0)? as u64,
        worker: match v.get("worker") {
            None => None,
            Some(w) => Some(
                w.as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| bad("span 'worker' must be a small integer"))?,
            ),
        },
        points: u32::try_from(get_usize(v, "points", 0)?)
            .map_err(|_| bad("span 'points' out of range"))?,
    })
}

fn metric_entry_from_json(v: &Json) -> Result<MetricEntry, ProtocolError> {
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("metric entry needs a string 'name'"))?
        .to_owned();
    let labels = match v.get("labels") {
        None => Vec::new(),
        Some(Json::Obj(pairs)) => pairs
            .iter()
            .map(|(k, lv)| {
                lv.as_str()
                    .map(|s| (k.clone(), s.to_owned()))
                    .ok_or_else(|| bad("metric labels must be strings"))
            })
            .collect::<Result<_, ProtocolError>>()?,
        Some(_) => return Err(bad("'labels' must be an object")),
    };
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("metric entry needs a string 'kind'"))?;
    let value = match kind {
        "counter" => MetricValue::Counter(
            v.get("value")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("counter metric needs an integer 'value'"))?,
        ),
        "gauge" => MetricValue::Gauge(get_f64(v, "value", 0.0)?),
        "histogram" => MetricValue::Histogram(HistogramSummary {
            count: v.get("count").and_then(Json::as_u64).unwrap_or(0),
            sum: v.get("sum").and_then(Json::as_u64).unwrap_or(0),
            p50: get_f64(v, "p50", 0.0)?,
            p95: get_f64(v, "p95", 0.0)?,
            p99: get_f64(v, "p99", 0.0)?,
            max: get_f64(v, "max", 0.0)?,
        }),
        other => return Err(bad(format!("unknown metric kind '{other}'"))),
    };
    Ok(MetricEntry {
        name,
        labels,
        value,
    })
}

fn type_windows_from_json(v: &Json) -> Result<Vec<HistoryTypeWindow>, ProtocolError> {
    v.get("types")
        .and_then(Json::as_array)
        .ok_or_else(|| bad("windowed reply needs a 'types' array"))?
        .iter()
        .map(|t| {
            Ok(HistoryTypeWindow {
                kind: t
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("type window needs a string 'kind'"))?
                    .to_owned(),
                requests: get_usize(t, "requests", 0)? as u64,
                p50_us: get_f64(t, "p50_us", 0.0)?,
                p99_us: get_f64(t, "p99_us", 0.0)?,
            })
        })
        .collect()
}

fn get_usize(obj: &Json, key: &str, default: usize) -> Result<usize, ProtocolError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| bad(format!("'{key}' must be a non-negative integer"))),
    }
}

fn get_f64(obj: &Json, key: &str, default: f64) -> Result<f64, ProtocolError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| bad(format!("'{key}' must be a number"))),
    }
}

fn point_from_json(v: &Json) -> Result<DesignPoint, ProtocolError> {
    if !matches!(v, Json::Obj(_)) {
        return Err(bad("'point' must be an object"));
    }
    let d = DesignPoint::paper_alexnet();
    Ok(DesignPoint {
        pes: get_usize(v, "pes", d.pes)?,
        freq_mhz: get_f64(v, "freq_mhz", d.freq_mhz)?,
        kmem_depth: get_usize(v, "kmem_depth", d.kmem_depth)?,
        imem_kb: get_usize(v, "imem_kb", d.imem_kb)?,
        omem_kb: get_usize(v, "omem_kb", d.omem_kb)?,
        word_bits: u32::try_from(get_usize(v, "word_bits", d.word_bits as usize)?)
            .map_err(|_| bad("'word_bits' out of range"))?,
        batch: get_usize(v, "batch", d.batch)?,
        net: match v.get("net") {
            None => d.net,
            Some(n) => n
                .as_str()
                .ok_or_else(|| bad("'net' must be a string"))?
                .to_owned(),
        },
    })
}

/// An axis is a scalar or an array of scalars.
fn axis_f64(v: &Json, key: &str) -> Result<Vec<f64>, ProtocolError> {
    let items: Vec<&Json> = match v {
        Json::Arr(items) => items.iter().collect(),
        other => vec![other],
    };
    items
        .into_iter()
        .map(|item| {
            item.as_f64()
                .ok_or_else(|| bad(format!("axis '{key}' must contain numbers")))
        })
        .collect()
}

fn axis_usize(v: &Json, key: &str) -> Result<Vec<usize>, ProtocolError> {
    let items: Vec<&Json> = match v {
        Json::Arr(items) => items.iter().collect(),
        other => vec![other],
    };
    items
        .into_iter()
        .map(|item| {
            item.as_u64()
                .map(|n| n as usize)
                .ok_or_else(|| bad(format!("axis '{key}' must contain non-negative integers")))
        })
        .collect()
}

fn spec_from_json(v: &Json) -> Result<SweepSpec, ProtocolError> {
    if !matches!(v, Json::Obj(_)) {
        return Err(bad("'spec' must be an object"));
    }
    let mut spec = SweepSpec::paper_point();
    if let Some(axis) = v.get("pes") {
        spec.pes = axis_usize(axis, "pes")?;
    }
    if let Some(axis) = v.get("freqs_mhz") {
        spec.freqs_mhz = axis_f64(axis, "freqs_mhz")?;
    }
    if let Some(axis) = v.get("kmem_depths") {
        spec.kmem_depths = axis_usize(axis, "kmem_depths")?;
    }
    if let Some(axis) = v.get("imem_kb") {
        spec.imem_kb = axis_usize(axis, "imem_kb")?;
    }
    if let Some(axis) = v.get("omem_kb") {
        spec.omem_kb = axis_usize(axis, "omem_kb")?;
    }
    if let Some(axis) = v.get("word_bits") {
        spec.word_bits = axis_usize(axis, "word_bits")?
            .into_iter()
            .map(|b| u32::try_from(b).map_err(|_| bad("'word_bits' out of range")))
            .collect::<Result<_, _>>()?;
    }
    if let Some(axis) = v.get("batches") {
        spec.batches = axis_usize(axis, "batches")?;
    }
    if let Some(nets) = v.get("nets") {
        let items: Vec<&Json> = match nets {
            Json::Arr(items) => items.iter().collect(),
            other => vec![other],
        };
        spec.nets = items
            .into_iter()
            .map(|n| {
                n.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| bad("'nets' must contain strings"))
            })
            .collect::<Result<_, _>>()?;
    }
    if let Some(part) = v.get("part") {
        if !matches!(part, Json::Obj(_)) {
            return Err(bad("'part' must be an object"));
        }
        let of = get_usize(part, "of", 0)?;
        let index = get_usize(part, "index", 0)?;
        if of == 0 {
            return Err(bad("'part' needs a positive 'of'"));
        }
        spec.part = Some(SweepPart { index, of });
    }
    Ok(spec)
}

fn mix_from_json(v: &Json) -> Result<WorkloadMix, ProtocolError> {
    let mix = match v {
        Json::Str(text) => WorkloadMix::parse(text),
        Json::Obj(entries) => WorkloadMix::new(
            entries
                .iter()
                .map(|(net, w)| {
                    Ok(MixEntry {
                        net: net.clone(),
                        weight: w.as_f64().ok_or_else(|| {
                            bad(format!("mix weight for '{net}' must be a number"))
                        })?,
                    })
                })
                .collect::<Result<Vec<_>, ProtocolError>>()?,
        ),
        _ => {
            return Err(bad(
                "'mix' must be an object of net: weight pairs or a string",
            ))
        }
    };
    mix.map_err(|e| bad(e.to_string()))
}

fn opt_f64(v: &Json, key: &str) -> Result<Option<f64>, ProtocolError> {
    match v.get(key) {
        None => Ok(None),
        Some(item) => item
            .as_f64()
            .map(Some)
            .ok_or_else(|| bad(format!("'{key}' must be a number"))),
    }
}

fn budget_from_json(v: &Json) -> Result<Budget, ProtocolError> {
    if !matches!(v, Json::Obj(_)) {
        return Err(bad("'budget' must be an object"));
    }
    Ok(Budget {
        max_system_mw: opt_f64(v, "max_system_mw")?,
        max_gates_k: opt_f64(v, "max_gates_k")?,
        min_fps: opt_f64(v, "min_fps")?,
        min_sqnr_db: opt_f64(v, "min_sqnr_db")?,
    })
}

fn metric_from_json(v: &Json) -> Result<Metric, ProtocolError> {
    v.as_str()
        .ok_or_else(|| bad("objective metrics must be strings"))?
        .parse::<Metric>()
        .map_err(ProtocolError)
}

fn objective_from_json(v: &Json) -> Result<Objective, ProtocolError> {
    let objective = match v {
        Json::Str(text) => return Objective::parse(text).map_err(ProtocolError),
        Json::Arr(items) => Objective::Lexicographic(
            items
                .iter()
                .map(metric_from_json)
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Json::Obj(_) => {
            let Some(Json::Obj(terms)) = v.get("scalarized") else {
                return Err(bad("objective object needs a 'scalarized' object"));
            };
            Objective::Scalarized(
                terms
                    .iter()
                    .map(|(name, w)| {
                        Ok((
                            name.parse::<Metric>().map_err(ProtocolError)?,
                            w.as_f64().ok_or_else(|| {
                                bad(format!("objective weight for '{name}' must be a number"))
                            })?,
                        ))
                    })
                    .collect::<Result<Vec<_>, ProtocolError>>()?,
            )
        }
        _ => return Err(bad("'objective' must be a string, array or object")),
    };
    objective.validate().map_err(ProtocolError)?;
    Ok(objective)
}

fn tune_request_from_json(v: &Json) -> Result<TuneRequest, ProtocolError> {
    let mut req = TuneRequest::default();
    if let Some(space) = v.get("space") {
        req.space = spec_from_json(space)?;
    }
    if let Some(mix) = v.get("mix") {
        req.mix = mix_from_json(mix)?;
    }
    if let Some(budget) = v.get("budget") {
        req.budget = budget_from_json(budget)?;
    }
    if let Some(objective) = v.get("objective") {
        req.objective = objective_from_json(objective)?;
    }
    if let Some(strategy) = v.get("strategy") {
        req.strategy = strategy
            .as_str()
            .ok_or_else(|| bad("'strategy' must be a string"))?
            .parse::<StrategyKind>()
            .map_err(ProtocolError)?;
    }
    req.seed = match v.get("seed") {
        None => 0,
        Some(s) => s
            .as_u64()
            .ok_or_else(|| bad("'seed' must be a non-negative integer (below 2^53)"))?,
    };
    Ok(req)
}

/// A budget sweep is an `{"axis": ..., "values": [...]}` object or the
/// CLI string form (`"max-mw=300..=900:50"`). Either way the sweep is
/// validated (non-empty, strictly increasing, legal bounds).
fn budget_sweep_from_json(v: &Json) -> Result<BudgetSweep, ProtocolError> {
    match v {
        Json::Str(text) => BudgetSweep::parse(text).map_err(ProtocolError),
        Json::Obj(_) => {
            let axis = v
                .get("axis")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("'sweep' needs a string 'axis'"))?
                .parse::<BudgetAxis>()
                .map_err(ProtocolError)?;
            let values = v
                .get("values")
                .and_then(Json::as_array)
                .ok_or_else(|| bad("'sweep' needs a 'values' array"))?
                .iter()
                .map(|item| {
                    item.as_f64()
                        .ok_or_else(|| bad("'sweep' values must be numbers"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let sweep = BudgetSweep { axis, values };
            sweep.validate().map_err(ProtocolError)?;
            Ok(sweep)
        }
        _ => Err(bad("'sweep' must be an object or a string")),
    }
}

fn mix_result_from_json(v: &Json) -> Result<MixResult, ProtocolError> {
    let f = |key: &str| -> Result<f64, ProtocolError> {
        v.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| bad(format!("tune result field '{key}' missing")))
    };
    Ok(MixResult {
        fps: f("fps")?,
        chip_mw: f("chip_mw")?,
        dram_mw: f("dram_mw")?,
        peak_gops: f("peak_gops")?,
        gates_k: f("gates_k")?,
        sram_kb: f("sram_kb")?,
        sqnr_db: f("sqnr_db")?,
    })
}

fn result_from_json(v: &Json) -> Result<PointResult, ProtocolError> {
    let f = |key: &str| -> Result<f64, ProtocolError> {
        v.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| bad(format!("result field '{key}' missing")))
    };
    Ok(PointResult {
        fps: f("fps")?,
        achieved_gops: f("achieved_gops")?,
        peak_gops: f("peak_gops")?,
        chip_mw: f("chip_mw")?,
        dram_mw: f("dram_mw")?,
        gates_k: f("gates_k")?,
        sram_kb: f("sram_kb")?,
        sqnr_db: f("sqnr_db")?,
    })
}

/// The `found`/`admitted`/`point` + mix-metric block shared by `tune`
/// replies and `tune_frontier` step lines.
fn tuned_from_json(v: &Json) -> Result<Option<Tuned>, ProtocolError> {
    match v.get("found") {
        Some(Json::Bool(true)) => {
            let point = v
                .get("point")
                .ok_or_else(|| bad("tune response needs 'point' when found"))?;
            Ok(Some(Tuned {
                point: point_from_json(point)?,
                result: mix_result_from_json(v)?,
                admitted: matches!(v.get("admitted"), Some(Json::Bool(true))),
            }))
        }
        Some(Json::Bool(false)) => Ok(None),
        _ => Err(bad("tune response needs a boolean 'found'")),
    }
}

fn outcome_from_json(v: &Json) -> Result<PointOutcome, ProtocolError> {
    match v.get("status").and_then(Json::as_str) {
        Some("ok") => Ok(PointOutcome::Feasible(result_from_json(v)?)),
        Some("infeasible") => Ok(PointOutcome::Infeasible(
            v.get("reason")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
                .to_owned(),
        )),
        _ => Err(bad("missing or unknown 'status'")),
    }
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] on unparseable JSON, a missing/unknown
    /// `"type"`, or mistyped fields.
    pub fn decode(line: &str) -> Result<Request, ProtocolError> {
        let v = Json::parse(line).map_err(|e| bad(e.to_string()))?;
        Request::decode_value(&v)
    }

    /// Parses one request line together with its optional propagated
    /// `"trace"` context. [`Request::decode`] ignores the field (so
    /// legacy call sites are unchanged); the daemon's session loop uses
    /// this entry point to tag every span of the request.
    ///
    /// # Errors
    ///
    /// Everything [`Request::decode`] rejects, plus a malformed
    /// `"trace"` object (missing/zero `id`, mistyped fields).
    pub fn decode_with_trace(line: &str) -> Result<(Request, Option<TraceContext>), ProtocolError> {
        let (request, meta) = Request::decode_with_meta(line)?;
        Ok((request, meta.trace))
    }

    /// Parses one request line together with its full transport
    /// envelope: the optional `"trace"` context *and* the optional
    /// pipelining id `"req"`. The daemon's session loop uses this so it
    /// can echo `"req"` on every reply line belonging to the request.
    ///
    /// # Errors
    ///
    /// Everything [`Request::decode`] rejects, plus a malformed
    /// `"trace"` object or a non-integer `"req"`.
    pub fn decode_with_meta(line: &str) -> Result<(Request, RequestMeta), ProtocolError> {
        let v = Json::parse(line).map_err(|e| bad(e.to_string()))?;
        let trace = match v.get("trace") {
            None => None,
            Some(t @ Json::Obj(_)) => {
                let id = t
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("'trace' needs an integer 'id'"))?;
                if id == 0 {
                    return Err(bad("'trace' id must be non-zero"));
                }
                Some(TraceContext {
                    id,
                    parent: get_usize(t, "parent", 0)? as u64,
                })
            }
            Some(_) => return Err(bad("'trace' must be an object")),
        };
        let req_id = match v.get("req") {
            None => None,
            Some(r) => Some(
                r.as_u64()
                    .ok_or_else(|| bad("'req' must be a non-negative integer"))?,
            ),
        };
        Ok((Request::decode_value(&v)?, RequestMeta { trace, req_id }))
    }

    fn decode_value(v: &Json) -> Result<Request, ProtocolError> {
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("request needs a string 'type'"))?;
        match kind {
            "eval" => {
                let point = v.get("point").unwrap_or(&Json::Obj(vec![])).clone();
                Ok(Request::Eval(point_from_json(&point)?))
            }
            "eval_batch" => {
                let points = v
                    .get("points")
                    .and_then(Json::as_array)
                    .ok_or_else(|| bad("eval_batch request needs a 'points' array"))?
                    .iter()
                    .map(point_from_json)
                    .collect::<Result<_, _>>()?;
                Ok(Request::EvalBatch(points))
            }
            "sweep" => {
                let spec = v
                    .get("spec")
                    .ok_or_else(|| bad("sweep request needs a 'spec' object"))?;
                Ok(Request::Sweep(spec_from_json(spec)?))
            }
            "tune" => Ok(Request::Tune(Box::new(tune_request_from_json(v)?))),
            "tune_frontier" => {
                let base = tune_request_from_json(v)?;
                let sweep = v
                    .get("sweep")
                    .ok_or_else(|| bad("tune_frontier request needs a 'sweep'"))?;
                let sweep = budget_sweep_from_json(sweep)?;
                Ok(Request::TuneFrontier(Box::new(FrontierTuneRequest {
                    base,
                    sweep,
                })))
            }
            "frontier" => {
                let dims = get_usize(v, "dims", 3)?;
                if !(dims == 2 || dims == 3) {
                    return Err(bad("'dims' must be 2 or 3"));
                }
                let sqnr = match v.get("axes").map(|a| a.as_str()) {
                    None => false,
                    Some(Some("gates")) => false,
                    Some(Some("sqnr")) => true,
                    _ => return Err(bad("'axes' must be \"gates\" or \"sqnr\"")),
                };
                if sqnr && dims != 3 {
                    return Err(bad("the sqnr frontier is 3-dimensional; use dims 3"));
                }
                let stream = match v.get("stream") {
                    None => false,
                    Some(Json::Bool(b)) => *b,
                    _ => return Err(bad("'stream' must be a boolean")),
                };
                Ok(Request::Frontier {
                    dims: dims as u8,
                    sqnr,
                    stream,
                })
            }
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "metrics_history" => Ok(Request::MetricsHistory),
            "watch" => Ok(Request::Watch {
                samples: get_usize(v, "samples", 0)? as u64,
            }),
            "trace_query" => {
                let id = v
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("trace_query needs an integer 'id'"))?;
                Ok(Request::TraceQuery { id })
            }
            "dump" => Ok(Request::Dump),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(bad(format!("unknown request type '{other}'"))),
        }
    }
}

impl Response {
    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// [`ProtocolError`] on unparseable JSON or a malformed reply.
    pub fn decode(line: &str) -> Result<Response, ProtocolError> {
        Ok(Response::decode_with_req(line)?.0)
    }

    /// Parses one response line together with its echoed pipelining id
    /// (`"req"`), if any. Pipelining clients use this to match reply
    /// lines to the requests that produced them.
    ///
    /// # Errors
    ///
    /// Everything [`Response::decode`] rejects, plus a non-integer
    /// `"req"`.
    pub fn decode_with_req(line: &str) -> Result<(Response, Option<u64>), ProtocolError> {
        let v = Json::parse(line).map_err(|e| bad(e.to_string()))?;
        let req_id = match v.get("req") {
            None => None,
            Some(r) => Some(
                r.as_u64()
                    .ok_or_else(|| bad("'req' must be a non-negative integer"))?,
            ),
        };
        Ok((Response::decode_value(v)?, req_id))
    }

    fn decode_value(v: Json) -> Result<Response, ProtocolError> {
        let ok = match v.get("ok") {
            Some(Json::Bool(b)) => *b,
            _ => return Err(bad("response needs a boolean 'ok'")),
        };
        if !ok {
            let message = v
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
                .to_owned();
            if message == "busy" {
                return Ok(Response::Busy {
                    active: get_usize(&v, "active", 0)?,
                    capacity: get_usize(&v, "capacity", 0)?,
                });
            }
            return Ok(Response::Error { message });
        }
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("response needs a string 'type'"))?;
        match kind {
            "eval" => {
                let point = v
                    .get("point")
                    .ok_or_else(|| bad("eval response needs 'point'"))?;
                Ok(Response::Eval {
                    point: point_from_json(point)?,
                    outcome: outcome_from_json(&v)?,
                })
            }
            "eval_batch" => {
                let outcomes = v
                    .get("outcomes")
                    .and_then(Json::as_array)
                    .ok_or_else(|| bad("eval_batch response needs 'outcomes'"))?
                    .iter()
                    .map(outcome_from_json)
                    .collect::<Result<_, _>>()?;
                Ok(Response::EvalBatch {
                    outcomes,
                    cache_hits: get_usize(&v, "cache_hits", 0)? as u64,
                    cache_misses: get_usize(&v, "cache_misses", 0)? as u64,
                })
            }
            "sweep" => {
                let indices = |key: &'static str| -> Result<Vec<usize>, ProtocolError> {
                    v.get(key)
                        .and_then(Json::as_array)
                        .ok_or_else(|| bad(format!("sweep response needs '{key}'")))?
                        .iter()
                        .map(|i| {
                            i.as_u64()
                                .map(|n| n as usize)
                                .ok_or_else(|| bad(format!("'{key}' must hold indices")))
                        })
                        .collect()
                };
                let candidates = match v.get("candidates") {
                    None => Vec::new(),
                    Some(arr) => arr
                        .as_array()
                        .ok_or_else(|| bad("'candidates' must be an array"))?
                        .iter()
                        .map(|c| {
                            let i = c
                                .get("i")
                                .and_then(Json::as_u64)
                                .ok_or_else(|| bad("candidate needs an integer 'i'"))?;
                            Ok((
                                i as usize,
                                Objectives {
                                    fps: get_f64(c, "fps", 0.0)?,
                                    system_mw: get_f64(c, "system_mw", 0.0)?,
                                    gates_k: get_f64(c, "gates_k", 0.0)?,
                                    sqnr_db: get_f64(c, "sqnr_db", 0.0)?,
                                },
                            ))
                        })
                        .collect::<Result<_, ProtocolError>>()?,
                };
                Ok(Response::Sweep(SweepSummary {
                    points: get_usize(&v, "points", 0)?,
                    feasible: get_usize(&v, "feasible", 0)?,
                    cache_hits: get_usize(&v, "cache_hits", 0)? as u64,
                    cache_misses: get_usize(&v, "cache_misses", 0)? as u64,
                    wall_ms: get_f64(&v, "wall_ms", 0.0)?,
                    frontier_3d: indices("frontier_3d")?,
                    frontier_sqnr: indices("frontier_sqnr")?,
                    candidates,
                    degraded: matches!(v.get("degraded"), Some(Json::Bool(true))),
                }))
            }
            "tune" => Ok(Response::Tune(TuneSummary {
                best: tuned_from_json(&v)?,
                evaluations: get_usize(&v, "evaluations", 0)? as u64,
                cache_hits: get_usize(&v, "cache_hits", 0)? as u64,
                cache_misses: get_usize(&v, "cache_misses", 0)? as u64,
                rounds: get_usize(&v, "rounds", 0)?,
                exhaustive_points: get_usize(&v, "exhaustive_points", 0)?,
                degraded: matches!(v.get("degraded"), Some(Json::Bool(true))),
            })),
            "tune_frontier" => {
                if matches!(v.get("done"), Some(Json::Bool(true))) {
                    let frontier = v
                        .get("frontier")
                        .and_then(Json::as_array)
                        .ok_or_else(|| bad("tune_frontier done line needs 'frontier'"))?
                        .iter()
                        .map(|i| {
                            i.as_u64()
                                .map(|n| n as usize)
                                .ok_or_else(|| bad("'frontier' must hold step indices"))
                        })
                        .collect::<Result<_, _>>()?;
                    return Ok(Response::TuneFrontierDone(FrontierDoneSummary {
                        steps: get_usize(&v, "steps", 0)?,
                        frontier,
                        evaluations: get_usize(&v, "evaluations", 0)? as u64,
                        standalone_evaluations: get_usize(&v, "standalone_evaluations", 0)? as u64,
                        cache_hits: get_usize(&v, "cache_hits", 0)? as u64,
                        cache_misses: get_usize(&v, "cache_misses", 0)? as u64,
                        exhaustive_points: get_usize(&v, "exhaustive_points", 0)?,
                    }));
                }
                Ok(Response::TuneFrontierStep(FrontierStepSummary {
                    step: get_usize(&v, "step", 0)?,
                    steps: get_usize(&v, "steps", 0)?,
                    result: FrontierStep {
                        // Required, not defaulted: a NaN budget would
                        // poison every PartialEq on the step downstream.
                        budget_value: v.get("budget_value").and_then(Json::as_f64).ok_or_else(
                            || bad("tune_frontier step line needs a numeric 'budget_value'"),
                        )?,
                        best: tuned_from_json(&v)?,
                        evaluations: get_usize(&v, "evaluations", 0)? as u64,
                        fresh_evaluations: get_usize(&v, "fresh_evaluations", 0)? as u64,
                        cache_hits: get_usize(&v, "cache_hits", 0)? as u64,
                        cache_misses: get_usize(&v, "cache_misses", 0)? as u64,
                        rounds: get_usize(&v, "rounds", 0)?,
                    },
                }))
            }
            "frontier" => {
                if matches!(v.get("done"), Some(Json::Bool(true))) {
                    return Ok(Response::FrontierStreamDone {
                        dims: get_usize(&v, "dims", 3)? as u8,
                        entries: get_usize(&v, "entries", 0)?,
                        degraded: matches!(v.get("degraded"), Some(Json::Bool(true))),
                    });
                }
                if matches!(v.get("stream"), Some(Json::Bool(true))) {
                    let point = v
                        .get("point")
                        .ok_or_else(|| bad("frontier stream entry needs 'point'"))?;
                    return Ok(Response::FrontierStreamEntry {
                        entry: FrontierEntry {
                            point: point_from_json(point)?,
                            result: result_from_json(&v)?,
                        },
                    });
                }
                let dims = get_usize(&v, "dims", 3)? as u8;
                let entries = v
                    .get("entries")
                    .and_then(Json::as_array)
                    .ok_or_else(|| bad("frontier response needs 'entries'"))?
                    .iter()
                    .map(|e| {
                        let point = e
                            .get("point")
                            .ok_or_else(|| bad("frontier entry needs 'point'"))?;
                        Ok(FrontierEntry {
                            point: point_from_json(point)?,
                            result: result_from_json(e)?,
                        })
                    })
                    .collect::<Result<_, ProtocolError>>()?;
                Ok(Response::Frontier {
                    dims,
                    entries,
                    degraded: matches!(v.get("degraded"), Some(Json::Bool(true))),
                })
            }
            "stats" => Ok(Response::Stats(ServerStats {
                cached_points: get_usize(&v, "cached_points", 0)?,
                hits: get_usize(&v, "hits", 0)? as u64,
                misses: get_usize(&v, "misses", 0)? as u64,
                hit_rate: get_f64(&v, "hit_rate", 0.0)?,
                requests: get_usize(&v, "requests", 0)? as u64,
                active_jobs: get_usize(&v, "active_jobs", 0)?,
                queue_capacity: get_usize(&v, "queue_capacity", 0)?,
                open_connections: get_usize(&v, "open_connections", 0)?,
                max_connections: get_usize(&v, "max_connections", 0)?,
                threads: get_usize(&v, "threads", 0)?,
                loaded_from_disk: get_usize(&v, "loaded_from_disk", 0)?,
                persistent: matches!(v.get("persistent"), Some(Json::Bool(true))),
                uptime_s: get_f64(&v, "uptime_s", 0.0)?,
                inflight_requests: get_usize(&v, "inflight_requests", 0)?,
                queue_depth: get_usize(&v, "queue_depth", 0)?,
                slos: get_usize(&v, "slos", 0)?,
                slo_breach_ticks: get_usize(&v, "slo_breach_ticks", 0)? as u64,
                shards: match v.get("shards") {
                    None => Vec::new(),
                    Some(arr) => arr
                        .as_array()
                        .ok_or_else(|| bad("'shards' must be an array"))?
                        .iter()
                        .map(|s| {
                            Ok(ShardStat {
                                addr: s
                                    .get("addr")
                                    .and_then(Json::as_str)
                                    .ok_or_else(|| bad("shard stat needs a string 'addr'"))?
                                    .to_owned(),
                                requests: get_usize(s, "requests", 0)? as u64,
                                errors: get_usize(s, "errors", 0)? as u64,
                                degraded: matches!(s.get("degraded"), Some(Json::Bool(true))),
                            })
                        })
                        .collect::<Result<_, ProtocolError>>()?,
                },
            })),
            "metrics" => {
                let entries = v
                    .get("metrics")
                    .and_then(Json::as_array)
                    .ok_or_else(|| bad("metrics response needs 'metrics'"))?
                    .iter()
                    .map(metric_entry_from_json)
                    .collect::<Result<_, ProtocolError>>()?;
                Ok(Response::Metrics {
                    snapshot: Snapshot {
                        entries,
                        uptime_s: get_f64(&v, "uptime_s", 0.0)?,
                    },
                })
            }
            "metrics_history" => {
                let windows = v
                    .get("windows")
                    .and_then(Json::as_array)
                    .ok_or_else(|| bad("metrics_history response needs 'windows'"))?
                    .iter()
                    .map(|w| {
                        Ok(HistoryWindow {
                            window_s: get_f64(w, "window_s", 0.0)?,
                            duration_s: get_f64(w, "duration_s", 0.0)?,
                            samples: get_usize(w, "samples", 0)?,
                            req_per_sec: get_f64(w, "req_per_sec", 0.0)?,
                            points_per_sec: get_f64(w, "points_per_sec", 0.0)?,
                            types: type_windows_from_json(w)?,
                        })
                    })
                    .collect::<Result<_, ProtocolError>>()?;
                Ok(Response::MetricsHistory(Box::new(MetricsHistory {
                    interval_s: get_f64(&v, "interval_s", 0.0)?,
                    samples: get_usize(&v, "samples", 0)? as u64,
                    capacity: get_usize(&v, "capacity", 0)?,
                    windows,
                })))
            }
            "watch" => {
                if matches!(v.get("done"), Some(Json::Bool(true))) {
                    return Ok(Response::WatchDone {
                        samples: get_usize(&v, "samples", 0)? as u64,
                    });
                }
                Ok(Response::WatchSample(Box::new(WatchSample {
                    seq: v
                        .get("seq")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("watch sample line needs an integer 'seq'"))?,
                    interval_s: get_f64(&v, "interval_s", 0.0)?,
                    window_s: get_f64(&v, "window_s", 0.0)?,
                    req_per_sec: get_f64(&v, "req_per_sec", 0.0)?,
                    points_per_sec: get_f64(&v, "points_per_sec", 0.0)?,
                    inflight: get_usize(&v, "inflight", 0)? as u64,
                    active_jobs: get_usize(&v, "active_jobs", 0)? as u64,
                    queue_depth: get_usize(&v, "queue_depth", 0)? as u64,
                    cache_hit_rate: get_f64(&v, "cache_hit_rate", 0.0)?,
                    requests_total: get_usize(&v, "requests_total", 0)? as u64,
                    queue_wait_p99_us: get_f64(&v, "queue_wait_p99_us", 0.0)?,
                    execute_p99_us: get_f64(&v, "execute_p99_us", 0.0)?,
                    types: type_windows_from_json(&v)?,
                })))
            }
            "trace" => {
                let id = v
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("trace response needs an integer 'id'"))?;
                let spans = v
                    .get("spans")
                    .and_then(Json::as_array)
                    .ok_or_else(|| bad("trace response needs 'spans'"))?
                    .iter()
                    .map(|s| span_from_json(id, s))
                    .collect::<Result<_, ProtocolError>>()?;
                Ok(Response::Trace {
                    id,
                    dropped: get_usize(&v, "dropped", 0)? as u64,
                    spans,
                })
            }
            "dump" => Ok(Response::Dump {
                path: v
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("dump response needs a string 'path'"))?
                    .to_owned(),
                spans: get_usize(&v, "spans", 0)?,
                dropped: get_usize(&v, "dropped", 0)? as u64,
            }),
            "shutdown" => Ok(Response::Shutdown),
            other => Err(bad(format!("unknown response type '{other}'"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_result() -> PointResult {
        match chain_nn_dse::evaluate(&DesignPoint::paper_alexnet()).unwrap() {
            PointOutcome::Feasible(r) => r,
            PointOutcome::Infeasible(why) => panic!("paper point infeasible: {why}"),
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            Request::Eval(DesignPoint::paper_alexnet()),
            Request::Sweep(SweepSpec {
                pes: vec![288, 576],
                freqs_mhz: vec![350.0, 700.0],
                nets: vec!["alexnet".into(), "vgg16".into()],
                ..SweepSpec::paper_point()
            }),
            Request::Frontier {
                dims: 2,
                sqnr: false,
                stream: false,
            },
            Request::Frontier {
                dims: 3,
                sqnr: false,
                stream: false,
            },
            Request::Frontier {
                dims: 3,
                sqnr: true,
                stream: false,
            },
            Request::Frontier {
                dims: 3,
                sqnr: false,
                stream: true,
            },
            Request::Frontier {
                dims: 3,
                sqnr: true,
                stream: true,
            },
            Request::Stats,
            Request::Metrics,
            Request::MetricsHistory,
            Request::Watch { samples: 0 },
            Request::Watch { samples: 5 },
            Request::TraceQuery { id: 4242 },
            Request::Dump,
            Request::Shutdown,
        ];
        for req in requests {
            let line = req.encode();
            assert!(!line.contains('\n'), "wire form must be one line");
            assert_eq!(Request::decode(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn stats_reply_without_observability_fields_still_decodes() {
        // A daemon predating the observability layer omits `uptime_s`
        // and `inflight_requests`; one predating the temporal layer
        // additionally omits `queue_depth` and the SLO counters. The
        // decoder must default every one of them.
        let legacy = r#"{"ok":true,"type":"stats","cached_points":10,"hits":7,"misses":3,"hit_rate":0.7,"requests":42,"active_jobs":1,"queue_capacity":16,"open_connections":3,"max_connections":64,"threads":4,"loaded_from_disk":6,"persistent":true}"#;
        match Response::decode(legacy).unwrap() {
            Response::Stats(st) => {
                assert_eq!(st.cached_points, 10);
                assert_eq!(st.requests, 42);
                assert_eq!(st.uptime_s, 0.0);
                assert_eq!(st.inflight_requests, 0);
                assert_eq!(st.queue_depth, 0);
                assert_eq!(st.slos, 0);
                assert_eq!(st.slo_breach_ticks, 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
    }

    #[test]
    fn metrics_reply_without_uptime_still_decodes() {
        // Pre-temporal daemons omit the snapshot-level `uptime_s`.
        let legacy = r#"{"ok":true,"type":"metrics","metrics":[]}"#;
        match Response::decode(legacy).unwrap() {
            Response::Metrics { snapshot } => {
                assert_eq!(snapshot.uptime_s, 0.0);
                assert!(snapshot.entries.is_empty());
            }
            other => panic!("expected metrics, got {other:?}"),
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            Response::Eval {
                point: DesignPoint::paper_alexnet(),
                outcome: PointOutcome::Feasible(paper_result()),
            },
            Response::Eval {
                point: DesignPoint::paper_alexnet(),
                outcome: PointOutcome::Infeasible("chain too short".into()),
            },
            Response::Sweep(SweepSummary {
                points: 6,
                feasible: 5,
                cache_hits: 2,
                cache_misses: 4,
                wall_ms: 1.25,
                frontier_3d: vec![0, 3, 5],
                frontier_sqnr: vec![0, 5],
                candidates: Vec::new(),
                degraded: false,
            }),
            // A partitioned shard reply: frontier candidates attached,
            // and the degraded marker set.
            Response::Sweep(SweepSummary {
                points: 3,
                feasible: 3,
                cache_hits: 0,
                cache_misses: 3,
                wall_ms: 0.5,
                frontier_3d: vec![1, 4],
                frontier_sqnr: vec![1],
                candidates: vec![
                    (
                        1,
                        Objectives {
                            fps: 100.5,
                            system_mw: 820.25,
                            gates_k: 1024.0,
                            sqnr_db: 60.125,
                        },
                    ),
                    (
                        4,
                        Objectives {
                            fps: 55.0,
                            system_mw: 410.0,
                            gates_k: 512.5,
                            sqnr_db: 72.0,
                        },
                    ),
                ],
                degraded: true,
            }),
            Response::EvalBatch {
                outcomes: vec![
                    PointOutcome::Feasible(paper_result()),
                    PointOutcome::Infeasible("chain too short".into()),
                ],
                cache_hits: 1,
                cache_misses: 1,
            },
            Response::Frontier {
                dims: 3,
                entries: vec![FrontierEntry {
                    point: DesignPoint::paper_alexnet(),
                    result: paper_result(),
                }],
                degraded: false,
            },
            Response::Stats(ServerStats {
                cached_points: 10,
                hits: 7,
                misses: 3,
                hit_rate: 0.7,
                requests: 42,
                active_jobs: 1,
                queue_capacity: 16,
                open_connections: 3,
                max_connections: 64,
                threads: 4,
                loaded_from_disk: 6,
                persistent: true,
                uptime_s: 12.5,
                inflight_requests: 2,
                queue_depth: 1,
                slos: 2,
                slo_breach_ticks: 3,
                shards: vec![
                    ShardStat {
                        addr: "127.0.0.1:7001".into(),
                        requests: 12,
                        errors: 0,
                        degraded: false,
                    },
                    ShardStat {
                        addr: "127.0.0.1:7002".into(),
                        requests: 9,
                        errors: 2,
                        degraded: true,
                    },
                ],
            }),
            Response::Metrics {
                snapshot: Snapshot {
                    entries: vec![
                        MetricEntry {
                            name: "serve_request_ns".into(),
                            labels: vec![("type".into(), "eval".into())],
                            value: MetricValue::Histogram(HistogramSummary {
                                count: 12,
                                sum: 49152,
                                p50: 4096.0,
                                p95: 4096.0,
                                p99: 4096.0,
                                max: 4096.0,
                            }),
                        },
                        MetricEntry {
                            name: "serve_inflight_requests".into(),
                            labels: vec![],
                            value: MetricValue::Gauge(1.0),
                        },
                        MetricEntry {
                            name: "serve_requests_total".into(),
                            labels: vec![("type".into(), "eval".into())],
                            value: MetricValue::Counter(12),
                        },
                    ],
                    uptime_s: 42.5,
                },
            },
            Response::Metrics {
                snapshot: Snapshot::default(),
            },
            Response::MetricsHistory(Box::new(MetricsHistory {
                interval_s: 0.25,
                samples: 120,
                capacity: 256,
                windows: vec![
                    HistoryWindow {
                        window_s: 1.0,
                        duration_s: 1.0,
                        samples: 4,
                        req_per_sec: 12.0,
                        points_per_sec: 512.0,
                        types: vec![HistoryTypeWindow {
                            kind: "eval".into(),
                            requests: 10,
                            p50_us: 250.0,
                            p99_us: 750.5,
                        }],
                    },
                    HistoryWindow {
                        window_s: 10.0,
                        duration_s: 8.5,
                        samples: 34,
                        req_per_sec: 2.5,
                        points_per_sec: 64.0,
                        types: vec![],
                    },
                ],
            })),
            Response::WatchSample(Box::new(WatchSample {
                seq: 7,
                interval_s: 0.25,
                window_s: 1.0,
                req_per_sec: 48.0,
                points_per_sec: 2048.0,
                inflight: 3,
                active_jobs: 2,
                queue_depth: 1,
                cache_hit_rate: 0.75,
                requests_total: 420,
                queue_wait_p99_us: 125.5,
                execute_p99_us: 850.0,
                types: vec![HistoryTypeWindow {
                    kind: "sweep".into(),
                    requests: 2,
                    p50_us: 1500.0,
                    p99_us: 9000.0,
                }],
            })),
            Response::WatchDone { samples: 7 },
            Response::Trace {
                id: 4242,
                dropped: 3,
                spans: vec![
                    SpanRecord {
                        trace_id: 4242,
                        span_id: 10,
                        parent_id: 0,
                        name: "sweep".into(),
                        start_us: 100,
                        dur_us: 950,
                        worker: None,
                        points: 500,
                    },
                    SpanRecord {
                        trace_id: 4242,
                        span_id: 11,
                        parent_id: 10,
                        name: "batch".into(),
                        start_us: 200,
                        dur_us: 40,
                        worker: Some(1),
                        points: 32,
                    },
                ],
            },
            Response::Trace {
                id: 7,
                dropped: 0,
                spans: vec![],
            },
            Response::Dump {
                path: "/tmp/trace.jsonl.flight.json".into(),
                spans: 128,
                dropped: 0,
            },
            Response::Shutdown,
            Response::Busy {
                active: 16,
                capacity: 16,
            },
            Response::Error {
                message: "unknown network 'squeezenet'".into(),
            },
        ];
        for resp in responses {
            let line = resp.encode();
            assert!(!line.contains('\n'));
            assert_eq!(Response::decode(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn tune_requests_round_trip() {
        let requests = vec![
            Request::Tune(Box::default()),
            Request::Tune(Box::new(TuneRequest {
                mix: WorkloadMix::parse("alexnet:0.7,vgg16:0.3").unwrap(),
                budget: Budget {
                    max_system_mw: Some(500.0),
                    min_fps: Some(30.0),
                    min_sqnr_db: Some(45.0),
                    ..Budget::default()
                },
                objective: Objective::Lexicographic(vec![Metric::Fps, Metric::SystemMw]),
                strategy: StrategyKind::HillClimb,
                seed: 42,
                ..TuneRequest::default()
            })),
            Request::Tune(Box::new(TuneRequest {
                objective: Objective::Scalarized(vec![(Metric::Fps, 1.0), (Metric::GatesK, 0.25)]),
                ..TuneRequest::default()
            })),
        ];
        for req in requests {
            let line = req.encode();
            assert!(!line.contains('\n'));
            assert_eq!(Request::decode(&line).unwrap(), req, "{line}");
        }
    }

    #[test]
    fn tune_request_fields_all_default() {
        let req = Request::decode(r#"{"type":"tune"}"#).unwrap();
        assert_eq!(req, Request::Tune(Box::default()));
        // The mix also accepts the CLI string form.
        let req = Request::decode(
            r#"{"type":"tune","mix":"vgg16:2,alexnet:1","budget":{"max_system_mw":500}}"#,
        )
        .unwrap();
        let Request::Tune(tune) = req else {
            panic!("not a tune")
        };
        assert_eq!(tune.mix.primary(), "vgg16");
        assert_eq!(tune.budget.max_system_mw, Some(500.0));
        assert_eq!(tune.budget.max_gates_k, None);
        assert_eq!(tune.budget.min_sqnr_db, None);
        // And the accuracy floor decodes when present.
        let req = Request::decode(r#"{"type":"tune","budget":{"min_sqnr_db":42.5}}"#).unwrap();
        let Request::Tune(tune) = req else {
            panic!("not a tune")
        };
        assert_eq!(tune.budget.min_sqnr_db, Some(42.5));
    }

    #[test]
    fn tune_responses_round_trip() {
        let found = Response::Tune(TuneSummary {
            best: Some(Tuned {
                point: DesignPoint::paper_alexnet(),
                result: MixResult::from(&paper_result()),
                admitted: true,
            }),
            evaluations: 34,
            cache_hits: 10,
            cache_misses: 58,
            rounds: 5,
            exhaustive_points: 244,
            degraded: false,
        });
        let nothing = Response::Tune(TuneSummary {
            best: None,
            evaluations: 20,
            cache_hits: 0,
            cache_misses: 20,
            rounds: 1,
            exhaustive_points: 244,
            degraded: true,
        });
        for resp in [found, nothing] {
            let line = resp.encode();
            assert!(!line.contains('\n'));
            assert_eq!(Response::decode(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn tune_frontier_requests_round_trip() {
        use chain_nn_tuner::{BudgetAxis, BudgetSweep, FrontierTuneRequest};
        let requests = vec![
            Request::TuneFrontier(Box::default()),
            Request::TuneFrontier(Box::new(FrontierTuneRequest {
                base: TuneRequest {
                    mix: WorkloadMix::parse("alexnet:0.7,vgg16:0.3").unwrap(),
                    strategy: StrategyKind::HillClimb,
                    seed: 9,
                    ..TuneRequest::default()
                },
                sweep: BudgetSweep {
                    axis: BudgetAxis::MinFps,
                    values: vec![30.0, 60.5, 120.0],
                },
            })),
        ];
        for req in requests {
            let line = req.encode();
            assert!(!line.contains('\n'));
            assert!(req.is_streaming());
            assert_eq!(Request::decode(&line).unwrap(), req, "{line}");
        }
        // The sweep also decodes from its CLI string form.
        let req = Request::decode(
            r#"{"type":"tune_frontier","sweep":"max-mw=300..=400:50","budget":{"min_fps":30}}"#,
        )
        .unwrap();
        let Request::TuneFrontier(ft) = req else {
            panic!("not a tune_frontier")
        };
        assert_eq!(ft.sweep.axis, BudgetAxis::MaxSystemMw);
        assert_eq!(ft.sweep.values, vec![300.0, 350.0, 400.0]);
        assert_eq!(ft.base.budget.min_fps, Some(30.0));
        // Non-streaming requests say so; watch streams.
        assert!(!Request::Stats.is_streaming());
        assert!(!Request::MetricsHistory.is_streaming());
        assert!(!Request::Tune(Box::default()).is_streaming());
        assert!(Request::Watch { samples: 0 }.is_streaming());
    }

    #[test]
    fn watch_lines_distinguish_samples_from_the_done_line() {
        // A sample line carries `seq`; the terminal line carries
        // `done` — a line with neither is malformed, not a default.
        let headless = r#"{"ok":true,"type":"watch","req_per_sec":5}"#;
        assert!(Response::decode(headless).is_err());
        let done = r#"{"ok":true,"type":"watch","done":true,"samples":4}"#;
        assert_eq!(
            Response::decode(done).unwrap(),
            Response::WatchDone { samples: 4 }
        );
        // A negative sample budget is rejected at decode time.
        assert!(Request::decode(r#"{"type":"watch","samples":-1}"#).is_err());
    }

    #[test]
    fn malformed_tune_frontier_requests_are_rejected() {
        for bad in [
            r#"{"type":"tune_frontier"}"#,
            r#"{"type":"tune_frontier","sweep":7}"#,
            r#"{"type":"tune_frontier","sweep":{"axis":"warp","values":[1,2]}}"#,
            r#"{"type":"tune_frontier","sweep":{"axis":"max_system_mw"}}"#,
            r#"{"type":"tune_frontier","sweep":{"axis":"max_system_mw","values":[]}}"#,
            r#"{"type":"tune_frontier","sweep":{"axis":"max_system_mw","values":[500,400]}}"#,
            r#"{"type":"tune_frontier","sweep":{"axis":"max_system_mw","values":["lots"]}}"#,
            r#"{"type":"tune_frontier","sweep":"max-mw=900..=300"}"#,
        ] {
            assert!(Request::decode(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn streaming_response_lines_round_trip() {
        let step_found = Response::TuneFrontierStep(FrontierStepSummary {
            step: 0,
            steps: 13,
            result: FrontierStep {
                budget_value: 300.0,
                best: Some(Tuned {
                    point: DesignPoint::paper_alexnet(),
                    result: MixResult::from(&paper_result()),
                    admitted: true,
                }),
                evaluations: 33,
                fresh_evaluations: 33,
                cache_hits: 0,
                cache_misses: 33,
                rounds: 5,
            },
        });
        let step_nothing = Response::TuneFrontierStep(FrontierStepSummary {
            step: 3,
            steps: 13,
            result: FrontierStep {
                budget_value: 450.0,
                best: None,
                evaluations: 20,
                fresh_evaluations: 0,
                cache_hits: 20,
                cache_misses: 0,
                rounds: 1,
            },
        });
        let done = Response::TuneFrontierDone(FrontierDoneSummary {
            steps: 13,
            frontier: vec![0, 4, 7],
            evaluations: 61,
            standalone_evaluations: 429,
            cache_hits: 400,
            cache_misses: 61,
            exhaustive_points: 244,
        });
        let entry = Response::FrontierStreamEntry {
            entry: FrontierEntry {
                point: DesignPoint::paper_alexnet(),
                result: paper_result(),
            },
        };
        let stream_done = Response::FrontierStreamDone {
            dims: 3,
            entries: 7,
            degraded: false,
        };
        for resp in [step_found, step_nothing, done, entry, stream_done] {
            let line = resp.encode();
            assert!(!line.contains('\n'));
            assert_eq!(Response::decode(&line).unwrap(), resp, "{line}");
        }
        // A step line without its budget value is malformed, not NaN.
        let headless = r#"{"ok":true,"type":"tune_frontier","step":0,"steps":2,"found":false}"#;
        assert!(Response::decode(headless).is_err());
    }

    #[test]
    fn malformed_tune_requests_are_rejected() {
        for bad in [
            r#"{"type":"tune","mix":{"alexnet":"lots"}}"#,
            r#"{"type":"tune","mix":{"squeezenet":1}}"#,
            r#"{"type":"tune","mix":7}"#,
            r#"{"type":"tune","strategy":"warp"}"#,
            r#"{"type":"tune","objective":[]}"#,
            r#"{"type":"tune","objective":{"weights":{"fps":1}}}"#,
            r#"{"type":"tune","budget":{"max_system_mw":"cheap"}}"#,
            r#"{"type":"tune","seed":1.5}"#,
        ] {
            assert!(Request::decode(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn eval_point_fields_default_to_the_paper_point() {
        let req = Request::decode(r#"{"type":"eval","point":{"pes":288}}"#).unwrap();
        let expected = DesignPoint {
            pes: 288,
            ..DesignPoint::paper_alexnet()
        };
        assert_eq!(req, Request::Eval(expected));
        // A missing point object entirely is the paper point.
        let req = Request::decode(r#"{"type":"eval"}"#).unwrap();
        assert_eq!(req, Request::Eval(DesignPoint::paper_alexnet()));
    }

    #[test]
    fn sweep_axes_accept_scalars_and_arrays() {
        let req = Request::decode(
            r#"{"type":"sweep","spec":{"pes":[144,288],"freqs_mhz":700,"nets":"lenet"}}"#,
        )
        .unwrap();
        let Request::Sweep(spec) = req else {
            panic!("not a sweep")
        };
        assert_eq!(spec.pes, vec![144, 288]);
        assert_eq!(spec.freqs_mhz, vec![700.0]);
        assert_eq!(spec.nets, vec!["lenet".to_owned()]);
        // Unspecified axes pin to the paper point.
        assert_eq!(spec.kmem_depths, vec![256]);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "",
            "not json",
            r#"{"no_type":1}"#,
            r#"{"type":"warp"}"#,
            r#"{"type":"sweep"}"#,
            r#"{"type":"sweep","spec":{"pes":["many"]}}"#,
            r#"{"type":"frontier","dims":4}"#,
            r#"{"type":"frontier","dims":2,"axes":"sqnr"}"#,
            r#"{"type":"frontier","dims":3,"axes":"warp"}"#,
            r#"{"type":"frontier","dims":3,"stream":"yes"}"#,
            r#"{"type":"eval","point":{"pes":-5}}"#,
        ] {
            assert!(Request::decode(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn trace_contexts_propagate_and_legacy_lines_decode_unchanged() {
        // Every request shape can carry a context, which decodes back.
        let ctx = TraceContext {
            id: 4242,
            parent: 17,
        };
        for req in [
            Request::Eval(DesignPoint::paper_alexnet()),
            Request::Sweep(SweepSpec::paper_point()),
            Request::Tune(Box::default()),
            Request::Stats,
            Request::TraceQuery { id: 9 },
        ] {
            let line = req.encode_with_trace(ctx);
            let (back, got) = Request::decode_with_trace(&line).unwrap();
            assert_eq!(back, req, "{line}");
            assert_eq!(got, Some(ctx), "{line}");
            // Plain decode (a pre-tracing daemon) ignores the field.
            assert_eq!(Request::decode(&line).unwrap(), req, "{line}");
        }
        // A root context omits `parent` on the wire and decodes to 0.
        let line = Request::Stats.encode_with_trace(TraceContext { id: 5, parent: 0 });
        assert!(!line.contains("parent"));
        let (_, got) = Request::decode_with_trace(&line).unwrap();
        assert_eq!(got, Some(TraceContext { id: 5, parent: 0 }));
        // Lines without the field decode to no context.
        let (_, got) = Request::decode_with_trace(r#"{"type":"stats"}"#).unwrap();
        assert_eq!(got, None);
        // Malformed contexts are rejected, not ignored.
        for bad in [
            r#"{"type":"stats","trace":7}"#,
            r#"{"type":"stats","trace":{}}"#,
            r#"{"type":"stats","trace":{"id":0}}"#,
            r#"{"type":"stats","trace":{"id":"yes"}}"#,
            r#"{"type":"stats","trace":{"id":3,"parent":-1}}"#,
        ] {
            assert!(Request::decode_with_trace(bad).is_err(), "{bad:?}");
        }
        // trace_query requires its id.
        assert!(Request::decode(r#"{"type":"trace_query"}"#).is_err());
    }

    #[test]
    fn float_fields_survive_bit_exactly() {
        let point = DesignPoint {
            freq_mhz: 123.456789012345,
            ..DesignPoint::paper_alexnet()
        };
        let line = Request::Eval(point.clone()).encode();
        let Request::Eval(back) = Request::decode(&line).unwrap() else {
            panic!("not eval")
        };
        assert_eq!(back.freq_mhz.to_bits(), point.freq_mhz.to_bits());
        // Content hashes therefore agree: the wire is cache-identity safe.
        assert_eq!(back.content_hash(), point.content_hash());
    }
}
