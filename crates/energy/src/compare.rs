//! Table V: comparison with DaDianNao and Eyeriss.
//!
//! The paper compares against the two chips' *published* numbers (its
//! refs \[10\] and \[12\]); we embed the same published specs and add our
//! modeled Chain-NN row. [`table_five`] regenerates the table, including
//! the 65→28 nm scaled Eyeriss efficiency from the table's footnote.

use chain_nn_core::ChainConfig;
use chain_nn_mem::MemoryConfig;
use chain_nn_nets::zoo;

use crate::area::AreaModel;
use crate::power::PowerModel;
use crate::tech::TechNode;

/// One column of Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorSpec {
    /// Design name.
    pub name: String,
    /// Technology node.
    pub tech: TechNode,
    /// Logic gate count in kGE (`None` where the paper prints N/A).
    pub gate_count_k: Option<f64>,
    /// On-chip memory description.
    pub onchip_memory: String,
    /// On-chip memory in KB (for derived metrics).
    pub onchip_memory_kb: f64,
    /// Parallelism (MAC units), as the paper states it.
    pub parallelism: String,
    /// Core clock in MHz.
    pub freq_mhz: f64,
    /// Power in watts.
    pub power_w: f64,
    /// Peak throughput in GOPS.
    pub peak_gops: f64,
}

impl AcceleratorSpec {
    /// Energy efficiency in GOPS/W (peak over power, the paper's
    /// convention).
    pub fn gops_per_watt(&self) -> f64 {
        self.peak_gops / self.power_w
    }

    /// Efficiency scaled to `target` with the paper's linear rule.
    pub fn gops_per_watt_scaled_to(&self, target: &TechNode) -> f64 {
        self.tech.scale_gops_per_watt(self.gops_per_watt(), target)
    }
}

/// DaDianNao's published specs (MICRO'14, one node): the paper's
/// memory-centric representative.
pub fn dadiannao() -> AcceleratorSpec {
    AcceleratorSpec {
        name: "DaDianNao [10]".to_owned(),
        tech: TechNode::st28(),
        gate_count_k: None,
        onchip_memory: "36MB eDRAM".to_owned(),
        onchip_memory_kb: 36.0 * 1024.0,
        parallelism: "288x16".to_owned(),
        freq_mhz: 606.0,
        power_w: 15.97,
        peak_gops: 5_584.9,
    }
}

/// DaDianNao's core-only efficiency quoted in Fig. 10 (3035.3 GOPS/W):
/// the fraction of its power spent in the processor core (the paper's
/// pie: 11.52 % core, 88.48 % memory hierarchy).
pub fn dadiannao_core_gops_per_watt() -> f64 {
    let spec = dadiannao();
    spec.peak_gops / (spec.power_w * 0.1152)
}

/// Eyeriss's published specs (ISSCC'16): the 2D-spatial representative.
pub fn eyeriss() -> AcceleratorSpec {
    AcceleratorSpec {
        name: "Eyeriss [12]".to_owned(),
        tech: TechNode::tsmc65(),
        gate_count_k: Some(1_852.0),
        onchip_memory: "181.5KB SRAM".to_owned(),
        onchip_memory_kb: 181.5,
        parallelism: "168".to_owned(),
        freq_mhz: 250.0,
        power_w: 0.450,
        peak_gops: 84.0,
    }
}

/// Our modeled Chain-NN column, derived from the area and power models
/// on the AlexNet workload (batch 4, as Table IV uses).
pub fn chain_nn() -> AcceleratorSpec {
    let cfg = ChainConfig::paper_576();
    let mem = MemoryConfig::paper();
    let area = AreaModel::new(cfg);
    let power = PowerModel::new(cfg, mem)
        .network_power(&zoo::alexnet(), 4)
        .expect("paper configuration always maps");
    AcceleratorSpec {
        name: "Chain-NN (this model)".to_owned(),
        tech: TechNode::tsmc28(),
        gate_count_k: Some(area.total_gates() / 1e3),
        onchip_memory: "352KB SRAM".to_owned(),
        onchip_memory_kb: area.onchip_memory_bytes(mem.imem_bytes, mem.omem_bytes) as f64 / 1024.0,
        parallelism: cfg.num_pes().to_string(),
        freq_mhz: cfg.freq_mhz(),
        power_w: power.breakdown.total_mw() / 1e3,
        peak_gops: cfg.peak_gops(),
    }
}

/// The three columns of Table V.
pub fn table_five() -> Vec<AcceleratorSpec> {
    vec![dadiannao(), eyeriss(), chain_nn()]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table V bottom row: 349.7 / 245.6 (570.1 scaled) / 1421.0 GOPS/W.
    #[test]
    fn published_efficiencies() {
        assert!((dadiannao().gops_per_watt() - 349.7).abs() < 0.5);
        assert!((eyeriss().gops_per_watt() - 186.7).abs() < 0.5);
        // NOTE: the paper prints 245.6 GOPS/W for Eyeriss; 84.0 GOPS /
        // 0.45 W is 186.7 — the paper evidently used a different power
        // point (e.g. 342 mW): 84/0.342 = 245.6. Documented in
        // EXPERIMENTS.md; we keep the published chip specs.
        let scaled = eyeriss().gops_per_watt_scaled_to(&TechNode::tsmc28());
        assert!((scaled - 433.5).abs() < 1.0, "scaled {scaled}");
    }

    /// The headline claim: Chain-NN ≥ 2.5× DaDianNao and ≥ 2.5× the
    /// 28nm-scaled Eyeriss.
    #[test]
    fn chain_nn_wins_by_2_5x_or_more() {
        let ours = chain_nn();
        let e = ours.gops_per_watt();
        assert!(e / dadiannao().gops_per_watt() > 2.5, "vs DaDianNao {e}");
        let eyeriss28 = eyeriss().gops_per_watt_scaled_to(&TechNode::tsmc28());
        assert!(e / eyeriss28 > 2.5, "vs scaled Eyeriss {e} / {eyeriss28}");
    }

    /// Fig. 10: DaDianNao core-only ≈ 3035 GOPS/W beats our core-only —
    /// Chain-NN spends more in the core to spend far less in memory.
    #[test]
    fn dadiannao_core_only_wins_cores() {
        let dd = dadiannao_core_gops_per_watt();
        assert!((dd - 3035.3).abs() / 3035.3 < 0.01, "dd core {dd}");
    }

    /// Table V structure: three designs, Chain-NN matches paper's
    /// configuration claims.
    #[test]
    fn table_five_rows() {
        let rows = table_five();
        assert_eq!(rows.len(), 3);
        let ours = &rows[2];
        assert_eq!(ours.parallelism, "576");
        assert_eq!(ours.freq_mhz, 700.0);
        assert!((ours.peak_gops - 806.4).abs() < 1e-9);
        let gates = ours.gate_count_k.unwrap();
        assert!((gates - 3751.0).abs() < 20.0, "gates {gates}");
        assert!((ours.power_w - 0.5675).abs() / 0.5675 < 0.06);
        assert!(rows[0].gate_count_k.is_none());
    }
}
