//! Technology, power and area models — the reproduction's stand-in for
//! the paper's Design Compiler / Power Compiler / Encounter flow.
//!
//! Without the TSMC 28 nm PDK, absolute joules and square microns cannot
//! be re-derived; instead this crate provides *parameterized architectural
//! models* whose coefficients are *fitted once* to the paper's reported
//! numbers (Fig. 8/10, Table V) and cross-checked against public energy
//! surveys (Horowitz, ISSCC'14 ballpark). Everything that matters for the
//! paper's claims — breakdown shares, efficiency ratios, scaling
//! behaviour — derives from the *activity counts* produced by the
//! simulator and traffic models, not from the fitted constants alone.
//!
//! * [`tech`] — technology nodes and the linear GOPS/W scaling the paper
//!   applies to Eyeriss (65 → 28 nm).
//! * [`area`] — NAND2-equivalent gate counts per PE component (6.51k
//!   gates/PE, 3751k total — Fig. 8's caption numbers) and the Eyeriss
//!   comparison (11.02k gates/PE).
//! * [`power`] — component power from activity × energy coefficients +
//!   leakage (Fig. 10's 567.5 mW breakdown).
//! * [`compare`] — Table V: published DaDianNao/Eyeriss specs vs our
//!   modeled Chain-NN.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod compare;
pub mod floorplan;
pub mod power;
pub mod tech;
