//! Floorplan and wirelength model: the physical argument for the 1D
//! chain.
//!
//! The paper attributes part of its area/energy win to "simplified data
//! paths among PEs" (§V.D). This model makes that quantitative: PEs are
//! placed on a grid — serpentine for the chain, row-major for a 2D
//! mesh — and the inter-PE wiring each architecture *requires* is summed
//! (Manhattan length in PE pitches):
//!
//! * **1D chain**: every hop connects physical neighbours (pitch 1),
//!   even at serpentine row turns, so total length ≈ #PEs·width.
//! * **2D mesh NoC** (Eyeriss class): each PE wires to up to 4
//!   neighbours *plus* the row/column broadcast and psum trunks.
//!
//! Wire capacitance per pitch then converts length into a pJ/transfer
//! estimate, feeding the taxonomy argument with physics instead of
//! adjectives.

use chain_nn_core::CoreError;

/// Position of a PE in the floorplan grid (PE pitches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Column.
    pub x: usize,
    /// Row.
    pub y: usize,
}

/// A rectangular floorplan of `num_pes` PEs, `width` per row.
#[derive(Debug, Clone)]
pub struct Floorplan {
    width: usize,
    places: Vec<Placement>,
    serpentine: bool,
}

impl Floorplan {
    /// Serpentine placement: row 0 left→right, row 1 right→left, … so
    /// consecutive chain indices are always physical neighbours.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for zero dimensions.
    pub fn serpentine(num_pes: usize, width: usize) -> Result<Self, CoreError> {
        if num_pes == 0 || width == 0 {
            return Err(CoreError::Config(
                "floorplan dimensions must be non-zero".into(),
            ));
        }
        let places = (0..num_pes)
            .map(|i| {
                let y = i / width;
                let x = if y.is_multiple_of(2) {
                    i % width
                } else {
                    width - 1 - i % width
                };
                Placement { x, y }
            })
            .collect();
        Ok(Floorplan {
            width,
            places,
            serpentine: true,
        })
    }

    /// Plain row-major placement (what a 2D array uses).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] for zero dimensions.
    pub fn row_major(num_pes: usize, width: usize) -> Result<Self, CoreError> {
        if num_pes == 0 || width == 0 {
            return Err(CoreError::Config(
                "floorplan dimensions must be non-zero".into(),
            ));
        }
        let places = (0..num_pes)
            .map(|i| Placement {
                x: i % width,
                y: i / width,
            })
            .collect();
        Ok(Floorplan {
            width,
            places,
            serpentine: false,
        })
    }

    /// Number of PEs.
    pub fn len(&self) -> usize {
        self.places.len()
    }

    /// True when empty (never constructible).
    pub fn is_empty(&self) -> bool {
        self.places.is_empty()
    }

    /// Grid width in PEs.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Placement of PE `i`.
    pub fn place(&self, i: usize) -> Placement {
        self.places[i]
    }

    /// Manhattan distance between two PEs, in pitches.
    pub fn distance(&self, a: usize, b: usize) -> usize {
        let (pa, pb) = (self.places[a], self.places[b]);
        pa.x.abs_diff(pb.x) + pa.y.abs_diff(pb.y)
    }

    /// Total wirelength of the chain's PE-to-PE links (lanes + psum),
    /// in pitches: the sum over consecutive indices.
    pub fn chain_wirelength(&self) -> usize {
        (1..self.len()).map(|i| self.distance(i - 1, i)).sum()
    }

    /// Total wirelength of a 2D mesh NoC over the same grid: one link to
    /// the east and one to the south neighbour per PE (the standard mesh
    /// channel count), in pitches.
    pub fn mesh_wirelength(&self) -> usize {
        let rows = self.len().div_ceil(self.width);
        let mut total = 0usize;
        for y in 0..rows {
            let cols = (self.len() - y * self.width).min(self.width);
            total += cols.saturating_sub(1); // east links
            if y + 1 < rows {
                let below = (self.len() - (y + 1) * self.width).min(self.width);
                total += cols.min(below); // south links
            }
        }
        total
    }

    /// True if every consecutive chain hop is a physical neighbour.
    pub fn chain_hops_are_unit(&self) -> bool {
        (1..self.len()).all(|i| self.distance(i - 1, i) == 1)
    }

    /// Whether this plan used serpentine ordering.
    pub fn is_serpentine(&self) -> bool {
        self.serpentine
    }
}

/// Energy per inter-PE transfer given wiring of `pitches` pitches: wire
/// capacitance scales linearly with length (`pj_per_bit_pitch` ≈
/// 0.0035 pJ/bit/pitch at 28 nm for a ~60 µm PE pitch).
pub fn transfer_pj(pitches: f64, bits: u32, pj_per_bit_pitch: f64) -> f64 {
    pitches * bits as f64 * pj_per_bit_pitch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serpentine_keeps_neighbours_adjacent() {
        let fp = Floorplan::serpentine(576, 24).unwrap();
        assert!(fp.chain_hops_are_unit());
        assert_eq!(fp.chain_wirelength(), 575);
        assert!(fp.is_serpentine());
    }

    #[test]
    fn row_major_chain_pays_row_turns() {
        let fp = Floorplan::row_major(576, 24).unwrap();
        assert!(!fp.chain_hops_are_unit());
        // Each row turn costs width-1 extra pitches.
        assert_eq!(fp.chain_wirelength(), 575 + 23 * (24 - 1));
    }

    #[test]
    fn serpentine_positions() {
        let fp = Floorplan::serpentine(8, 4).unwrap();
        assert_eq!(fp.place(3), Placement { x: 3, y: 0 });
        assert_eq!(fp.place(4), Placement { x: 3, y: 1 }); // turns around
        assert_eq!(fp.place(7), Placement { x: 0, y: 1 });
        assert_eq!(fp.distance(3, 4), 1);
    }

    #[test]
    fn mesh_needs_more_wire_than_chain() {
        // Same 576 PEs: the chain wires 575 unit links; a mesh wires
        // ~2x as many channels.
        let fp = Floorplan::serpentine(576, 24).unwrap();
        let mesh = fp.mesh_wirelength();
        let chain = fp.chain_wirelength();
        assert!(mesh > 1100, "mesh {mesh}");
        assert!(mesh as f64 / chain as f64 > 1.9);
    }

    #[test]
    fn mesh_wirelength_small_grid() {
        // 2x2 grid: 2 east + 2 south links.
        let fp = Floorplan::row_major(4, 2).unwrap();
        assert_eq!(fp.mesh_wirelength(), 4);
        // 3x2 ragged: row0 has 2 PEs... 5 PEs width 2 -> rows 2,2,1.
        let fp = Floorplan::row_major(5, 2).unwrap();
        assert_eq!(fp.mesh_wirelength(), (1 + 1) + 2 + 1);
    }

    #[test]
    fn transfer_energy_scales() {
        let one = transfer_pj(1.0, 16, 0.0035);
        let far = transfer_pj(10.0, 16, 0.0035);
        assert!((far / one - 10.0).abs() < 1e-9);
        assert!(one > 0.05 && one < 0.06); // 16b neighbour hop ~0.056 pJ
    }

    #[test]
    fn invalid_dims_rejected() {
        assert!(Floorplan::serpentine(0, 4).is_err());
        assert!(Floorplan::row_major(4, 0).is_err());
    }
}
