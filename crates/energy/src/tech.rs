//! Technology nodes and scaling.

use std::fmt;

/// A CMOS technology node.
///
/// # Example
///
/// ```
/// use chain_nn_energy::tech::TechNode;
/// let tsmc28 = TechNode::tsmc28();
/// let tsmc65 = TechNode::new("TSMC 65nm", 65.0, 1.0);
/// // Paper Table V footnote: Eyeriss 245.6 GOPS/W at 65 nm scales to
/// // 570.1 GOPS/W at 28 nm (linear-in-feature-size scaling).
/// let scaled = tsmc65.scale_gops_per_watt(245.6, &tsmc28);
/// assert!((scaled - 570.1).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TechNode {
    name: String,
    feature_nm: f64,
    nominal_volts: f64,
}

impl TechNode {
    /// Creates a node.
    ///
    /// # Panics
    ///
    /// Panics if `feature_nm` or `nominal_volts` is not positive — nodes
    /// are constructed from literals, not user input.
    pub fn new(name: &str, feature_nm: f64, nominal_volts: f64) -> Self {
        assert!(
            feature_nm > 0.0 && nominal_volts > 0.0,
            "technology parameters must be positive"
        );
        TechNode {
            name: name.to_owned(),
            feature_nm,
            nominal_volts,
        }
    }

    /// The paper's implementation node: TSMC 28 nm HPC, 0.9 V typical.
    pub fn tsmc28() -> Self {
        TechNode::new("TSMC 28nm", 28.0, 0.9)
    }

    /// Eyeriss's node: TSMC 65 nm, 1.0 V nominal.
    pub fn tsmc65() -> Self {
        TechNode::new("TSMC 65nm", 65.0, 1.0)
    }

    /// DaDianNao's node: ST 28 nm.
    pub fn st28() -> Self {
        TechNode::new("ST 28nm", 28.0, 0.9)
    }

    /// Node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Feature size in nanometres.
    pub fn feature_nm(&self) -> f64 {
        self.feature_nm
    }

    /// Nominal supply voltage.
    pub fn nominal_volts(&self) -> f64 {
        self.nominal_volts
    }

    /// Scales a GOPS/W figure measured on `self` to `target`, using the
    /// paper's own convention (Table V footnote): efficiency improves
    /// linearly with feature size.
    pub fn scale_gops_per_watt(&self, gops_per_watt: f64, target: &TechNode) -> f64 {
        gops_per_watt * self.feature_nm / target.feature_nm
    }

    /// Full-scaling energy factor to `target`: capacitance ∝ L and
    /// energy ∝ C·V², the textbook first-order model — provided for
    /// sensitivity studies alongside the paper's linear rule.
    pub fn energy_scale_factor(&self, target: &TechNode) -> f64 {
        (target.feature_nm / self.feature_nm) * (target.nominal_volts / self.nominal_volts).powi(2)
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} nm, {} V)",
            self.name, self.feature_nm, self.nominal_volts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_eyeriss_scaling() {
        let s = TechNode::tsmc65().scale_gops_per_watt(245.6, &TechNode::tsmc28());
        assert!((s - 570.14).abs() < 0.1, "got {s}");
    }

    #[test]
    fn scaling_is_identity_on_same_node() {
        let n = TechNode::tsmc28();
        assert_eq!(n.scale_gops_per_watt(100.0, &n.clone()), 100.0);
        assert_eq!(n.energy_scale_factor(&n.clone()), 1.0);
    }

    #[test]
    fn full_scaling_shrinks_energy() {
        let f = TechNode::tsmc65().energy_scale_factor(&TechNode::tsmc28());
        // 28/65 · (0.9/1.0)² ≈ 0.349
        assert!((f - 0.3489).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive() {
        let _ = TechNode::new("bad", 0.0, 1.0);
    }

    #[test]
    fn display() {
        assert!(TechNode::tsmc28().to_string().contains("28"));
    }
}
