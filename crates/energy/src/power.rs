//! Component power model (Fig. 10's 567.5 mW breakdown).
//!
//! Power = Σ (access rate × energy/access) + leakage. Access rates come
//! from the performance model (cycles, MACs) and the traffic model
//! (per-level bytes); the energy coefficients are fitted to the paper's
//! breakdown and sit inside the published 28 nm ballpark (a 16-bit MAC
//! with pipeline registers ≈ 2 pJ, small SRAM reads 2–4 pJ, distributed
//! register-file reads with chain-long distribution ≈ 9 pJ).

use chain_nn_core::perf::{CycleModel, PerfModel};
use chain_nn_core::{ChainConfig, CoreError};
use chain_nn_mem::traffic::{totals, TrafficModel};
use chain_nn_mem::MemoryConfig;
use chain_nn_nets::Network;

/// Energy per event and leakage coefficients.
///
/// The defaults ([`EnergyCoefficients::fitted_28nm`]) are fitted to the
/// paper's Fig. 10; override them for sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyCoefficients {
    /// pJ per PE per cycle while computing a useful MAC (datapath +
    /// registers + clock).
    pub mac_active_pj: f64,
    /// pJ per PE per idle cycle (clock-gating residual).
    pub pe_idle_pj: f64,
    /// pJ per iMemory access (32 KB SRAM).
    pub imem_pj: f64,
    /// pJ per oMemory access (25 KB SRAM).
    pub omem_pj: f64,
    /// pJ per kMemory access (per-PE register file plus distribution).
    pub kmem_pj: f64,
    /// pJ per 16-bit word crossing the DRAM interface (reported
    /// separately; the paper's chip power excludes it).
    pub dram_pj_per_word: f64,
    /// Leakage per KB of on-chip SRAM, in mW.
    pub leak_mw_per_kb: f64,
}

impl EnergyCoefficients {
    /// Coefficients fitted to the paper's Fig. 10 at TSMC 28 nm, 0.9 V.
    pub fn fitted_28nm() -> Self {
        EnergyCoefficients {
            mac_active_pj: 2.1,
            pe_idle_pj: 0.4,
            imem_pj: 3.8,
            omem_pj: 2.2,
            kmem_pj: 8.8,
            dram_pj_per_word: 400.0,
            leak_mw_per_kb: 0.02,
        }
    }
}

impl Default for EnergyCoefficients {
    fn default() -> Self {
        EnergyCoefficients::fitted_28nm()
    }
}

/// Average power per component while running a workload (Fig. 10 left).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// The 1D chain (PE datapaths, pipeline registers, control), mW.
    pub chain_mw: f64,
    /// kMemory register files, mW.
    pub kmem_mw: f64,
    /// iMemory SRAM, mW.
    pub imem_mw: f64,
    /// oMemory SRAM, mW.
    pub omem_mw: f64,
}

impl PowerBreakdown {
    /// Total on-chip power in mW.
    pub fn total_mw(&self) -> f64 {
        self.chain_mw + self.kmem_mw + self.imem_mw + self.omem_mw
    }

    /// "Processor core" power as the paper's Fig. 10 uses it for the
    /// core-only efficiency: the 1D chain architecture itself.
    pub fn core_mw(&self) -> f64 {
        self.chain_mw
    }

    /// Memory-hierarchy share (iMemory + oMemory), the paper's "10.55%".
    pub fn memory_hierarchy_share(&self) -> f64 {
        (self.imem_mw + self.omem_mw) / self.total_mw()
    }
}

/// Full power/efficiency report for a network run.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Component breakdown.
    pub breakdown: PowerBreakdown,
    /// Off-chip DRAM interface power (excluded from the totals, as in
    /// the paper).
    pub dram_mw: f64,
    /// Batch latency in milliseconds.
    pub time_ms: f64,
    /// Peak throughput of the configuration in GOPS.
    pub peak_gops: f64,
    /// Achieved throughput on this workload in GOPS.
    pub achieved_gops: f64,
}

impl PowerReport {
    /// Whole-chip energy efficiency, peak GOPS per watt (the paper's
    /// 1421.0 GOPS/W headline metric).
    pub fn gops_per_watt_total(&self) -> f64 {
        self.peak_gops / (self.breakdown.total_mw() / 1e3)
    }

    /// Core-only efficiency (the paper's 1727.8 GOPS/W).
    pub fn gops_per_watt_core(&self) -> f64 {
        self.peak_gops / (self.breakdown.core_mw() / 1e3)
    }
}

/// The power model: chain + memories under a workload.
///
/// # Example
///
/// ```
/// use chain_nn_core::ChainConfig;
/// use chain_nn_energy::power::PowerModel;
/// use chain_nn_mem::MemoryConfig;
/// use chain_nn_nets::zoo;
///
/// let model = PowerModel::new(ChainConfig::paper_576(), MemoryConfig::paper());
/// let report = model.network_power(&zoo::alexnet(), 4).unwrap();
/// // Paper: 567.5 mW, 1421.0 GOPS/W (fitted model lands within ~5 %).
/// assert!((report.breakdown.total_mw() - 567.5).abs() / 567.5 < 0.06);
/// assert!((report.gops_per_watt_total() - 1421.0).abs() / 1421.0 < 0.06);
/// ```
#[derive(Debug, Clone)]
pub struct PowerModel {
    cfg: ChainConfig,
    coef: EnergyCoefficients,
    perf: PerfModel,
    traffic: TrafficModel,
    mem: MemoryConfig,
    operand_bits: u32,
}

impl PowerModel {
    /// Builds the model with the fitted 28 nm coefficients.
    pub fn new(cfg: ChainConfig, mem: MemoryConfig) -> Self {
        Self::with_coefficients(cfg, mem, EnergyCoefficients::fitted_28nm())
    }

    /// Builds the model with explicit coefficients.
    pub fn with_coefficients(
        cfg: ChainConfig,
        mem: MemoryConfig,
        coef: EnergyCoefficients,
    ) -> Self {
        PowerModel {
            perf: PerfModel::new(cfg),
            traffic: TrafficModel::new(cfg, mem),
            cfg,
            coef,
            mem,
            operand_bits: 16,
        }
    }

    /// Builds the model for a datapath narrower (or equal) to the
    /// paper's 16-bit words, applying first-order width scaling to the
    /// fitted coefficients: multiplier (MAC) energy scales with the
    /// square of the width, register/idle and per-access SRAM/DRAM
    /// energies scale linearly, and kMemory capacity (leakage) scales
    /// linearly. Used by the design-space explorer's quantization axis.
    pub fn with_operand_bits(cfg: ChainConfig, mem: MemoryConfig, operand_bits: u32) -> Self {
        let mut model = Self::new(cfg, mem);
        model.operand_bits = operand_bits;
        let w = f64::from(operand_bits) / 16.0;
        model.coef.mac_active_pj *= w * w;
        model.coef.pe_idle_pj *= w;
        model.coef.imem_pj *= w;
        model.coef.omem_pj *= w;
        model.coef.kmem_pj *= w;
        model.coef.dram_pj_per_word *= w;
        model
    }

    /// The coefficients in use.
    pub fn coefficients(&self) -> &EnergyCoefficients {
        &self.coef
    }

    /// Average power running `net` at batch size `batch` (the paper's
    /// Fig. 10 uses AlexNet).
    ///
    /// # Errors
    ///
    /// Propagates mapping errors from the performance/traffic models.
    pub fn network_power(&self, net: &Network, batch: usize) -> Result<PowerReport, CoreError> {
        let n = batch as f64;
        // Cycles and MAC activity (paper-calibrated accounting).
        let mut conv_cycles = 0f64;
        let mut load_cycles = 0f64;
        let mut macs = 0f64;
        for spec in net.layers() {
            let p = self.perf.layer(spec, CycleModel::PaperCalibrated)?;
            conv_cycles += p.compute_cycles() * n;
            load_cycles += p.load_cycles as f64;
            macs += p.macs as f64 * n;
        }
        let total_cycles = conv_cycles + load_cycles;
        let freq_hz = self.cfg.freq_mhz() * 1e6;
        let time_s = total_cycles / freq_hz;

        // Traffic for the same batch.
        let rows = self.traffic.network_traffic(net, batch)?;
        let t = totals(&rows);
        let word = self.mem.word_bytes as f64;
        let imem_acc = t.imem_bytes as f64 / word;
        let omem_acc = t.omem_bytes as f64 / word;
        let kmem_acc = t.kmem_bytes as f64 / word;
        let dram_words = t.dram_bytes as f64 / word;

        let mw = |events: f64, pj: f64| events * pj * 1e-9 / time_s;
        let idle_pe_cycles = (self.cfg.num_pes() as f64 * total_cycles - macs).max(0.0);
        let chain_mw = mw(macs, self.coef.mac_active_pj) + mw(idle_pe_cycles, self.coef.pe_idle_pj);
        // kmemory_bytes() assumes 16-bit weights; scale capacity (and
        // with it leakage) to the actual operand width.
        let kmem_kb =
            self.cfg.kmemory_bytes() as f64 * (f64::from(self.operand_bits) / 16.0) / 1024.0;
        let kmem_mw = mw(kmem_acc, self.coef.kmem_pj) + kmem_kb * self.coef.leak_mw_per_kb;
        let imem_mw = mw(imem_acc, self.coef.imem_pj)
            + self.mem.imem_bytes as f64 / 1024.0 * self.coef.leak_mw_per_kb;
        let omem_mw = mw(omem_acc, self.coef.omem_pj)
            + self.mem.omem_bytes as f64 / 1024.0 * self.coef.leak_mw_per_kb;
        let dram_mw = mw(dram_words, self.coef.dram_pj_per_word);

        let achieved_gops = 2.0 * macs / time_s / 1e9;
        Ok(PowerReport {
            breakdown: PowerBreakdown {
                chain_mw,
                kmem_mw,
                imem_mw,
                omem_mw,
            },
            dram_mw,
            time_ms: time_s * 1e3,
            peak_gops: self.cfg.peak_gops(),
            achieved_gops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_nn_nets::zoo;

    fn report() -> PowerReport {
        PowerModel::new(ChainConfig::paper_576(), MemoryConfig::paper())
            .network_power(&zoo::alexnet(), 4)
            .unwrap()
    }

    /// Fig. 10 breakdown: chain 466.71 mW / kMemory 40.15 / iMemory 3.91
    /// / oMemory 56.70, total 567.5 mW.
    #[test]
    fn fig10_breakdown_within_ten_percent() {
        let r = report();
        let b = r.breakdown;
        assert!(
            (b.chain_mw - 466.71).abs() / 466.71 < 0.10,
            "chain {}",
            b.chain_mw
        );
        assert!(
            (b.kmem_mw - 40.15).abs() / 40.15 < 0.12,
            "kmem {}",
            b.kmem_mw
        );
        assert!((b.imem_mw - 3.91).abs() / 3.91 < 0.10, "imem {}", b.imem_mw);
        assert!(
            (b.omem_mw - 56.70).abs() / 56.70 < 0.10,
            "omem {}",
            b.omem_mw
        );
        assert!(
            (b.total_mw() - 567.5).abs() / 567.5 < 0.06,
            "total {}",
            b.total_mw()
        );
    }

    /// Fig. 10 shares: ~80.8 % chain, ~10.55 % memory hierarchy.
    #[test]
    fn fig10_shares() {
        let r = report();
        let share_chain = r.breakdown.chain_mw / r.breakdown.total_mw();
        assert!(
            (share_chain - 0.808).abs() < 0.03,
            "chain share {share_chain}"
        );
        let mh = r.breakdown.memory_hierarchy_share();
        assert!((mh - 0.1055).abs() < 0.02, "memory hierarchy share {mh}");
    }

    /// Headline efficiencies: 1421.0 GOPS/W total, 1727.8 GOPS/W core.
    #[test]
    fn headline_efficiency() {
        let r = report();
        assert!(
            (r.gops_per_watt_total() - 1421.0).abs() / 1421.0 < 0.06,
            "total {}",
            r.gops_per_watt_total()
        );
        assert!(
            (r.gops_per_watt_core() - 1727.8).abs() / 1727.8 < 0.08,
            "core {}",
            r.gops_per_watt_core()
        );
    }

    /// DRAM power is reported separately and is not negligible — the
    /// reason the paper excludes it explicitly.
    #[test]
    fn dram_power_reported_separately() {
        let r = report();
        assert!(r.dram_mw > 10.0, "dram {}", r.dram_mw);
        // Not part of the on-chip total.
        let sum = r.breakdown.total_mw();
        assert!(sum < 600.0);
    }

    /// More leakage or costlier MACs must increase power monotonically.
    #[test]
    fn coefficients_move_power_monotonically() {
        let base = report();
        let mut coef = EnergyCoefficients::fitted_28nm();
        coef.mac_active_pj *= 2.0;
        let hot =
            PowerModel::with_coefficients(ChainConfig::paper_576(), MemoryConfig::paper(), coef)
                .network_power(&zoo::alexnet(), 4)
                .unwrap();
        assert!(hot.breakdown.chain_mw > base.breakdown.chain_mw * 1.5);
        assert!(hot.gops_per_watt_total() < base.gops_per_watt_total());
    }

    /// Narrower operands must strictly cut every power component while
    /// leaving timing untouched (no accuracy objective is modeled).
    #[test]
    fn operand_width_scales_power_down() {
        let full = report();
        let narrow =
            PowerModel::with_operand_bits(ChainConfig::paper_576(), MemoryConfig::paper(), 8)
                .network_power(&zoo::alexnet(), 4)
                .unwrap();
        assert_eq!(narrow.time_ms, full.time_ms);
        assert!(narrow.breakdown.chain_mw < full.breakdown.chain_mw);
        assert!(narrow.breakdown.kmem_mw < full.breakdown.kmem_mw);
        assert!(narrow.breakdown.imem_mw < full.breakdown.imem_mw);
        assert!(narrow.breakdown.omem_mw < full.breakdown.omem_mw);
        assert!(narrow.dram_mw < full.dram_mw);
        // MAC energy scales quadratically, so the chain share shrinks
        // by more than the linear memory terms.
        let chain_ratio = narrow.breakdown.chain_mw / full.breakdown.chain_mw;
        let omem_ratio = narrow.breakdown.omem_mw / full.breakdown.omem_mw;
        assert!(chain_ratio < omem_ratio);
        // 16-bit explicit equals the default.
        let same =
            PowerModel::with_operand_bits(ChainConfig::paper_576(), MemoryConfig::paper(), 16)
                .network_power(&zoo::alexnet(), 4)
                .unwrap();
        assert_eq!(same, full);
    }

    /// Achieved throughput is bounded by peak.
    #[test]
    fn achieved_below_peak() {
        let r = report();
        assert!(r.achieved_gops < r.peak_gops);
        assert!(r.achieved_gops > 0.3 * r.peak_gops);
    }
}
