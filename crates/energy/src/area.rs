//! Gate-count and area model (Fig. 8's caption numbers, Table V rows).
//!
//! Gate counts are NAND2-equivalents built from per-component formulas.
//! The component constants are fitted so the paper's configuration lands
//! on its reported 6.51k gates/PE and 3751k gates total; the *formulas*
//! (how gates scale with operand width, kMemory depth, pipeline stages)
//! carry the architectural content and drive the design-space example.

use chain_nn_core::ChainConfig;

/// Gates per flip-flop (scan-friendly DFF in NAND2 equivalents).
const GATES_PER_FF: f64 = 7.0;

/// Gates for an `n×n` array multiplier: ~1.1 NAND2 per full-adder bit
/// cell plus partial-product generation.
fn multiplier_gates(bits: u32) -> f64 {
    // Fitted so 16×16 ≈ 2900 gates (Wallace-tree class).
    11.33 * (bits * bits) as f64
}

/// Gates for an `n`-bit carry-lookahead adder.
fn adder_gates(bits: u32) -> f64 {
    9.7 * bits as f64
}

/// Per-PE breakdown of the dual-channel PE (paper Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeGateBreakdown {
    /// 16×16 multiplier.
    pub multiplier: f64,
    /// 32-bit psum adder.
    pub adder: f64,
    /// Pipeline flip-flops: two 16-bit lanes, two 32-bit psum registers,
    /// 16-bit working weight, internal MAC pipeline cuts.
    pub registers: f64,
    /// Lane-select and primitive-port multiplexers.
    pub muxes: f64,
    /// kMemory address decode and control (storage itself is counted as
    /// memory capacity, not gates — the paper reports them separately).
    pub kmemory_ctrl: f64,
    /// Residual PE control (fitted).
    pub control: f64,
}

impl PeGateBreakdown {
    /// Total gates per PE.
    pub fn total(&self) -> f64 {
        self.multiplier
            + self.adder
            + self.registers
            + self.muxes
            + self.kmemory_ctrl
            + self.control
    }
}

/// The area model for a chain configuration.
///
/// # Example
///
/// ```
/// use chain_nn_core::ChainConfig;
/// use chain_nn_energy::area::AreaModel;
/// let a = AreaModel::new(ChainConfig::paper_576());
/// // Paper: 6.51k gates/PE, 3751k gates total, 352 KB of SRAM.
/// assert!((a.pe_gates().total() / 1e3 - 6.51).abs() < 0.03);
/// assert!((a.total_gates() / 1e3 - 3751.0).abs() < 15.0);
/// assert_eq!(a.onchip_memory_bytes(32 * 1024, 25 * 1024), 353_280);
/// ```
#[derive(Debug, Clone)]
pub struct AreaModel {
    cfg: ChainConfig,
    operand_bits: u32,
}

impl AreaModel {
    /// Builds the model for the paper's 16-bit datapath.
    pub fn new(cfg: ChainConfig) -> Self {
        AreaModel {
            cfg,
            operand_bits: 16,
        }
    }

    /// Builds the model for a different operand width (the design-space
    /// explorer's quantization axis). The component formulas already
    /// scale with width: multiplier quadratically, adder/registers/muxes
    /// linearly, control logic not at all.
    pub fn with_operand_bits(cfg: ChainConfig, operand_bits: u32) -> Self {
        AreaModel { cfg, operand_bits }
    }

    /// Per-PE gate breakdown for this configuration.
    pub fn pe_gates(&self) -> PeGateBreakdown {
        let opb = self.operand_bits; // operand bits
        let accb = 2 * opb; // accumulator bits
                            // FFs: 2 lanes × 16, mac+pass psum regs × 32, weight 16, plus one
                            // 16+32-bit internal cut per extra pipeline stage.
        let extra_stages = self.cfg.pipeline_stages().saturating_sub(1) as f64;
        let ffs = (2 * opb + 2 * accb + opb) as f64 + extra_stages * 24.0;
        // Muxes: one 16-bit 2:1 lane select, three 16-bit primitive-port
        // muxes, one 32-bit psum-inject mux (Fig. 6 gray blocks).
        let mux_bits = (opb + 3 * opb + accb) as f64;
        // kMemory decode grows with log2(depth).
        let depth_bits = (self.cfg.kmemory_depth() as f64).log2().ceil().max(1.0);
        PeGateBreakdown {
            multiplier: multiplier_gates(opb),
            adder: adder_gates(accb),
            registers: ffs * GATES_PER_FF,
            muxes: mux_bits * 2.5,
            kmemory_ctrl: 75.0 * depth_bits,
            control: 1_340.0,
        }
    }

    /// Total logic gates: PEs plus a small global FSM.
    pub fn total_gates(&self) -> f64 {
        self.cfg.num_pes() as f64 * self.pe_gates().total() + 1_500.0
    }

    /// On-chip memory in bytes: iMemory + oMemory + kMemory (the paper's
    /// "352 KB": 32 + 25 + 288 KiB). kMemory capacity scales with the
    /// operand width (`kmemory_bytes` assumes 16-bit weights).
    pub fn onchip_memory_bytes(&self, imem_bytes: usize, omem_bytes: usize) -> usize {
        imem_bytes + omem_bytes + self.cfg.kmemory_bytes() * self.operand_bits as usize / 16
    }

    /// Gates per PE for an Eyeriss-style 2D spatial PE, from the same
    /// component formulas: a 16-bit MAC plus a 12-word spad register
    /// file, NoC target/flow-control logic and a larger local controller
    /// (fitted to the paper's 11.02k figure, derived as 1852k gates / 168
    /// PEs).
    pub fn eyeriss_pe_gates() -> f64 {
        let mac = multiplier_gates(16) + adder_gates(32);
        let spad_ffs = 12.0 * 16.0 * GATES_PER_FF; // 12-entry operand spad
        let noc = 3_600.0; // router + tag match + flow control (fitted)
        let ctrl = 2_865.0;
        mac + spad_ffs + noc + ctrl
    }

    /// Area-efficiency ratio vs an Eyeriss-style PE (the paper's "1.7
    /// times area efficiency" claim combines this with throughput).
    pub fn gates_per_pe_ratio_vs_eyeriss(&self) -> f64 {
        Self::eyeriss_pe_gates() / self.pe_gates().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_pe_gate_count() {
        let a = AreaModel::new(ChainConfig::paper_576());
        let pe = a.pe_gates();
        assert!(
            (pe.total() - 6_510.0).abs() < 30.0,
            "PE gates {} vs paper 6510",
            pe.total()
        );
        // Multiplier dominates the datapath.
        assert!(pe.multiplier > pe.adder);
        assert!(pe.multiplier > pe.registers);
    }

    #[test]
    fn paper_total_gate_count() {
        let a = AreaModel::new(ChainConfig::paper_576());
        assert!(
            (a.total_gates() - 3_751_000.0).abs() < 20_000.0,
            "total {} vs paper 3751k",
            a.total_gates()
        );
    }

    #[test]
    fn paper_memory_total_352kb() {
        let a = AreaModel::new(ChainConfig::paper_576());
        let bytes = a.onchip_memory_bytes(32 * 1024, 25 * 1024);
        assert_eq!(bytes, (32 + 25 + 288) * 1024);
        assert!((bytes as f64 / 1024.0 - 345.0).abs() < 10.0); // ≈352 KB decimal-ish
    }

    #[test]
    fn eyeriss_pe_bigger() {
        let a = AreaModel::new(ChainConfig::paper_576());
        assert!(
            (AreaModel::eyeriss_pe_gates() - 11_020.0).abs() < 60.0,
            "eyeriss {}",
            AreaModel::eyeriss_pe_gates()
        );
        let ratio = a.gates_per_pe_ratio_vs_eyeriss();
        assert!((ratio - 11.02 / 6.51).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn operand_width_scales_area_down() {
        let cfg = ChainConfig::paper_576();
        let full = AreaModel::new(cfg);
        let narrow = AreaModel::with_operand_bits(cfg, 8);
        let fp = full.pe_gates();
        let np = narrow.pe_gates();
        // Multiplier quadratic, adder/registers/muxes linear, control flat.
        assert!((np.multiplier - fp.multiplier / 4.0).abs() < 1.0);
        assert!((np.adder - fp.adder / 2.0).abs() < 1.0);
        assert!(np.registers < fp.registers);
        assert_eq!(np.control, fp.control);
        assert!(narrow.total_gates() < full.total_gates());
        // kMemory halves; iMemory/oMemory byte capacities do not.
        let fb = full.onchip_memory_bytes(32 * 1024, 25 * 1024);
        let nb = narrow.onchip_memory_bytes(32 * 1024, 25 * 1024);
        assert_eq!(fb - nb, cfg.kmemory_bytes() / 2);
        // Width 16 is the default model.
        assert_eq!(
            AreaModel::with_operand_bits(cfg, 16).pe_gates(),
            full.pe_gates()
        );
    }

    #[test]
    fn gates_scale_with_structure() {
        let small = AreaModel::new(
            ChainConfig::builder()
                .num_pes(576)
                .kmemory_depth(16)
                .pipeline_stages(1)
                .build()
                .unwrap(),
        );
        let paper = AreaModel::new(ChainConfig::paper_576());
        assert!(small.pe_gates().total() < paper.pe_gates().total());
    }
}
