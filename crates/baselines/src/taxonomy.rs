//! The taxonomy comparison (paper §III.A, Fig. 2) made quantitative:
//! run the same layer through all three architecture classes and compare
//! memory behaviour per MAC.

use chain_nn_fixed::Fix16;
use chain_nn_tensor::Tensor;

use chain_nn_core::sim::ChainSim;
use chain_nn_core::{ChainConfig, CoreError, LayerShape};

use crate::memory_centric::{AdderTreeConfig, MemCentricSim};
use crate::spatial_2d::{SpatialConfig, SpatialSim};

/// Per-class memory behaviour on one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassProfile {
    /// Architecture class name.
    pub class: &'static str,
    /// SRAM-or-worse operand reads per MAC (the energy-dominant count).
    pub sram_reads_per_mac: f64,
    /// Inter-PE transfers per MAC (zero for memory-centric; cheap
    /// neighbour shifts for the chain; NoC hops for 2D arrays).
    pub inter_pe_per_mac: f64,
    /// Datapath utilization.
    pub utilization: f64,
}

/// Profiles of the three classes on one layer (ifmap/weight data is
/// generated internally; values do not affect the counts).
///
/// # Errors
///
/// Propagates simulator errors (e.g. kernels too large for the chain).
///
/// # Example
///
/// ```
/// use chain_nn_baselines::taxonomy::compare_classes;
/// use chain_nn_core::LayerShape;
///
/// let shape = LayerShape::square(2, 8, 2, 3, 1, 1);
/// let profiles = compare_classes(&shape, 72).unwrap();
/// // Chain-NN reads far fewer SRAM words per MAC than the
/// // memory-centric class.
/// assert!(profiles[2].sram_reads_per_mac * 4.0 < profiles[0].sram_reads_per_mac);
/// ```
pub fn compare_classes(
    shape: &LayerShape,
    chain_pes: usize,
) -> Result<Vec<ClassProfile>, CoreError> {
    shape.validate()?;
    let mk = |i: usize| Fix16::from_raw(((i % 23) as i16) - 11);
    let vol_i = shape.c * shape.h * shape.w;
    let ifmap = Tensor::from_vec([1, shape.c, shape.h, shape.w], (0..vol_i).map(mk).collect())
        .map_err(|e| CoreError::DataMismatch(e.to_string()))?;
    let vol_w = shape.m * shape.c * shape.kh * shape.kw;
    let weights = Tensor::from_vec(
        [shape.m, shape.c, shape.kh, shape.kw],
        (0..vol_w).map(mk).collect(),
    )
    .map_err(|e| CoreError::DataMismatch(e.to_string()))?;

    // Memory-centric: every operand from SRAM.
    let mc = MemCentricSim::new(AdderTreeConfig::diannao());
    let mc_rep = mc.run_layer(shape, &ifmap, &weights)?;
    let mc_macs = mc_rep.stats.macs as f64;
    let mc_profile = ClassProfile {
        class: "memory-centric",
        sram_reads_per_mac: (mc_rep.stats.input_reads
            + mc_rep.stats.weight_reads
            + mc_rep.stats.psum_accesses) as f64
            / mc_macs,
        inter_pe_per_mac: 0.0,
        utilization: mc_rep.stats.utilization(mc.config()),
    };

    // 2D spatial: RF reuse + NoC hops.
    let sp = SpatialSim::new(SpatialConfig::eyeriss());
    let sp_rep = sp.run_layer(shape, &ifmap, &weights)?;
    let sp_macs = sp_rep.stats.macs as f64;
    let sp_profile = ClassProfile {
        class: "2D spatial",
        sram_reads_per_mac: (sp_rep.stats.sram_ifmap_reads + sp_rep.stats.sram_psum_accesses)
            as f64
            / sp_macs,
        inter_pe_per_mac: sp_rep.stats.noc_hops as f64 / sp_macs,
        utilization: (sp_rep.stats.macs as f64)
            / (sp_rep.stats.cycles as f64 * sp.config().num_pes() as f64),
    };

    // 1D chain.
    let cfg = ChainConfig::builder().num_pes(chain_pes).build()?;
    let chain = ChainSim::new(cfg);
    let ch_rep = chain.run_layer(shape, &ifmap, &weights)?;
    let ch_macs = ch_rep.stats.mac_ops as f64;
    let ch_profile = ClassProfile {
        class: "1D chain",
        sram_reads_per_mac: (ch_rep.stats.imem_reads + ch_rep.stats.omem_accesses) as f64 / ch_macs,
        // Lane shifts: two words advance one PE per active cycle.
        inter_pe_per_mac: 2.0 * ch_rep.stats.stream_cycles as f64 * chain_pes as f64
            / ch_macs
            / chain_pes as f64,
        utilization: ch_rep.stats.utilization(chain_pes),
    };

    Ok(vec![mc_profile, sp_profile, ch_profile])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_minimizes_sram_traffic() {
        // 8 ofmap channels share one ifmap stream across 8 primitives —
        // the reuse that defines the chain class.
        let shape = LayerShape::square(3, 9, 8, 3, 1, 0);
        let p = compare_classes(&shape, 72).unwrap();
        assert_eq!(p.len(), 3);
        let (mc, sp, ch) = (&p[0], &p[1], &p[2]);
        // Ordering claim of Fig. 2: memory-centric worst, chain best or
        // tied with spatial on SRAM traffic.
        assert!(mc.sram_reads_per_mac > sp.sram_reads_per_mac);
        assert!(mc.sram_reads_per_mac > ch.sram_reads_per_mac * 4.0);
        // The chain's inter-PE traffic is plain neighbour shifting; the
        // spatial array pays NoC hops per MAC too.
        assert!(sp.inter_pe_per_mac > 0.0);
        assert!(ch.inter_pe_per_mac > 0.0);
    }

    #[test]
    fn memory_centric_fully_utilized_on_aligned_shapes() {
        // 16-channel multiples align with the 16x16 NFU.
        let shape = LayerShape::square(16, 6, 16, 2, 1, 0);
        let p = compare_classes(&shape, 16).unwrap();
        assert!((p[0].utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn errors_propagate() {
        let shape = LayerShape::square(1, 8, 1, 3, 1, 0);
        assert!(compare_classes(&shape, 4).is_err()); // 9 > 4 PEs
    }
}
