//! 2D spatial (row-stationary) accelerator model (Fig. 2(b); Eyeriss
//! class).
//!
//! Simplified row-stationary mapping: a `rows × cols` PE array where a
//! logical *column set* of K×K PEs computes one 2D convolution — kernel
//! rows stay in PE register files, ifmap rows slide diagonally over the
//! NoC, psums accumulate vertically. The model is functional (bit-exact
//! ofmaps) and counts the class-defining quantities: SRAM reads drop
//! (operands are reused in RFs) but *inter-PE NoC hops* appear, whose
//! wiring/control cost is the paper's argument against 2D arrays
//! (11.02k vs 6.51k gates/PE).
//!
//! Simplifications vs the real Eyeriss (documented, deliberate): no
//! run-length compression, single pass per (m, c) pair, folding of large
//! kernels is approximated by utilization clamping.

use chain_nn_fixed::{Acc32, Fix16};
use chain_nn_tensor::Tensor;

use chain_nn_core::{CoreError, LayerShape};

/// Array geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialConfig {
    /// PE rows (Eyeriss: 12).
    pub rows: usize,
    /// PE columns (Eyeriss: 14).
    pub cols: usize,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
}

impl SpatialConfig {
    /// Eyeriss's published 12×14 array at 250 MHz.
    pub fn eyeriss() -> Self {
        SpatialConfig {
            rows: 12,
            cols: 14,
            freq_mhz: 250.0,
        }
    }

    /// Total PEs.
    pub fn num_pes(&self) -> usize {
        self.rows * self.cols
    }

    /// Peak GOPS (2 ops per MAC).
    pub fn peak_gops(&self) -> f64 {
        self.num_pes() as f64 * 2.0 * self.freq_mhz / 1e3
    }

    /// Convolutions of K kernel rows the array can host at once: each
    /// needs a K-row × K-col PE patch (clamped at 1 when K exceeds the
    /// array, approximating folding).
    pub fn patches(&self, k: usize) -> usize {
        ((self.rows / k.min(self.rows)) * (self.cols / k.min(self.cols))).max(1)
    }
}

/// Access counters of a spatial run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpatialStats {
    /// Array cycles.
    pub cycles: u64,
    /// Global-buffer (SRAM) ifmap reads.
    pub sram_ifmap_reads: u64,
    /// Global-buffer psum accesses.
    pub sram_psum_accesses: u64,
    /// Register-file accesses inside PEs (cheap, but counted).
    pub rf_accesses: u64,
    /// Inter-PE NoC hops (ifmap diagonal + psum vertical transfers).
    pub noc_hops: u64,
    /// Useful MACs.
    pub macs: u64,
}

/// Result of a spatial layer run.
#[derive(Debug, Clone)]
pub struct SpatialReport {
    /// Raw accumulator ofmaps.
    pub ofmaps: Tensor<i32>,
    /// Counters.
    pub stats: SpatialStats,
}

/// Functional + counting simulator of the row-stationary array.
///
/// # Example
///
/// ```
/// use chain_nn_baselines::spatial_2d::{SpatialConfig, SpatialSim};
/// use chain_nn_core::LayerShape;
/// use chain_nn_fixed::Fix16;
/// use chain_nn_tensor::Tensor;
///
/// let shape = LayerShape::square(1, 5, 1, 3, 1, 0);
/// let ifmap = Tensor::filled([1, 1, 5, 5], Fix16::from_raw(2));
/// let weights = Tensor::filled([1, 1, 3, 3], Fix16::from_raw(1));
/// let rep = SpatialSim::new(SpatialConfig::eyeriss())
///     .run_layer(&shape, &ifmap, &weights)
///     .unwrap();
/// assert!(rep.ofmaps.as_slice().iter().all(|&v| v == 18));
/// assert!(rep.stats.noc_hops > 0); // the class's defining cost
/// ```
#[derive(Debug, Clone)]
pub struct SpatialSim {
    cfg: SpatialConfig,
}

impl SpatialSim {
    /// Creates the simulator.
    pub fn new(cfg: SpatialConfig) -> Self {
        SpatialSim { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &SpatialConfig {
        &self.cfg
    }

    /// Runs one layer under the row-stationary mapping.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DataMismatch`]/[`CoreError::Shape`] for
    /// inconsistent inputs.
    pub fn run_layer(
        &self,
        shape: &LayerShape,
        ifmap: &Tensor<Fix16>,
        weights: &Tensor<Fix16>,
    ) -> Result<SpatialReport, CoreError> {
        shape.validate()?;
        let idims = ifmap.shape().dims();
        if idims[1] != shape.c || idims[2] != shape.h || idims[3] != shape.w {
            return Err(CoreError::DataMismatch("ifmap shape".into()));
        }
        if weights.shape().dims() != [shape.m, shape.c, shape.kh, shape.kw] {
            return Err(CoreError::DataMismatch("weight shape".into()));
        }
        let batch = idims[0];
        let (oh, ow) = (shape.out_h(), shape.out_w());
        let mut out = Tensor::<i32>::zeros([batch, shape.m, oh, ow]);
        let mut stats = SpatialStats::default();
        let pad = shape.pad as isize;
        let patches = self.cfg.patches(shape.kh.max(shape.kw));

        // (m, c) passes are distributed over the available patches;
        // within a pass, each ofmap row takes out_w MAC waves through
        // the K×K patch.
        let passes = (shape.m * shape.c) as u64;
        let pass_cycles = (oh * ow) as u64; // one output per cycle per patch
        stats.cycles = batch as u64 * passes.div_ceil(patches as u64) * pass_cycles;

        for n in 0..batch {
            for m in 0..shape.m {
                for c in 0..shape.c {
                    // Ifmap rows of this channel enter the array once per
                    // pass and slide diagonally: one SRAM read per pixel,
                    // K−1 NoC hops of reuse.
                    stats.sram_ifmap_reads += (shape.h * shape.w) as u64;
                    stats.noc_hops += ((shape.kh - 1) * shape.h * shape.w) as u64;
                    for y in 0..oh {
                        for x in 0..ow {
                            let mut acc = Acc32::from_raw(out.get(n, m, y, x));
                            for i in 0..shape.kh {
                                for j in 0..shape.kw {
                                    let ih = (y * shape.stride + i) as isize - pad;
                                    let iw = (x * shape.stride + j) as isize - pad;
                                    let px = ifmap.get_padded(n, c, ih, iw, Fix16::ZERO);
                                    acc = acc.mac(px, weights.get(m, c, i, j));
                                    // Weight + pixel from RF per MAC.
                                    stats.rf_accesses += 2;
                                    stats.macs += 1;
                                }
                                // Psums hop up one PE row per kernel row.
                                stats.noc_hops += 1;
                            }
                            out.set(n, m, y, x, acc.raw());
                        }
                    }
                    // Accumulation across channels through the global
                    // buffer: read + write per output.
                    stats.sram_psum_accesses += 2 * (oh * ow) as u64;
                }
            }
        }
        Ok(SpatialReport { ofmaps: out, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_nn_fixed::OverflowMode;
    use chain_nn_tensor::conv::{conv2d_fix, ConvGeometry};

    fn tensor_from(dims: [usize; 4], f: impl Fn(usize) -> i16) -> Tensor<Fix16> {
        let vol: usize = dims.iter().product();
        Tensor::from_vec(dims, (0..vol).map(|i| Fix16::from_raw(f(i))).collect()).unwrap()
    }

    #[test]
    fn matches_golden_model() {
        let shape = LayerShape::square(2, 7, 3, 3, 1, 1);
        let ifmap = tensor_from([1, 2, 7, 7], |i| (i % 13) as i16 - 6);
        let weights = tensor_from([3, 2, 3, 3], |i| (i % 7) as i16 - 3);
        let rep = SpatialSim::new(SpatialConfig::eyeriss())
            .run_layer(&shape, &ifmap, &weights)
            .unwrap();
        let golden = conv2d_fix(
            &ifmap,
            &weights,
            ConvGeometry::new(3, 1, 1).unwrap(),
            OverflowMode::Wrapping,
        )
        .unwrap();
        assert_eq!(rep.ofmaps, golden);
    }

    #[test]
    fn sram_reads_far_below_memory_centric() {
        // The class's virtue: RF reuse slashes SRAM traffic per MAC.
        let shape = LayerShape::square(4, 8, 4, 3, 1, 1);
        let ifmap = tensor_from([1, 4, 8, 8], |_| 1);
        let weights = tensor_from([4, 4, 3, 3], |_| 1);
        let rep = SpatialSim::new(SpatialConfig::eyeriss())
            .run_layer(&shape, &ifmap, &weights)
            .unwrap();
        let reads_per_mac = rep.stats.sram_ifmap_reads as f64 / rep.stats.macs as f64;
        assert!(reads_per_mac < 0.3, "reads/MAC {reads_per_mac}");
        // But NoC hops are substantial — the class's cost.
        assert!(rep.stats.noc_hops as f64 / rep.stats.macs as f64 > 0.1);
    }

    #[test]
    fn eyeriss_peak() {
        let g = SpatialConfig::eyeriss().peak_gops();
        assert!((g - 84.0).abs() < 0.1, "eyeriss peak {g}");
    }

    #[test]
    fn patches_shrink_with_kernel() {
        let cfg = SpatialConfig::eyeriss();
        assert_eq!(cfg.patches(3), 16); // 4x4 patches of 3x3
        assert_eq!(cfg.patches(5), 4);
        assert_eq!(cfg.patches(11), 1);
        assert_eq!(cfg.patches(20), 1); // folding fallback
    }

    #[test]
    fn cycles_scale_with_patches() {
        let cfg = SpatialConfig::eyeriss();
        let sim = SpatialSim::new(cfg);
        let big_k = LayerShape::square(1, 16, 16, 5, 1, 0);
        let small_k = LayerShape::square(1, 16, 16, 3, 1, 1);
        let mk = |s: &LayerShape| {
            (
                tensor_from([1, s.c, s.h, s.w], |_| 1),
                tensor_from([s.m, s.c, s.kh, s.kw], |_| 1),
            )
        };
        let (i1, w1) = mk(&big_k);
        let (i2, w2) = mk(&small_k);
        let r_big = sim.run_layer(&big_k, &i1, &w1).unwrap();
        let r_small = sim.run_layer(&small_k, &i2, &w2).unwrap();
        // 5x5 kernels host 4 patches vs 16 -> fewer passes in parallel.
        let per_out_big = r_big.stats.cycles as f64 / r_big.ofmaps.as_slice().len() as f64;
        let per_out_small = r_small.stats.cycles as f64 / r_small.ofmaps.as_slice().len() as f64;
        assert!(per_out_big > per_out_small);
    }
}
