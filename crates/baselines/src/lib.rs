//! Baseline accelerator models for the paper's taxonomy (§III.A, Fig. 2).
//!
//! The paper classifies CNN accelerators by how operands move:
//!
//! * **Memory-centric** (Fig. 2(a), DianNao/DaDianNao class) — PEs are a
//!   stateless adder-tree datapath; *every* operand crosses the memory
//!   interface every cycle. Implemented in [`memory_centric`], both
//!   functionally (bit-exact vs the golden model) and analytically.
//! * **2D spatial** (Fig. 2(b), Eyeriss class) — PEs keep operands in
//!   local register files and exchange them over an on-chip network.
//!   Implemented in [`spatial_2d`] with row-stationary-style reuse
//!   accounting.
//! * **1D chain** (Fig. 2(c)) — the paper's design, in
//!   [`chain_nn_core`]. The single-channel ablation (Fig. 5(a)) is
//!   exposed through
//!   [`ChannelMode::Single`](chain_nn_core::sim::ChannelMode).
//!
//! [`taxonomy`] runs all three classes over a layer and compares their
//! per-level access counts — the quantitative version of the paper's
//! Fig. 2 argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod memory_centric;
pub mod spatial_2d;
pub mod taxonomy;
