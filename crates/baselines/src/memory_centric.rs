//! Memory-centric adder-tree accelerator (Fig. 2(a); DianNao/DaDianNao
//! class).
//!
//! The datapath (an "NFU") multiplies `Ti` broadcast input pixels by
//! `Tn·Ti` weights and reduces through adder trees into `Tn` partial
//! sums per cycle. There is *no* operand storage inside the datapath:
//! every input, weight and partial sum crosses the memory interface
//! every cycle — the property the paper's taxonomy criticizes.

use chain_nn_fixed::{Acc32, Fix16};
use chain_nn_tensor::Tensor;

use chain_nn_core::{CoreError, LayerShape};

/// NFU dimensions: `tn` output neurons × `ti` input lanes per cycle.
///
/// DianNao's configuration is 16×16 (452 GOP/s at 0.98 GHz); DaDianNao
/// tiles 16 such NFUs per node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdderTreeConfig {
    /// Output lanes (neurons computed in parallel).
    pub tn: usize,
    /// Input lanes (synapses per neuron per cycle).
    pub ti: usize,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
}

impl AdderTreeConfig {
    /// DianNao's published 16×16 NFU at 980 MHz.
    pub fn diannao() -> Self {
        AdderTreeConfig {
            tn: 16,
            ti: 16,
            freq_mhz: 980.0,
        }
    }

    /// Peak GOPS (2 ops per MAC).
    pub fn peak_gops(&self) -> f64 {
        (self.tn * self.ti) as f64 * 2.0 * self.freq_mhz / 1e3
    }
}

/// Access counters of a memory-centric run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemCentricStats {
    /// Datapath cycles.
    pub cycles: u64,
    /// Input-buffer reads (one word per input lane per cycle).
    pub input_reads: u64,
    /// Weight-buffer reads (Tn·Ti words per cycle).
    pub weight_reads: u64,
    /// Partial-sum buffer accesses (read+write per neuron per cycle).
    pub psum_accesses: u64,
    /// Useful MACs.
    pub macs: u64,
}

impl MemCentricStats {
    /// MAC utilization of the datapath.
    pub fn utilization(&self, cfg: &AdderTreeConfig) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.macs as f64 / (self.cycles * (cfg.tn * cfg.ti) as u64) as f64
    }
}

/// Result of a memory-centric layer run.
#[derive(Debug, Clone)]
pub struct MemCentricReport {
    /// Raw accumulator ofmaps, N×M×E×E.
    pub ofmaps: Tensor<i32>,
    /// Access counters.
    pub stats: MemCentricStats,
}

/// Functional + counting simulator of the adder-tree accelerator.
///
/// # Example
///
/// ```
/// use chain_nn_baselines::memory_centric::{AdderTreeConfig, MemCentricSim};
/// use chain_nn_core::LayerShape;
/// use chain_nn_fixed::Fix16;
/// use chain_nn_tensor::Tensor;
///
/// let shape = LayerShape::square(1, 5, 1, 3, 1, 0);
/// let ifmap = Tensor::filled([1, 1, 5, 5], Fix16::from_raw(1));
/// let weights = Tensor::filled([1, 1, 3, 3], Fix16::from_raw(2));
/// let rep = MemCentricSim::new(AdderTreeConfig::diannao())
///     .run_layer(&shape, &ifmap, &weights)
///     .unwrap();
/// assert!(rep.ofmaps.as_slice().iter().all(|&v| v == 18));
/// // Every MAC pulled one input word and one weight word from memory.
/// assert!(rep.stats.weight_reads >= rep.stats.macs);
/// ```
#[derive(Debug, Clone)]
pub struct MemCentricSim {
    cfg: AdderTreeConfig,
}

impl MemCentricSim {
    /// Creates the simulator.
    pub fn new(cfg: AdderTreeConfig) -> Self {
        MemCentricSim { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &AdderTreeConfig {
        &self.cfg
    }

    /// Runs one layer: loops ofmap-neuron groups of `tn` and synapse
    /// chunks of `ti`, exactly like the NFU pipeline, counting one cycle
    /// per (group, output, chunk).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DataMismatch`] when tensor extents disagree
    /// with `shape`, or [`CoreError::Shape`] for invalid shapes.
    pub fn run_layer(
        &self,
        shape: &LayerShape,
        ifmap: &Tensor<Fix16>,
        weights: &Tensor<Fix16>,
    ) -> Result<MemCentricReport, CoreError> {
        shape.validate()?;
        let idims = ifmap.shape().dims();
        if idims[1] != shape.c || idims[2] != shape.h || idims[3] != shape.w {
            return Err(CoreError::DataMismatch("ifmap shape".into()));
        }
        if weights.shape().dims() != [shape.m, shape.c, shape.kh, shape.kw] {
            return Err(CoreError::DataMismatch("weight shape".into()));
        }
        let batch = idims[0];
        let (oh, ow) = (shape.out_h(), shape.out_w());
        let mut out = Tensor::<i32>::zeros([batch, shape.m, oh, ow]);
        let mut stats = MemCentricStats::default();
        let pad = shape.pad as isize;

        // Synapse index space per output: c × kh × kw, chunked by ti.
        let synapses: Vec<(usize, usize, usize)> = (0..shape.c)
            .flat_map(|c| (0..shape.kh).flat_map(move |i| (0..shape.kw).map(move |j| (c, i, j))))
            .collect();

        for n in 0..batch {
            for m0 in (0..shape.m).step_by(self.cfg.tn) {
                let group = (shape.m - m0).min(self.cfg.tn);
                for y in 0..oh {
                    for x in 0..ow {
                        for chunk in synapses.chunks(self.cfg.ti) {
                            stats.cycles += 1;
                            stats.input_reads += chunk.len() as u64;
                            stats.weight_reads += (group * chunk.len()) as u64;
                            stats.psum_accesses += 2 * group as u64;
                            stats.macs += (group * chunk.len()) as u64;
                            for (dm, m) in (m0..m0 + group).enumerate() {
                                let _ = dm;
                                let mut acc = Acc32::from_raw(out.get(n, m, y, x));
                                for &(c, i, j) in chunk {
                                    let ih = (y * shape.stride + i) as isize - pad;
                                    let iw = (x * shape.stride + j) as isize - pad;
                                    let px = ifmap.get_padded(n, c, ih, iw, Fix16::ZERO);
                                    acc = acc.mac(px, weights.get(m, c, i, j));
                                }
                                out.set(n, m, y, x, acc.raw());
                            }
                        }
                    }
                }
            }
        }
        Ok(MemCentricReport { ofmaps: out, stats })
    }

    /// Analytic cycle count for a layer shape (matches the simulator).
    pub fn layer_cycles(&self, shape: &LayerShape, batch: usize) -> u64 {
        let syn = shape.c * shape.kh * shape.kw;
        let chunks = syn.div_ceil(self.cfg.ti) as u64;
        let groups = shape.m.div_ceil(self.cfg.tn) as u64;
        batch as u64 * groups * (shape.out_h() * shape.out_w()) as u64 * chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chain_nn_fixed::OverflowMode;
    use chain_nn_tensor::conv::{conv2d_fix, ConvGeometry};

    fn tensor_from(dims: [usize; 4], f: impl Fn(usize) -> i16) -> Tensor<Fix16> {
        let vol: usize = dims.iter().product();
        Tensor::from_vec(dims, (0..vol).map(|i| Fix16::from_raw(f(i))).collect()).unwrap()
    }

    #[test]
    fn matches_golden_model() {
        let shape = LayerShape::square(3, 8, 5, 3, 1, 1);
        let ifmap = tensor_from([2, 3, 8, 8], |i| (i % 17) as i16 - 8);
        let weights = tensor_from([5, 3, 3, 3], |i| (i % 11) as i16 - 5);
        let rep = MemCentricSim::new(AdderTreeConfig::diannao())
            .run_layer(&shape, &ifmap, &weights)
            .unwrap();
        let golden = conv2d_fix(
            &ifmap,
            &weights,
            ConvGeometry::new(3, 1, 1).unwrap(),
            OverflowMode::Wrapping,
        )
        .unwrap();
        assert_eq!(rep.ofmaps, golden);
    }

    #[test]
    fn strided_layers_supported_directly() {
        // Memory-centric designs have no schedule constraint on stride.
        let shape = LayerShape::square(1, 11, 2, 3, 2, 0);
        let ifmap = tensor_from([1, 1, 11, 11], |i| (i % 7) as i16);
        let weights = tensor_from([2, 1, 3, 3], |i| (i % 5) as i16 - 2);
        let rep = MemCentricSim::new(AdderTreeConfig::diannao())
            .run_layer(&shape, &ifmap, &weights)
            .unwrap();
        let golden = conv2d_fix(
            &ifmap,
            &weights,
            ConvGeometry::new(3, 2, 0).unwrap(),
            OverflowMode::Wrapping,
        )
        .unwrap();
        assert_eq!(rep.ofmaps, golden);
    }

    #[test]
    fn every_operand_crosses_memory() {
        let shape = LayerShape::square(2, 6, 3, 3, 1, 0);
        let ifmap = tensor_from([1, 2, 6, 6], |_| 1);
        let weights = tensor_from([3, 2, 3, 3], |_| 1);
        let rep = MemCentricSim::new(AdderTreeConfig::diannao())
            .run_layer(&shape, &ifmap, &weights)
            .unwrap();
        let s = rep.stats;
        // One weight read per MAC, no reuse at all.
        assert_eq!(s.weight_reads, s.macs);
        // Inputs are broadcast across the tn lanes of the group — the
        // only reuse this class gets.
        assert!(s.input_reads * 3 >= s.macs);
        assert!(s.psum_accesses > 0);
    }

    #[test]
    fn analytic_cycles_match_sim() {
        let cfg = AdderTreeConfig::diannao();
        let sim = MemCentricSim::new(cfg);
        for shape in [
            LayerShape::square(3, 8, 5, 3, 1, 1),
            LayerShape::square(2, 9, 17, 3, 2, 0),
            LayerShape::square(7, 6, 2, 2, 1, 0),
        ] {
            let ifmap = tensor_from([1, shape.c, shape.h, shape.w], |_| 1);
            let weights = tensor_from([shape.m, shape.c, shape.kh, shape.kw], |_| 1);
            let rep = sim.run_layer(&shape, &ifmap, &weights).unwrap();
            assert_eq!(rep.stats.cycles, sim.layer_cycles(&shape, 1), "{shape}");
        }
    }

    #[test]
    fn diannao_peak() {
        // 256 MACs at 980 MHz = 501.8 GOPS peak.
        let g = AdderTreeConfig::diannao().peak_gops();
        assert!((g - 501.76).abs() < 0.1);
    }

    #[test]
    fn rejects_mismatched_tensors() {
        let shape = LayerShape::square(2, 6, 3, 3, 1, 0);
        let bad = tensor_from([1, 1, 6, 6], |_| 1);
        let w = tensor_from([3, 2, 3, 3], |_| 1);
        assert!(MemCentricSim::new(AdderTreeConfig::diannao())
            .run_layer(&shape, &bad, &w)
            .is_err());
    }
}
