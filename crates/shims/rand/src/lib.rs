//! Minimal, std-only stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access, so
//! the real `rand` crate cannot be fetched. This shim provides the tiny
//! surface `chain-nn-nets`' synthetic-data generator uses: a seedable
//! deterministic generator (`rngs::StdRng` + `SeedableRng`) and
//! `Rng::gen_range` over float/integer ranges. The stream is a
//! splitmix64 — statistically fine for synthetic test tensors, but NOT
//! the real `StdRng` stream and NOT cryptographic.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable generators (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods (shim of `rand::Rng`).
pub trait Rng {
    /// Next 64 pseudo-random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (half-open).
    fn gen_range<T: UniformRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }
}

/// Types `gen_range` can sample uniformly.
pub trait UniformRange: Copy + PartialOrd {
    /// Draws one value in `[range.start, range.end)`.
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

impl UniformRange for f32 {
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        // 24 mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        range.start + unit * (range.end - range.start)
    }
}

impl UniformRange for f64 {
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),+) => {$(
        impl UniformRange for $t {
            fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let lo = range.start as i128;
                let width = (range.end as i128 - lo) as u128;
                (lo + (u128::from(rng.next_u64()) % width) as i128) as $t
            }
        }
    )+};
}

impl_uniform_int!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

/// Generator implementations (shim of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo_half = 0;
        for _ in 0..1000 {
            let x = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&x));
            if x < 0.0 {
                lo_half += 1;
            }
        }
        assert!((250..750).contains(&lo_half), "badly skewed: {lo_half}");
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = rng.gen_range(-3i32..5);
            assert!((-3..5).contains(&x));
        }
    }
}
