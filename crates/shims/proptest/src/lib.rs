//! Minimal, std-only stand-in for the `proptest` property-testing crate.
//!
//! The build environment for this repository has no network access, so
//! the real `proptest` crate cannot be fetched. This shim keeps the
//! property tests in `tests/chain_vs_reference.rs` compiling and
//! meaningful: the `proptest!` macro expands each property into a
//! `#[test]` that samples its parameters from a deterministic
//! (splitmix64, seeded by the test name) random stream for
//! `ProptestConfig::cases` cases. There is no shrinking — a failing
//! case panics with the sampled values via the normal assert message.
//!
//! Grammar note: parameter lists inside `proptest!` must end with a
//! trailing comma (`a in 0usize..4,`), which is how the workspace
//! tests are written.

#![forbid(unsafe_code)]

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, TestRng};
}

/// Run-count configuration for one `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` sampled cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 stream, seeded from the property's name so
/// every test function gets a distinct but reproducible sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from an arbitrary label (FNV-1a of the bytes).
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Value sources usable on the left of `in` inside [`proptest!`].
pub mod strategy {
    use super::TestRng;
    use std::ops::Range;

    /// A (shim) strategy: something that can produce sampled values.
    pub trait Strategy {
        /// The type of the sampled values.
        type Value;
        /// Draws one value from the deterministic stream.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy");
                    let width = (hi - lo) as u128;
                    let draw = (u128::from(rng.next_u64())) % width;
                    (lo + draw as i128) as $t
                }
            }
        )+};
    }

    impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    impl<T: Clone> Strategy for Vec<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.is_empty(), "empty choice strategy");
            let i = (rng.next_u64() as usize) % self.len();
            self[i].clone()
        }
    }
}

/// Shim of proptest's `prop_assert!` (panics instead of returning).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Shim of proptest's `prop_assert_eq!` (panics instead of returning).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Expands properties into deterministic sampling `#[test]`s.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($param:ident in $strategy:expr,)+ ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for _case in 0..config.cases {
                $(let $param = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let u = Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&u));
            let i = Strategy::sample(&(-5i16..9), &mut rng);
            assert!((-5..9).contains(&i));
        }
    }

    #[test]
    fn range_samples_cover_the_domain() {
        let mut rng = TestRng::deterministic("coverage");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::sample(&(0usize..4), &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: parameters bind and the body runs.
        #[test]
        fn macro_expands_and_samples(
            a in 1usize..5,
            b in 10i16..20,
        ) {
            prop_assert!((1..5).contains(&a));
            prop_assert_eq!(b, b);
        }
    }
}
