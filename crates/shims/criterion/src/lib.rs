//! Minimal, std-only stand-in for the `criterion` benchmark harness.
//!
//! The build environment for this repository has no network access, so
//! the real `criterion` crate cannot be fetched. This shim implements
//! just the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `Throughput`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — with plain
//! wall-clock timing, so `cargo bench` runs end-to-end and prints
//! per-benchmark times without any external dependency.
//!
//! Timing method: each benchmark closure is warmed up once, then run in
//! batches until ~50 ms of wall time is accumulated; the reported
//! number is the mean time per iteration (plus elements/second when a
//! [`Throughput`] was registered). This is deliberately simple — the
//! goal is trend-level numbers and a compiling, runnable harness, not
//! criterion's statistical machinery.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target accumulated measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(50);

/// Declared throughput of one benchmark, used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.id.fmt(f)
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    measured: Duration,
    iterations: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            measured: Duration::ZERO,
            iterations: 0,
        }
    }

    /// Times `routine`, repeating it until the target measurement
    /// budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (and a floor of one measured iteration).
        black_box(routine());
        let mut batch = 1u64;
        while self.measured < TARGET {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.measured += start.elapsed();
            self.iterations += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
    }
}

fn human_time(d: Duration) -> String {
    let ns = d.as_secs_f64() * 1e9;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn report(group: &str, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let per_iter = if b.iterations == 0 {
        Duration::ZERO
    } else {
        b.measured / u32::try_from(b.iterations).unwrap_or(u32::MAX).max(1)
    };
    let name = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    let mut line = format!("{name:<44} {:>12}/iter", human_time(per_iter));
    if let Some(t) = throughput {
        let secs = per_iter.as_secs_f64();
        if secs > 0.0 {
            match t {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:>12.3} Melem/s", n as f64 / secs / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  {:>12.3} MB/s", n as f64 / secs / 1e6));
                }
            }
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Registers the throughput used for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(&self.name, &id.to_string(), &b, self.throughput);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&self.name, &id.to_string(), &b, self.throughput);
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The harness entry point (wall-clock shim of criterion's type).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- {name} --");
        BenchmarkGroup {
            name,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report("", &id.to_string(), &b, None);
        self
    }

    /// Accepted for API compatibility with criterion's CLI handling.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Collects benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running every group (ignores criterion CLI flags).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags like
            // `--bench` or `--test`; a time-based shim can ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher::new();
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert!(b.iterations >= 1);
        assert!(n >= b.iterations); // warm-up adds at least one call
        assert!(b.measured >= TARGET);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("wide").to_string(), "wide");
    }

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("shim/self");
            g.throughput(Throughput::Elements(1));
            g.bench_function("noop", |b| {
                b.iter(|| std::hint::black_box(1 + 1));
                ran += 1;
            });
            g.finish();
        }
        assert_eq!(ran, 1);
    }
}
