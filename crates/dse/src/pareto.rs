//! Pareto-frontier extraction over the sweep objectives.
//!
//! Objectives: maximize throughput (fps), minimize system power
//! (on-chip + DRAM interface, mW), minimize logic area (kilo-gates),
//! and maximize measured accuracy (SQNR, dB). A point is dominated when
//! some other point is at least as good on every objective and strictly
//! better on at least one. Three frontiers are extracted: the classic
//! 3D fps × power × area, its 2D fps × power projection, and the
//! accuracy variant fps × power × SQNR (which is what keeps 16-bit
//! points alive against cooler 8-bit ones).
//!
//! # Example
//!
//! ```
//! use chain_nn_dse::pareto::{frontier_3d, Objectives};
//!
//! let obj = |fps, mw, gates| Objectives { fps, system_mw: mw, gates_k: gates, sqnr_db: 60.0 };
//! let points = vec![
//!     (0, obj(10.0, 100.0, 50.0)),
//!     (1, obj(10.0, 120.0, 50.0)), // dominated by 0
//!     (2, obj(20.0, 180.0, 90.0)),
//! ];
//! assert_eq!(frontier_3d(&points), vec![0, 2]);
//! ```

use crate::eval::PointResult;

/// The objective vector of one feasible point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Throughput, maximized.
    pub fps: f64,
    /// System power (chip + DRAM interface) in mW, minimized.
    pub system_mw: f64,
    /// Logic area in kilo-gates, minimized.
    pub gates_k: f64,
    /// Measured quantization SQNR in dB, maximized.
    pub sqnr_db: f64,
}

impl From<&PointResult> for Objectives {
    fn from(r: &PointResult) -> Self {
        Objectives {
            fps: r.fps,
            system_mw: r.system_mw(),
            gates_k: r.gates_k,
            sqnr_db: r.sqnr_db,
        }
    }
}

/// Whether `a` dominates `b` in the 3D (fps, power, area) sense.
pub fn dominates_3d(a: &Objectives, b: &Objectives) -> bool {
    let no_worse = a.fps >= b.fps && a.system_mw <= b.system_mw && a.gates_k <= b.gates_k;
    let better = a.fps > b.fps || a.system_mw < b.system_mw || a.gates_k < b.gates_k;
    no_worse && better
}

/// Whether `a` dominates `b` ignoring area (fps × power).
pub fn dominates_2d(a: &Objectives, b: &Objectives) -> bool {
    let no_worse = a.fps >= b.fps && a.system_mw <= b.system_mw;
    let better = a.fps > b.fps || a.system_mw < b.system_mw;
    no_worse && better
}

/// Whether `a` dominates `b` in the accuracy sense: fps × power ×
/// SQNR, with the area axis swapped out for measured precision.
pub fn dominates_accuracy(a: &Objectives, b: &Objectives) -> bool {
    let no_worse = a.fps >= b.fps && a.system_mw <= b.system_mw && a.sqnr_db >= b.sqnr_db;
    let better = a.fps > b.fps || a.system_mw < b.system_mw || a.sqnr_db > b.sqnr_db;
    no_worse && better
}

fn frontier_by(
    objectives: &[(usize, Objectives)],
    dominates: impl Fn(&Objectives, &Objectives) -> bool,
) -> Vec<usize> {
    let mut frontier = Vec::new();
    for (i, oi) in objectives {
        let dominated = objectives.iter().any(|(j, oj)| j != i && dominates(oj, oi));
        if !dominated {
            frontier.push(*i);
        }
    }
    frontier
}

/// Indices (into the caller's list) of the 3D-non-dominated points.
/// Input is `(index, objectives)` for every *feasible* point; the
/// returned indices are ascending because input order is preserved.
pub fn frontier_3d(objectives: &[(usize, Objectives)]) -> Vec<usize> {
    frontier_by(objectives, dominates_3d)
}

/// Indices of the 2D-non-dominated points (fps × power).
pub fn frontier_2d(objectives: &[(usize, Objectives)]) -> Vec<usize> {
    frontier_by(objectives, dominates_2d)
}

/// Indices of the accuracy-non-dominated points (fps × power × SQNR).
pub fn frontier_accuracy(objectives: &[(usize, Objectives)]) -> Vec<usize> {
    frontier_by(objectives, dominates_accuracy)
}

/// Merges per-partition frontier candidate lists into one canonically
/// ordered candidate set: concatenate and sort ascending by index.
/// This is the cluster coordinator's merge step — each shard reports
/// the frontier of *its* hash-partition with global grid indices, and
/// re-filtering the merged set reproduces the frontier of the union.
///
/// Why that works: dominance is a strict partial order, so in a finite
/// set every dominated point is dominated by some non-dominated point.
/// A point on the union's frontier is also on its own partition's
/// frontier (a subset has fewer dominators), so the merged candidate
/// set always contains the union's entire frontier; and every merged
/// candidate *not* on the union's frontier is dominated by a point that
/// is — which is also in the set — so one more filtering pass removes
/// exactly the impostors. Hence for any dominance relation `d`:
/// `frontier(merge(parts)) == frontier(union)`, independent of how the
/// points were partitioned (associative and commutative in the parts).
pub fn merge_candidates(parts: &[Vec<(usize, Objectives)>]) -> Vec<(usize, Objectives)> {
    let mut all: Vec<(usize, Objectives)> = parts.concat();
    all.sort_by_key(|(i, _)| *i);
    all
}

/// The 3D frontier of merged per-partition candidates (ascending
/// global indices — identical to running [`frontier_3d`] on the union).
pub fn merge_frontier_3d(parts: &[Vec<(usize, Objectives)>]) -> Vec<usize> {
    frontier_3d(&merge_candidates(parts))
}

/// The accuracy frontier of merged per-partition candidates.
pub fn merge_frontier_accuracy(parts: &[Vec<(usize, Objectives)>]) -> Vec<usize> {
    frontier_accuracy(&merge_candidates(parts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(fps: f64, mw: f64, gates: f64) -> Objectives {
        Objectives {
            fps,
            system_mw: mw,
            gates_k: gates,
            sqnr_db: 60.0,
        }
    }

    /// Hand-checked 3x3 grid: fps grows with "size", power grows with
    /// size and a "waste" knob. Exactly the non-wasteful diagonal plus
    /// the area-payoff point survive.
    #[test]
    fn hand_checked_tiny_frontier() {
        // (fps, mW, gates_k)
        let pts = vec![
            (0, obj(10.0, 100.0, 50.0)),  // small, efficient
            (1, obj(10.0, 120.0, 50.0)),  // small, wasteful  -> dominated by 0
            (2, obj(10.0, 100.0, 60.0)),  // small, larger    -> dominated by 0
            (3, obj(20.0, 180.0, 90.0)),  // medium, efficient
            (4, obj(20.0, 200.0, 90.0)),  // medium, wasteful -> dominated by 3
            (5, obj(20.0, 180.0, 80.0)),  // medium, smaller  -> dominates 3
            (6, obj(40.0, 400.0, 200.0)), // large, efficient
            (7, obj(40.0, 400.0, 190.0)), // large, smaller   -> dominates 6
            (8, obj(5.0, 500.0, 500.0)),  // bad at everything -> dominated
        ];
        assert_eq!(frontier_3d(&pts), vec![0, 5, 7]);
        // In 2D the area axis stops mattering: points tied on (fps,
        // power) — 0/2, 3/5 and 6/7 — no longer dominate each other.
        assert_eq!(frontier_2d(&pts), vec![0, 2, 3, 5, 6, 7]);
    }

    #[test]
    fn single_point_is_its_own_frontier() {
        let pts = vec![(7, obj(1.0, 1.0, 1.0))];
        assert_eq!(frontier_3d(&pts), vec![7]);
        assert_eq!(frontier_2d(&pts), vec![7]);
    }

    #[test]
    fn identical_points_all_survive() {
        let pts = vec![(0, obj(1.0, 1.0, 1.0)), (1, obj(1.0, 1.0, 1.0))];
        assert_eq!(frontier_3d(&pts), vec![0, 1]);
    }

    #[test]
    fn ties_on_every_objective_keep_both_points() {
        // Dominance requires strictly-better somewhere: exact ties are
        // mutually non-dominating, so equal-objective points must all
        // stay on the frontier, in both dimensionalities — and a third
        // genuinely better point must not be dragged down by them.
        let a = obj(10.0, 100.0, 50.0);
        assert!(!dominates_3d(&a, &a) && !dominates_2d(&a, &a));
        let pts = vec![
            (0, a),
            (1, a),
            (2, a),
            (3, obj(20.0, 100.0, 50.0)), // dominates the tied trio
        ];
        assert_eq!(frontier_3d(&pts), vec![3]);
        assert_eq!(frontier_2d(&pts), vec![3]);
        // Without the dominator the tied trio survives intact.
        assert_eq!(frontier_3d(&pts[..3]), vec![0, 1, 2]);
        assert_eq!(frontier_2d(&pts[..3]), vec![0, 1, 2]);
    }

    #[test]
    fn partial_ties_resolve_on_the_remaining_axis() {
        // Tied on (fps, power): the area axis decides 3D dominance but
        // is invisible to the 2D projection, where the pair ties.
        let small = obj(10.0, 100.0, 40.0);
        let large = obj(10.0, 100.0, 60.0);
        assert!(dominates_3d(&small, &large));
        assert!(!dominates_3d(&large, &small));
        assert!(!dominates_2d(&small, &large));
        assert!(!dominates_2d(&large, &small));
        let pts = vec![(0, large), (1, small)];
        assert_eq!(frontier_3d(&pts), vec![1]);
        assert_eq!(frontier_2d(&pts), vec![0, 1]);
    }

    #[test]
    fn accuracy_frontier_keeps_precise_points_the_area_frontier_drops() {
        // An 8-bit-style point (cool, small, imprecise) and a
        // 16-bit-style point (hotter, larger, precise) at equal fps.
        let narrow = Objectives {
            fps: 100.0,
            system_mw: 400.0,
            gates_k: 300.0,
            sqnr_db: 30.0,
        };
        let wide = Objectives {
            fps: 100.0,
            system_mw: 600.0,
            gates_k: 500.0,
            sqnr_db: 75.0,
        };
        // Under fps × power × area the wide point is dominated...
        assert!(dominates_3d(&narrow, &wide));
        let pts = vec![(0, narrow), (1, wide)];
        assert_eq!(frontier_3d(&pts), vec![0]);
        // ...but the accuracy frontier keeps both: precision is an axis.
        assert!(!dominates_accuracy(&narrow, &wide));
        assert!(!dominates_accuracy(&wide, &narrow));
        assert_eq!(frontier_accuracy(&pts), vec![0, 1]);
        // Equal SQNR reduces the accuracy frontier to fps × power.
        let same = Objectives {
            sqnr_db: 30.0,
            ..wide
        };
        assert!(dominates_accuracy(&narrow, &same));
    }

    #[test]
    fn dominance_is_strict_somewhere() {
        let a = obj(10.0, 100.0, 50.0);
        assert!(!dominates_3d(&a, &a));
        assert!(dominates_3d(&obj(11.0, 100.0, 50.0), &a));
        assert!(dominates_2d(&obj(10.0, 99.0, 999.0), &a));
        assert!(!dominates_3d(&obj(10.0, 99.0, 999.0), &a));
    }
}
